//! Direct tests of the compile pipeline's variant wiring: buffer-table
//! extensions for lookup tables, launch-argument plumbing, knob labeling,
//! the safety-guard option, and the DeviceApp adapter's contract.

use paraprox::{
    compile, latency_table_for, CompileOptions, Device, DeviceApp, DeviceProfile, Knob, Metric,
    Workload,
};
use paraprox_ir::{Expr, FuncBuilder, KernelBuilder, MemSpace, Program, Scalar, Ty};
use paraprox_runtime::{Approximable, RunOutcome};
use paraprox_vgpu::{BufferInit, BufferSpec, Dim2, LaunchPlan, Pipeline, PlanArg};

/// A minimal map workload with a memoizable function and a division that
/// consumes its result.
fn tiny_map_workload() -> Workload {
    let mut program = Program::new();
    let mut fb = FuncBuilder::new("heavy", Ty::F32);
    let x = fb.scalar("x", Ty::F32);
    fb.ret((x.clone().log() / x.clone().sqrt()).exp() / (x + Expr::f32(2.0)));
    let func = program.add_func(fb.finish());

    let mut kb = KernelBuilder::new("map");
    let input = kb.buffer("in", Ty::F32, MemSpace::Global);
    let output = kb.buffer("out", Ty::F32, MemSpace::Global);
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    let v = kb.let_("v", kb.load(input, gid.clone()));
    let r = kb.let_(
        "r",
        Expr::Call {
            func,
            args: vec![v.clone()],
        },
    );
    // A division by an approximated value, for the safety-guard test.
    kb.store(output, gid, v / r);
    let kernel = program.add_kernel(kb.finish());

    let n = 1024usize;
    let data: Vec<f32> = (0..n).map(|i| 0.5 + i as f32 * 0.1).collect();
    let mut pipeline = Pipeline::default();
    let in_b = pipeline.add_buffer(BufferSpec::f32("in", data.clone()));
    let out_b = pipeline.add_buffer(BufferSpec::zeroed_f32("out", n));
    pipeline.launches.push(LaunchPlan {
        kernel,
        grid: Dim2::linear(n / 32),
        block: Dim2::linear(32),
        args: vec![PlanArg::Buffer(in_b), PlanArg::Buffer(out_b)],
    });
    pipeline.outputs = vec![out_b];

    let training: Vec<Vec<Scalar>> = data.iter().map(|&v| vec![Scalar::F32(v)]).collect();
    Workload::new("tiny", program, pipeline, Metric::MeanRelative)
        .with_training(func, training)
        .with_input_slots(vec![in_b])
}

#[test]
fn memo_variant_extends_buffer_table_and_launch_args() {
    let w = tiny_map_workload();
    let table = latency_table_for(&DeviceProfile::gtx560());
    let compiled = compile(&w, &table, &CompileOptions::minimal()).unwrap();
    assert_eq!(compiled.variants.len(), 1);
    let v = &compiled.variants[0];
    assert!(matches!(v.knob, Knob::Memo { bits: 10, .. }));
    assert_eq!(v.label, "memo:10b:nearest:global");
    // One lookup-table buffer appended, bound to the launch.
    assert_eq!(v.pipeline.buffers.len(), w.pipeline.buffers.len() + 1);
    assert_eq!(
        v.pipeline.launches[0].args.len(),
        w.pipeline.launches[0].args.len() + 1
    );
    // The table holds 2^10 entries.
    let lut = v.pipeline.buffers.last().unwrap();
    assert_eq!(lut.init.len(), 1024);
    // Program kernel gained the lut parameter.
    let k = v.program.kernel(paraprox_ir::KernelId(0));
    assert_eq!(k.params.len(), 3);
}

#[test]
fn variants_execute_and_approximate_well() {
    let w = tiny_map_workload();
    let table = latency_table_for(&DeviceProfile::gtx560());
    let compiled = compile(&w, &table, &CompileOptions::minimal()).unwrap();
    let mut device = Device::new(DeviceProfile::gtx560());
    let exact = w.pipeline.execute(&mut device, &w.program).unwrap();
    let v = &compiled.variants[0];
    let approx = v.pipeline.execute(&mut device, &v.program).unwrap();
    let q = Metric::MeanRelative.quality(&exact.flat_output(), &approx.flat_output());
    assert!(q > 95.0, "quality = {q}");
    assert!(approx.stats.total_cycles() < exact.stats.total_cycles());
}

#[test]
fn guard_divisions_option_instruments_variants() {
    let w = tiny_map_workload();
    let table = latency_table_for(&DeviceProfile::gtx560());
    let mut options = CompileOptions::minimal();
    options.guard_divisions = true;
    let compiled = compile(&w, &table, &options).unwrap();
    let v = &compiled.variants[0];
    // The original kernel's division (v / r) must now sit behind a select.
    let mut selects = 0;
    paraprox_ir::for_each_expr_in_stmts(
        &v.program.kernel(paraprox_ir::KernelId(0)).body,
        &mut |e| {
            if matches!(e, paraprox_ir::Expr::Select { .. }) {
                selects += 1;
            }
        },
    );
    assert!(selects >= 1, "guarded division must emit a select");
    // And it still runs.
    let mut device = Device::new(DeviceProfile::gtx560());
    v.pipeline.execute(&mut device, &v.program).unwrap();
}

#[test]
fn device_app_regenerates_inputs_per_seed() {
    let w = tiny_map_workload();
    let table = latency_table_for(&DeviceProfile::gtx560());
    let compiled = compile(&w, &table, &CompileOptions::minimal()).unwrap();
    let gen = Box::new(|seed: u64| {
        let base = seed as f32 * 0.01 + 0.5;
        vec![BufferInit::F32(
            (0..1024).map(|i| base + i as f32 * 0.1).collect(),
        )]
    });
    let mut app = DeviceApp::new(Device::new(DeviceProfile::gtx560()), &compiled, gen);
    let a: RunOutcome = app.run_exact(1).unwrap();
    let b = app.run_exact(1).unwrap();
    let c = app.run_exact(2).unwrap();
    assert_eq!(a, b, "same seed reproduces");
    assert_ne!(a.output, c.output, "different seed differs");
    // Variant runs accept the same seeds.
    let v = app.run_variant(0, 1).unwrap();
    assert_eq!(v.output.len(), a.output.len());
    assert_eq!(app.variant_count(), 1);
    assert_eq!(app.variant_label(0), "memo:10b:nearest:global");
}

#[test]
fn device_app_rejects_wrong_input_arity() {
    let w = tiny_map_workload();
    let table = latency_table_for(&DeviceProfile::gtx560());
    let compiled = compile(&w, &table, &CompileOptions::minimal()).unwrap();
    let gen = Box::new(|_seed: u64| {
        vec![
            BufferInit::F32(vec![0.5; 1024]),
            BufferInit::F32(vec![0.5; 1024]), // one too many
        ]
    });
    let mut app = DeviceApp::new(Device::new(DeviceProfile::gtx560()), &compiled, gen);
    assert!(app.run_exact(0).is_err());
}

#[test]
fn tuner_sweep_compiles_each_candidate_kernel_once() {
    // The tuner runs the exact program and every variant 10 times each;
    // the device's program cache must compile each distinct kernel exactly
    // once for the whole sweep, and a second sweep must add no compiles.
    let w = tiny_map_workload();
    let table = latency_table_for(&DeviceProfile::gtx560());
    let compiled = compile(&w, &table, &CompileOptions::minimal()).unwrap();
    assert!(!compiled.variants.is_empty());
    let gen = Box::new(|seed: u64| {
        let base = seed as f32 * 0.01 + 0.5;
        vec![BufferInit::F32(
            (0..1024).map(|i| base + i as f32 * 0.1).collect(),
        )]
    });
    let mut app = DeviceApp::new(Device::new(DeviceProfile::gtx560()), &compiled, gen);
    let tuner = paraprox::Tuner::paper_default();
    tuner.tune(&mut app).unwrap();
    let after_first = app.device_mut().compile_count();
    // Upper bound: every kernel of the exact program plus every kernel of
    // every variant compiled at most once, despite 10 runs each.
    let distinct: u64 = (w.program.kernel_count()
        + compiled
            .variants
            .iter()
            .map(|v| v.program.kernel_count())
            .sum::<usize>()) as u64;
    assert!(after_first >= 1);
    assert!(
        after_first <= distinct,
        "tuner recompiled kernels: {after_first} compiles for {distinct} distinct kernels"
    );
    // A second identical sweep hits the cache for everything.
    tuner.tune(&mut app).unwrap();
    assert_eq!(app.device_mut().compile_count(), after_first);
}

#[test]
fn empty_options_produce_no_variants() {
    let w = tiny_map_workload();
    let table = latency_table_for(&DeviceProfile::gtx560());
    let options = CompileOptions {
        memo_bits: vec![],
        memo_modes: vec![],
        memo_placements: vec![],
        stencil_schemes: vec![],
        stencil_reaches: vec![],
        reduction_skips: vec![],
        scan_skip_fractions: vec![],
        guard_divisions: false,
    };
    let compiled = compile(&w, &table, &options).unwrap();
    assert!(compiled.variants.is_empty());
    assert!(compiled.pattern_names().contains(&"map"));
}
