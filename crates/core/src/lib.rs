//! Paraprox: pattern-based approximation for data-parallel programs.
//!
//! A Rust reproduction of *Paraprox: Pattern-Based Approximation for Data
//! Parallel Applications* (Samadi, Jamshidi, Lee, Mahlke — ASPLOS 2014),
//! running on the deterministic SIMT virtual device of [`paraprox_vgpu`].
//!
//! The flow mirrors the paper's Figure 2:
//!
//! 1. An application is expressed as a [`Workload`]: a kernel-IR
//!    [`paraprox_ir::Program`], an execution [`paraprox_vgpu::Pipeline`],
//!    an error [`Metric`], and training data for memoization candidates.
//! 2. [`compile`] detects the data-parallel patterns (map, scatter/gather,
//!    reduction, scan, stencil, partition) and generates approximate kernel
//!    [`Variant`]s, each with a tuning [`Knob`].
//! 3. A [`DeviceApp`] adapts the compiled bundle to the
//!    [`paraprox_runtime::Tuner`], which profiles every variant and picks
//!    the fastest one meeting the target output quality
//!    ([`paraprox_quality::Toq`]); [`paraprox_runtime::Deployment`] then
//!    watches quality in production and backs off on violations.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` in the repository root for a complete
//! end-to-end walk-through on a BlackScholes-style kernel.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyze;
mod compile;
mod device_app;
mod error;
pub mod errorbounds;
mod latency;
mod workload;

pub use analyze::{analyze_workload, approx_placements, launch_contexts, tolerant_buffer_slots};
pub use compile::{compile, CompileOptions, Compiled, Knob, Variant};
pub use device_app::DeviceApp;
pub use error::CompileError;
pub use latency::latency_table_for;
pub use workload::Workload;

// The pieces users need to build and run workloads, re-exported for
// one-import ergonomics.
pub use paraprox_analysis::{
    check_placements, partition_kernel, partition_program, BufferVerdict, Criticality, Diagnostic,
    KernelPartition, LaunchContext, Severity,
};
pub use paraprox_quality::{Metric, Toq};
pub use paraprox_runtime::{Deployment, StaticQuality, Tuner};
pub use paraprox_vgpu::{Device, DeviceProfile};
