//! The Paraprox compiler: pattern detection → approximate kernel variants.

use std::collections::HashMap;

use paraprox_approx::{
    approximate_scan, approximate_stencil, bit_tune, input_ranges, memoize_kernel, ApproxError,
    LookupMode, MemoConfig, StencilScheme, TablePlacement,
};
use paraprox_ir::{FuncId, Program, Ty};
use paraprox_patterns::{detect, DetectOptions, KernelPatterns, LatencyTable};
use paraprox_vgpu::{BufferInit, BufferSpec, Pipeline, PlanArg};

use crate::error::CompileError;
use crate::workload::Workload;

/// The tuning knob a variant exposes (paper §3, one per optimization).
#[derive(Debug, Clone, PartialEq)]
pub enum Knob {
    /// Approximate memoization: lookup-table size (address bits), lookup
    /// mode, and table placement.
    Memo {
        /// Total address bits (table size = 2^bits).
        bits: u32,
        /// Nearest or linear lookup.
        mode: LookupMode,
        /// Table placement.
        placement: TablePlacement,
    },
    /// Stencil/partition: access scheme and reaching distance.
    Stencil {
        /// Center, row, or column scheme.
        scheme: StencilScheme,
        /// Reaching distance.
        reach: u32,
    },
    /// Reduction: skipping rate.
    Reduction {
        /// Execute every `skip`-th iteration.
        skip: u32,
    },
    /// Scan: number of skipped subarrays.
    Scan {
        /// Subarrays predicted instead of computed.
        skip: usize,
    },
}

/// One approximate version of a workload.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Human-readable label (e.g. `memo:11b:nearest:global`).
    pub label: String,
    /// The knob setting this variant embodies.
    pub knob: Knob,
    /// Rewritten program.
    pub program: Program,
    /// Rewritten pipeline (may add lookup-table buffers or change grids).
    pub pipeline: Pipeline,
}

/// Knob ranges explored at compile time; the runtime tuner picks among the
/// resulting variants.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Lookup-table address-bit counts to generate.
    pub memo_bits: Vec<u32>,
    /// Lookup modes to generate.
    pub memo_modes: Vec<LookupMode>,
    /// Table placements to generate.
    pub memo_placements: Vec<TablePlacement>,
    /// Stencil schemes to generate.
    pub stencil_schemes: Vec<StencilScheme>,
    /// Reaching distances to generate.
    pub stencil_reaches: Vec<u32>,
    /// Reduction skipping rates to generate.
    pub reduction_skips: Vec<u32>,
    /// Scan skipped-subarray fractions (numerator, denominator).
    pub scan_skip_fractions: Vec<(usize, usize)>,
    /// Instrument divisions in approximate kernels against zero divisors
    /// (the paper's §5 safety sketch). Adds a compare+select per guarded
    /// division, so it is off by default, matching the paper's prototype.
    pub guard_divisions: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            memo_bits: vec![8, 11, 13],
            memo_modes: vec![LookupMode::Nearest, LookupMode::Linear],
            memo_placements: vec![TablePlacement::Global, TablePlacement::Shared],
            stencil_schemes: vec![
                StencilScheme::Center,
                StencilScheme::Row,
                StencilScheme::Column,
            ],
            stencil_reaches: vec![1, 2],
            reduction_skips: vec![2, 4, 8],
            scan_skip_fractions: vec![(1, 8), (1, 4), (1, 2)],
            guard_divisions: false,
        }
    }
}

impl CompileOptions {
    /// A minimal option set for quick tests: one knob value per pattern.
    pub fn minimal() -> CompileOptions {
        CompileOptions {
            memo_bits: vec![10],
            memo_modes: vec![LookupMode::Nearest],
            memo_placements: vec![TablePlacement::Global],
            stencil_schemes: vec![StencilScheme::Center],
            stencil_reaches: vec![1],
            reduction_skips: vec![4],
            scan_skip_fractions: vec![(1, 4)],
            guard_divisions: false,
        }
    }
}

/// The result of compiling a workload.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The original (exact) workload.
    pub workload: Workload,
    /// Pattern-detection report per kernel.
    pub patterns: Vec<KernelPatterns>,
    /// Generated approximate variants.
    pub variants: Vec<Variant>,
    /// Static-analysis findings on the exact program (warnings only — an
    /// error-severity finding aborts compilation instead).
    pub diagnostics: Vec<paraprox_analysis::Diagnostic>,
    /// Buffer-criticality partition of the exact program, one entry per
    /// kernel: which buffers may be served from approximate memory.
    pub partition: Vec<paraprox_analysis::KernelPartition>,
    /// Static per-variant quality bounds from the error-propagation
    /// analysis, in [`Compiled::variants`] order (see
    /// [`crate::errorbounds`]). The runtime tuner prunes calibration
    /// launches and orders the back-off ladder with this table.
    pub static_quality: Vec<paraprox_runtime::StaticQuality>,
}

impl Compiled {
    /// Names of the patterns found anywhere in the workload (deduplicated,
    /// detection order).
    pub fn pattern_names(&self) -> Vec<&'static str> {
        let mut names = Vec::new();
        for kp in &self.patterns {
            for inst in &kp.instances {
                if !names.contains(&inst.name()) {
                    names.push(inst.name());
                }
            }
        }
        names
    }

    /// The partition verdicts for one kernel of the exact program.
    pub fn partition_for(
        &self,
        kernel: paraprox_ir::KernelId,
    ) -> Option<&paraprox_analysis::KernelPartition> {
        self.partition.iter().find(|p| p.kernel == kernel)
    }

    /// Pipeline buffer slots of the exact workload that are declared
    /// global and classified Tolerant in *every* launch they feed — the
    /// set the approximate-memory auto-placer may move. A slot passed to
    /// several launches must be Tolerant in all of them.
    pub fn tolerant_buffer_slots(&self) -> Vec<usize> {
        crate::analyze::tolerant_buffer_slots(&self.workload, &self.partition)
    }
}

/// Generate the memoization variants.
fn memo_variants(
    workload: &Workload,
    patterns: &[KernelPatterns],
    options: &CompileOptions,
    out: &mut Vec<Variant>,
) -> Result<(), CompileError> {
    // Collect (kernel, func) pairs that have training data.
    let mut sites: Vec<(paraprox_ir::KernelId, FuncId)> = Vec::new();
    for kp in patterns {
        for c in kp.maps() {
            if workload.training_for(c.func).is_some() {
                sites.push((kp.kernel, c.func));
            }
        }
    }
    if sites.is_empty() {
        return Ok(());
    }
    // Bit tuning is independent of mode/placement: cache per (func, bits).
    let mut tuned: HashMap<(FuncId, u32), MemoConfig> = HashMap::new();
    for &bits in &options.memo_bits {
        for &mode in &options.memo_modes {
            for &placement in &options.memo_placements {
                let mut program = workload.program.clone();
                let mut pipeline = workload.pipeline.clone();
                let mut applied = 0usize;
                for &(kernel, func) in &sites {
                    let samples = workload
                        .training_for(func)
                        .expect("filtered to funcs with training");
                    let base_config = match tuned.entry((func, bits)) {
                        std::collections::hash_map::Entry::Occupied(e) => e.get().clone(),
                        std::collections::hash_map::Entry::Vacant(e) => {
                            let ranges = input_ranges(samples)?;
                            let f = workload.program.func(func).clone();
                            let result = bit_tune(&workload.program, &f, samples, &ranges, bits)?;
                            e.insert(MemoConfig {
                                func,
                                split: result.split,
                                mode: LookupMode::Nearest,
                                placement: TablePlacement::Global,
                                ranges,
                            })
                            .clone()
                        }
                    };
                    let config = MemoConfig {
                        mode,
                        placement,
                        ..base_config
                    };
                    if mode == LookupMode::Linear && config.variable_inputs() != 1 {
                        continue; // linear needs a single variable input
                    }
                    match memoize_kernel(&program, kernel, &config) {
                        Ok(variant) => {
                            program = variant.program;
                            let slot = pipeline.add_buffer(BufferSpec {
                                name: format!("lut_f{}", func.0),
                                ty: Ty::F32,
                                space: variant.lut_space,
                                init: BufferInit::F32(variant.table),
                            });
                            for launch in &mut pipeline.launches {
                                if launch.kernel == kernel {
                                    launch.args.push(PlanArg::Buffer(slot));
                                }
                            }
                            applied += 1;
                        }
                        Err(ApproxError::NotApplicable(_)) => continue,
                        Err(e) => return Err(e.into()),
                    }
                }
                if applied > 0 {
                    out.push(Variant {
                        label: format!(
                            "memo:{bits}b:{}:{}",
                            match mode {
                                LookupMode::Nearest => "nearest",
                                LookupMode::Linear => "linear",
                            },
                            placement.label()
                        ),
                        knob: Knob::Memo {
                            bits,
                            mode,
                            placement,
                        },
                        program,
                        pipeline,
                    });
                }
            }
        }
    }
    Ok(())
}

/// Generate the stencil/partition variants.
fn stencil_variants(
    workload: &Workload,
    patterns: &[KernelPatterns],
    options: &CompileOptions,
    out: &mut Vec<Variant>,
) -> Result<(), CompileError> {
    for &scheme in &options.stencil_schemes {
        for &reach in &options.stencil_reaches {
            let mut program = workload.program.clone();
            let mut applied = 0usize;
            for kp in patterns {
                for cand in kp.stencils() {
                    match approximate_stencil(&program, kp.kernel, cand, scheme, reach) {
                        Ok(p) => {
                            program = p;
                            applied += 1;
                        }
                        Err(ApproxError::NotApplicable(_)) => continue,
                        Err(e) => return Err(e.into()),
                    }
                }
            }
            if applied > 0 {
                out.push(Variant {
                    label: format!("stencil:{}:r{reach}", scheme.label()),
                    knob: Knob::Stencil { scheme, reach },
                    program,
                    pipeline: workload.pipeline.clone(),
                });
            }
        }
    }
    Ok(())
}

/// Group detected reduction loops by loop (statement path), keeping only
/// *innermost* loops — when a nested pair of loops both reduce the same
/// accumulator (tiled matmul), perforating both would square the sampling
/// rate.
pub(crate) fn innermost_reduction_groups(
    loops: &[paraprox_patterns::ReductionLoop],
) -> Vec<Vec<paraprox_patterns::ReductionLoop>> {
    let is_prefix = |outer: &paraprox_patterns::StmtPath, inner: &paraprox_patterns::StmtPath| {
        outer.0.len() < inner.0.len() && inner.0[..outer.0.len()] == outer.0[..]
    };
    let mut groups: Vec<Vec<paraprox_patterns::ReductionLoop>> = Vec::new();
    for red in loops {
        // Skip loops that contain another detected reduction loop.
        if loops.iter().any(|other| is_prefix(&red.path, &other.path)) {
            continue;
        }
        match groups.iter_mut().find(|g| g[0].path == red.path) {
            Some(g) => g.push(red.clone()),
            None => groups.push(vec![red.clone()]),
        }
    }
    groups
}

/// Generate the reduction variants.
fn reduction_variants(
    workload: &Workload,
    patterns: &[KernelPatterns],
    options: &CompileOptions,
    out: &mut Vec<Variant>,
) -> Result<(), CompileError> {
    // How many reduction-loop groups does each kernel have?
    let group_counts: Vec<(paraprox_ir::KernelId, usize)> = patterns
        .iter()
        .map(|kp| {
            let loops: Vec<_> = kp.reductions().cloned().collect();
            (kp.kernel, innermost_reduction_groups(&loops).len())
        })
        .filter(|(_, n)| *n > 0)
        .collect();
    if group_counts.is_empty() {
        return Ok(());
    }
    for &skip in &options.reduction_skips {
        let mut program = workload.program.clone();
        let mut applied = 0usize;
        for &(kernel, count) in &group_counts {
            for i in 0..count {
                // Re-detect after each rewrite: paths shift as the
                // adjustment statements are spliced in.
                let loops =
                    paraprox_patterns::reduction::find_reduction_loops(program.kernel(kernel));
                let groups = innermost_reduction_groups(&loops);
                let Some(group) = groups.get(i) else { break };
                match paraprox_approx::approximate_reduction_group(&program, kernel, group, skip) {
                    Ok(p) => {
                        program = p;
                        applied += 1;
                    }
                    Err(ApproxError::NotApplicable(_)) => continue,
                    Err(e) => return Err(e.into()),
                }
            }
        }
        if applied > 0 {
            out.push(Variant {
                label: format!("reduction:skip{skip}"),
                knob: Knob::Reduction { skip },
                program,
                pipeline: workload.pipeline.clone(),
            });
        }
    }
    Ok(())
}

/// Generate the scan variants.
fn scan_variants(
    workload: &Workload,
    patterns: &[KernelPatterns],
    options: &CompileOptions,
    out: &mut Vec<Variant>,
) -> Result<(), CompileError> {
    for kp in patterns {
        let Some(m) = kp.scan() else { continue };
        let Some(phase1_launch) = workload
            .pipeline
            .launches
            .iter()
            .find(|l| l.kernel == kp.kernel)
        else {
            continue;
        };
        let subarrays = phase1_launch.grid.count();
        for &(num, den) in &options.scan_skip_fractions {
            let skip = (subarrays * num / den).max(1);
            match approximate_scan(&workload.program, &workload.pipeline, kp.kernel, m, skip) {
                Ok((program, pipeline)) => out.push(Variant {
                    label: format!("scan:skip{num}/{den}"),
                    knob: Knob::Scan { skip },
                    program,
                    pipeline,
                }),
                Err(ApproxError::NotApplicable(_)) => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }
    Ok(())
}

/// Compile a workload: analyze the exact program, detect patterns, and
/// generate every approximate variant the options ask for.
///
/// # Errors
///
/// Fails when the static analyzer proves the exact program unsafe (a
/// shared-memory race or out-of-bounds access with a concrete witness —
/// approximating a broken kernel would only launder the bug), or when an
/// approximation rewriter hits a real error (malformed IR, failing
/// function evaluation). Pattern/knob combinations that are merely
/// inapplicable are skipped silently; warning-severity lint findings are
/// reported in [`Compiled::diagnostics`].
pub fn compile(
    workload: &Workload,
    table: &LatencyTable,
    options: &CompileOptions,
) -> Result<Compiled, CompileError> {
    let diagnostics = crate::analyze::analyze_workload(workload);
    let errors: Vec<_> = diagnostics
        .iter()
        .filter(|d| d.severity == paraprox_analysis::Severity::Error)
        .cloned()
        .collect();
    if !errors.is_empty() {
        return Err(CompileError::Analysis(errors));
    }
    let patterns = detect(&workload.program, table, &DetectOptions::default());
    let mut variants = Vec::new();
    memo_variants(workload, &patterns, options, &mut variants)?;
    stencil_variants(workload, &patterns, options, &mut variants)?;
    reduction_variants(workload, &patterns, options, &mut variants)?;
    scan_variants(workload, &patterns, options, &mut variants)?;
    if options.guard_divisions {
        for variant in &mut variants {
            let kernel_ids: Vec<paraprox_ir::KernelId> =
                variant.program.kernels().map(|(id, _)| id).collect();
            for kid in kernel_ids {
                paraprox_approx::guard_divisions(&mut variant.program, kid)?;
            }
        }
    }
    let partition = paraprox_analysis::partition_program(&workload.program);
    let static_quality = crate::errorbounds::static_quality(workload, &patterns, &variants);
    Ok(Compiled {
        workload: workload.clone(),
        patterns,
        variants,
        diagnostics,
        partition,
        static_quality,
    })
}
