//! Workloads: the unit Paraprox compiles.

use paraprox_ir::{FuncId, Program, Scalar};
use paraprox_quality::Metric;
use paraprox_vgpu::Pipeline;

/// A complete, runnable application: program, execution plan, error
/// metric, and the offline training data that memoization needs.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Application name.
    pub name: String,
    /// Kernels and device functions.
    pub program: Program,
    /// The exact execution plan.
    pub pipeline: Pipeline,
    /// Error metric used to score output quality (paper Table 1).
    pub metric: Metric,
    /// Training argument tuples per memoization-candidate function. The
    /// paper applies training inputs offline to derive input ranges and
    /// drive bit tuning; functions without samples are not memoized.
    pub memo_training: Vec<(FuncId, Vec<Vec<Scalar>>)>,
    /// Pipeline buffer slots that constitute the (re-generable) input.
    pub input_slots: Vec<usize>,
}

impl Workload {
    /// Create a workload with no training data and no declared inputs.
    pub fn new(name: &str, program: Program, pipeline: Pipeline, metric: Metric) -> Workload {
        Workload {
            name: name.to_string(),
            program,
            pipeline,
            metric,
            memo_training: Vec::new(),
            input_slots: Vec::new(),
        }
    }

    /// Attach training samples for a function (builder style).
    pub fn with_training(mut self, func: FuncId, samples: Vec<Vec<Scalar>>) -> Workload {
        self.memo_training.push((func, samples));
        self
    }

    /// Declare which buffer slots are inputs (builder style).
    pub fn with_input_slots(mut self, slots: Vec<usize>) -> Workload {
        self.input_slots = slots;
        self
    }

    /// Training samples for `func`, if any.
    pub fn training_for(&self, func: FuncId) -> Option<&[Vec<Scalar>]> {
        self.memo_training
            .iter()
            .find(|(f, _)| *f == func)
            .map(|(_, s)| s.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let w = Workload::new(
            "t",
            Program::new(),
            Pipeline::default(),
            Metric::MeanRelative,
        )
        .with_training(FuncId(0), vec![vec![Scalar::F32(1.0)]])
        .with_input_slots(vec![0, 2]);
        assert_eq!(w.input_slots, vec![0, 2]);
        assert!(w.training_for(FuncId(0)).is_some());
        assert!(w.training_for(FuncId(1)).is_none());
    }
}
