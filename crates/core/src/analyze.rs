//! The compile pipeline's analyze stage: lint a workload with the
//! `paraprox-analysis` suite under its real launch shapes.
//!
//! The analyses are launch-sensitive — the bounds lint needs buffer
//! extents, the race detector enumerates the threads of a block — so this
//! module converts each [`LaunchPlan`](paraprox_vgpu::LaunchPlan) of the
//! workload's pipeline into a [`LaunchContext`] (grid/block shape, buffer
//! element counts, scalar argument values) and runs every lint on every
//! kernel under every launch it appears in.

use paraprox_analysis::{analyze_program, check_placements, Diagnostic, LaunchContext};
use paraprox_ir::{KernelId, MemSpace};

use crate::workload::Workload;

/// Build one [`LaunchContext`] per planned launch of the workload.
pub fn launch_contexts(workload: &Workload) -> Vec<(KernelId, LaunchContext)> {
    let pipeline = &workload.pipeline;
    pipeline
        .launches
        .iter()
        .map(|launch| {
            let mut ctx = LaunchContext::with_dims(
                (launch.grid.x as u32, launch.grid.y as u32),
                (launch.block.x as u32, launch.block.y as u32),
            );
            for arg in &launch.args {
                match arg {
                    paraprox_vgpu::PlanArg::Buffer(i) => {
                        let len = pipeline.buffers.get(*i).map(|b| b.init.len());
                        ctx.buffer_len.push(len);
                        ctx.scalar.push(None);
                    }
                    paraprox_vgpu::PlanArg::Scalar(s) => {
                        ctx.buffer_len.push(None);
                        ctx.scalar.push(Some(*s));
                    }
                }
            }
            (launch.kernel, ctx)
        })
        .collect()
}

/// Every `(kernel, parameter index)` pair the workload's pipeline serves
/// from an [`MemSpace::Approx`]-placed buffer. These are *placements*, not
/// declarations: the kernels still declare the parameters global.
pub fn approx_placements(workload: &Workload) -> Vec<(KernelId, usize)> {
    let pipeline = &workload.pipeline;
    let mut placements = Vec::new();
    for launch in &pipeline.launches {
        for (pi, arg) in launch.args.iter().enumerate() {
            if let paraprox_vgpu::PlanArg::Buffer(slot) = arg {
                let placed = pipeline
                    .buffers
                    .get(*slot)
                    .is_some_and(|b| b.space == MemSpace::Approx);
                if placed && !placements.contains(&(launch.kernel, pi)) {
                    placements.push((launch.kernel, pi));
                }
            }
        }
    }
    placements
}

/// Pipeline buffer slots of the workload that are declared global and
/// classified Tolerant in *every* launch they feed — the set the
/// approximate-memory auto-placer may move. A slot passed to several
/// launches (or several parameter positions) must be Tolerant in all of
/// them. `partition` comes from
/// [`paraprox_analysis::partition_program`] on the workload's program.
pub fn tolerant_buffer_slots(
    workload: &Workload,
    partition: &[paraprox_analysis::KernelPartition],
) -> Vec<usize> {
    use paraprox_analysis::Criticality;
    use paraprox_ir::MemRef;
    let pipeline = &workload.pipeline;
    let mut tolerant = vec![true; pipeline.buffers.len()];
    let mut used = vec![false; pipeline.buffers.len()];
    for launch in &pipeline.launches {
        let part = partition.iter().find(|p| p.kernel == launch.kernel);
        for (pi, arg) in launch.args.iter().enumerate() {
            if let paraprox_vgpu::PlanArg::Buffer(slot) = arg {
                used[*slot] = true;
                let ok = pipeline.buffers[*slot].space == MemSpace::Global
                    && part.is_some_and(|p| {
                        p.verdict(MemRef::Param(pi))
                            .is_some_and(|v| v.criticality == Criticality::Tolerant)
                    });
                if !ok {
                    tolerant[*slot] = false;
                }
            }
        }
    }
    (0..pipeline.buffers.len())
        .filter(|&i| used[i] && tolerant[i])
        .collect()
}

/// Run the full lint suite on a workload's exact program, one pass per
/// (kernel, launch) pair. Kernels never launched by the pipeline are
/// analyzed without launch facts. Any pipeline buffer already placed in
/// approximate memory is checked against the criticality partition: a
/// Critical placement is an error-severity `approx-placement` finding,
/// which [`crate::compile`] turns into a refusal.
pub fn analyze_workload(workload: &Workload) -> Vec<Diagnostic> {
    let contexts = launch_contexts(workload);
    let mut out = analyze_program(&workload.program, &contexts);
    check_placements(&workload.program, &approx_placements(workload), &mut out);
    out
}
