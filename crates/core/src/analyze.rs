//! The compile pipeline's analyze stage: lint a workload with the
//! `paraprox-analysis` suite under its real launch shapes.
//!
//! The analyses are launch-sensitive — the bounds lint needs buffer
//! extents, the race detector enumerates the threads of a block — so this
//! module converts each [`LaunchPlan`](paraprox_vgpu::LaunchPlan) of the
//! workload's pipeline into a [`LaunchContext`] (grid/block shape, buffer
//! element counts, scalar argument values) and runs every lint on every
//! kernel under every launch it appears in.

use paraprox_analysis::{analyze_program, Diagnostic, LaunchContext};
use paraprox_ir::KernelId;

use crate::workload::Workload;

/// Build one [`LaunchContext`] per planned launch of the workload.
pub fn launch_contexts(workload: &Workload) -> Vec<(KernelId, LaunchContext)> {
    let pipeline = &workload.pipeline;
    pipeline
        .launches
        .iter()
        .map(|launch| {
            let mut ctx = LaunchContext::with_dims(
                (launch.grid.x as u32, launch.grid.y as u32),
                (launch.block.x as u32, launch.block.y as u32),
            );
            for arg in &launch.args {
                match arg {
                    paraprox_vgpu::PlanArg::Buffer(i) => {
                        let len = pipeline.buffers.get(*i).map(|b| b.init.len());
                        ctx.buffer_len.push(len);
                        ctx.scalar.push(None);
                    }
                    paraprox_vgpu::PlanArg::Scalar(s) => {
                        ctx.buffer_len.push(None);
                        ctx.scalar.push(Some(*s));
                    }
                }
            }
            (launch.kernel, ctx)
        })
        .collect()
}

/// Run the full lint suite on a workload's exact program, one pass per
/// (kernel, launch) pair. Kernels never launched by the pipeline are
/// analyzed without launch facts.
pub fn analyze_workload(workload: &Workload) -> Vec<Diagnostic> {
    let contexts = launch_contexts(workload);
    analyze_program(&workload.program, &contexts)
}
