//! Static per-rung quality bounds: the compile-time half of the TOQ
//! ladder pruning described in DESIGN.md.
//!
//! Each approximation knob is modeled as an error [`Injection`] at its
//! program point — memo-table quantization at the call site, stencil tile
//! replication at the load, reduction skipping at the loop, scan subarray
//! prediction at the scanned input — and propagated through the *exact*
//! program by `paraprox_analysis::errorprop`. The resulting absolute
//! error bound on the pipeline's output buffers is converted into the
//! workload's metric scale, yielding one [`StaticQuality`] per variant:
//!
//! * `error_bound` / `quality_floor` — a *sound* certificate (conditioned
//!   on the modeled input ranges): the measured metric error never
//!   exceeds the bound. `bench_errorprop` asserts this across every app
//!   and rung.
//! * `predicted_quality` — a *heuristic* point estimate used to prune
//!   calibration launches and order the back-off ladder. A misprediction
//!   costs speedup, never quality: pruned rungs are simply not measured,
//!   and only measured rungs enter the ladder.
//! * `refused` — the propagation found approximation error reaching a
//!   Critical sink (address, branch, atomic, loop bound) or a Critical
//!   buffer of the criticality partition; no finite bound is claimed.

use paraprox_analysis::{propagate, ErrMag, Injection, LaunchModel, SlotState, VRange};
use paraprox_ir::{FuncId, MemRef};
use paraprox_patterns::KernelPatterns;
use paraprox_quality::Metric;
use paraprox_runtime::StaticQuality;
use paraprox_vgpu::{BufferInit, PlanArg};

use crate::compile::{innermost_reduction_groups, Knob, Variant};
use crate::workload::Workload;

/// Guard for relative-error conversions, mirroring the metric's own
/// denominator guard.
const EPS: f64 = 1e-9;

/// Initial abstract state per pipeline buffer slot.
///
/// Data inits contribute their concrete min/max, dilated by one range
/// width (at least 1.0): the workload's input generator re-draws inputs
/// per seed, so the baked-in contents are representative, not exhaustive.
fn slot_states(workload: &Workload) -> Vec<SlotState> {
    workload
        .pipeline
        .buffers
        .iter()
        .map(|spec| {
            let (lo, hi) = match &spec.init {
                BufferInit::Zeroed(_) => (0.0, 0.0),
                BufferInit::F32(data) => fold_range(data.iter().map(|&v| f64::from(v))),
                BufferInit::I32(data) => fold_range(data.iter().map(|&v| f64::from(v))),
                BufferInit::U32(data) => fold_range(data.iter().map(|&v| f64::from(v))),
            };
            if !lo.is_finite() || !hi.is_finite() {
                return SlotState::top();
            }
            let margin = (hi - lo).max(lo.abs()).max(hi.abs()).max(1.0);
            SlotState::exact(VRange::new(lo - margin, hi + margin))
        })
        .collect()
}

fn fold_range(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    let mut any = false;
    for v in values {
        if !v.is_finite() {
            return (f64::NEG_INFINITY, f64::INFINITY);
        }
        lo = lo.min(v);
        hi = hi.max(v);
        any = true;
    }
    if any {
        (lo, hi)
    } else {
        (0.0, 0.0)
    }
}

/// One [`LaunchModel`] per pipeline launch of the exact workload.
fn launch_models(workload: &Workload) -> Vec<LaunchModel> {
    let contexts = crate::analyze::launch_contexts(workload);
    workload
        .pipeline
        .launches
        .iter()
        .zip(contexts)
        .map(|(launch, (kernel, ctx))| LaunchModel {
            kernel,
            ctx,
            args: launch
                .args
                .iter()
                .map(|a| match a {
                    PlanArg::Buffer(slot) => Some(*slot),
                    PlanArg::Scalar(_) => None,
                })
                .collect(),
        })
        .collect()
}

/// Model a variant's knob as error injections at its program points.
///
/// The injections attach to the *exact* program (the propagation runs on
/// it), using the pattern report to locate the rewritten sites.
fn variant_injections(
    workload: &Workload,
    patterns: &[KernelPatterns],
    variant: &Variant,
) -> Vec<Injection> {
    let mut out = Vec::new();
    match &variant.knob {
        Knob::Memo { .. } => {
            // The quantization step is the largest adjacent-entry delta of
            // each generated lookup table (baked into the variant's
            // pipeline as a `lut_f<id>` buffer).
            for spec in &variant.pipeline.buffers {
                let Some(id) = spec.name.strip_prefix("lut_f") else {
                    continue;
                };
                let Ok(id) = id.parse::<usize>() else {
                    continue;
                };
                let BufferInit::F32(table) = &spec.init else {
                    continue;
                };
                let abs = table
                    .windows(2)
                    .map(|w| f64::from((w[1] - w[0]).abs()))
                    .fold(0.0f64, f64::max);
                out.push(Injection::Call {
                    func: FuncId(id),
                    abs,
                });
            }
        }
        Knob::Stencil { reach, .. } => {
            // Replicating one tile value within reaching distance `r`
            // replaces up to r/(r+1) of the tile's reads; model each read
            // as perturbed by that fraction of the buffer's value range.
            let frac = f64::from(*reach) / f64::from(reach + 1);
            for kp in patterns {
                for cand in kp.stencils() {
                    out.push(Injection::Load {
                        kernel: kp.kernel,
                        mem: cand.buffer,
                        mag: ErrMag::RangeFrac(frac),
                    });
                }
            }
        }
        Knob::Reduction { skip } => {
            // Executing every skip-th iteration and rescaling leaves a
            // relative error of (skip-1)/skip on each accumulator.
            let rel = f64::from(skip - 1) / f64::from(*skip);
            for kp in patterns {
                let loops: Vec<_> = kp.reductions().cloned().collect();
                for group in innermost_reduction_groups(&loops) {
                    out.push(Injection::LoopScale {
                        kernel: kp.kernel,
                        path: group[0].path.0.clone(),
                        rel,
                    });
                }
            }
        }
        Knob::Scan { skip } => {
            // Predicting `skip` of the subarrays perturbs that fraction of
            // the scanned input's contribution.
            for kp in patterns {
                let Some(m) = kp.scan() else { continue };
                let Some(launch) = workload
                    .pipeline
                    .launches
                    .iter()
                    .find(|l| l.kernel == kp.kernel)
                else {
                    continue;
                };
                let subarrays = launch.grid.count().max(1);
                let frac = (*skip as f64 / subarrays as f64).min(1.0);
                out.push(Injection::Load {
                    kernel: kp.kernel,
                    mem: MemRef::Param(m.input_param),
                    mag: ErrMag::RangeFrac(frac),
                });
            }
        }
    }
    out
}

/// Convert a propagated absolute output error into a [`StaticQuality`]
/// on the workload's metric scale.
fn to_static_quality(
    label: &str,
    metric: Metric,
    out_range: VRange,
    abs_err: f64,
    refusals: Vec<String>,
) -> StaticQuality {
    if !refusals.is_empty() {
        return StaticQuality {
            label: label.to_string(),
            error_bound: f64::INFINITY,
            quality_floor: 0.0,
            predicted_quality: 0.0,
            predictive: false,
            refused: true,
            refusals,
        };
    }
    let error_bound = metric_error_bound(metric, out_range, abs_err);
    StaticQuality {
        label: label.to_string(),
        error_bound,
        quality_floor: quality_of_error(error_bound),
        predicted_quality: predicted_quality(out_range, abs_err),
        // A bound widened to +∞ (fixpoint precision loss, not a refusal)
        // makes no pruning claim: the rung is measured dynamically.
        predictive: abs_err.is_finite(),
        refused: false,
        refusals: Vec::new(),
    }
}

/// A sound bound on the metric error given a per-element absolute error
/// bound `abs_err` and the exact output's value range.
///
/// * `abs_err == 0` — exact: metric error 0.
/// * [`Metric::MeanRelative`] clamps each element's relative error at 1,
///   so 1.0 is its structural ceiling; when the output range stays away
///   from zero, `abs_err / min|e|` refines it.
/// * The norm metrics are unbounded relative ratios: `abs_err / min|e|`
///   when the range excludes zero (`Σ|a−e| ≤ n·abs_err`,
///   `Σ|e| ≥ n·min|e|`; likewise in L2), `+∞` otherwise.
fn metric_error_bound(metric: Metric, out_range: VRange, abs_err: f64) -> f64 {
    if abs_err == 0.0 {
        return 0.0;
    }
    let min_abs = out_range.min_abs();
    let ratio = if min_abs > EPS {
        abs_err / min_abs
    } else {
        f64::INFINITY
    };
    match metric {
        Metric::MeanRelative => ratio.min(1.0),
        Metric::L1Norm | Metric::L2Norm => ratio,
    }
}

/// Quality (paper percentage scale) of a metric-error bound.
fn quality_of_error(error: f64) -> f64 {
    if error.is_finite() {
        (100.0 * (1.0 - error)).clamp(0.0, 100.0)
    } else {
        0.0
    }
}

/// Damping for the predicted-quality squash: the propagated bound is a
/// worst-case accumulation (every error at full magnitude, every sign
/// aligned), while delivered error benefits from cancellation and
/// averaging — empirically 1–2 orders of magnitude smaller. Rungs whose
/// worst-case bound is within `DAMPING`× the output scale predict near
/// the measured quality; only bounds far beyond it predict a TOQ miss.
const DAMPING: f64 = 50.0;

/// Heuristic point estimate of delivered quality: the worst-case absolute
/// error against the output's magnitude scale, squashed onto the
/// percentage scale with [`DAMPING`]. Monotone in `abs_err`, so it ranks
/// rungs of one app even when every sound bound collapses to the metric
/// ceiling, while only the catastrophic rungs (bound ≫ output scale)
/// fall below a 90% TOQ and get pruned.
fn predicted_quality(out_range: VRange, abs_err: f64) -> f64 {
    if abs_err == 0.0 {
        return 100.0;
    }
    if !abs_err.is_finite() {
        return 0.0;
    }
    let scale = if out_range.is_finite() {
        out_range.max_abs().max(EPS)
    } else {
        abs_err
    };
    let ratio = abs_err / scale;
    let rel = (ratio / (ratio + DAMPING)).min(1.0);
    (100.0 * (1.0 - rel)).clamp(0.0, 100.0)
}

/// Static quality of one variant: inject its knob's error model into the
/// exact program, propagate, and read the bound off the output buffers.
fn variant_static_quality(
    workload: &Workload,
    patterns: &[KernelPatterns],
    launches: &[LaunchModel],
    variant: &Variant,
) -> StaticQuality {
    let injections = variant_injections(workload, patterns, variant);
    let mut slots = slot_states(workload);
    let diags = propagate(&workload.program, launches, &mut slots, &injections);
    let refusals: Vec<String> = diags
        .iter()
        .filter(|d| d.severity == paraprox_analysis::Severity::Error && d.code == "errorprop")
        .map(|d| d.to_string())
        .collect();
    let mut out_range = VRange::exact(0.0);
    let mut abs_err = 0.0f64;
    let mut any = false;
    for &slot in &workload.pipeline.outputs {
        if let Some(s) = slots.get(slot) {
            out_range = if any {
                out_range.join(s.range)
            } else {
                s.range
            };
            abs_err = abs_err.max(s.err);
            any = true;
        }
    }
    if !any {
        // No declared outputs: nothing to bound, nothing to certify.
        abs_err = f64::INFINITY;
    }
    if std::env::var_os("PARAPROX_ERRORPROP_DEBUG").is_some() {
        eprintln!(
            "errorprop: {} / {}: abs_err={abs_err:e} out=[{:e},{:e}]",
            workload.name, variant.label, out_range.lo, out_range.hi
        );
    }
    to_static_quality(
        &variant.label,
        workload.metric,
        out_range,
        abs_err,
        refusals,
    )
}

/// Static quality table for a compiled workload's rewrite variants, in
/// variant order (the same order [`crate::DeviceApp`] numbers its rungs).
pub fn static_quality(
    workload: &Workload,
    patterns: &[KernelPatterns],
    variants: &[Variant],
) -> Vec<StaticQuality> {
    let launches = launch_models(workload);
    variants
        .iter()
        .map(|v| variant_static_quality(workload, patterns, &launches, v))
        .collect()
}

/// Static quality of one approximate-memory rung (exact program, Tolerant
/// buffers served from [`paraprox_ir::MemSpace::Approx`] at `rate`).
///
/// Bit flips are not magnitude-bounded — a sign- or exponent-bit flip can
/// move a value anywhere — so any nonzero rate gets the metric ceiling as
/// its sound bound. The prediction scales the rate by the expected loads
/// per output; at the paper's DRAM-refresh rates (1e-9..1e-5) the
/// flip probability per output stays far below the TOQ margin.
pub fn approx_mem_static_quality(label: &str, metric: Metric, rate: f64) -> StaticQuality {
    if rate <= 0.0 {
        return StaticQuality {
            label: label.to_string(),
            error_bound: 0.0,
            quality_floor: 100.0,
            predicted_quality: 100.0,
            predictive: true,
            refused: false,
            refusals: Vec::new(),
        };
    }
    let ceiling = match metric {
        Metric::MeanRelative => 1.0,
        Metric::L1Norm | Metric::L2Norm => f64::INFINITY,
    };
    // ~1e4 tolerant loads per output element is the workloads' order of
    // magnitude; a flipped load is modeled as a full-scale output error.
    let predicted_error = (rate * 1e4).min(1.0);
    StaticQuality {
        label: label.to_string(),
        error_bound: ceiling,
        quality_floor: quality_of_error(ceiling),
        predicted_quality: (100.0 * (1.0 - predicted_error)).clamp(0.0, 100.0),
        // The rate model is an explicit claim even though the sound bound
        // is the metric ceiling.
        predictive: true,
        refused: false,
        refusals: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_bounds_respect_ceilings() {
        let r = VRange::new(-2.0, 2.0); // straddles zero: min_abs = 0
        assert_eq!(metric_error_bound(Metric::MeanRelative, r, 0.5), 1.0);
        assert_eq!(metric_error_bound(Metric::L1Norm, r, 0.5), f64::INFINITY);
        assert_eq!(metric_error_bound(Metric::L2Norm, r, 0.0), 0.0);
        let away = VRange::new(10.0, 20.0);
        assert!((metric_error_bound(Metric::MeanRelative, away, 1.0) - 0.1).abs() < 1e-12);
        assert!((metric_error_bound(Metric::L1Norm, away, 1.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn predicted_quality_is_monotone_in_error() {
        let r = VRange::new(0.0, 100.0);
        let q1 = predicted_quality(r, 1.0);
        let q2 = predicted_quality(r, 10.0);
        let q3 = predicted_quality(r, f64::INFINITY);
        assert!(q1 > q2 && q2 > q3);
        assert_eq!(predicted_quality(r, 0.0), 100.0);
        assert_eq!(q3, 0.0);
    }

    #[test]
    fn approx_mem_rungs_scale_with_rate() {
        let zero = approx_mem_static_quality("approx-mem@0e0", Metric::MeanRelative, 0.0);
        assert_eq!(zero.error_bound, 0.0);
        assert_eq!(zero.quality_floor, 100.0);
        let low = approx_mem_static_quality("approx-mem@1e-9", Metric::MeanRelative, 1e-9);
        let high = approx_mem_static_quality("approx-mem@1e-2", Metric::MeanRelative, 1e-2);
        assert!(low.predicted_quality > 99.0);
        assert_eq!(high.predicted_quality, 0.0);
        assert_eq!(low.error_bound, 1.0); // metric ceiling, still sound
        assert!(!low.refused && !high.refused);
    }
}
