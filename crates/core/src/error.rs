//! Compile-time errors.

use std::error::Error;
use std::fmt;

use paraprox_analysis::Diagnostic;
use paraprox_approx::ApproxError;
use paraprox_ir::IrError;

/// Errors raised while compiling a workload into approximate variants.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// An approximation rewriter failed.
    Approx(ApproxError),
    /// The workload's IR was malformed.
    Ir(IrError),
    /// Structural problem in the workload (message explains).
    Workload(String),
    /// The static analyzer proved the exact program unsafe (a shared-memory
    /// race or out-of-bounds access with a concrete witness). Only
    /// [`paraprox_analysis::Severity::Error`] findings stop compilation;
    /// warnings ride along in [`crate::Compiled::diagnostics`].
    Analysis(Vec<Diagnostic>),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Approx(e) => write!(f, "approximation failed: {e}"),
            CompileError::Ir(e) => write!(f, "invalid IR: {e}"),
            CompileError::Workload(msg) => write!(f, "invalid workload: {msg}"),
            CompileError::Analysis(diags) => {
                write!(f, "static analysis found {} error(s)", diags.len())?;
                if let Some(d) = diags.first() {
                    write!(f, "; first: {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Approx(e) => Some(e),
            CompileError::Ir(e) => Some(e),
            CompileError::Workload(_) | CompileError::Analysis(_) => None,
        }
    }
}

impl From<ApproxError> for CompileError {
    fn from(e: ApproxError) -> Self {
        CompileError::Approx(e)
    }
}

impl From<IrError> for CompileError {
    fn from(e: IrError) -> Self {
        CompileError::Ir(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = CompileError::from(ApproxError::NoTrainingData);
        assert!(!e.to_string().is_empty());
        assert!(Error::source(&e).is_some());
        let w = CompileError::Workload("bad".into());
        assert!(Error::source(&w).is_none());
        assert!(!w.to_string().is_empty());
    }
}
