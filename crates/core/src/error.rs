//! Compile-time errors.

use std::error::Error;
use std::fmt;

use paraprox_approx::ApproxError;
use paraprox_ir::IrError;

/// Errors raised while compiling a workload into approximate variants.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// An approximation rewriter failed.
    Approx(ApproxError),
    /// The workload's IR was malformed.
    Ir(IrError),
    /// Structural problem in the workload (message explains).
    Workload(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Approx(e) => write!(f, "approximation failed: {e}"),
            CompileError::Ir(e) => write!(f, "invalid IR: {e}"),
            CompileError::Workload(msg) => write!(f, "invalid workload: {msg}"),
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Approx(e) => Some(e),
            CompileError::Ir(e) => Some(e),
            CompileError::Workload(_) => None,
        }
    }
}

impl From<ApproxError> for CompileError {
    fn from(e: ApproxError) -> Self {
        CompileError::Approx(e)
    }
}

impl From<IrError> for CompileError {
    fn from(e: IrError) -> Self {
        CompileError::Ir(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = CompileError::from(ApproxError::NoTrainingData);
        assert!(!e.to_string().is_empty());
        assert!(Error::source(&e).is_some());
        let w = CompileError::Workload("bad".into());
        assert!(Error::source(&w).is_none());
        assert!(!w.to_string().is_empty());
    }
}
