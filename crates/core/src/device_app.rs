//! Adapter: compiled workloads as tunable applications on a device.

use std::sync::Arc;

use paraprox_quality::Metric;
use paraprox_runtime::{Approximable, RunOutcome, RuntimeError};
use paraprox_vgpu::{BufferInit, Device, Pipeline};

use crate::compile::Compiled;

/// An input generator: given a seed, produce fresh contents for each of the
/// workload's declared input slots, in `input_slots` order. `Send` so a
/// bound [`DeviceApp`] can be owned by a serving-engine worker thread.
pub type InputGen = Box<dyn FnMut(u64) -> Vec<BufferInit> + Send>;

/// A compiled workload bound to a device, exposing the
/// [`Approximable`] interface for the runtime tuner and deployment.
pub struct DeviceApp {
    device: Device,
    metric: Metric,
    input_slots: Vec<usize>,
    exact: (Arc<paraprox_ir::Program>, Pipeline),
    variants: Vec<(String, Arc<paraprox_ir::Program>, Pipeline)>,
    input_gen: InputGen,
}

impl std::fmt::Debug for DeviceApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceApp")
            .field("metric", &self.metric)
            .field("variants", &self.variants.len())
            .finish_non_exhaustive()
    }
}

impl DeviceApp {
    /// Bind a compiled workload to a device.
    ///
    /// `input_gen` produces buffer contents for the workload's input slots
    /// from a seed; pass a generator returning an empty vector to always
    /// run on the workload's baked-in inputs.
    pub fn new(device: Device, compiled: &Compiled, input_gen: InputGen) -> DeviceApp {
        DeviceApp {
            device,
            metric: compiled.workload.metric,
            input_slots: compiled.workload.input_slots.clone(),
            exact: (
                Arc::new(compiled.workload.program.clone()),
                compiled.workload.pipeline.clone(),
            ),
            variants: compiled
                .variants
                .iter()
                .map(|v| {
                    (
                        v.label.clone(),
                        Arc::new(v.program.clone()),
                        v.pipeline.clone(),
                    )
                })
                .collect(),
            input_gen,
        }
    }

    /// Access the underlying device (e.g. to flush caches between
    /// experiments).
    pub fn device_mut(&mut self) -> &mut Device {
        &mut self.device
    }

    fn run(
        &mut self,
        program_pipeline: (Arc<paraprox_ir::Program>, Pipeline),
        seed: u64,
    ) -> Result<RunOutcome, RuntimeError> {
        let (program, mut pipeline) = program_pipeline;
        let inputs = (self.input_gen)(seed);
        if !inputs.is_empty() {
            if inputs.len() != self.input_slots.len() {
                return Err(RuntimeError(format!(
                    "input generator produced {} buffers for {} slots",
                    inputs.len(),
                    self.input_slots.len()
                )));
            }
            for (&slot, init) in self.input_slots.iter().zip(inputs) {
                pipeline.set_input(slot, init);
            }
        }
        // Each invocation gets a fresh buffer arena (and cold caches, as a
        // new launch context would): reclaim afterwards so long tuning and
        // deployment loops do not grow device memory without bound.
        let mark = self.device.buffer_mark();
        let result = pipeline
            .execute(&mut self.device, &program)
            .map_err(|e| RuntimeError(e.to_string()));
        self.device.reclaim_buffers(mark);
        let run = result?;
        Ok(RunOutcome {
            output: run.flat_output(),
            cycles: run.stats.total_cycles(),
        })
    }
}

impl Approximable for DeviceApp {
    fn variant_count(&self) -> usize {
        self.variants.len()
    }

    fn variant_label(&self, index: usize) -> String {
        self.variants[index].0.clone()
    }

    fn run_exact(&mut self, seed: u64) -> Result<RunOutcome, RuntimeError> {
        // Arc clone: the program itself is shared, not copied.
        let pair = (Arc::clone(&self.exact.0), self.exact.1.clone());
        self.run(pair, seed)
    }

    fn run_variant(&mut self, index: usize, seed: u64) -> Result<RunOutcome, RuntimeError> {
        let (_, program, pipeline) = &self.variants[index];
        let pair = (Arc::clone(program), pipeline.clone());
        self.run(pair, seed)
    }

    fn quality(&self, exact: &[f64], approx: &[f64]) -> f64 {
        self.metric.quality(exact, approx)
    }
}
