//! Adapter: compiled workloads as tunable applications on a device.

use std::sync::Arc;

use paraprox_quality::Metric;
use paraprox_runtime::{Approximable, BatchRun, EngineDiagnostics, RunOutcome, RuntimeError};
use paraprox_vgpu::{execute_fused, BufferInit, Device, FusedJob, Pipeline};

use crate::compile::Compiled;

/// An input generator: given a seed, produce fresh contents for each of the
/// workload's declared input slots, in `input_slots` order. `Send` so a
/// bound [`DeviceApp`] can be owned by a serving-engine worker thread.
pub type InputGen = Box<dyn FnMut(u64) -> Vec<BufferInit> + Send>;

/// A compiled workload bound to a device, exposing the
/// [`Approximable`] interface for the runtime tuner and deployment.
pub struct DeviceApp {
    device: Device,
    metric: Metric,
    input_slots: Vec<usize>,
    exact: (Arc<paraprox_ir::Program>, Pipeline),
    variants: Vec<(String, Arc<paraprox_ir::Program>, Pipeline)>,
    /// Approximate-memory rungs: label, bit-error rate, and the *exact*
    /// pipeline with every Tolerant global buffer re-placed in
    /// [`paraprox_ir::MemSpace::Approx`]. Exposed after the rewrite
    /// variants in the rung numbering, so the TOQ back-off ladder treats
    /// the error rate as one more knob dimension.
    approx: Vec<(String, f64, Pipeline)>,
    /// Static per-rung quality table, aligned with the rung numbering
    /// ([`DeviceApp::variants`] then [`DeviceApp::approx`]); see
    /// [`crate::errorbounds`].
    statics: Vec<paraprox_runtime::StaticQuality>,
    input_gen: InputGen,
    /// Every launch's counters, summed with [`LaunchStats::accumulate`];
    /// [`Approximable::engine_diagnostics`] projects the diagnostic fields
    /// out of this total.
    ///
    /// [`LaunchStats::accumulate`]: paraprox_vgpu::LaunchStats::accumulate
    total_stats: paraprox_vgpu::LaunchStats,
}

impl std::fmt::Debug for DeviceApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceApp")
            .field("metric", &self.metric)
            .field("variants", &self.variants.len())
            .finish_non_exhaustive()
    }
}

impl DeviceApp {
    /// Bind a compiled workload to a device.
    ///
    /// `input_gen` produces buffer contents for the workload's input slots
    /// from a seed; pass a generator returning an empty vector to always
    /// run on the workload's baked-in inputs.
    pub fn new(device: Device, compiled: &Compiled, input_gen: InputGen) -> DeviceApp {
        DeviceApp {
            device,
            metric: compiled.workload.metric,
            input_slots: compiled.workload.input_slots.clone(),
            exact: (
                Arc::new(compiled.workload.program.clone()),
                compiled.workload.pipeline.clone(),
            ),
            variants: compiled
                .variants
                .iter()
                .map(|v| {
                    (
                        v.label.clone(),
                        Arc::new(v.program.clone()),
                        v.pipeline.clone(),
                    )
                })
                .collect(),
            approx: Vec::new(),
            statics: compiled.static_quality.clone(),
            input_gen,
            total_stats: paraprox_vgpu::LaunchStats::default(),
        }
    }

    /// The static per-rung quality table, in rung order (rewrite variants
    /// first, then approximate-memory rungs). Pass to
    /// [`paraprox_runtime::Tuner::tune_with_static`] to prune calibration
    /// launches, and let [`paraprox_runtime::Deployment`] seed its
    /// starting rung from it.
    pub fn static_quality(&self) -> &[paraprox_runtime::StaticQuality] {
        &self.statics
    }

    /// Add approximate-memory rungs: one per error rate, each running the
    /// *exact* program with every pipeline buffer from
    /// [`Compiled::tolerant_buffer_slots`] re-placed in approximate
    /// memory. Critical buffers never move — the placement set comes from
    /// the compile-time criticality partition, so this cannot introduce
    /// address, control-flow, or synchronization corruption. Rates are
    /// clamped to `[0, 1]`; with no tolerant buffer, no rung is added.
    pub fn with_approx_memory(mut self, compiled: &Compiled, rates: &[f64]) -> DeviceApp {
        let slots = compiled.tolerant_buffer_slots();
        if slots.is_empty() {
            return self;
        }
        let mut pipeline = self.exact.1.clone();
        for &slot in &slots {
            pipeline.buffers[slot] = pipeline.buffers[slot]
                .clone()
                .with_space(paraprox_ir::MemSpace::Approx);
        }
        for &rate in rates {
            let rate = if rate.is_finite() {
                rate.clamp(0.0, 1.0)
            } else {
                0.0
            };
            let label = format!("approx-mem@{rate:e}");
            self.statics
                .push(crate::errorbounds::approx_mem_static_quality(
                    &label,
                    self.metric,
                    rate,
                ));
            self.approx.push((label, rate, pipeline.clone()));
        }
        self
    }

    /// Access the underlying device (e.g. to flush caches between
    /// experiments).
    pub fn device_mut(&mut self) -> &mut Device {
        &mut self.device
    }

    /// The (program, pipeline, error-rate) triple for a rung, with this
    /// seed's inputs baked into a cloned pipeline. The rate is nonzero
    /// only for approximate-memory rungs (rewrite variants and the exact
    /// rung always run with injection off).
    fn prepare(
        &mut self,
        variant: Option<usize>,
        seed: u64,
    ) -> Result<(Arc<paraprox_ir::Program>, Pipeline, f64), RuntimeError> {
        let (program, mut pipeline, rate) = match variant {
            Some(v) if v >= self.variants.len() => {
                let (_, rate, pipeline) = &self.approx[v - self.variants.len()];
                (Arc::clone(&self.exact.0), pipeline.clone(), *rate)
            }
            Some(v) => {
                let (_, program, pipeline) = &self.variants[v];
                (Arc::clone(program), pipeline.clone(), 0.0)
            }
            None => (Arc::clone(&self.exact.0), self.exact.1.clone(), 0.0),
        };
        let inputs = (self.input_gen)(seed);
        if !inputs.is_empty() {
            if inputs.len() != self.input_slots.len() {
                return Err(RuntimeError(format!(
                    "input generator produced {} buffers for {} slots",
                    inputs.len(),
                    self.input_slots.len()
                )));
            }
            for (&slot, init) in self.input_slots.iter().zip(inputs) {
                pipeline.set_input(slot, init);
            }
        }
        Ok((program, pipeline, rate))
    }

    fn run(&mut self, variant: Option<usize>, seed: u64) -> Result<RunOutcome, RuntimeError> {
        let (program, pipeline, rate) = self.prepare(variant, seed)?;
        // Each invocation gets a fresh buffer arena (and cold caches, as a
        // new launch context would): reclaim afterwards so long tuning and
        // deployment loops do not grow device memory without bound.
        let mark = self.device.buffer_mark();
        self.device.set_approx_rate(rate);
        let result = pipeline
            .execute(&mut self.device, &program)
            .map_err(|e| RuntimeError(e.to_string()));
        self.device.set_approx_rate(0.0);
        self.device.reclaim_buffers(mark);
        let run = result?;
        self.absorb_stats(&run.stats);
        Ok(RunOutcome {
            output: run.flat_output(),
            cycles: run.stats.total_cycles(),
        })
    }

    fn absorb_stats(&mut self, stats: &paraprox_vgpu::LaunchStats) {
        self.total_stats.accumulate(stats);
    }
}

impl Approximable for DeviceApp {
    fn variant_count(&self) -> usize {
        self.variants.len() + self.approx.len()
    }

    fn variant_label(&self, index: usize) -> String {
        if index >= self.variants.len() {
            self.approx[index - self.variants.len()].0.clone()
        } else {
            self.variants[index].0.clone()
        }
    }

    fn run_exact(&mut self, seed: u64) -> Result<RunOutcome, RuntimeError> {
        self.run(None, seed)
    }

    fn run_variant(&mut self, index: usize, seed: u64) -> Result<RunOutcome, RuntimeError> {
        self.run(Some(index), seed)
    }

    fn quality(&self, exact: &[f64], approx: &[f64]) -> f64 {
        self.metric.quality(exact, approx)
    }

    /// Fused batch execution: every run of the batch becomes one job of a
    /// single fused device dispatch ([`paraprox_vgpu::execute_fused`]),
    /// so the per-request launch overhead — validation, program-cache
    /// lookups, worker-scope setup, per-worker arena clones — is paid
    /// once per batch. Each invocation of [`DeviceApp`] starts from a
    /// cold launch context (see [`DeviceApp::run`]'s reclaim), making
    /// runs history-independent; the fused path preserves each job's
    /// addresses and cache chain exactly, so outcomes are bit-identical
    /// to the sequential path (asserted by the `batch_differential`
    /// suite in `crates/apps`).
    fn run_batch(&mut self, runs: &[BatchRun]) -> Result<Vec<RunOutcome>, RuntimeError> {
        if runs.len() <= 1 {
            // Degenerate batch: the per-request path is cheaper.
            return runs.iter().map(|r| self.run(r.variant, r.seed)).collect();
        }
        // The fault injector's rate is device-global, so a fused dispatch
        // can carry at most one *distinct* nonzero error rate (jobs whose
        // pipelines place nothing in approximate memory are unaffected by
        // the rate). Mixed-rate batches fall back to the sequential path,
        // which is bit-identical by the fused-path contract.
        let rates: Vec<f64> = runs
            .iter()
            .filter_map(|r| match r.variant {
                Some(v) if v >= self.variants.len() => Some(self.approx[v - self.variants.len()].1),
                _ => None,
            })
            .collect();
        let mixed = rates.windows(2).any(|w| w[0].to_bits() != w[1].to_bits());
        if mixed {
            return runs.iter().map(|r| self.run(r.variant, r.seed)).collect();
        }
        let batch_rate = rates.first().copied().unwrap_or(0.0);
        // Bake inputs in batch order (the same input-generator call order
        // the sequential path produces).
        let mut prepared = Vec::with_capacity(runs.len());
        for r in runs {
            let (program, pipeline, _) = self.prepare(r.variant, r.seed)?;
            prepared.push((program, pipeline));
        }
        let jobs: Vec<FusedJob<'_>> = prepared
            .iter()
            .map(|(program, pipeline)| FusedJob { program, pipeline })
            .collect();
        self.device.set_approx_rate(batch_rate);
        let batch = execute_fused(&mut self.device, &jobs).map_err(|e| RuntimeError(e.to_string()));
        self.device.set_approx_rate(0.0);
        // Keep the steady-state invariant of the sequential path: the
        // device's caches are cold after every invocation.
        self.device.flush_caches();
        let mut outcomes = Vec::with_capacity(runs.len());
        for run in batch? {
            self.absorb_stats(&run.stats);
            outcomes.push(RunOutcome {
                output: run.flat_output(),
                cycles: run.stats.total_cycles(),
            });
        }
        Ok(outcomes)
    }

    fn engine_diagnostics(&self) -> EngineDiagnostics {
        EngineDiagnostics {
            ops_dispatched: self.total_stats.ops_dispatched,
            fusions_hit: self.total_stats.fusions_hit,
            approx_loads: self.total_stats.approx_loads,
            bit_flips: self.total_stats.bit_flips,
        }
    }
}
