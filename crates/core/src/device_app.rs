//! Adapter: compiled workloads as tunable applications on a device.

use std::sync::Arc;

use paraprox_quality::Metric;
use paraprox_runtime::{Approximable, BatchRun, EngineDiagnostics, RunOutcome, RuntimeError};
use paraprox_vgpu::{execute_fused, BufferInit, Device, FusedJob, Pipeline};

use crate::compile::Compiled;

/// An input generator: given a seed, produce fresh contents for each of the
/// workload's declared input slots, in `input_slots` order. `Send` so a
/// bound [`DeviceApp`] can be owned by a serving-engine worker thread.
pub type InputGen = Box<dyn FnMut(u64) -> Vec<BufferInit> + Send>;

/// A compiled workload bound to a device, exposing the
/// [`Approximable`] interface for the runtime tuner and deployment.
pub struct DeviceApp {
    device: Device,
    metric: Metric,
    input_slots: Vec<usize>,
    exact: (Arc<paraprox_ir::Program>, Pipeline),
    variants: Vec<(String, Arc<paraprox_ir::Program>, Pipeline)>,
    input_gen: InputGen,
    diagnostics: EngineDiagnostics,
}

impl std::fmt::Debug for DeviceApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceApp")
            .field("metric", &self.metric)
            .field("variants", &self.variants.len())
            .finish_non_exhaustive()
    }
}

impl DeviceApp {
    /// Bind a compiled workload to a device.
    ///
    /// `input_gen` produces buffer contents for the workload's input slots
    /// from a seed; pass a generator returning an empty vector to always
    /// run on the workload's baked-in inputs.
    pub fn new(device: Device, compiled: &Compiled, input_gen: InputGen) -> DeviceApp {
        DeviceApp {
            device,
            metric: compiled.workload.metric,
            input_slots: compiled.workload.input_slots.clone(),
            exact: (
                Arc::new(compiled.workload.program.clone()),
                compiled.workload.pipeline.clone(),
            ),
            variants: compiled
                .variants
                .iter()
                .map(|v| {
                    (
                        v.label.clone(),
                        Arc::new(v.program.clone()),
                        v.pipeline.clone(),
                    )
                })
                .collect(),
            input_gen,
            diagnostics: EngineDiagnostics::default(),
        }
    }

    /// Access the underlying device (e.g. to flush caches between
    /// experiments).
    pub fn device_mut(&mut self) -> &mut Device {
        &mut self.device
    }

    /// The (program, pipeline) pair for a rung, with this seed's inputs
    /// baked into a cloned pipeline.
    fn prepare(
        &mut self,
        variant: Option<usize>,
        seed: u64,
    ) -> Result<(Arc<paraprox_ir::Program>, Pipeline), RuntimeError> {
        let (program, mut pipeline) = match variant {
            Some(v) => {
                let (_, program, pipeline) = &self.variants[v];
                (Arc::clone(program), pipeline.clone())
            }
            None => (Arc::clone(&self.exact.0), self.exact.1.clone()),
        };
        let inputs = (self.input_gen)(seed);
        if !inputs.is_empty() {
            if inputs.len() != self.input_slots.len() {
                return Err(RuntimeError(format!(
                    "input generator produced {} buffers for {} slots",
                    inputs.len(),
                    self.input_slots.len()
                )));
            }
            for (&slot, init) in self.input_slots.iter().zip(inputs) {
                pipeline.set_input(slot, init);
            }
        }
        Ok((program, pipeline))
    }

    fn run(&mut self, variant: Option<usize>, seed: u64) -> Result<RunOutcome, RuntimeError> {
        let (program, pipeline) = self.prepare(variant, seed)?;
        // Each invocation gets a fresh buffer arena (and cold caches, as a
        // new launch context would): reclaim afterwards so long tuning and
        // deployment loops do not grow device memory without bound.
        let mark = self.device.buffer_mark();
        let result = pipeline
            .execute(&mut self.device, &program)
            .map_err(|e| RuntimeError(e.to_string()));
        self.device.reclaim_buffers(mark);
        let run = result?;
        self.diagnostics.ops_dispatched += run.stats.ops_dispatched;
        self.diagnostics.fusions_hit += run.stats.fusions_hit;
        Ok(RunOutcome {
            output: run.flat_output(),
            cycles: run.stats.total_cycles(),
        })
    }
}

impl Approximable for DeviceApp {
    fn variant_count(&self) -> usize {
        self.variants.len()
    }

    fn variant_label(&self, index: usize) -> String {
        self.variants[index].0.clone()
    }

    fn run_exact(&mut self, seed: u64) -> Result<RunOutcome, RuntimeError> {
        self.run(None, seed)
    }

    fn run_variant(&mut self, index: usize, seed: u64) -> Result<RunOutcome, RuntimeError> {
        self.run(Some(index), seed)
    }

    fn quality(&self, exact: &[f64], approx: &[f64]) -> f64 {
        self.metric.quality(exact, approx)
    }

    /// Fused batch execution: every run of the batch becomes one job of a
    /// single fused device dispatch ([`paraprox_vgpu::execute_fused`]),
    /// so the per-request launch overhead — validation, program-cache
    /// lookups, worker-scope setup, per-worker arena clones — is paid
    /// once per batch. Each invocation of [`DeviceApp`] starts from a
    /// cold launch context (see [`DeviceApp::run`]'s reclaim), making
    /// runs history-independent; the fused path preserves each job's
    /// addresses and cache chain exactly, so outcomes are bit-identical
    /// to the sequential path (asserted by the `batch_differential`
    /// suite in `crates/apps`).
    fn run_batch(&mut self, runs: &[BatchRun]) -> Result<Vec<RunOutcome>, RuntimeError> {
        if runs.len() <= 1 {
            // Degenerate batch: the per-request path is cheaper.
            return runs.iter().map(|r| self.run(r.variant, r.seed)).collect();
        }
        // Bake inputs in batch order (the same input-generator call order
        // the sequential path produces).
        let mut prepared = Vec::with_capacity(runs.len());
        for r in runs {
            prepared.push(self.prepare(r.variant, r.seed)?);
        }
        let jobs: Vec<FusedJob<'_>> = prepared
            .iter()
            .map(|(program, pipeline)| FusedJob { program, pipeline })
            .collect();
        let batch = execute_fused(&mut self.device, &jobs).map_err(|e| RuntimeError(e.to_string()));
        // Keep the steady-state invariant of the sequential path: the
        // device's caches are cold after every invocation.
        self.device.flush_caches();
        Ok(batch?
            .into_iter()
            .map(|run| {
                self.diagnostics.ops_dispatched += run.stats.ops_dispatched;
                self.diagnostics.fusions_hit += run.stats.fusions_hit;
                RunOutcome {
                    output: run.flat_output(),
                    cycles: run.stats.total_cycles(),
                }
            })
            .collect())
    }

    fn engine_diagnostics(&self) -> EngineDiagnostics {
        self.diagnostics
    }
}
