//! Bridging device profiles to the pattern detector's latency tables.

use paraprox_patterns::LatencyTable;
use paraprox_vgpu::DeviceProfile;

/// Build the Eq. (1) latency table for a device profile.
///
/// The paper passes per-architecture instruction latencies (measured with
/// the microbenchmarks of Wong et al.) into Paraprox; here they come
/// straight from the simulated device's own cost model, so the candidacy
/// heuristic and the simulator can never disagree.
pub fn latency_table_for(profile: &DeviceProfile) -> LatencyTable {
    LatencyTable {
        alu: profile.alu_lat,
        transcendental: profile.transcendental_lat,
        div: profile.div_lat,
        sqrt: profile.sqrt_lat,
        int_div: profile.int_div_lat,
        l1_read: profile.l1_hit_lat,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_track_profiles() {
        let gpu = latency_table_for(&DeviceProfile::gtx560());
        let cpu = latency_table_for(&DeviceProfile::core_i7_965());
        assert_eq!(gpu.div, DeviceProfile::gtx560().div_lat);
        assert!(gpu.transcendental < cpu.transcendental);
        assert!(gpu.l1_read > cpu.l1_read);
    }
}
