//! Output-quality metrics for approximate computing experiments.
//!
//! Paraprox evaluates every application with an application-specific error
//! metric (its Table 1): the relative L1 norm, the relative L2 norm, or the
//! mean relative error. This crate implements those metrics, converts them
//! to the paper's "output quality %" scale (`100 × (1 − error)`), computes
//! per-element error distributions (the CDF of its Figure 13), defines
//! the [`Toq`] (target output quality) type that drives the runtime tuner,
//! and provides [`QualityStream`] — a constant-space online estimator
//! (running mean/variance, minimum, EWMA, violation bookkeeping) for
//! serving engines that watch calibration checks indefinitely.
//!
//! # Example
//!
//! ```
//! use paraprox_quality::{Metric, Toq};
//!
//! let exact = [1.0, 2.0, 4.0];
//! let approx = [1.0, 2.2, 3.6];
//! let q = Metric::MeanRelative.quality(&exact, &approx);
//! assert!(q > 90.0 && q < 100.0);
//! assert!(Toq::new(90.0).unwrap().is_met(q));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cdf;
mod metric;
mod stream;
mod toq;

pub use cdf::{per_element_errors, ErrorCdf};
pub use metric::Metric;
pub use stream::QualityStream;
pub use toq::{Toq, ToqError};
