//! Streaming (online) quality estimation for long-running deployments.
//!
//! The offline tuner sees a fixed batch of training qualities; a serving
//! engine instead observes calibration-check qualities one at a time,
//! indefinitely. [`QualityStream`] folds that stream into constant-space
//! estimates: running mean and variance (Welford's algorithm, numerically
//! stable over millions of samples), the minimum, an exponentially
//! weighted moving average that tracks drift faster than the global mean,
//! and TOQ bookkeeping (violation count, current clean streak) that the
//! recalibration policy keys off.

use crate::toq::Toq;

/// Constant-space estimator over a stream of measured output qualities.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityStream {
    toq: Toq,
    alpha: f64,
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    last: Option<f64>,
    ewma: Option<f64>,
    violations: u64,
    clean_streak: u64,
}

impl QualityStream {
    /// Create an estimator judging samples against `toq`, with EWMA
    /// smoothing factor `alpha` in `(0, 1]` (the weight of the newest
    /// sample; clamped into range).
    pub fn new(toq: Toq, alpha: f64) -> QualityStream {
        QualityStream {
            toq,
            alpha: if alpha.is_finite() {
                alpha.clamp(f64::EPSILON, 1.0)
            } else {
                1.0
            },
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            last: None,
            ewma: None,
            violations: 0,
            clean_streak: 0,
        }
    }

    /// An estimator with the paper's default TOQ and a smoothing factor of
    /// 0.25 (a new sample moves the EWMA a quarter of the way).
    pub fn paper_default() -> QualityStream {
        QualityStream::new(Toq::paper_default(), 0.25)
    }

    /// Fold one measured quality (percent) into the stream.
    pub fn observe(&mut self, quality: f64) {
        self.count += 1;
        let delta = quality - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (quality - self.mean);
        self.min = self.min.min(quality);
        self.ewma = Some(match self.ewma {
            Some(prev) => self.alpha * quality + (1.0 - self.alpha) * prev,
            None => quality,
        });
        self.last = Some(quality);
        if self.toq.is_met(quality) {
            self.clean_streak += 1;
        } else {
            self.violations += 1;
            self.clean_streak = 0;
        }
    }

    /// Number of samples observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean quality, or `None` before the first sample.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Population standard deviation, or `None` before the first sample.
    pub fn std_dev(&self) -> Option<f64> {
        (self.count > 0).then(|| (self.m2 / self.count as f64).max(0.0).sqrt())
    }

    /// Minimum quality observed, or `None` before the first sample.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Most recent sample.
    pub fn last(&self) -> Option<f64> {
        self.last
    }

    /// Exponentially weighted moving average, or `None` before the first
    /// sample.
    pub fn ewma(&self) -> Option<f64> {
        self.ewma
    }

    /// Number of samples that violated the TOQ.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Length of the current run of consecutive TOQ-meeting samples.
    pub fn clean_streak(&self) -> u64 {
        self.clean_streak
    }

    /// The target the stream is judged against.
    pub fn toq(&self) -> Toq {
        self.toq
    }

    /// Whether the smoothed (EWMA) quality currently meets the TOQ.
    /// Vacuously `true` before the first sample.
    pub fn is_healthy(&self) -> bool {
        self.ewma.is_none_or(|e| self.toq.is_met(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stream_reports_nothing_and_is_healthy() {
        let s = QualityStream::paper_default();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), None);
        assert_eq!(s.std_dev(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.ewma(), None);
        assert_eq!(s.last(), None);
        assert!(s.is_healthy());
    }

    #[test]
    fn welford_matches_batch_statistics() {
        let samples = [91.5, 94.0, 88.0, 99.5, 92.25, 90.0, 85.5];
        let mut s = QualityStream::paper_default();
        for &q in &samples {
            s.observe(q);
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|q| (q - mean).powi(2)).sum::<f64>() / n;
        assert!((s.mean().unwrap() - mean).abs() < 1e-12);
        assert!((s.std_dev().unwrap() - var.sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), Some(85.5));
        assert_eq!(s.last(), Some(85.5));
        assert_eq!(s.count(), 7);
    }

    #[test]
    fn ewma_tracks_drift_faster_than_mean() {
        let mut s = QualityStream::new(Toq::paper_default(), 0.5);
        for _ in 0..50 {
            s.observe(95.0);
        }
        for _ in 0..4 {
            s.observe(70.0);
        }
        // Four bad samples barely move the 54-sample mean but drag the
        // EWMA below the target.
        assert!(s.mean().unwrap() > 90.0);
        assert!(s.ewma().unwrap() < 75.0);
        assert!(!s.is_healthy());
    }

    #[test]
    fn violations_and_clean_streak() {
        let mut s = QualityStream::paper_default();
        s.observe(95.0);
        s.observe(96.0);
        assert_eq!(s.clean_streak(), 2);
        assert_eq!(s.violations(), 0);
        s.observe(80.0);
        assert_eq!(s.clean_streak(), 0);
        assert_eq!(s.violations(), 1);
        s.observe(92.0);
        assert_eq!(s.clean_streak(), 1);
        assert_eq!(s.toq(), Toq::paper_default());
    }

    #[test]
    fn welford_stays_stable_over_a_hundred_thousand_updates() {
        // Catastrophic-cancellation stress: 100k samples oscillating by
        // one part in 1e8 around 90. A naive sum-of-squares accumulator
        // loses the variance entirely at this magnitude ratio; Welford
        // must keep the mean exact to ~1e-9 and the (tiny) standard
        // deviation positive, finite, and near the analytic value.
        let mut s = QualityStream::paper_default();
        let (lo, hi) = (90.0f64, 90.0 + 9e-7);
        for i in 0..100_000u64 {
            s.observe(if i % 2 == 0 { lo } else { hi });
        }
        assert_eq!(s.count(), 100_000);
        let mean = s.mean().unwrap();
        assert!(
            (mean - (lo + hi) / 2.0).abs() < 1e-9,
            "mean drifted: {mean}"
        );
        let sd = s.std_dev().unwrap();
        let expected_sd = (hi - lo) / 2.0;
        assert!(sd.is_finite() && sd > 0.0);
        assert!(
            (sd - expected_sd).abs() < expected_sd * 1e-3,
            "std dev {sd} vs analytic {expected_sd}"
        );
        assert_eq!(s.min(), Some(lo));
        assert_eq!(s.violations(), 0);
        assert_eq!(s.clean_streak(), 100_000);
    }

    #[test]
    fn ewma_lag_on_a_long_monotone_ramp_converges_to_the_analytic_value() {
        // On a linear ramp q_t = t*d the EWMA's steady-state lag behind
        // the signal is d*(1-alpha)/alpha. After thousands of steps the
        // transient is gone; the iterative predictor leans on this lag
        // being bounded (the trend estimate trails, never overshoots).
        let alpha = 0.25;
        let d = 0.001;
        let mut s = QualityStream::new(Toq::new(0.0).unwrap(), alpha);
        let mut last_q = 0.0;
        let mut prev_ewma = f64::NEG_INFINITY;
        for t in 0..20_000u64 {
            last_q = t as f64 * d;
            s.observe(last_q);
            let e = s.ewma().unwrap();
            assert!(e >= prev_ewma, "EWMA must be monotone on a monotone ramp");
            assert!(e <= last_q, "EWMA must trail a rising signal");
            prev_ewma = e;
        }
        let lag = last_q - s.ewma().unwrap();
        let analytic = d * (1.0 - alpha) / alpha;
        assert!(
            (lag - analytic).abs() < analytic * 1e-6,
            "lag {lag} vs analytic {analytic}"
        );
    }

    #[test]
    fn ewma_of_contracting_ratios_stays_inside_the_observation_hull() {
        // The residual-trend predictor feeds decay ratios r_t/r_{t-1}
        // into the EWMA and extrapolates with ewma^horizon, so the
        // estimate must never escape [min observed, max observed] — an
        // EWMA below every observed ratio would predict convergence that
        // the data does not support. Drive 10k monotonically decreasing
        // ratios and check the hull and monotonicity at every step.
        let mut s = QualityStream::new(Toq::new(0.0).unwrap(), 0.4);
        let mut prev = f64::INFINITY;
        for t in 0..10_000u64 {
            // Decreasing from ~0.999 toward 0.5, always in (0, 1).
            let ratio = 0.5 + 0.499 / (1.0 + t as f64 * 0.01);
            s.observe(ratio);
            let e = s.ewma().unwrap();
            assert!(e <= prev, "EWMA must decrease on a decreasing stream");
            assert!(
                e >= ratio,
                "EWMA {e} escaped below the smallest observation {ratio}"
            );
            assert!(e < 1.0, "contracting trend must read as contracting");
            prev = e;
        }
    }

    #[test]
    fn alpha_is_sanitized() {
        let mut s = QualityStream::new(Toq::paper_default(), f64::NAN);
        s.observe(50.0);
        s.observe(90.0);
        // alpha fell back to 1.0: EWMA == last sample.
        assert_eq!(s.ewma(), Some(90.0));
        let mut s = QualityStream::new(Toq::paper_default(), -3.0);
        s.observe(50.0);
        s.observe(90.0);
        // clamped to ~0: EWMA barely moves but stays finite.
        assert!(s.ewma().unwrap() < 51.0);
    }
}
