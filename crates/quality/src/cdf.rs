//! Per-element error distributions (the paper's Figure 13).

/// Relative error of each element of `approx` against `exact`, clamped to
/// `[0, 1]`.
///
/// # Panics
///
/// Panics when the slices differ in length.
pub fn per_element_errors(exact: &[f64], approx: &[f64]) -> Vec<f64> {
    assert_eq!(
        exact.len(),
        approx.len(),
        "outputs must have identical shape"
    );
    exact
        .iter()
        .zip(approx)
        .map(|(e, a)| ((a - e).abs() / e.abs().max(1e-9)).min(1.0))
        .collect()
}

/// An empirical cumulative distribution of per-element errors.
///
/// The paper's Figure 13 plots, for each error level x, the fraction of
/// output elements whose error is ≤ x.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorCdf {
    sorted_errors: Vec<f64>,
}

impl ErrorCdf {
    /// Build a CDF from per-element errors (any order).
    pub fn new(mut errors: Vec<f64>) -> ErrorCdf {
        errors.sort_by(|a, b| a.partial_cmp(b).expect("errors must not be NaN"));
        ErrorCdf {
            sorted_errors: errors,
        }
    }

    /// Build directly from exact/approx outputs.
    ///
    /// # Panics
    ///
    /// Panics when the slices differ in length.
    pub fn from_outputs(exact: &[f64], approx: &[f64]) -> ErrorCdf {
        ErrorCdf::new(per_element_errors(exact, approx))
    }

    /// Fraction of elements with error ≤ `threshold` (in `[0, 1]`).
    pub fn fraction_at_most(&self, threshold: f64) -> f64 {
        if self.sorted_errors.is_empty() {
            return 1.0;
        }
        let count = self.sorted_errors.partition_point(|&e| e <= threshold);
        count as f64 / self.sorted_errors.len() as f64
    }

    /// Evaluate the CDF at evenly spaced thresholds `0, 1/steps, …, 1`,
    /// returning `(threshold, fraction)` pairs — the series plotted in the
    /// paper's Figure 13.
    pub fn series(&self, steps: usize) -> Vec<(f64, f64)> {
        (0..=steps)
            .map(|i| {
                let t = i as f64 / steps as f64;
                (t, self.fraction_at_most(t))
            })
            .collect()
    }

    /// Number of elements in the distribution.
    pub fn len(&self) -> usize {
        self.sorted_errors.len()
    }

    /// True when the distribution is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted_errors.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_element_errors_are_relative_and_clamped() {
        let errors = per_element_errors(&[2.0, 1e-15, 4.0], &[1.0, 7.0, 4.0]);
        assert!((errors[0] - 0.5).abs() < 1e-12);
        assert_eq!(errors[1], 1.0); // clamped
        assert_eq!(errors[2], 0.0);
    }

    #[test]
    fn cdf_is_monotone_and_reaches_one() {
        let cdf = ErrorCdf::new(vec![0.05, 0.2, 0.4, 0.0]);
        let series = cdf.series(10);
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF must be monotone");
        }
        assert_eq!(series.last().unwrap().1, 1.0);
        assert_eq!(cdf.fraction_at_most(0.05), 0.5);
    }

    #[test]
    fn empty_cdf_is_total() {
        let cdf = ErrorCdf::new(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_at_most(0.0), 1.0);
    }

    #[test]
    fn from_outputs_matches_manual_path() {
        let exact = [1.0, 2.0];
        let approx = [1.1, 2.0];
        let a = ErrorCdf::from_outputs(&exact, &approx);
        let b = ErrorCdf::new(per_element_errors(&exact, &approx));
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }
}
