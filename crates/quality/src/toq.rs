//! The target output quality (TOQ) supplied by the user.

use std::error::Error;
use std::fmt;

/// Error constructing a [`Toq`] from an out-of-range value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ToqError(f64);

impl fmt::Display for ToqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "target output quality must be a percentage in [0, 100], got {}",
            self.0
        )
    }
}

impl Error for ToqError {}

/// A target output quality, in percent.
///
/// The runtime tuner selects the fastest approximate kernel whose measured
/// output quality stays at or above this target. The paper uses 90% as the
/// default, justified by the LIVE image-quality user study (its §4.2).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Toq(f64);

impl Toq {
    /// Construct a TOQ from a percentage.
    ///
    /// # Errors
    ///
    /// Returns [`ToqError`] when `percent` is not a finite value in
    /// `[0, 100]`.
    pub fn new(percent: f64) -> Result<Toq, ToqError> {
        if percent.is_finite() && (0.0..=100.0).contains(&percent) {
            Ok(Toq(percent))
        } else {
            Err(ToqError(percent))
        }
    }

    /// The paper's default target of 90%.
    pub fn paper_default() -> Toq {
        Toq(90.0)
    }

    /// The target as a percentage.
    pub fn percent(self) -> f64 {
        self.0
    }

    /// True when a measured quality percentage meets the target.
    pub fn is_met(self, quality_percent: f64) -> bool {
        quality_percent >= self.0
    }
}

impl Default for Toq {
    fn default() -> Self {
        Toq::paper_default()
    }
}

impl fmt::Display for Toq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}%", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_range_accepted() {
        assert!(Toq::new(0.0).is_ok());
        assert!(Toq::new(100.0).is_ok());
        assert!(Toq::new(-0.1).is_err());
        assert!(Toq::new(100.1).is_err());
        assert!(Toq::new(f64::NAN).is_err());
        assert!(Toq::new(f64::INFINITY).is_err());
    }

    #[test]
    fn default_is_paper_default() {
        assert_eq!(Toq::default(), Toq::paper_default());
        assert_eq!(Toq::default().percent(), 90.0);
    }

    #[test]
    fn met_is_inclusive() {
        let toq = Toq::new(90.0).unwrap();
        assert!(toq.is_met(90.0));
        assert!(toq.is_met(95.0));
        assert!(!toq.is_met(89.999));
    }

    #[test]
    fn displays() {
        assert_eq!(Toq::paper_default().to_string(), "90%");
        assert!(!ToqError(123.0).to_string().is_empty());
    }
}
