//! Whole-output error metrics.

use std::fmt;

/// Guard added to denominators so exactly-zero references do not blow up
/// relative errors.
const EPS: f64 = 1e-9;

/// An application-level error metric, as named in the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Relative L1 norm: `Σ|a−e| / Σ|e|`.
    L1Norm,
    /// Relative L2 norm: `‖a−e‖₂ / ‖e‖₂`.
    L2Norm,
    /// Mean relative error: `mean(|a−e| / max(|e|, ε))`, with each element's
    /// relative error clamped to 1 so single near-zero reference values do
    /// not dominate the mean.
    MeanRelative,
}

impl Metric {
    /// Compute the error of `approx` against `exact`, in `[0, +∞)` (and in
    /// `[0, 1]` for [`Metric::MeanRelative`]).
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or are empty — comparing
    /// differently-shaped outputs is a harness bug, not a data condition.
    pub fn error(self, exact: &[f64], approx: &[f64]) -> f64 {
        assert_eq!(
            exact.len(),
            approx.len(),
            "outputs must have identical shape"
        );
        assert!(!exact.is_empty(), "outputs must be nonempty");
        match self {
            Metric::L1Norm => {
                let num: f64 = exact.iter().zip(approx).map(|(e, a)| (a - e).abs()).sum();
                let den: f64 = exact.iter().map(|e| e.abs()).sum();
                num / den.max(EPS)
            }
            Metric::L2Norm => {
                let num: f64 = exact
                    .iter()
                    .zip(approx)
                    .map(|(e, a)| (a - e) * (a - e))
                    .sum::<f64>()
                    .sqrt();
                let den: f64 = exact.iter().map(|e| e * e).sum::<f64>().sqrt();
                num / den.max(EPS)
            }
            Metric::MeanRelative => {
                let sum: f64 = exact
                    .iter()
                    .zip(approx)
                    .map(|(e, a)| ((a - e).abs() / e.abs().max(EPS)).min(1.0))
                    .sum();
                sum / exact.len() as f64
            }
        }
    }

    /// Output quality on the paper's percentage scale:
    /// `100 × (1 − error)`, clamped to `[0, 100]`.
    pub fn quality(self, exact: &[f64], approx: &[f64]) -> f64 {
        (100.0 * (1.0 - self.error(exact, approx))).clamp(0.0, 100.0)
    }

    /// Convenience for `f32` outputs (device buffers are `f32`).
    pub fn quality_f32(self, exact: &[f32], approx: &[f32]) -> f64 {
        let e: Vec<f64> = exact.iter().map(|&v| f64::from(v)).collect();
        let a: Vec<f64> = approx.iter().map(|&v| f64::from(v)).collect();
        self.quality(&e, &a)
    }

    /// Metric name as printed in the paper's Table 1.
    pub fn paper_name(self) -> &'static str {
        match self {
            Metric::L1Norm => "L1-norm",
            Metric::L2Norm => "L2-norm",
            Metric::MeanRelative => "Mean relative error",
        }
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_outputs_have_full_quality() {
        let x = [1.0, -2.0, 3.5, 0.0];
        for m in [Metric::L1Norm, Metric::L2Norm, Metric::MeanRelative] {
            assert_eq!(m.error(&x, &x), 0.0);
            assert_eq!(m.quality(&x, &x), 100.0);
        }
    }

    #[test]
    fn l1_norm_is_sum_ratio() {
        let exact = [2.0, 2.0];
        let approx = [1.0, 3.0];
        // |1|+|1| over |2|+|2| = 0.5
        assert!((Metric::L1Norm.error(&exact, &approx) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn l2_norm_is_euclidean_ratio() {
        let exact = [3.0, 4.0];
        let approx = [0.0, 0.0];
        assert!((Metric::L2Norm.error(&exact, &approx) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_relative_clamps_per_element() {
        let exact = [1e-12, 1.0];
        let approx = [5.0, 1.0];
        // First element clamps to 1.0, second is 0: mean = 0.5.
        assert!((Metric::MeanRelative.error(&exact, &approx) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn quality_clamps_to_percentage_range() {
        let exact = [1.0];
        let approx = [100.0];
        assert_eq!(Metric::L1Norm.quality(&exact, &approx), 0.0);
    }

    #[test]
    fn f32_wrapper_matches_f64() {
        let exact = [1.0f32, 2.0];
        let approx = [1.1f32, 2.0];
        let q32 = Metric::L1Norm.quality_f32(&exact, &approx);
        let q64 = Metric::L1Norm.quality(&[1.0, 2.0], &[f64::from(1.1f32), 2.0]);
        assert!((q32 - q64).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "identical shape")]
    fn shape_mismatch_panics() {
        Metric::L1Norm.error(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn names_are_paper_names() {
        assert_eq!(Metric::L1Norm.to_string(), "L1-norm");
        assert_eq!(Metric::MeanRelative.to_string(), "Mean relative error");
    }
}
