//! Cumulative Frequency Histogram (Signal Processing, Scan, mean relative
//! error). The canonical three-phase data-parallel scan over per-bin
//! frequencies — the app the paper's scan optimization (and its Figure 18
//! cascading-error study) targets.

use paraprox::{Metric, Workload};
use paraprox_ir::{MemSpace, Scalar, Ty};
use paraprox_vgpu::{BufferInit, BufferSpec, Dim2, LaunchPlan, Pipeline, PlanArg};

use crate::inputs;
use crate::{App, AppSpec, Scale};

/// Elements per subarray (the per-block scan width).
pub const SUBARRAY: usize = 64;

fn bin_count(scale: Scale) -> usize {
    match scale {
        Scale::Test => 512,
        Scale::Paper => 2048,
    }
}

/// The three-phase scan pipeline's kernel source (parsed through the
/// `paraprox-lang` frontend).
pub const SOURCE: &str = r#"
__global__ void scan_phase1(float* input, float* partial, float* sums) {
    __shared__ float s_a[64];
    __shared__ float s_b[64];
    int tid = threadIdx.x;
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    s_a[tid] = input[gid];
    __syncthreads();
    for (int d = 1; d < 64; d <<= 1) {
        if (tid >= d) {
            s_b[tid] = s_a[tid] + s_a[tid - d];
        } else {
            s_b[tid] = s_a[tid];
        }
        __syncthreads();
        s_a[tid] = s_b[tid];
        __syncthreads();
    }
    partial[gid] = s_a[tid];
    if (tid == 63) {
        sums[blockIdx.x] = s_a[tid];
    }
}

__global__ void scan_phase2(float* sums, float* sums_scan, int count) {
    int tid = threadIdx.x;
    if (tid == 0) {
        float acc = 0.0f;
        for (int i = 0; i < count; i++) {
            acc += sums[i];
            sums_scan[i] = acc;
        }
    }
}

__global__ void scan_phase3(float* partial, float* sums_scan, float* output) {
    int bid = blockIdx.x;
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    float p = partial[gid];
    if (bid > 0) {
        output[gid] = p + sums_scan[bid - 1];
    } else {
        output[gid] = p;
    }
}
"#;

/// Host reference: inclusive prefix sums.
pub fn reference(freqs: &[f32]) -> Vec<f32> {
    let mut acc = 0.0f32;
    freqs
        .iter()
        .map(|&f| {
            acc += f;
            acc
        })
        .collect()
}

/// Generate per-bin frequencies: roughly uniform counts with mild trend —
/// the "uniformly distributed data" whose subarrays resemble each other,
/// the assumption behind the scan approximation (paper §3.4.1).
pub fn gen_inputs(scale: Scale, seed: u64) -> Vec<BufferInit> {
    let n = bin_count(scale);
    let mut r = inputs::rng(seed ^ 0xC4);
    let freqs: Vec<f32> = (0..n)
        .map(|i| {
            let trend = 1.0 + 0.1 * (i as f32 / n as f32);
            r.random_range(50.0f32..150.0) * trend
        })
        .collect();
    vec![BufferInit::F32(freqs)]
}

/// Build the workload (parsing [`SOURCE`] through the language frontend).
pub fn build(scale: Scale, seed: u64) -> Workload {
    let n = bin_count(scale);
    let g = n / SUBARRAY;
    let program = paraprox_lang::parse_program(SOURCE).expect("embedded source is valid");
    let phase1 = program.kernel_by_name("scan_phase1").expect("declared");
    let phase2 = program.kernel_by_name("scan_phase2").expect("declared");
    let phase3 = program.kernel_by_name("scan_phase3").expect("declared");

    let mut pipeline = Pipeline::default();
    let input_b = pipeline.add_buffer(BufferSpec {
        name: "freqs".to_string(),
        ty: Ty::F32,
        space: MemSpace::Global,
        init: gen_inputs(scale, seed).remove(0),
    });
    let partial_b = pipeline.add_buffer(BufferSpec::zeroed_f32("partial", n));
    let sums_b = pipeline.add_buffer(BufferSpec::zeroed_f32("sums", g));
    let sums_scan_b = pipeline.add_buffer(BufferSpec::zeroed_f32("sums_scan", g));
    let output_b = pipeline.add_buffer(BufferSpec::zeroed_f32("cumulative", n));
    pipeline.launches.push(LaunchPlan {
        kernel: phase1,
        grid: Dim2::linear(g),
        block: Dim2::linear(SUBARRAY),
        args: vec![
            PlanArg::Buffer(input_b),
            PlanArg::Buffer(partial_b),
            PlanArg::Buffer(sums_b),
        ],
    });
    pipeline.launches.push(LaunchPlan {
        kernel: phase2,
        grid: Dim2::linear(1),
        block: Dim2::linear(SUBARRAY),
        args: vec![
            PlanArg::Buffer(sums_b),
            PlanArg::Buffer(sums_scan_b),
            PlanArg::Scalar(Scalar::I32(g as i32)),
        ],
    });
    pipeline.launches.push(LaunchPlan {
        kernel: phase3,
        grid: Dim2::linear(g),
        block: Dim2::linear(SUBARRAY),
        args: vec![
            PlanArg::Buffer(partial_b),
            PlanArg::Buffer(sums_scan_b),
            PlanArg::Buffer(output_b),
        ],
    });
    pipeline.outputs = vec![output_b];

    Workload::new(
        "Cumulative Frequency Histogram",
        program,
        pipeline,
        Metric::MeanRelative,
    )
    .with_input_slots(vec![input_b])
}

/// Registry entry.
pub fn app() -> App {
    App {
        spec: AppSpec {
            name: "Cumulative Frequency Histogram",
            domain: "Signal Processing",
            input_desc: "2K bins (paper: 1M elements)",
            patterns: "Scan",
            metric: Metric::MeanRelative,
        },
        build,
        gen_inputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_vgpu::{Device, DeviceProfile};

    #[test]
    fn exact_pipeline_matches_host_prefix_sums() {
        let w = build(Scale::Test, 41);
        let mut device = Device::new(DeviceProfile::gtx560());
        let run = w.pipeline.execute(&mut device, &w.program).unwrap();
        let BufferInit::F32(freqs) = &gen_inputs(Scale::Test, 41)[0] else {
            panic!()
        };
        let expected = reference(freqs);
        for (i, e) in expected.iter().enumerate() {
            assert!(
                (run.outputs[0][i] as f32 - e).abs() < 0.5, // f32 summation order
                "bin {i}: {} vs {e}",
                run.outputs[0][i]
            );
        }
    }

    #[test]
    fn scan_template_matches_and_variants_generated() {
        let w = build(Scale::Test, 1);
        let table = paraprox::latency_table_for(&DeviceProfile::gtx560());
        let compiled = paraprox::compile(&w, &table, &paraprox::CompileOptions::minimal()).unwrap();
        assert!(compiled.pattern_names().contains(&"scan"));
        assert!(compiled
            .variants
            .iter()
            .any(|v| matches!(v.knob, paraprox::Knob::Scan { .. })));
    }
}
