//! Gaussian Filter — 3×3 smoothing (Image Processing, Stencil, mean
//! relative error). Loop-based tile with weights in constant memory.

use paraprox::{Metric, Workload};
use paraprox_ir::{Expr, KernelBuilder, MemSpace, Program, Scalar, Ty};
use paraprox_vgpu::{BufferInit, BufferSpec, Dim2, LaunchPlan, Pipeline, PlanArg};

use crate::inputs;
use crate::{App, AppSpec, Scale};

fn dims(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Test => (64, 32),
        Scale::Paper => (96, 96),
    }
}

/// The 3×3 Gaussian weights.
pub const WEIGHTS: [f32; 9] = [
    1.0 / 16.0,
    2.0 / 16.0,
    1.0 / 16.0,
    2.0 / 16.0,
    4.0 / 16.0,
    2.0 / 16.0,
    1.0 / 16.0,
    2.0 / 16.0,
    1.0 / 16.0,
];

/// Host reference.
pub fn reference(img: &[f32], w: usize, h: usize) -> Vec<f32> {
    let mut out = img.to_vec();
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            let mut acc = 0.0f32;
            for i in 0..3 {
                for j in 0..3 {
                    acc += img[(y + i - 1) * w + (x + j - 1)] * WEIGHTS[i * 3 + j];
                }
            }
            out[y * w + x] = acc;
        }
    }
    out
}

/// Generate the image input.
pub fn gen_inputs(scale: Scale, seed: u64) -> Vec<BufferInit> {
    let (w, h) = dims(scale);
    let mut r = inputs::rng(seed ^ 0x6A5);
    vec![BufferInit::F32(inputs::smooth_image(&mut r, w, h))]
}

/// Build the workload.
pub fn build(scale: Scale, seed: u64) -> Workload {
    let (w, h) = dims(scale);
    let mut program = Program::new();

    let mut kb = KernelBuilder::new("gaussian3x3");
    let img = kb.buffer("img", Ty::F32, MemSpace::Global);
    let coef = kb.buffer("coef", Ty::F32, MemSpace::Constant);
    let out = kb.buffer("out", Ty::F32, MemSpace::Global);
    let width = kb.scalar("w", Ty::I32);
    let height = kb.scalar("h", Ty::I32);
    let x = kb.let_("x", KernelBuilder::global_id_x());
    let y = kb.let_("y", KernelBuilder::global_id_y());
    let center = kb.let_("center", y.clone() * width.clone() + x.clone());
    let interior = x.clone().gt(Expr::i32(0))
        & x.clone().lt(width.clone() - Expr::i32(1))
        & y.clone().gt(Expr::i32(0))
        & y.clone().lt(height.clone() - Expr::i32(1));
    kb.if_else(
        interior,
        |kb| {
            let acc = kb.let_mut("acc", Ty::F32, Expr::f32(0.0));
            kb.for_up("i", Expr::i32(0), Expr::i32(3), Expr::i32(1), |kb, i| {
                kb.for_up("j", Expr::i32(0), Expr::i32(3), Expr::i32(1), |kb, j| {
                    let idx = (y.clone() + i.clone() - Expr::i32(1)) * width.clone()
                        + x.clone()
                        + j.clone()
                        - Expr::i32(1);
                    let v = kb.load(img, idx);
                    let wgt = kb.load(coef, i * Expr::i32(3) + j);
                    kb.assign(acc, Expr::Var(acc) + v * wgt);
                });
            });
            kb.store(out, center.clone(), Expr::Var(acc));
        },
        |kb| {
            let v = kb.let_("vb", kb.load(img, center.clone()));
            kb.store(out, center.clone(), v);
        },
    );
    let kernel = program.add_kernel(kb.finish());

    let mut pipeline = Pipeline::default();
    let img_b = pipeline.add_buffer(BufferSpec {
        name: "img".to_string(),
        ty: Ty::F32,
        space: MemSpace::Global,
        init: gen_inputs(scale, seed).remove(0),
    });
    let coef_b = pipeline.add_buffer(BufferSpec {
        name: "coef".to_string(),
        ty: Ty::F32,
        space: MemSpace::Constant,
        init: BufferInit::F32(WEIGHTS.to_vec()),
    });
    let out_b = pipeline.add_buffer(BufferSpec::zeroed_f32("out", w * h));
    pipeline.launches.push(LaunchPlan {
        kernel,
        grid: Dim2::new(w / 16, h / 8),
        block: Dim2::new(16, 8),
        args: vec![
            PlanArg::Buffer(img_b),
            PlanArg::Buffer(coef_b),
            PlanArg::Buffer(out_b),
            PlanArg::Scalar(Scalar::I32(w as i32)),
            PlanArg::Scalar(Scalar::I32(h as i32)),
        ],
    });
    pipeline.outputs = vec![out_b];

    Workload::new("Gaussian Filter", program, pipeline, Metric::MeanRelative)
        .with_input_slots(vec![img_b])
}

/// Registry entry.
pub fn app() -> App {
    App {
        spec: AppSpec {
            name: "Gaussian Filter",
            domain: "Image Processing",
            input_desc: "96x96 image (paper: 512x512)",
            patterns: "Stencil",
            metric: Metric::MeanRelative,
        },
        build,
        gen_inputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_vgpu::{Device, DeviceProfile};

    #[test]
    fn exact_pipeline_matches_host_reference() {
        let w = build(Scale::Test, 21);
        let (wd, ht) = dims(Scale::Test);
        let mut device = Device::new(DeviceProfile::gtx560());
        let run = w.pipeline.execute(&mut device, &w.program).unwrap();
        let BufferInit::F32(img) = &gen_inputs(Scale::Test, 21)[0] else {
            panic!()
        };
        let expected = reference(img, wd, ht);
        for (i, e) in expected.iter().enumerate() {
            assert!(
                (run.outputs[0][i] as f32 - e).abs() < 1e-3,
                "pixel {i}: {} vs {e}",
                run.outputs[0][i]
            );
        }
    }

    #[test]
    fn detected_as_looped_3x3_stencil_with_reduction() {
        let w = build(Scale::Test, 1);
        let table = paraprox::latency_table_for(&DeviceProfile::gtx560());
        let compiled = paraprox::compile(&w, &table, &paraprox::CompileOptions::minimal()).unwrap();
        let names = compiled.pattern_names();
        assert!(names.contains(&"stencil"), "{names:?}");
        let cand = compiled
            .patterns
            .iter()
            .flat_map(|kp| kp.stencils())
            .next()
            .unwrap();
        assert_eq!((cand.tile_h, cand.tile_w), (3, 3));
        assert_eq!(cand.row_loops.len(), 1);
        assert_eq!(cand.col_loops.len(), 1);
    }
}
