//! HotSpot — thermal simulation step (Physics, Stencil-Partition, mean
//! relative error). Modeled on the Rodinia kernel: each cell's next
//! temperature combines its 4-neighborhood and the local power density.

use paraprox::{Metric, Workload};
use paraprox_ir::{Expr, KernelBuilder, MemSpace, Program, Scalar, Ty};
use paraprox_vgpu::{BufferInit, BufferSpec, Dim2, LaunchPlan, Pipeline, PlanArg};

use crate::inputs;
use crate::{App, AppSpec, Scale};

fn dims(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Test => (64, 32),
        Scale::Paper => (128, 128),
    }
}

/// Conduction and power coefficients (dimensionless, Rodinia-flavored).
const KY: f32 = 0.12;
const KX: f32 = 0.12;
const KZ: f32 = 0.04;
const KP: f32 = 0.8;
/// Ambient temperature.
const AMBIENT: f32 = 80.0;

/// Host reference for one interior cell.
fn step_cell(c: f32, n: f32, s: f32, e: f32, w: f32, p: f32) -> f32 {
    c + KY * (n + s - 2.0 * c) + KX * (e + w - 2.0 * c) + KZ * (AMBIENT - c) + KP * p
}

/// Host reference over the whole grid.
pub fn reference(temp: &[f32], power: &[f32], w: usize, h: usize) -> Vec<f32> {
    let mut out = temp.to_vec();
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            let i = y * w + x;
            out[i] = step_cell(
                temp[i],
                temp[i - w],
                temp[i + w],
                temp[i + 1],
                temp[i - 1],
                power[i],
            );
        }
    }
    out
}

/// Generate the temperature and power grids.
pub fn gen_inputs(scale: Scale, seed: u64) -> Vec<BufferInit> {
    let (w, h) = dims(scale);
    let mut r = inputs::rng(seed ^ 0x407);
    let temp: Vec<f32> = inputs::smooth_image(&mut r, w, h)
        .into_iter()
        .map(|v| 60.0 + v * 0.2) // 60..111 degrees
        .collect();
    let power: Vec<f32> = inputs::smooth_image(&mut r, w, h)
        .into_iter()
        .map(|v| v * 0.004) // 0..~1 W
        .collect();
    vec![BufferInit::F32(temp), BufferInit::F32(power)]
}

/// Build the workload.
pub fn build(scale: Scale, seed: u64) -> Workload {
    let (w, h) = dims(scale);
    let mut program = Program::new();

    let mut kb = KernelBuilder::new("hotspot");
    let temp = kb.buffer("temp", Ty::F32, MemSpace::Global);
    let power = kb.buffer("power", Ty::F32, MemSpace::Global);
    let out = kb.buffer("out", Ty::F32, MemSpace::Global);
    let width = kb.scalar("w", Ty::I32);
    let height = kb.scalar("h", Ty::I32);
    let x = kb.let_("x", KernelBuilder::global_id_x());
    let y = kb.let_("y", KernelBuilder::global_id_y());
    let center_idx = kb.let_("center_idx", y.clone() * width.clone() + x.clone());
    let interior = x.clone().gt(Expr::i32(0))
        & x.clone().lt(width.clone() - Expr::i32(1))
        & y.clone().gt(Expr::i32(0))
        & y.clone().lt(height.clone() - Expr::i32(1));
    kb.if_else(
        interior,
        |kb| {
            let c = kb.let_("c", kb.load(temp, y.clone() * width.clone() + x.clone()));
            let n = kb.let_(
                "n",
                kb.load(temp, (y.clone() - Expr::i32(1)) * width.clone() + x.clone()),
            );
            let s = kb.let_(
                "s",
                kb.load(temp, (y.clone() + Expr::i32(1)) * width.clone() + x.clone()),
            );
            let e = kb.let_(
                "e",
                kb.load(temp, y.clone() * width.clone() + x.clone() + Expr::i32(1)),
            );
            let wv = kb.let_(
                "wv",
                kb.load(temp, y.clone() * width.clone() + x.clone() - Expr::i32(1)),
            );
            let p = kb.let_("p", kb.load(power, center_idx.clone()));
            let next = c.clone()
                + Expr::f32(KY) * (n + s - Expr::f32(2.0) * c.clone())
                + Expr::f32(KX) * (e + wv - Expr::f32(2.0) * c.clone())
                + Expr::f32(KZ) * (Expr::f32(AMBIENT) - c.clone())
                + Expr::f32(KP) * p;
            kb.store(out, center_idx.clone(), next);
        },
        |kb| {
            let c = kb.let_("cb", kb.load(temp, center_idx.clone()));
            kb.store(out, center_idx.clone(), c);
        },
    );
    let kernel = program.add_kernel(kb.finish());

    let mut data = gen_inputs(scale, seed);
    let mut pipeline = Pipeline::default();
    let temp_b = pipeline.add_buffer(BufferSpec {
        name: "temp".to_string(),
        ty: Ty::F32,
        space: MemSpace::Global,
        init: data.remove(0),
    });
    let power_b = pipeline.add_buffer(BufferSpec {
        name: "power".to_string(),
        ty: Ty::F32,
        space: MemSpace::Global,
        init: data.remove(0),
    });
    let out_b = pipeline.add_buffer(BufferSpec::zeroed_f32("out", w * h));
    pipeline.launches.push(LaunchPlan {
        kernel,
        grid: Dim2::new(w / 16, h / 8),
        block: Dim2::new(16, 8),
        args: vec![
            PlanArg::Buffer(temp_b),
            PlanArg::Buffer(power_b),
            PlanArg::Buffer(out_b),
            PlanArg::Scalar(Scalar::I32(w as i32)),
            PlanArg::Scalar(Scalar::I32(h as i32)),
        ],
    });
    pipeline.outputs = vec![out_b];

    Workload::new("HotSpot", program, pipeline, Metric::MeanRelative)
        .with_input_slots(vec![temp_b, power_b])
}

/// Registry entry.
pub fn app() -> App {
    App {
        spec: AppSpec {
            name: "HotSpot",
            domain: "Physics",
            input_desc: "128x128 grid (paper: 1024x1024)",
            patterns: "Stencil-Partition",
            metric: Metric::MeanRelative,
        },
        build,
        gen_inputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_vgpu::{Device, DeviceProfile};

    #[test]
    fn exact_pipeline_matches_host_reference() {
        let w = build(Scale::Test, 3);
        let (wd, ht) = dims(Scale::Test);
        let mut device = Device::new(DeviceProfile::gtx560());
        let run = w.pipeline.execute(&mut device, &w.program).unwrap();
        let data = gen_inputs(Scale::Test, 3);
        let (BufferInit::F32(temp), BufferInit::F32(power)) = (&data[0], &data[1]) else {
            panic!()
        };
        let expected = reference(temp, power, wd, ht);
        for (i, e) in expected.iter().enumerate() {
            assert!(
                (run.outputs[0][i] as f32 - e).abs() < 1e-3,
                "cell {i}: {} vs {e}",
                run.outputs[0][i]
            );
        }
    }

    #[test]
    fn stencil_pattern_detected_on_temperature_grid() {
        let w = build(Scale::Test, 1);
        let table = paraprox::latency_table_for(&DeviceProfile::gtx560());
        let compiled = paraprox::compile(&w, &table, &paraprox::CompileOptions::minimal()).unwrap();
        assert!(compiled.pattern_names().contains(&"stencil"));
        let cand = compiled
            .patterns
            .iter()
            .flat_map(|kp| kp.stencils())
            .next()
            .expect("stencil candidate");
        assert_eq!((cand.tile_h, cand.tile_w), (3, 3));
        // Only the 5-point temperature neighborhood tiles; power is a
        // single access.
        let stencil_count: usize = compiled
            .patterns
            .iter()
            .map(|kp| kp.stencils().count())
            .sum();
        assert_eq!(stencil_count, 1);
    }
}
