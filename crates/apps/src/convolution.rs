//! Convolution Separable — row + column passes (Image Processing,
//! Stencil-Reduction, L2-norm).
//!
//! Two kernels with 1×9 / 9×1 tiles and a tap loop that is *also* a
//! reduction — the app where the paper's runtime picks the stencil
//! optimization on the GPU but the reduction optimization on the CPU
//! (paper §4.3).

use paraprox::{Metric, Workload};
use paraprox_ir::{Expr, KernelBuilder, KernelId, MemSpace, Program, Scalar, Ty};
use paraprox_vgpu::{BufferInit, BufferSpec, Dim2, LaunchPlan, Pipeline, PlanArg};

use crate::inputs;
use crate::{App, AppSpec, Scale};

/// Filter radius (9 taps; the paper uses 17 on a 2048² image).
pub const RADIUS: usize = 4;
const TAPS: usize = 2 * RADIUS + 1;

fn dims(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Test => (64, 32),
        Scale::Paper => (96, 96),
    }
}

/// Normalized triangular filter weights.
pub fn weights() -> Vec<f32> {
    let raw: Vec<f32> = (0..TAPS)
        .map(|i| 1.0 + RADIUS as f32 - (i as f32 - RADIUS as f32).abs())
        .collect();
    let total: f32 = raw.iter().sum();
    raw.into_iter().map(|v| v / total).collect()
}

/// Host reference (row pass then column pass, borders copied).
pub fn reference(img: &[f32], w: usize, h: usize) -> Vec<f32> {
    let wg = weights();
    let mut mid = img.to_vec();
    for y in 0..h {
        for x in RADIUS..w - RADIUS {
            let mut acc = 0.0f32;
            for (j, wj) in wg.iter().enumerate() {
                acc += img[y * w + x + j - RADIUS] * wj;
            }
            mid[y * w + x] = acc;
        }
    }
    let mut out = mid.clone();
    for y in RADIUS..h - RADIUS {
        for x in 0..w {
            let mut acc = 0.0f32;
            for (j, wj) in wg.iter().enumerate() {
                acc += mid[(y + j - RADIUS) * w + x] * wj;
            }
            out[y * w + x] = acc;
        }
    }
    out
}

fn build_pass(program: &mut Program, name: &str, horizontal: bool) -> KernelId {
    let mut kb = KernelBuilder::new(name);
    let src = kb.buffer("src", Ty::F32, MemSpace::Global);
    let coef = kb.buffer("coef", Ty::F32, MemSpace::Constant);
    let dst = kb.buffer("dst", Ty::F32, MemSpace::Global);
    let width = kb.scalar("w", Ty::I32);
    let height = kb.scalar("h", Ty::I32);
    let x = kb.let_("x", KernelBuilder::global_id_x());
    let y = kb.let_("y", KernelBuilder::global_id_y());
    let center = kb.let_("center", y.clone() * width.clone() + x.clone());
    let r = Expr::i32(RADIUS as i32);
    let in_range = if horizontal {
        x.clone().ge(r.clone()) & x.clone().lt(width.clone() - r.clone())
    } else {
        y.clone().ge(r.clone()) & y.clone().lt(height.clone() - r.clone())
    };
    kb.if_else(
        in_range,
        |kb| {
            let acc = kb.let_mut("acc", Ty::F32, Expr::f32(0.0));
            kb.for_up(
                "j",
                Expr::i32(0),
                Expr::i32(TAPS as i32),
                Expr::i32(1),
                |kb, j| {
                    let idx = if horizontal {
                        y.clone() * width.clone() + x.clone() + j.clone() - Expr::i32(RADIUS as i32)
                    } else {
                        (y.clone() + j.clone() - Expr::i32(RADIUS as i32)) * width.clone()
                            + x.clone()
                    };
                    let v = kb.load(src, idx);
                    let wgt = kb.load(coef, j.clone());
                    kb.assign(acc, Expr::Var(acc) + v * wgt);
                },
            );
            kb.store(dst, center.clone(), Expr::Var(acc));
        },
        |kb| {
            let v = kb.let_("vb", kb.load(src, center.clone()));
            kb.store(dst, center.clone(), v);
        },
    );
    program.add_kernel(kb.finish())
}

/// Generate the image input.
pub fn gen_inputs(scale: Scale, seed: u64) -> Vec<BufferInit> {
    let (w, h) = dims(scale);
    let mut r = inputs::rng(seed ^ 0xC03);
    vec![BufferInit::F32(inputs::smooth_image(&mut r, w, h))]
}

/// Build the workload.
pub fn build(scale: Scale, seed: u64) -> Workload {
    let (w, h) = dims(scale);
    let n = w * h;
    let mut program = Program::new();
    let row_kernel = build_pass(&mut program, "conv_row", true);
    let col_kernel = build_pass(&mut program, "conv_col", false);

    let mut pipeline = Pipeline::default();
    let img_b = pipeline.add_buffer(BufferSpec {
        name: "img".to_string(),
        ty: Ty::F32,
        space: MemSpace::Global,
        init: gen_inputs(scale, seed).remove(0),
    });
    let coef_b = pipeline.add_buffer(BufferSpec {
        name: "coef".to_string(),
        ty: Ty::F32,
        space: MemSpace::Constant,
        init: BufferInit::F32(weights()),
    });
    let mid_b = pipeline.add_buffer(BufferSpec::zeroed_f32("mid", n));
    let out_b = pipeline.add_buffer(BufferSpec::zeroed_f32("out", n));
    let grid = Dim2::new(w / 16, h / 8);
    let block = Dim2::new(16, 8);
    pipeline.launches.push(LaunchPlan {
        kernel: row_kernel,
        grid,
        block,
        args: vec![
            PlanArg::Buffer(img_b),
            PlanArg::Buffer(coef_b),
            PlanArg::Buffer(mid_b),
            PlanArg::Scalar(Scalar::I32(w as i32)),
            PlanArg::Scalar(Scalar::I32(h as i32)),
        ],
    });
    pipeline.launches.push(LaunchPlan {
        kernel: col_kernel,
        grid,
        block,
        args: vec![
            PlanArg::Buffer(mid_b),
            PlanArg::Buffer(coef_b),
            PlanArg::Buffer(out_b),
            PlanArg::Scalar(Scalar::I32(w as i32)),
            PlanArg::Scalar(Scalar::I32(h as i32)),
        ],
    });
    pipeline.outputs = vec![out_b];

    Workload::new("Convolution Separable", program, pipeline, Metric::L2Norm)
        .with_input_slots(vec![img_b])
}

/// Registry entry.
pub fn app() -> App {
    App {
        spec: AppSpec {
            name: "Convolution Separable",
            domain: "Image Processing",
            input_desc: "96x96 image, 9 taps (paper: 2048x2048, 17 taps)",
            patterns: "Stencil-Reduction",
            metric: Metric::L2Norm,
        },
        build,
        gen_inputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_vgpu::{Device, DeviceProfile};

    #[test]
    fn exact_pipeline_matches_host_reference() {
        let w = build(Scale::Test, 77);
        let (wd, ht) = dims(Scale::Test);
        let mut device = Device::new(DeviceProfile::gtx560());
        let run = w.pipeline.execute(&mut device, &w.program).unwrap();
        let BufferInit::F32(img) = &gen_inputs(Scale::Test, 77)[0] else {
            panic!()
        };
        let expected = reference(img, wd, ht);
        for (i, e) in expected.iter().enumerate() {
            assert!(
                (run.outputs[0][i] as f32 - e).abs() < 1e-2,
                "pixel {i}: {} vs {e}",
                run.outputs[0][i]
            );
        }
    }

    #[test]
    fn both_stencil_and_reduction_detected() {
        let w = build(Scale::Test, 1);
        let table = paraprox::latency_table_for(&DeviceProfile::gtx560());
        let compiled = paraprox::compile(&w, &table, &paraprox::CompileOptions::minimal()).unwrap();
        let names = compiled.pattern_names();
        assert!(names.contains(&"stencil"), "{names:?}");
        assert!(names.contains(&"reduction"), "{names:?}");
        // One 1x9 tile (row pass) and one 9x1 tile (column pass).
        let tiles: Vec<(usize, usize)> = compiled
            .patterns
            .iter()
            .flat_map(|kp| kp.stencils())
            .map(|c| (c.tile_h, c.tile_w))
            .collect();
        assert!(tiles.contains(&(1, TAPS)), "{tiles:?}");
        assert!(tiles.contains(&(TAPS, 1)), "{tiles:?}");
    }

    #[test]
    fn weights_are_normalized() {
        let sum: f32 = weights().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }
}
