//! Naive Bayes trainer — per-class feature histograms (Machine Learning,
//! Reduction via atomics, mean relative error).
//!
//! Counting is implemented with `atomicAdd`, which serializes across a
//! warp on the GPU — exactly why the paper sees >3.5x on the GPU but only
//! ~1.5x on the CPU when the skipping rate prunes atomic traffic (§4.3).

use paraprox::{Metric, Workload};
use paraprox_ir::{AtomicOp, Expr, KernelBuilder, MemSpace, Program, Ty};
use paraprox_vgpu::{BufferInit, BufferSpec, Dim2, LaunchPlan, Pipeline, PlanArg};

use crate::inputs;
use crate::{App, AppSpec, Scale};

/// Number of classes.
pub const CLASSES: usize = 2;
/// Features per sample.
pub const FEATURES: usize = 8;
/// Histogram buckets per feature.
/// Few cells + many samples keep the per-cell sampling error of the
/// skipping rate small (the paper's 256K-sample inputs have the same
/// property at much larger scale).
pub const BUCKETS: usize = 4;

fn sample_count(scale: Scale) -> usize {
    match scale {
        Scale::Test => 1024,
        Scale::Paper => 4096,
    }
}

const THREADS: usize = 64;

/// Host reference: the count tensor `[class][feature][bucket]`.
pub fn reference(features: &[f32], labels: &[i32]) -> Vec<i32> {
    let n = labels.len();
    let mut counts = vec![0i32; CLASSES * FEATURES * BUCKETS];
    for s in 0..n {
        let class = labels[s] as usize;
        for f in 0..FEATURES {
            let bucket = ((features[s * FEATURES + f] * BUCKETS as f32) as usize).min(BUCKETS - 1);
            counts[class * FEATURES * BUCKETS + f * BUCKETS + bucket] += 1;
        }
    }
    counts
}

/// Generate feature matrix and labels.
pub fn gen_inputs(scale: Scale, seed: u64) -> Vec<BufferInit> {
    let n = sample_count(scale);
    let mut r = inputs::rng(seed ^ 0x4B);
    vec![
        BufferInit::F32(inputs::uniform_f32(&mut r, n * FEATURES, 0.0, 1.0)),
        BufferInit::I32(inputs::uniform_i32(&mut r, n, 0, CLASSES as i32)),
    ]
}

/// Build the workload.
pub fn build(scale: Scale, seed: u64) -> Workload {
    let n = sample_count(scale);
    let chunk = n / THREADS;
    let mut program = Program::new();

    let mut kb = KernelBuilder::new("naive_bayes_train");
    let features = kb.buffer("features", Ty::F32, MemSpace::Global);
    let labels = kb.buffer("labels", Ty::I32, MemSpace::Global);
    let counts = kb.buffer("counts", Ty::I32, MemSpace::Global);
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    let start = kb.let_("start", gid.clone() * Expr::i32(chunk as i32));
    kb.for_up(
        "f",
        Expr::i32(0),
        Expr::i32(FEATURES as i32),
        Expr::i32(1),
        |kb, f| {
            // Inner sample loop: the perforable (atomic) reduction.
            kb.for_up(
                "s",
                start.clone(),
                start.clone() + Expr::i32(chunk as i32),
                Expr::i32(1),
                |kb, s| {
                    let label = kb.let_("label", kb.load(labels, s.clone()));
                    let x = kb.let_(
                        "x",
                        kb.load(features, s.clone() * Expr::i32(FEATURES as i32) + f.clone()),
                    );
                    let bucket = kb.let_(
                        "bucket",
                        Expr::Cast(Ty::I32, Box::new(x * Expr::f32(BUCKETS as f32)))
                            .min(Expr::i32(BUCKETS as i32 - 1)),
                    );
                    let idx = label * Expr::i32((FEATURES * BUCKETS) as i32)
                        + f.clone() * Expr::i32(BUCKETS as i32)
                        + bucket;
                    kb.atomic(AtomicOp::Add, counts, idx, Expr::i32(1));
                },
            );
        },
    );
    let kernel = program.add_kernel(kb.finish());

    let mut data = gen_inputs(scale, seed);
    let mut pipeline = Pipeline::default();
    let feat_b = pipeline.add_buffer(BufferSpec {
        name: "features".to_string(),
        ty: Ty::F32,
        space: MemSpace::Global,
        init: data.remove(0),
    });
    let label_b = pipeline.add_buffer(BufferSpec {
        name: "labels".to_string(),
        ty: Ty::I32,
        space: MemSpace::Global,
        init: data.remove(0),
    });
    let counts_b = pipeline.add_buffer(BufferSpec {
        name: "counts".to_string(),
        ty: Ty::I32,
        space: MemSpace::Global,
        init: BufferInit::Zeroed(CLASSES * FEATURES * BUCKETS),
    });
    pipeline.launches.push(LaunchPlan {
        kernel,
        grid: Dim2::linear(THREADS / 32),
        block: Dim2::linear(32),
        args: vec![
            PlanArg::Buffer(feat_b),
            PlanArg::Buffer(label_b),
            PlanArg::Buffer(counts_b),
        ],
    });
    pipeline.outputs = vec![counts_b];

    Workload::new("Naive Bayes", program, pipeline, Metric::MeanRelative)
        .with_input_slots(vec![feat_b, label_b])
}

/// Registry entry.
pub fn app() -> App {
    App {
        spec: AppSpec {
            name: "Naive Bayes",
            domain: "Machine Learning",
            input_desc: "2K samples x 8 features (paper: 256K x 32)",
            patterns: "Reduction",
            metric: Metric::MeanRelative,
        },
        build,
        gen_inputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_patterns::ReductionKind;
    use paraprox_vgpu::{Device, DeviceProfile};

    #[test]
    fn exact_pipeline_matches_host_reference() {
        let w = build(Scale::Test, 23);
        let mut device = Device::new(DeviceProfile::gtx560());
        let run = w.pipeline.execute(&mut device, &w.program).unwrap();
        let data = gen_inputs(Scale::Test, 23);
        let (BufferInit::F32(features), BufferInit::I32(labels)) = (&data[0], &data[1]) else {
            panic!()
        };
        let expected = reference(features, labels);
        let total: f64 = run.outputs[0].iter().sum();
        assert_eq!(
            total as i64,
            (labels.len() * FEATURES) as i64,
            "every sample-feature pair counted once"
        );
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(run.outputs[0][i] as i32, e, "bucket {i}");
        }
    }

    #[test]
    fn atomic_reduction_detected_on_inner_loop() {
        let w = build(Scale::Test, 1);
        let table = paraprox::latency_table_for(&DeviceProfile::gtx560());
        let compiled = paraprox::compile(&w, &table, &paraprox::CompileOptions::minimal()).unwrap();
        let reds: Vec<_> = compiled
            .patterns
            .iter()
            .flat_map(|kp| kp.reductions())
            .collect();
        assert_eq!(reds.len(), 1, "only the inner sample loop");
        assert!(matches!(
            reds[0].kind,
            ReductionKind::Atomic { op: AtomicOp::Add }
        ));
        assert_eq!(reds[0].path.depth(), 2, "the nested loop");
    }
}
