//! Gamma Correction (Image Processing, Map, mean relative error).
//!
//! Applies `out = 255 · (in/255)^(1/γ)` per pixel. `powf` is a slow
//! subroutine pair on the GPU, and the curve is smooth and monotone —
//! which is why the paper finds this benchmark extremely resilient (99%
//! quality until the table gets too small, then a sudden drop).

use paraprox::{Metric, Workload};
use paraprox_ir::{MemSpace, Program, Scalar, Ty};
use paraprox_vgpu::{BufferInit, BufferSpec, Dim2, LaunchPlan, Pipeline, PlanArg};

use crate::inputs;
use crate::{App, AppSpec, Scale};

/// The gamma value applied.
pub const GAMMA: f32 = 2.2;

/// This application is built from *kernel source* through the
/// `paraprox-lang` frontend — the same path the original system takes
/// through Clang. (1/255 = 0.003921569; 1/2.2 = 0.45454547.)
pub const SOURCE: &str = r#"
__device__ float gamma_correct(float x) {
    float norm = fmaxf(x * 0.003921569f, 1e-6f);
    return 255.0f * powf(norm, 0.45454547f);
}

__global__ void gamma(float* img, float* out) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    out[gid] = gamma_correct(img[gid]);
}
"#;

fn dims(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Test => (64, 32),
        Scale::Paper => (128, 128),
    }
}

/// Host reference.
pub fn reference(x: f32) -> f32 {
    255.0 * (x / 255.0).max(1e-6).powf(1.0 / GAMMA)
}

/// Generate the image input.
pub fn gen_inputs(scale: Scale, seed: u64) -> Vec<BufferInit> {
    let (w, h) = dims(scale);
    let mut r = inputs::rng(seed ^ 0x6A);
    vec![BufferInit::F32(inputs::smooth_image(&mut r, w, h))]
}

/// Build the workload (parsing [`SOURCE`] through the language frontend).
pub fn build(scale: Scale, seed: u64) -> Workload {
    let (w, h) = dims(scale);
    let n = w * h;
    let program: Program = paraprox_lang::parse_program(SOURCE).expect("embedded source is valid");
    let func = program.func_by_name("gamma_correct").expect("declared");
    let kernel = program.kernel_by_name("gamma").expect("declared");

    let mut pipeline = Pipeline::default();
    let img_b = pipeline.add_buffer(BufferSpec {
        name: "img".to_string(),
        ty: Ty::F32,
        space: MemSpace::Global,
        init: gen_inputs(scale, seed).remove(0),
    });
    let out_b = pipeline.add_buffer(BufferSpec::zeroed_f32("out", n));
    pipeline.launches.push(LaunchPlan {
        kernel,
        grid: Dim2::linear(n / 64),
        block: Dim2::linear(64),
        args: vec![PlanArg::Buffer(img_b), PlanArg::Buffer(out_b)],
    });
    pipeline.outputs = vec![out_b];

    let mut trng = inputs::rng(0x6A77A);
    let samples: Vec<Vec<Scalar>> = (0..128)
        .map(|_| vec![Scalar::F32(trng.random_range(0.0f32..255.0))])
        .collect();

    Workload::new("Gamma Correction", program, pipeline, Metric::MeanRelative)
        .with_training(func, samples)
        .with_input_slots(vec![img_b])
}

/// Registry entry.
pub fn app() -> App {
    App {
        spec: AppSpec {
            name: "Gamma Correction",
            domain: "Image Processing",
            input_desc: "128x128 image (paper: 2048x2048)",
            patterns: "Map",
            metric: Metric::MeanRelative,
        },
        build,
        gen_inputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_vgpu::{Device, DeviceProfile};

    #[test]
    fn exact_pipeline_matches_host_reference() {
        let w = build(Scale::Test, 9);
        let mut device = Device::new(DeviceProfile::gtx560());
        let run = w.pipeline.execute(&mut device, &w.program).unwrap();
        let BufferInit::F32(img) = &gen_inputs(Scale::Test, 9)[0] else {
            panic!()
        };
        for (i, &px) in img.iter().enumerate() {
            let expected = reference(px);
            assert!(
                (run.outputs[0][i] as f32 - expected).abs() < 1e-3,
                "pixel {i}"
            );
        }
    }

    #[test]
    fn gamma_curve_is_monotone() {
        let mut prev = reference(0.0);
        for step in 1..=64 {
            let cur = reference(step as f32 * 4.0);
            assert!(cur >= prev);
            prev = cur;
        }
    }

    #[test]
    fn memoization_candidate_detected() {
        let w = build(Scale::Test, 1);
        let table = paraprox::latency_table_for(&DeviceProfile::gtx560());
        let compiled = paraprox::compile(&w, &table, &paraprox::CompileOptions::minimal()).unwrap();
        assert!(compiled.pattern_names().contains(&"map"));
        assert!(!compiled.variants.is_empty());
    }
}
