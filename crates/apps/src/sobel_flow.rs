//! Sobel Flow — edge-stopping image diffusion iterated to convergence
//! (Image Processing, Stencil + loop-of-stencil-reduce, mean relative
//! error). Each step measures the local Sobel gradient and diffuses the
//! pixel toward its 4-neighbor average, attenuated where the gradient is
//! strong — flat regions smooth out, edges survive — until the field
//! stops moving. A Perona–Malik-style anisotropic diffusion with the
//! rational edge-stopping function.

use paraprox::Metric;
use paraprox_ir::{Expr, KernelBuilder, MemSpace, Program, Scalar, Ty};
use paraprox_iter::{ConvergenceSpec, IterModel, ModelParts};
use paraprox_vgpu::Dim2;

use crate::inputs;
use crate::{IterApp, Scale};

/// Field dimensions per scale (power-of-two element counts).
pub fn dims(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Test => (32, 16),
        Scale::Paper => (64, 64),
    }
}

/// Diffusion rate toward the 4-neighbor average.
const LAMBDA: f32 = 0.8;
/// Edge sensitivity: the stopping function is `1 / (1 + K*(|gx|+|gy|))`.
const K: f32 = 0.02;

/// Host reference for one exact step (boundary cells copy through).
pub fn step_reference(field: &[f32], w: usize, h: usize) -> Vec<f32> {
    let mut out = field.to_vec();
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            let i = y * w + x;
            let (nw, n, ne) = (field[i - w - 1], field[i - w], field[i - w + 1]);
            let (wv, c, ev) = (field[i - 1], field[i], field[i + 1]);
            let (sw, s, se) = (field[i + w - 1], field[i + w], field[i + w + 1]);
            let gx = (ne + 2.0 * ev + se) - (nw + 2.0 * wv + sw);
            let gy = (sw + 2.0 * s + se) - (nw + 2.0 * n + ne);
            let stop = 1.0 / (1.0 + K * (gx.abs() + gy.abs()));
            let avg = 0.25 * (n + s + ev + wv);
            out[i] = c + LAMBDA * (avg - c) * stop;
        }
    }
    out
}

/// Generate the initial image: a smooth grayscale field offset away from
/// zero (the mean-relative metric needs a nonzero floor) with per-pixel
/// sensor noise for the diffusion to scrub.
pub fn gen_field(scale: Scale, seed: u64) -> Vec<f32> {
    let (w, h) = dims(scale);
    let mut r = inputs::rng(seed ^ 0x50BE);
    inputs::smooth_image(&mut r, w, h)
        .into_iter()
        .map(|v| 32.0 + v * 0.75 + r.random_range(-2.0f32..2.0))
        .collect()
}

/// Build the iterative model: a full 3x3 tile (Sobel gradients plus the
/// 4-neighbor average) with a scalar row pitch so the stencil detector
/// sees the 2-D shape.
pub fn build(scale: Scale) -> IterModel {
    let (w, h) = dims(scale);
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("sobel_flow");
    let cur = kb.buffer("cur", Ty::F32, MemSpace::Global);
    let next = kb.buffer("next", Ty::F32, MemSpace::Global);
    let width = kb.scalar("w", Ty::I32);
    let height = kb.scalar("h", Ty::I32);
    let x = kb.let_("x", KernelBuilder::global_id_x());
    let y = kb.let_("y", KernelBuilder::global_id_y());
    let i = kb.let_("i", y.clone() * width.clone() + x.clone());
    let interior = x.clone().gt(Expr::i32(0))
        & x.clone().lt(width.clone() - Expr::i32(1))
        & y.clone().gt(Expr::i32(0))
        & y.clone().lt(height.clone() - Expr::i32(1));
    let c = kb.load(cur, i.clone());
    kb.if_else(
        interior,
        |kb| {
            let up = i.clone() - width.clone();
            let dn = i.clone() + width.clone();
            let nw = kb.load(cur, up.clone() - Expr::i32(1));
            let nb = kb.load(cur, up.clone());
            let ne = kb.load(cur, up + Expr::i32(1));
            let wv = kb.load(cur, i.clone() - Expr::i32(1));
            let ev = kb.load(cur, i.clone() + Expr::i32(1));
            let sw = kb.load(cur, dn.clone() - Expr::i32(1));
            let sb = kb.load(cur, dn.clone());
            let se = kb.load(cur, dn + Expr::i32(1));
            let gx = kb.let_(
                "gx",
                (ne.clone() + Expr::f32(2.0) * ev.clone() + se.clone())
                    - (nw.clone() + Expr::f32(2.0) * wv.clone() + sw.clone()),
            );
            let gy = kb.let_(
                "gy",
                (sw + Expr::f32(2.0) * sb.clone() + se) - (nw + Expr::f32(2.0) * nb.clone() + ne),
            );
            let stop = kb.let_(
                "stop",
                Expr::f32(1.0) / (Expr::f32(1.0) + Expr::f32(K) * (gx.abs() + gy.abs())),
            );
            let avg = kb.let_("avg", (nb + sb + ev + wv) * Expr::f32(0.25));
            let stepped = c.clone() + (avg - c.clone()) * Expr::f32(LAMBDA) * stop;
            kb.store(next, i.clone(), stepped);
        },
        |kb| {
            kb.store(next, i.clone(), c.clone());
        },
    );
    let stencil = program.add_kernel(kb.finish());
    IterModel::new(ModelParts {
        name: "sobel_flow".to_string(),
        program,
        stencil,
        width: w,
        height: h,
        grid: Dim2::new(w / 16, h / 8),
        block: Dim2::new(16, 8),
        stencil_scalars: vec![Scalar::I32(w as i32), Scalar::I32(h as i32)],
        metric: Metric::MeanRelative,
    })
    .expect("sobel_flow geometry is valid by construction")
}

/// Convergence criteria per scale.
pub fn spec(scale: Scale) -> ConvergenceSpec {
    ConvergenceSpec {
        tol_abs: 1e-7,
        tol_rel: 0.025,
        max_iters: match scale {
            Scale::Test => 60,
            Scale::Paper => 96,
        },
    }
}

/// Registry entry.
pub fn app() -> IterApp {
    IterApp {
        name: "Sobel Flow",
        domain: "Image Processing",
        input_desc: "64x64 grayscale image (test: 32x16)",
        metric: Metric::MeanRelative,
        build,
        spec,
        gen_field,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_patterns::stencil::find_stencils;
    use paraprox_vgpu::{ArgValue, Device, DeviceProfile};

    #[test]
    fn one_step_matches_host_reference() {
        let model = build(Scale::Test);
        let (w, h) = dims(Scale::Test);
        let field = gen_field(Scale::Test, 9);
        let mut device = Device::new(DeviceProfile::gtx560());
        let cur = device.alloc_f32(MemSpace::Global, &field);
        let next = device.alloc_f32(MemSpace::Global, &vec![0.0f32; w * h]);
        let mut args = vec![ArgValue::Buffer(cur), ArgValue::Buffer(next)];
        args.extend(model.stencil_scalars.iter().map(|&s| ArgValue::Scalar(s)));
        device
            .launch(
                &model.program,
                model.stencil,
                model.grid,
                model.block,
                &args,
            )
            .unwrap();
        let got = device.read_f32(next).unwrap();
        let expected = step_reference(&field, w, h);
        for (i, e) in expected.iter().enumerate() {
            assert!((got[i] - e).abs() < 1e-3, "cell {i}: {} vs {e}", got[i]);
        }
    }

    #[test]
    fn full_3x3_tile_detected_on_image_buffer() {
        let model = build(Scale::Test);
        let cands = find_stencils(model.program.kernel(model.stencil));
        let cand = cands
            .iter()
            .find(|c| c.buffer == paraprox_ir::MemRef::Param(0))
            .expect("stencil candidate on the image");
        assert_eq!((cand.tile_h, cand.tile_w), (3, 3));
        assert!(cand.offsets.len() >= 9, "all nine taps tile");
    }

    #[test]
    fn edges_diffuse_slower_than_flat_regions() {
        // A step edge should move less in one iteration than a noisy
        // flat region of the same amplitude.
        let (w, h) = dims(Scale::Test);
        let mut field = vec![64.0f32; w * h];
        for y in 0..h {
            for x in w / 2..w {
                field[y * w + x] = 192.0;
            }
        }
        // Perturb one flat-region pixel by the same 128 jump.
        field[3 * w + 3] = 192.0;
        let out = step_reference(&field, w, h);
        let edge_i = 3 * w + w / 2; // on the step edge
        let flat_i = 3 * w + 3;
        let edge_move = (out[edge_i] - field[edge_i]).abs();
        let flat_move = (out[flat_i] - field[flat_i]).abs();
        assert!(
            flat_move > edge_move,
            "flat {flat_move} vs edge {edge_move}"
        );
    }
}
