//! The four closed-form functions of the paper's §4.4.2 map-optimization
//! case study (Figures 15–17): the credit-card payoff equation, the shifted
//! Gompertz distribution, log-gamma, and the Bass diffusion model. Each is
//! a single-variable map workload, so both the *nearest* and *linear*
//! lookup schemes apply.

use paraprox::{Metric, Workload};
use paraprox_ir::{Expr, FuncBuilder, FuncId, KernelBuilder, MemSpace, Program, Scalar, Ty};
use paraprox_vgpu::{BufferInit, BufferSpec, Dim2, LaunchPlan, Pipeline, PlanArg};

use crate::inputs;
use crate::Scale;

/// Which of the four case-study functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CaseStudy {
    /// Credit-card payoff months `N(i)` (Eq. 2): `log` + two divisions.
    Credit,
    /// Shifted Gompertz CDF (Eq. 3): exponentials only — SFU-cheap on the
    /// GPU, hence the paper's lowest speedup.
    Gompertz,
    /// `log Γ(z)` via the Stirling series (Eq. 4): `log` + divisions.
    LogGamma,
    /// Bass diffusion model (Eq. 5): exponential + division.
    Bass,
}

impl CaseStudy {
    /// All four, in the paper's order.
    pub fn all() -> [CaseStudy; 4] {
        [
            CaseStudy::Credit,
            CaseStudy::Gompertz,
            CaseStudy::LogGamma,
            CaseStudy::Bass,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CaseStudy::Credit => "Credit",
            CaseStudy::Gompertz => "Gompertz",
            CaseStudy::LogGamma => "lgamma",
            CaseStudy::Bass => "Bass",
        }
    }

    /// The input domain `[lo, hi)`.
    pub fn domain(self) -> (f32, f32) {
        match self {
            CaseStudy::Credit => (1e-4, 7e-4), // daily interest rate
            CaseStudy::Gompertz => (0.0, 10.0),
            CaseStudy::LogGamma => (1.0, 10.0),
            CaseStudy::Bass => (0.0, 20.0),
        }
    }

    /// Host reference.
    pub fn reference(self, x: f32) -> f32 {
        match self {
            CaseStudy::Credit => {
                // N(i) = -(1/30) ln(1 + (b0/p)(1-(1+i)^30)) / ln(1+i)
                let ratio = 25.0; // b0/p
                let growth = (1.0 + x).powf(30.0);
                -(1.0 / 30.0) * (1.0 + ratio * (1.0 - growth)).ln() / (1.0 + x).ln()
            }
            CaseStudy::Gompertz => {
                // F(x) = (1 - e^{-bx}) e^{-η e^{-bx}}
                let (b, eta) = (0.4, 2.0);
                let e = (-b * x).exp();
                (1.0 - e) * (-eta * e).exp()
            }
            CaseStudy::LogGamma => {
                // Stirling: (z-1/2)ln z - z + ln(2π)/2 + 1/(12z) - 1/(360z³)
                let z = x;
                (z - 0.5) * z.ln() - z + 0.918_938_5 + 1.0 / (12.0 * z) - 1.0 / (360.0 * z * z * z)
            }
            CaseStudy::Bass => {
                // S(t) = m (p+q)²/p · e^{-(p+q)t} / (1 + (q/p) e^{-(p+q)t})²
                let (p, q, m) = (0.03f32, 0.38, 100.0);
                let e = (-(p + q) * x).exp();
                let denom = 1.0 + (q / p) * e;
                m * (p + q) * (p + q) / p * e / (denom * denom)
            }
        }
    }

    fn build_func(self, program: &mut Program) -> FuncId {
        let mut fb = FuncBuilder::new(self.name(), Ty::F32);
        let x = fb.scalar("x", Ty::F32);
        match self {
            CaseStudy::Credit => {
                let ratio = 25.0f32;
                let growth = fb.let_("growth", (Expr::f32(1.0) + x.clone()).pow(Expr::f32(30.0)));
                let inner = fb.let_(
                    "inner",
                    Expr::f32(1.0) + Expr::f32(ratio) * (Expr::f32(1.0) - growth),
                );
                fb.ret(Expr::f32(-1.0 / 30.0) * inner.log() / (Expr::f32(1.0) + x.clone()).log());
            }
            CaseStudy::Gompertz => {
                let e = fb.let_("e", (Expr::f32(-0.4) * x).exp());
                fb.ret((Expr::f32(1.0) - e.clone()) * (Expr::f32(-2.0) * e).exp());
            }
            CaseStudy::LogGamma => {
                let z = x;
                let z3 = fb.let_("z3", z.clone() * z.clone() * z.clone());
                fb.ret(
                    (z.clone() - Expr::f32(0.5)) * z.clone().log() - z.clone()
                        + Expr::f32(0.918_938_5)
                        + Expr::f32(1.0) / (Expr::f32(12.0) * z)
                        - Expr::f32(1.0) / (Expr::f32(360.0) * z3),
                );
            }
            CaseStudy::Bass => {
                // Written exactly as Eq. (5), with the coefficient computed
                // in-body — the division is part of the function's cost.
                let (p, q, m) = (0.03f32, 0.38f32, 100.0f32);
                let e = fb.let_("e", (Expr::f32(-(p + q)) * x).exp());
                let coef = fb.let_(
                    "coef",
                    Expr::f32(m) * (Expr::f32(p + q) * Expr::f32(p + q)) / Expr::f32(p),
                );
                let denom = fb.let_("denom", Expr::f32(1.0) + Expr::f32(q / p) * e.clone());
                fb.ret(coef * e / (denom.clone() * denom));
            }
        }
        program.add_func(fb.finish())
    }
}

fn sizes(scale: Scale) -> usize {
    match scale {
        Scale::Test => 512,
        Scale::Paper => 4096,
    }
}

/// Generate the input buffer for a case study.
pub fn gen_inputs(which: CaseStudy, scale: Scale, seed: u64) -> Vec<BufferInit> {
    let (lo, hi) = which.domain();
    let n = sizes(scale);
    let mut r = inputs::rng(seed ^ which as u64 ^ 0xF4);
    vec![BufferInit::F32(inputs::uniform_f32(&mut r, n, lo, hi))]
}

/// Build a map workload for one case study.
pub fn build(which: CaseStudy, scale: Scale, seed: u64) -> Workload {
    let n = sizes(scale);
    let mut program = Program::new();
    let func = which.build_func(&mut program);

    let mut kb = KernelBuilder::new(&format!("map_{}", which.name()));
    let input = kb.buffer("input", Ty::F32, MemSpace::Global);
    let output = kb.buffer("output", Ty::F32, MemSpace::Global);
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    let x = kb.let_("x", kb.load(input, gid.clone()));
    kb.store(
        output,
        gid,
        Expr::Call {
            func,
            args: vec![x],
        },
    );
    let kernel = program.add_kernel(kb.finish());

    let mut pipeline = Pipeline::default();
    let in_b = pipeline.add_buffer(BufferSpec {
        name: "input".to_string(),
        ty: Ty::F32,
        space: MemSpace::Global,
        init: gen_inputs(which, scale, seed).remove(0),
    });
    let out_b = pipeline.add_buffer(BufferSpec::zeroed_f32("output", n));
    pipeline.launches.push(LaunchPlan {
        kernel,
        grid: Dim2::linear(n / 64),
        block: Dim2::linear(64),
        args: vec![PlanArg::Buffer(in_b), PlanArg::Buffer(out_b)],
    });
    pipeline.outputs = vec![out_b];

    let (lo, hi) = which.domain();
    let mut trng = inputs::rng(0xF4A1 ^ which as u64);
    let samples: Vec<Vec<Scalar>> = (0..160)
        .map(|_| vec![Scalar::F32(trng.random_range(lo..hi))])
        .collect();

    Workload::new(which.name(), program, pipeline, Metric::MeanRelative)
        .with_training(func, samples)
        .with_input_slots(vec![in_b])
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_vgpu::{Device, DeviceProfile};

    #[test]
    fn all_four_match_their_references() {
        for which in CaseStudy::all() {
            let w = build(which, Scale::Test, 2);
            let mut device = Device::new(DeviceProfile::gtx560());
            let run = w.pipeline.execute(&mut device, &w.program).unwrap();
            let BufferInit::F32(xs) = &gen_inputs(which, Scale::Test, 2)[0] else {
                panic!()
            };
            for (i, &x) in xs.iter().enumerate() {
                let expected = which.reference(x);
                let got = run.outputs[0][i] as f32;
                assert!(
                    (got - expected).abs() < 1e-3 * expected.abs().max(1.0),
                    "{} at x={x}: {got} vs {expected}",
                    which.name()
                );
            }
        }
    }

    #[test]
    fn reference_values_are_plausible() {
        // Credit: paying off takes years for high rates.
        assert!(CaseStudy::Credit.reference(5e-4) > 20.0);
        // Gompertz CDF within [0, 1].
        for x in [0.5f32, 2.0, 8.0] {
            let v = CaseStudy::Gompertz.reference(x);
            assert!((0.0..=1.0).contains(&v));
        }
        // lgamma(1) = 0 (Stirling is approximate: loose bound).
        assert!(CaseStudy::LogGamma.reference(1.0).abs() < 0.01);
        // Bass sales positive with a peak.
        assert!(CaseStudy::Bass.reference(5.0) > 0.0);
    }

    #[test]
    fn eq1_filters_the_cheap_function() {
        // Credit, lgamma, and Bass are division-heavy and clear the Eq. (1)
        // threshold on the GPU; Gompertz is all SFU exponentials and does
        // not — the paper's case study applies memoization to it anyway
        // (the fig15 harness does the same via the direct memo API).
        let table = paraprox::latency_table_for(&DeviceProfile::gtx560());
        for which in CaseStudy::all() {
            let w = build(which, Scale::Test, 1);
            let compiled =
                paraprox::compile(&w, &table, &paraprox::CompileOptions::minimal()).unwrap();
            let is_candidate = compiled.pattern_names().contains(&"map");
            if which == CaseStudy::Gompertz {
                assert!(!is_candidate, "Gompertz is too cheap for Eq. (1)");
            } else {
                assert!(is_candidate, "{} must be a map candidate", which.name());
            }
        }
    }
}
