//! The 13 soft data-parallel benchmark applications of the Paraprox
//! evaluation (paper Table 1), implemented as kernel-IR workloads.
//!
//! | Application | Domain | Patterns | Error metric |
//! |---|---|---|---|
//! | BlackScholes | Financial | Map | L1-norm |
//! | Quasirandom Generator | Statistics | Map | L1-norm |
//! | Gamma Correction | Image Processing | Map | Mean relative |
//! | BoxMuller | Statistics | Scatter/Gather | L1-norm |
//! | HotSpot | Physics | Stencil | Mean relative |
//! | Convolution Separable | Image Processing | Stencil + Reduction | L2-norm |
//! | Gaussian Filter | Image Processing | Stencil | Mean relative |
//! | Mean Filter | Image Processing | Stencil | Mean relative |
//! | Matrix Multiply | Signal Processing | Reduction + Partition | Mean relative |
//! | Image Denoising | Image Processing | Reduction | Mean relative |
//! | Naive Bayes | Machine Learning | Reduction (atomics) | Mean relative |
//! | Kernel Density Estimation | Machine Learning | Reduction | Mean relative |
//! | Cumulative Frequency Histogram | Signal Processing | Scan | Mean relative |
//!
//! Input sizes are scaled down from the paper's (e.g. 2048² images → 128²)
//! because the kernels execute under an interpreted SIMT simulator; exact
//! and approximate versions scale identically, so speedup ratios are
//! preserved. Every application regenerates its inputs deterministically
//! from a seed, enabling the train-then-deploy protocol of the paper
//! (10 training runs, then measurement runs on fresh inputs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod black_scholes;
pub mod box_muller;
pub mod convolution;
pub mod cumulative_histogram;
pub mod functions;
pub mod gamma_correction;
pub mod gaussian_filter;
pub mod hotspot;
pub mod image_denoising;
pub mod inputs;
pub mod jacobi;
pub mod kde;
pub mod matmul;
pub mod mean_filter;
pub mod naive_bayes;
pub mod quasirandom;
pub mod sobel_flow;

use paraprox::Workload;
use paraprox_iter::{ConvergenceSpec, IterError, IterModel, IterativeApp};
use paraprox_quality::Metric;
use paraprox_vgpu::{BufferInit, Device};

/// Problem-size scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small inputs for fast unit/integration tests.
    Test,
    /// The default experiment size (scaled-down analogue of the paper's).
    Paper,
}

/// Static description of an application (paper Table 1's row).
#[derive(Debug, Clone)]
pub struct AppSpec {
    /// Application name as in the paper.
    pub name: &'static str,
    /// Domain column of Table 1.
    pub domain: &'static str,
    /// Input-size description (at [`Scale::Paper`]).
    pub input_desc: &'static str,
    /// Patterns column of Table 1.
    pub patterns: &'static str,
    /// Error metric.
    pub metric: Metric,
}

/// A registered benchmark application.
#[derive(Clone)]
pub struct App {
    /// Table-1 row.
    pub spec: AppSpec,
    /// Build the full workload (program + pipeline + training data) for a
    /// scale and input seed.
    pub build: fn(Scale, u64) -> Workload,
    /// Regenerate just the input buffers for a seed (same order as the
    /// workload's `input_slots`).
    pub gen_inputs: fn(Scale, u64) -> Vec<BufferInit>,
}

impl std::fmt::Debug for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("App").field("spec", &self.spec).finish()
    }
}

impl App {
    /// An input generator closure suitable for
    /// [`paraprox::DeviceApp::new`].
    pub fn input_gen(&self, scale: Scale) -> Box<dyn FnMut(u64) -> Vec<BufferInit> + Send> {
        let f = self.gen_inputs;
        Box::new(move |seed| f(scale, seed))
    }
}

/// All 13 applications, in the paper's Table 1 order.
pub fn registry() -> Vec<App> {
    vec![
        black_scholes::app(),
        quasirandom::app(),
        gamma_correction::app(),
        box_muller::app(),
        hotspot::app(),
        convolution::app(),
        gaussian_filter::app(),
        mean_filter::app(),
        matmul::app(),
        image_denoising::app(),
        naive_bayes::app(),
        kde::app(),
        cumulative_histogram::app(),
    ]
}

/// Find a registered application by (case-insensitive) name prefix, or
/// by the initials of a multi-word name (`kde` → Kernel Density
/// Estimation, `cfh` → Cumulative Frequency Histogram).
pub fn find(name: &str) -> Option<App> {
    let lower = name.to_lowercase();
    registry().into_iter().find(|a| {
        let full = a.spec.name.to_lowercase();
        if full.starts_with(&lower) {
            return true;
        }
        let initials: String = full
            .split_whitespace()
            .filter_map(|w| w.chars().next())
            .collect();
        initials.len() > 1 && initials == lower
    })
}

/// A registered *iterative* application: a loop-of-stencil-reduce job
/// ([`paraprox_iter::IterativeApp`]) rather than a one-shot pipeline.
/// These are the convergence-driven counterparts of the Table-1 stencil
/// workloads; their knob is the approximation *schedule*, not a single
/// kernel rewrite.
#[derive(Clone)]
pub struct IterApp {
    /// Application name.
    pub name: &'static str,
    /// Domain, in Table-1 style.
    pub domain: &'static str,
    /// Input-size description (at [`Scale::Paper`]).
    pub input_desc: &'static str,
    /// Error metric comparing converged fields.
    pub metric: Metric,
    /// Build the device-independent iterative model for a scale.
    pub build: fn(Scale) -> IterModel,
    /// Convergence criteria for a scale.
    pub spec: fn(Scale) -> ConvergenceSpec,
    /// Regenerate the initial field for a scale and seed.
    pub gen_field: fn(Scale, u64) -> Vec<f32>,
}

impl std::fmt::Debug for IterApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IterApp")
            .field("name", &self.name)
            .field("domain", &self.domain)
            .finish_non_exhaustive()
    }
}

impl IterApp {
    /// Bind the app to a device with the full preset schedule ladder
    /// admitted (every rung gated through the analysis suite).
    ///
    /// # Errors
    ///
    /// Propagates [`IterError`] when the model or any preset schedule
    /// fails the safety gate.
    pub fn instantiate(&self, scale: Scale, device: Device) -> Result<IterativeApp, IterError> {
        let gen = self.field_gen(scale);
        IterativeApp::new(device, (self.build)(scale), (self.spec)(scale), gen)?.with_presets()
    }

    /// A boxed field generator for [`paraprox_iter::IterativeApp::new`].
    pub fn field_gen(&self, scale: Scale) -> paraprox_iter::FieldGen {
        let f = self.gen_field;
        Box::new(move |seed| f(scale, seed))
    }
}

/// The iterative applications, in registry order.
pub fn iter_registry() -> Vec<IterApp> {
    vec![jacobi::app(), sobel_flow::app()]
}

/// Find an iterative application by (case-insensitive) name prefix.
pub fn find_iter(name: &str) -> Option<IterApp> {
    let lower = name.to_lowercase();
    iter_registry()
        .into_iter()
        .find(|a| a.name.to_lowercase().starts_with(&lower))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_thirteen_apps_in_table1_order() {
        let apps = registry();
        assert_eq!(apps.len(), 13);
        assert_eq!(apps[0].spec.name, "BlackScholes");
        assert_eq!(apps[12].spec.name, "Cumulative Frequency Histogram");
        // Names unique.
        let mut names: Vec<&str> = apps.iter().map(|a| a.spec.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 13);
    }

    #[test]
    fn find_by_prefix() {
        assert!(find("black").is_some());
        assert!(find("HotSpot").is_some());
        assert!(find("nonexistent").is_none());
    }

    #[test]
    fn find_by_initials() {
        assert_eq!(find("kde").unwrap().spec.name, "Kernel Density Estimation");
        assert_eq!(
            find("cfh").unwrap().spec.name,
            "Cumulative Frequency Histogram"
        );
        // Single letters are prefixes only, never initials.
        assert_eq!(find("b").unwrap().spec.name, "BlackScholes");
    }

    #[test]
    fn every_app_builds_and_regenerates_inputs() {
        for app in registry() {
            let w = (app.build)(Scale::Test, 1);
            assert!(!w.pipeline.launches.is_empty(), "{}", app.spec.name);
            assert!(!w.pipeline.outputs.is_empty(), "{}", app.spec.name);
            let inputs = (app.gen_inputs)(Scale::Test, 1);
            assert_eq!(
                inputs.len(),
                w.input_slots.len(),
                "{}: input generator arity",
                app.spec.name
            );
            // Shapes must match the declared slots.
            for (init, &slot) in inputs.iter().zip(&w.input_slots) {
                assert_eq!(
                    init.len(),
                    w.pipeline.buffers[slot].init.len(),
                    "{}: input shape for slot {slot}",
                    app.spec.name
                );
            }
        }
    }

    #[test]
    fn inputs_are_deterministic_per_seed() {
        for app in registry() {
            let a = (app.gen_inputs)(Scale::Test, 7);
            let b = (app.gen_inputs)(Scale::Test, 7);
            let c = (app.gen_inputs)(Scale::Test, 8);
            assert_eq!(a, b, "{}: same seed must reproduce", app.spec.name);
            assert_ne!(a, c, "{}: different seed must differ", app.spec.name);
        }
    }

    #[test]
    fn iter_registry_lists_both_apps_and_finds_by_prefix() {
        let apps = iter_registry();
        assert_eq!(apps.len(), 2);
        assert_eq!(find_iter("jac").unwrap().name, "Jacobi");
        assert_eq!(find_iter("sobel").unwrap().name, "Sobel Flow");
        assert!(find_iter("nonexistent").is_none());
    }

    #[test]
    fn every_iter_app_instantiates_and_converges_exactly() {
        use paraprox_iter::IterSchedule;
        use paraprox_vgpu::DeviceProfile;
        for app in iter_registry() {
            let mut job = app
                .instantiate(Scale::Test, Device::new(DeviceProfile::gtx560()))
                .unwrap_or_else(|e| panic!("{}: {e}", app.name));
            // Exact presets minus the exact rung were admitted.
            assert!(job.schedules().len() >= 3, "{}", app.name);
            let out = job.run_schedule(&IterSchedule::exact(), 5).unwrap();
            let run = job.last_run().unwrap();
            assert!(run.converged, "{}: {run:?}", app.name);
            assert!(
                run.iterations < (app.spec)(Scale::Test).max_iters,
                "{run:?}"
            );
            assert_eq!(out.output.len(), job.model().elems());
        }
    }

    #[test]
    fn iter_fields_are_deterministic_per_seed() {
        for app in iter_registry() {
            let a = (app.gen_field)(Scale::Test, 7);
            let b = (app.gen_field)(Scale::Test, 7);
            let c = (app.gen_field)(Scale::Test, 8);
            assert_eq!(a, b, "{}: same seed must reproduce", app.name);
            assert_ne!(a, c, "{}: different seed must differ", app.name);
        }
    }
}
