//! BlackScholes — European option pricing (Financial, Map, L1-norm).
//!
//! The paper's flagship memoization example (its Figures 3 and 4): the
//! kernel calls `BlackScholesBody`-style pure functions with five inputs of
//! which two — the riskless rate `R` and volatility `V` — are constant, so
//! bit tuning assigns them zero quantization bits.

use paraprox::{Metric, Workload};
use paraprox_ir::{MemSpace, Scalar, Ty};
use paraprox_vgpu::{BufferInit, BufferSpec, Dim2, LaunchPlan, Pipeline, PlanArg};

use crate::inputs;
use crate::{App, AppSpec, Scale};

/// Riskless rate (constant across the input set, as in the CUDA SDK).
pub const RISKLESS_RATE: f32 = 0.02;
/// Volatility (constant across the input set).
pub const VOLATILITY: f32 = 0.30;

fn sizes(scale: Scale) -> usize {
    match scale {
        Scale::Test => 512,
        Scale::Paper => 4096,
    }
}

const BLOCK: usize = 64;

/// The application's kernel source (built through the `paraprox-lang`
/// frontend, as the original system consumes CUDA through Clang). `Cnd()`
/// is deliberately below the Eq. (1) memoization threshold; the two body
/// functions are far above it, and their `R`/`V` arguments are constants —
/// the setup of the paper's Figure 4.
pub const SOURCE: &str = r#"
__device__ float cnd(float d) {
    float k = 1.0f / (1.0f + 0.2316419f * fabsf(d));
    float poly = k * (0.31938153f + k * (-0.356563782f + k * (1.781477937f
        + k * (-1.821255978f + k * 1.330274429f))));
    float w = 0.39894228f * expf(-0.5f * d * d) * poly;
    return d >= 0.0f ? 1.0f - w : w;
}

__device__ float bs_call(float s, float x, float t, float r, float v) {
    float sqrt_t = sqrtf(t);
    float d1 = (logf(s / x) + (r + v * v * 0.5f) * t) / (v * sqrt_t);
    float d2 = d1 - v * sqrt_t;
    float exp_rt = expf(-(r * t));
    return s * cnd(d1) - x * exp_rt * cnd(d2);
}

__device__ float bs_put(float s, float x, float t, float r, float v) {
    float sqrt_t = sqrtf(t);
    float d1 = (logf(s / x) + (r + v * v * 0.5f) * t) / (v * sqrt_t);
    float d2 = d1 - v * sqrt_t;
    float exp_rt = expf(-(r * t));
    return x * exp_rt * cnd(-d2) - s * cnd(-d1);
}

__global__ void black_scholes(float* price, float* strike, float* years,
                              float* call, float* put) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    float s = price[gid];
    float x = strike[gid];
    float t = years[gid];
    call[gid] = bs_call(s, x, t, 0.02f, 0.3f);
    put[gid] = bs_put(s, x, t, 0.02f, 0.3f);
}
"#;

/// Host reference implementation (for tests).
pub fn reference(s: f32, x: f32, t: f32) -> (f32, f32) {
    fn cnd(d: f32) -> f32 {
        let k = 1.0 / (1.0 + 0.231_641_9 * d.abs());
        let poly = k
            * (0.319_381_53
                + k * (-0.356_563_78 + k * (1.781_477_9 + k * (-1.821_255_9 + k * 1.330_274_5))));
        let w = 0.398_942_3 * (-0.5 * d * d).exp() * poly;
        if d >= 0.0 {
            1.0 - w
        } else {
            w
        }
    }
    let (r, v) = (RISKLESS_RATE, VOLATILITY);
    let sqrt_t = t.sqrt();
    let d1 = ((s / x).ln() + (r + v * v * 0.5) * t) / (v * sqrt_t);
    let d2 = d1 - v * sqrt_t;
    let exp_rt = (-(r * t)).exp();
    let call = s * cnd(d1) - x * exp_rt * cnd(d2);
    let put = x * exp_rt * cnd(-d2) - s * cnd(-d1);
    (call, put)
}

/// Generate the three input buffers (stock price, strike, time).
pub fn gen_inputs(scale: Scale, seed: u64) -> Vec<BufferInit> {
    let n = sizes(scale);
    let mut r = inputs::rng(seed ^ 0xB5);
    vec![
        BufferInit::F32(inputs::uniform_f32(&mut r, n, 5.0, 30.0)),
        BufferInit::F32(inputs::uniform_f32(&mut r, n, 1.0, 100.0)),
        BufferInit::F32(inputs::uniform_f32(&mut r, n, 0.25, 10.0)),
    ]
}

/// Build the workload (parsing [`SOURCE`] through the language frontend).
pub fn build(scale: Scale, seed: u64) -> Workload {
    let n = sizes(scale);
    let program = paraprox_lang::parse_program(SOURCE).expect("embedded source is valid");
    let call_f = program.func_by_name("bs_call").expect("declared");
    let put_f = program.func_by_name("bs_put").expect("declared");
    let kernel = program.kernel_by_name("black_scholes").expect("declared");

    let data = gen_inputs(scale, seed);
    let mut pipeline = Pipeline::default();
    let mut slots = Vec::new();
    for (name, init) in ["price", "strike", "years"].iter().zip(data) {
        slots.push(pipeline.add_buffer(BufferSpec {
            name: (*name).to_string(),
            ty: Ty::F32,
            space: MemSpace::Global,
            init,
        }));
    }
    let call_b = pipeline.add_buffer(BufferSpec::zeroed_f32("call", n));
    let put_b = pipeline.add_buffer(BufferSpec::zeroed_f32("put", n));
    pipeline.launches.push(LaunchPlan {
        kernel,
        grid: Dim2::linear(n / BLOCK),
        block: Dim2::linear(BLOCK),
        args: vec![
            PlanArg::Buffer(slots[0]),
            PlanArg::Buffer(slots[1]),
            PlanArg::Buffer(slots[2]),
            PlanArg::Buffer(call_b),
            PlanArg::Buffer(put_b),
        ],
    });
    pipeline.outputs = vec![call_b, put_b];

    // Training tuples for memoization: drawn from the same distributions,
    // with R and V constant (the paper's Figure 4 setup).
    let mut trng = inputs::rng(0xDEAD_BEEF);
    let samples: Vec<Vec<Scalar>> = (0..96)
        .map(|_| {
            vec![
                Scalar::F32(trng.random_range(5.0f32..30.0)),
                Scalar::F32(trng.random_range(1.0f32..100.0)),
                Scalar::F32(trng.random_range(0.25f32..10.0)),
                Scalar::F32(RISKLESS_RATE),
                Scalar::F32(VOLATILITY),
            ]
        })
        .collect();

    Workload::new("BlackScholes", program, pipeline, Metric::L1Norm)
        .with_training(call_f, samples.clone())
        .with_training(put_f, samples)
        .with_input_slots(slots)
}

/// Registry entry.
pub fn app() -> App {
    App {
        spec: AppSpec {
            name: "BlackScholes",
            domain: "Financial",
            input_desc: "4K options (paper: 4M)",
            patterns: "Map",
            metric: Metric::L1Norm,
        },
        build,
        gen_inputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_vgpu::{Device, DeviceProfile};

    #[test]
    fn exact_pipeline_matches_host_reference() {
        let w = build(Scale::Test, 42);
        let mut device = Device::new(DeviceProfile::gtx560());
        let run = w.pipeline.execute(&mut device, &w.program).unwrap();
        let inputs = gen_inputs(Scale::Test, 42);
        let (BufferInit::F32(s), BufferInit::F32(x), BufferInit::F32(t)) =
            (&inputs[0], &inputs[1], &inputs[2])
        else {
            panic!("unexpected input kinds");
        };
        for i in 0..s.len() {
            let (call, put) = reference(s[i], x[i], t[i]);
            let sim_call = run.outputs[0][i] as f32;
            let sim_put = run.outputs[1][i] as f32;
            assert!(
                (sim_call - call).abs() < 1e-3 * call.abs().max(1.0),
                "call {i}: {sim_call} vs {call}"
            );
            assert!(
                (sim_put - put).abs() < 1e-3 * put.abs().max(1.0),
                "put {i}: {sim_put} vs {put}"
            );
        }
    }

    #[test]
    fn map_pattern_detected_on_both_body_functions() {
        let w = build(Scale::Test, 1);
        let table = paraprox::latency_table_for(&DeviceProfile::gtx560());
        let compiled = paraprox::compile(&w, &table, &paraprox::CompileOptions::minimal()).unwrap();
        assert!(compiled.pattern_names().contains(&"map"));
        let maps: usize = compiled.patterns.iter().map(|kp| kp.maps().count()).sum();
        assert_eq!(maps, 2, "bs_call and bs_put must both be candidates");
        assert!(!compiled.variants.is_empty());
    }
}
