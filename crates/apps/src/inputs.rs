//! Deterministic input generators shared by the benchmark applications.

use paraprox_prng::Rng;

/// A seeded RNG for reproducible inputs.
pub fn rng(seed: u64) -> Rng {
    Rng::seed_from_u64(seed)
}

/// `n` uniform floats in `[lo, hi)`.
pub fn uniform_f32(rng: &mut Rng, n: usize, lo: f32, hi: f32) -> Vec<f32> {
    (0..n).map(|_| rng.random_range(lo..hi)).collect()
}

/// `n` uniform floats in the *open* interval `(0, 1)` — safe to take logs.
pub fn uniform_open01(rng: &mut Rng, n: usize) -> Vec<f32> {
    (0..n)
        .map(|_| rng.random_range(1e-6f32..1.0 - 1e-6))
        .collect()
}

/// `n` uniform integers in `[lo, hi)`.
pub fn uniform_i32(rng: &mut Rng, n: usize, lo: i32, hi: i32) -> Vec<i32> {
    (0..n).map(|_| rng.random_range(lo..hi)).collect()
}

/// A random permutation of `0..n` (for gather index buffers).
pub fn permutation(rng: &mut Rng, n: usize) -> Vec<i32> {
    let mut idx: Vec<i32> = (0..n as i32).collect();
    // Fisher-Yates.
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

/// A `w`×`h` grayscale image (row-major, values in `[0, 255]`) with strong
/// spatial correlation: a sum of random low-frequency sinusoids plus mild
/// per-pixel noise. This reproduces the value-locality statistics that the
/// paper's Figure 5 measures on natural images — most pixels differ from
/// their neighbors by less than 10%.
pub fn smooth_image(rng: &mut Rng, w: usize, h: usize) -> Vec<f32> {
    // Random low frequencies and phases.
    let waves: Vec<(f32, f32, f32, f32, f32)> = (0..4)
        .map(|_| {
            (
                rng.random_range(0.01f32..0.08), // fx
                rng.random_range(0.01f32..0.08), // fy
                rng.random_range(0.0f32..std::f32::consts::TAU),
                rng.random_range(0.0f32..std::f32::consts::TAU),
                rng.random_range(0.2f32..1.0), // amplitude
            )
        })
        .collect();
    let amp_total: f32 = waves.iter().map(|wv| wv.4).sum();
    let mut img = Vec::with_capacity(w * h);
    for y in 0..h {
        for x in 0..w {
            let mut v = 0.0f32;
            for &(fx, fy, px, py, a) in &waves {
                v += a * ((x as f32 * fx + px).sin() + (y as f32 * fy + py).cos());
            }
            // Normalize to [0,1], add mild noise, scale to [0,255].
            let norm = (v / (2.0 * amp_total) + 0.5).clamp(0.0, 1.0);
            let noise = rng.random_range(-0.01f32..0.01);
            img.push(((norm + noise).clamp(0.0, 1.0)) * 255.0);
        }
    }
    img
}

/// Mean percent difference of each pixel to its 8 neighbors (interior
/// pixels only) — the statistic the paper's Figure 5 histograms.
pub fn neighbor_percent_differences(img: &[f32], w: usize, h: usize) -> Vec<f64> {
    let mut out = Vec::new();
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            let c = f64::from(img[y * w + x]);
            let mut total = 0.0;
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    if dy == 0 && dx == 0 {
                        continue;
                    }
                    let n =
                        f64::from(img[((y as i64 + dy) as usize) * w + (x as i64 + dx) as usize]);
                    total += (c - n).abs() / c.abs().max(1.0);
                }
            }
            out.push(100.0 * total / 8.0);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let a = uniform_f32(&mut rng(3), 16, 0.0, 1.0);
        let b = uniform_f32(&mut rng(3), 16, 0.0, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn open01_avoids_endpoints() {
        let v = uniform_open01(&mut rng(1), 1000);
        assert!(v.iter().all(|&x| x > 0.0 && x < 1.0));
    }

    #[test]
    fn permutation_is_a_bijection() {
        let p = permutation(&mut rng(2), 64);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<i32>>());
    }

    #[test]
    fn smooth_images_have_the_fig5_locality_property() {
        // The paper: >70% of pixels differ <10% from their neighbors.
        let img = smooth_image(&mut rng(4), 64, 64);
        let diffs = neighbor_percent_differences(&img, 64, 64);
        let under_10 = diffs.iter().filter(|&&d| d < 10.0).count();
        let frac = under_10 as f64 / diffs.len() as f64;
        assert!(frac > 0.7, "only {:.0}% of pixels are local", frac * 100.0);
    }

    #[test]
    fn image_values_in_range() {
        let img = smooth_image(&mut rng(5), 32, 32);
        assert!(img.iter().all(|&v| (0.0..=255.0).contains(&v)));
        assert_eq!(img.len(), 32 * 32);
    }
}
