//! Kernel Density Estimation (Machine Learning, Reduction, mean relative
//! error). Each query point sums Gaussian kernels over the sample set —
//! an `exp`-dominated reduction. Because `exp` runs on the GPU's special
//! function unit but is a software routine on the CPU, skipping samples
//! buys more on the CPU (the paper's §4.3 observation).

use paraprox::{Metric, Workload};
use paraprox_ir::{Expr, KernelBuilder, MemSpace, Program, Scalar, Ty};
use paraprox_vgpu::{BufferInit, BufferSpec, Dim2, LaunchPlan, Pipeline, PlanArg};

use crate::inputs;
use crate::{App, AppSpec, Scale};

/// (queries, samples)
fn sizes(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Test => (64, 128),
        Scale::Paper => (256, 512),
    }
}

/// Kernel bandwidth.
pub const BANDWIDTH: f32 = 0.1;

/// Host reference.
pub fn reference(queries: &[f32], samples: &[f32]) -> Vec<f32> {
    let inv2h2 = 1.0 / (2.0 * BANDWIDTH * BANDWIDTH);
    queries
        .iter()
        .map(|&q| {
            let total: f32 = samples
                .iter()
                .map(|&s| (-(q - s) * (q - s) * inv2h2).exp())
                .sum();
            total / samples.len() as f32
        })
        .collect()
}

/// Generate query points (uniform) and samples (a clustered three-mode
/// mixture — skipping samples must actually cost density accuracy, or the
/// tuner would crank the skipping rate arbitrarily high).
pub fn gen_inputs(scale: Scale, seed: u64) -> Vec<BufferInit> {
    let (m, n) = sizes(scale);
    let mut r = inputs::rng(seed ^ 0x4D5);
    let queries = inputs::uniform_f32(&mut r, m, 0.0, 1.0);
    let modes = [0.2f32, 0.55, 0.85];
    let samples: Vec<f32> = (0..n)
        .map(|_| {
            let mode = modes[r.random_range(0..modes.len())];
            // Box-Muller-free bounded jitter around the mode.
            let jitter: f32 = r.random_range(-0.06f32..0.06) + r.random_range(-0.06f32..0.06);
            (mode + jitter).clamp(0.0, 1.0)
        })
        .collect();
    vec![BufferInit::F32(queries), BufferInit::F32(samples)]
}

/// Build the workload.
pub fn build(scale: Scale, seed: u64) -> Workload {
    let (m, n) = sizes(scale);
    let mut program = Program::new();

    let mut kb = KernelBuilder::new("kde");
    let queries = kb.buffer("queries", Ty::F32, MemSpace::Global);
    let samples = kb.buffer("samples", Ty::F32, MemSpace::Global);
    let out = kb.buffer("density", Ty::F32, MemSpace::Global);
    let count = kb.scalar("count", Ty::I32);
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    let q = kb.let_("q", kb.load(queries, gid.clone()));
    let inv2h2 = 1.0 / (2.0 * BANDWIDTH * BANDWIDTH);
    let acc = kb.let_mut("acc", Ty::F32, Expr::f32(0.0));
    kb.for_up("i", Expr::i32(0), count.clone(), Expr::i32(1), |kb, i| {
        let s = kb.let_("s", kb.load(samples, i));
        let d = kb.let_("d", q.clone() - s);
        kb.assign(
            acc,
            Expr::Var(acc) + (-(d.clone() * d.clone()) * Expr::f32(inv2h2)).exp(),
        );
    });
    kb.store(out, gid, Expr::Var(acc) * Expr::f32(1.0 / n as f32));
    let kernel = program.add_kernel(kb.finish());

    let mut data = gen_inputs(scale, seed);
    let mut pipeline = Pipeline::default();
    let q_b = pipeline.add_buffer(BufferSpec {
        name: "queries".to_string(),
        ty: Ty::F32,
        space: MemSpace::Global,
        init: data.remove(0),
    });
    let s_b = pipeline.add_buffer(BufferSpec {
        name: "samples".to_string(),
        ty: Ty::F32,
        space: MemSpace::Global,
        init: data.remove(0),
    });
    let out_b = pipeline.add_buffer(BufferSpec::zeroed_f32("density", m));
    pipeline.launches.push(LaunchPlan {
        kernel,
        grid: Dim2::linear(m / 32),
        block: Dim2::linear(32),
        args: vec![
            PlanArg::Buffer(q_b),
            PlanArg::Buffer(s_b),
            PlanArg::Buffer(out_b),
            PlanArg::Scalar(Scalar::I32(n as i32)),
        ],
    });
    pipeline.outputs = vec![out_b];

    Workload::new(
        "Kernel Density Estimation",
        program,
        pipeline,
        Metric::MeanRelative,
    )
    .with_input_slots(vec![q_b, s_b])
}

/// Registry entry.
pub fn app() -> App {
    App {
        spec: AppSpec {
            name: "Kernel Density Estimation",
            domain: "Machine Learning",
            input_desc: "256 queries x 512 samples (paper: 256K x 32)",
            patterns: "Reduction",
            metric: Metric::MeanRelative,
        },
        build,
        gen_inputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_vgpu::{Device, DeviceProfile};

    #[test]
    fn exact_pipeline_matches_host_reference() {
        let w = build(Scale::Test, 29);
        let mut device = Device::new(DeviceProfile::gtx560());
        let run = w.pipeline.execute(&mut device, &w.program).unwrap();
        let data = gen_inputs(Scale::Test, 29);
        let (BufferInit::F32(q), BufferInit::F32(s)) = (&data[0], &data[1]) else {
            panic!()
        };
        let expected = reference(q, s);
        for (i, e) in expected.iter().enumerate() {
            assert!(
                (run.outputs[0][i] as f32 - e).abs() < 1e-4,
                "query {i}: {} vs {e}",
                run.outputs[0][i]
            );
        }
    }

    #[test]
    fn reduction_detected() {
        let w = build(Scale::Test, 1);
        let table = paraprox::latency_table_for(&DeviceProfile::gtx560());
        let compiled = paraprox::compile(&w, &table, &paraprox::CompileOptions::minimal()).unwrap();
        assert_eq!(compiled.pattern_names(), vec!["reduction"]);
    }
}
