//! Matrix Multiply — tiled GEMM (Signal Processing, Reduction-Partition,
//! mean relative error). Shared-memory tiles (the partition pattern) with
//! an inner dot-product loop (the reduction the optimization perforates).

use paraprox::{Metric, Workload};
use paraprox_ir::{Expr, KernelBuilder, MemSpace, Program, Scalar, Ty};
use paraprox_vgpu::{BufferInit, BufferSpec, Dim2, LaunchPlan, Pipeline, PlanArg};

use crate::inputs;
use crate::{App, AppSpec, Scale};

/// Tile edge (block is TILE×TILE threads).
pub const TILE: usize = 8;

/// (M, K, N): A is M×K, B is K×N, C is M×N.
fn dims(scale: Scale) -> (usize, usize, usize) {
    match scale {
        Scale::Test => (16, 32, 16),
        Scale::Paper => (32, 64, 32),
    }
}

/// Host reference.
pub fn reference(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a[i * k + kk] * b[kk * n + j];
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// Generate the two factor matrices (positive values keep the relative
/// error of sampling small, as with the paper's well-conditioned inputs).
pub fn gen_inputs(scale: Scale, seed: u64) -> Vec<BufferInit> {
    let (m, k, n) = dims(scale);
    let mut r = inputs::rng(seed ^ 0x3A7);
    vec![
        BufferInit::F32(inputs::uniform_f32(&mut r, m * k, 0.5, 1.5)),
        BufferInit::F32(inputs::uniform_f32(&mut r, k * n, 0.5, 1.5)),
    ]
}

/// Build the workload.
pub fn build(scale: Scale, seed: u64) -> Workload {
    let (m, k, n) = dims(scale);
    let mut program = Program::new();

    let mut kb = KernelBuilder::new("matmul_tiled");
    let a = kb.buffer("a", Ty::F32, MemSpace::Global);
    let b = kb.buffer("b", Ty::F32, MemSpace::Global);
    let c = kb.buffer("c", Ty::F32, MemSpace::Global);
    let kdim = kb.scalar("k", Ty::I32);
    let ndim = kb.scalar("n", Ty::I32);
    let a_s = kb.shared_array("a_s", Ty::F32, TILE * TILE);
    let b_s = kb.shared_array("b_s", Ty::F32, TILE * TILE);
    let tx = kb.let_("tx", KernelBuilder::thread_id_x());
    let ty = kb.let_("ty", KernelBuilder::thread_id_y());
    let row = kb.let_("row", KernelBuilder::global_id_y());
    let col = kb.let_("col", KernelBuilder::global_id_x());
    let acc = kb.let_mut("acc", Ty::F32, Expr::f32(0.0));
    let tiles = (k / TILE) as i32;
    kb.for_up(
        "t",
        Expr::i32(0),
        Expr::i32(tiles),
        Expr::i32(1),
        |kb, t| {
            // Stage one tile of A and one tile of B.
            let a_idx =
                row.clone() * kdim.clone() + t.clone() * Expr::i32(TILE as i32) + tx.clone();
            kb.store(
                a_s,
                ty.clone() * Expr::i32(TILE as i32) + tx.clone(),
                kb.load(a, a_idx),
            );
            let b_idx =
                (t.clone() * Expr::i32(TILE as i32) + ty.clone()) * ndim.clone() + col.clone();
            kb.store(
                b_s,
                ty.clone() * Expr::i32(TILE as i32) + tx.clone(),
                kb.load(b, b_idx),
            );
            kb.sync();
            kb.for_up(
                "kk",
                Expr::i32(0),
                Expr::i32(TILE as i32),
                Expr::i32(1),
                |kb, kk| {
                    let av = kb.load(a_s, ty.clone() * Expr::i32(TILE as i32) + kk.clone());
                    let bv = kb.load(b_s, kk.clone() * Expr::i32(TILE as i32) + tx.clone());
                    kb.assign(acc, Expr::Var(acc) + av * bv);
                },
            );
            kb.sync();
        },
    );
    kb.store(c, row * ndim.clone() + col, Expr::Var(acc));
    let kernel = program.add_kernel(kb.finish());

    let mut data = gen_inputs(scale, seed);
    let mut pipeline = Pipeline::default();
    let a_b = pipeline.add_buffer(BufferSpec {
        name: "a".to_string(),
        ty: Ty::F32,
        space: MemSpace::Global,
        init: data.remove(0),
    });
    let b_b = pipeline.add_buffer(BufferSpec {
        name: "b".to_string(),
        ty: Ty::F32,
        space: MemSpace::Global,
        init: data.remove(0),
    });
    let c_b = pipeline.add_buffer(BufferSpec::zeroed_f32("c", m * n));
    pipeline.launches.push(LaunchPlan {
        kernel,
        grid: Dim2::new(n / TILE, m / TILE),
        block: Dim2::new(TILE, TILE),
        args: vec![
            PlanArg::Buffer(a_b),
            PlanArg::Buffer(b_b),
            PlanArg::Buffer(c_b),
            PlanArg::Scalar(Scalar::I32(k as i32)),
            PlanArg::Scalar(Scalar::I32(n as i32)),
        ],
    });
    pipeline.outputs = vec![c_b];

    Workload::new("Matrix Multiply", program, pipeline, Metric::MeanRelative)
        .with_input_slots(vec![a_b, b_b])
}

/// Registry entry.
pub fn app() -> App {
    App {
        spec: AppSpec {
            name: "Matrix Multiply",
            domain: "Signal Processing",
            input_desc: "32x64 x 64x32, 8x8 tiles (paper: 2560x2560)",
            patterns: "Reduction-Partition",
            metric: Metric::MeanRelative,
        },
        build,
        gen_inputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_vgpu::{Device, DeviceProfile};

    #[test]
    fn exact_pipeline_matches_host_reference() {
        let w = build(Scale::Test, 31);
        let (m, k, n) = dims(Scale::Test);
        let mut device = Device::new(DeviceProfile::gtx560());
        let run = w.pipeline.execute(&mut device, &w.program).unwrap();
        let data = gen_inputs(Scale::Test, 31);
        let (BufferInit::F32(a), BufferInit::F32(b)) = (&data[0], &data[1]) else {
            panic!()
        };
        let expected = reference(a, b, m, k, n);
        for (i, e) in expected.iter().enumerate() {
            assert!(
                (run.outputs[0][i] as f32 - e).abs() < 1e-3 * e.abs().max(1.0),
                "entry {i}: {} vs {e}",
                run.outputs[0][i]
            );
        }
    }

    #[test]
    fn reduction_and_partition_detected() {
        let w = build(Scale::Test, 1);
        let table = paraprox::latency_table_for(&DeviceProfile::gtx560());
        let compiled = paraprox::compile(&w, &table, &paraprox::CompileOptions::minimal()).unwrap();
        let names = compiled.pattern_names();
        assert!(names.contains(&"reduction"), "{names:?}");
        assert!(names.contains(&"partition"), "{names:?}");
        // The reduction variant must perforate only the innermost loop
        // (perforating both nested loops would square the sampling rate).
        assert!(compiled
            .variants
            .iter()
            .any(|v| matches!(v.knob, paraprox::Knob::Reduction { .. })));
    }
}
