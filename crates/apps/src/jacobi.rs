//! Jacobi — damped Jacobi heat diffusion iterated to convergence
//! (Physics, Stencil + loop-of-stencil-reduce, mean relative error).
//! The iterative counterpart of the single-step HotSpot workload: the
//! 5-point relaxation step repeats until the mean residual |next - cur|
//! falls under tolerance.

use paraprox::Metric;
use paraprox_ir::{Expr, KernelBuilder, MemSpace, Program, Scalar, Ty};
use paraprox_iter::{ConvergenceSpec, IterModel, ModelParts};
use paraprox_vgpu::Dim2;

use crate::inputs;
use crate::{IterApp, Scale};

/// Field dimensions per scale (power-of-two element counts, as the
/// residual sampling permutation requires).
pub fn dims(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Test => (64, 16),
        Scale::Paper => (128, 64),
    }
}

/// Relaxation factor of the damped Jacobi step.
const OMEGA: f32 = 0.8;

/// Host reference for one exact step (boundary cells copy through).
pub fn step_reference(field: &[f32], w: usize, h: usize) -> Vec<f32> {
    let mut out = field.to_vec();
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            let i = y * w + x;
            let avg = 0.25 * (field[i - w] + field[i + w] + field[i + 1] + field[i - 1]);
            out[i] = field[i] + OMEGA * (avg - field[i]);
        }
    }
    out
}

/// Generate the initial temperature field: a smooth 60..111-degree
/// profile with per-cell sensor noise. The noise is the high-frequency
/// content the first residual anchors to; it decays fast under the
/// damped step, the smooth profile slowly.
pub fn gen_field(scale: Scale, seed: u64) -> Vec<f32> {
    let (w, h) = dims(scale);
    let mut r = inputs::rng(seed ^ 0x14C0);
    inputs::smooth_image(&mut r, w, h)
        .into_iter()
        .map(|v| 60.0 + v * 0.2 + r.random_range(-0.5f32..0.5))
        .collect()
}

/// Build the iterative model. The row pitch is a scalar parameter — the
/// stencil detector needs the symbolic width term to recognize the
/// 2-D tile, so approximation schedules can rewrite the reach.
pub fn build(scale: Scale) -> IterModel {
    let (w, h) = dims(scale);
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("jacobi");
    let cur = kb.buffer("cur", Ty::F32, MemSpace::Global);
    let next = kb.buffer("next", Ty::F32, MemSpace::Global);
    let width = kb.scalar("w", Ty::I32);
    let height = kb.scalar("h", Ty::I32);
    let x = kb.let_("x", KernelBuilder::global_id_x());
    let y = kb.let_("y", KernelBuilder::global_id_y());
    let i = kb.let_("i", y.clone() * width.clone() + x.clone());
    let interior = x.clone().gt(Expr::i32(0))
        & x.clone().lt(width.clone() - Expr::i32(1))
        & y.clone().gt(Expr::i32(0))
        & y.clone().lt(height.clone() - Expr::i32(1));
    let c = kb.load(cur, i.clone());
    kb.if_else(
        interior,
        |kb| {
            let nb = kb.load(cur, i.clone() - width.clone());
            let sb = kb.load(cur, i.clone() + width.clone());
            let eb = kb.load(cur, i.clone() + Expr::i32(1));
            let wb = kb.load(cur, i.clone() - Expr::i32(1));
            let avg = kb.let_("avg", (nb + sb + eb + wb) * Expr::f32(0.25));
            let stepped = c.clone() + (avg - c.clone()) * Expr::f32(OMEGA);
            kb.store(next, i.clone(), stepped);
        },
        |kb| {
            kb.store(next, i.clone(), c.clone());
        },
    );
    let stencil = program.add_kernel(kb.finish());
    IterModel::new(ModelParts {
        name: "jacobi".to_string(),
        program,
        stencil,
        width: w,
        height: h,
        grid: Dim2::new(w / 16, h / 8),
        block: Dim2::new(16, 8),
        stencil_scalars: vec![Scalar::I32(w as i32), Scalar::I32(h as i32)],
        metric: Metric::MeanRelative,
    })
    .expect("jacobi geometry is valid by construction")
}

/// Convergence criteria per scale.
pub fn spec(scale: Scale) -> ConvergenceSpec {
    ConvergenceSpec {
        tol_abs: 1e-7,
        tol_rel: 0.02,
        max_iters: match scale {
            Scale::Test => 60,
            Scale::Paper => 96,
        },
    }
}

/// Registry entry.
pub fn app() -> IterApp {
    IterApp {
        name: "Jacobi",
        domain: "Physics",
        input_desc: "128x64 temperature grid (test: 64x16)",
        metric: Metric::MeanRelative,
        build,
        spec,
        gen_field,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_patterns::stencil::find_stencils;
    use paraprox_vgpu::{ArgValue, Device, DeviceProfile};

    #[test]
    fn one_step_matches_host_reference() {
        let model = build(Scale::Test);
        let (w, h) = dims(Scale::Test);
        let field = gen_field(Scale::Test, 7);
        let mut device = Device::new(DeviceProfile::gtx560());
        let cur = device.alloc_f32(MemSpace::Global, &field);
        let next = device.alloc_f32(MemSpace::Global, &vec![0.0f32; w * h]);
        let mut args = vec![ArgValue::Buffer(cur), ArgValue::Buffer(next)];
        args.extend(model.stencil_scalars.iter().map(|&s| ArgValue::Scalar(s)));
        device
            .launch(
                &model.program,
                model.stencil,
                model.grid,
                model.block,
                &args,
            )
            .unwrap();
        let got = device.read_f32(next).unwrap();
        let expected = step_reference(&field, w, h);
        for (i, e) in expected.iter().enumerate() {
            assert!((got[i] - e).abs() < 1e-3, "cell {i}: {} vs {e}", got[i]);
        }
    }

    #[test]
    fn stencil_tile_detected_on_field_buffer() {
        let model = build(Scale::Test);
        let cands = find_stencils(model.program.kernel(model.stencil));
        let cand = cands
            .iter()
            .find(|c| c.buffer == paraprox_ir::MemRef::Param(0))
            .expect("stencil candidate on the field");
        assert_eq!((cand.tile_h, cand.tile_w), (3, 3));
    }
}
