//! Quasirandom Generator — low-discrepancy sequences (Statistics, Map,
//! L1-norm).
//!
//! Computes the base-3 radical inverse (a Halton/van-der-Corput sequence
//! coordinate) of integer indices. The digit-extraction loop is dominated
//! by integer division — a high-latency subroutine on the GPU — making the
//! function an ideal memoization candidate: because the input domain is a
//! bounded integer range, a large enough lookup table is *lossless*, while
//! small tables degrade sharply (the knob behavior the paper reports).

use paraprox::{Metric, Workload};
use paraprox_ir::{Expr, FuncBuilder, FuncId, KernelBuilder, MemSpace, Program, Scalar, Ty};
use paraprox_vgpu::{BufferInit, BufferSpec, Dim2, LaunchPlan, Pipeline, PlanArg};

use crate::inputs;
use crate::{App, AppSpec, Scale};

/// Exclusive upper bound of the index domain (8 base-3 digits cover it).
/// Chosen so an 11-bit (2048-entry, 8 KB) lookup table is *lossless* and
/// fits comfortably in the GPU L1 next to the streaming data.
pub const INDEX_BOUND: i32 = 2048;
const DIGITS: i32 = 8;
const BLOCK: usize = 64;

fn sizes(scale: Scale) -> usize {
    match scale {
        Scale::Test => 512,
        Scale::Paper => 4096,
    }
}

fn build_radical_inverse(program: &mut Program) -> FuncId {
    let mut fb = FuncBuilder::new("radical_inverse3", Ty::F32);
    let i = fb.scalar("i", Ty::I32);
    let acc = fb.let_mut("acc", Ty::F32, Expr::f32(0.0));
    let base = fb.let_mut("base", Ty::F32, Expr::f32(1.0 / 3.0));
    let rest = fb.let_mut("rest", Ty::I32, i);
    fb.for_up(
        "k",
        Expr::i32(0),
        Expr::i32(DIGITS),
        Expr::i32(1),
        |fb, _k| {
            let digit = fb.let_("digit", Expr::Var(rest).rem(Expr::i32(3)));
            fb.assign(
                acc,
                Expr::Var(acc) + Expr::Cast(Ty::F32, Box::new(digit)) * Expr::Var(base),
            );
            fb.assign(base, Expr::Var(base) * Expr::f32(1.0 / 3.0));
            fb.assign(rest, Expr::Var(rest) / Expr::i32(3));
        },
    );
    fb.ret(Expr::Var(acc));
    program.add_func(fb.finish())
}

/// Host reference.
pub fn reference(mut i: i32) -> f32 {
    let mut acc = 0.0f32;
    let mut base = 1.0f32 / 3.0;
    for _ in 0..DIGITS {
        acc += (i % 3) as f32 * base;
        base *= 1.0 / 3.0;
        i /= 3;
    }
    acc
}

/// Generate the index input buffer.
pub fn gen_inputs(scale: Scale, seed: u64) -> Vec<BufferInit> {
    let n = sizes(scale);
    let mut r = inputs::rng(seed ^ 0x9A);
    vec![BufferInit::I32(inputs::uniform_i32(
        &mut r,
        n,
        0,
        INDEX_BOUND,
    ))]
}

/// Build the workload.
pub fn build(scale: Scale, seed: u64) -> Workload {
    let n = sizes(scale);
    let mut program = Program::new();
    let func = build_radical_inverse(&mut program);

    let mut kb = KernelBuilder::new("quasirandom");
    let indices = kb.buffer("indices", Ty::I32, MemSpace::Global);
    let output = kb.buffer("out", Ty::F32, MemSpace::Global);
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    let i = kb.let_("i", kb.load(indices, gid.clone()));
    kb.store(
        output,
        gid,
        Expr::Call {
            func,
            args: vec![i],
        },
    );
    let kernel = program.add_kernel(kb.finish());

    let mut pipeline = Pipeline::default();
    let data = gen_inputs(scale, seed).remove(0);
    let idx_b = pipeline.add_buffer(BufferSpec {
        name: "indices".to_string(),
        ty: Ty::I32,
        space: MemSpace::Global,
        init: data,
    });
    let out_b = pipeline.add_buffer(BufferSpec::zeroed_f32("out", n));
    pipeline.launches.push(LaunchPlan {
        kernel,
        grid: Dim2::linear(n / BLOCK),
        block: Dim2::linear(BLOCK),
        args: vec![PlanArg::Buffer(idx_b), PlanArg::Buffer(out_b)],
    });
    pipeline.outputs = vec![out_b];

    let mut trng = inputs::rng(0x5EED_0001);
    let samples: Vec<Vec<Scalar>> = (0..128)
        .map(|_| vec![Scalar::I32(trng.random_range(0..INDEX_BOUND))])
        .collect();

    Workload::new("Quasirandom Generator", program, pipeline, Metric::L1Norm)
        .with_training(func, samples)
        .with_input_slots(vec![idx_b])
}

/// Registry entry.
pub fn app() -> App {
    App {
        spec: AppSpec {
            name: "Quasirandom Generator",
            domain: "Statistics",
            input_desc: "4K indices (paper: 1M)",
            patterns: "Map",
            metric: Metric::L1Norm,
        },
        build,
        gen_inputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_vgpu::{Device, DeviceProfile};

    #[test]
    fn exact_pipeline_matches_host_reference() {
        let w = build(Scale::Test, 11);
        let mut device = Device::new(DeviceProfile::gtx560());
        let run = w.pipeline.execute(&mut device, &w.program).unwrap();
        let BufferInit::I32(idx) = &gen_inputs(Scale::Test, 11)[0] else {
            panic!()
        };
        for (k, &i) in idx.iter().enumerate() {
            let expected = reference(i);
            assert!(
                (run.outputs[0][k] as f32 - expected).abs() < 1e-6,
                "index {i}: {} vs {expected}",
                run.outputs[0][k]
            );
        }
    }

    #[test]
    fn outputs_are_low_discrepancy_like() {
        // Radical inverse of 0..n covers [0,1) roughly uniformly.
        let vals: Vec<f32> = (0..729).map(reference).collect();
        let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
        assert!((mean - 0.5).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn detected_as_map_with_heavy_function() {
        let w = build(Scale::Test, 1);
        let table = paraprox::latency_table_for(&DeviceProfile::gtx560());
        let compiled = paraprox::compile(&w, &table, &paraprox::CompileOptions::minimal()).unwrap();
        let cand = compiled
            .patterns
            .iter()
            .flat_map(|kp| kp.maps())
            .next()
            .expect("map candidate");
        // 8 iterations x 2 integer divisions dominate.
        assert!(cand.cycles_needed > 8 * 2 * 70, "{}", cand.cycles_needed);
    }
}
