//! Image Denoising — bilateral-style 5×5 weighted average (Image
//! Processing, Reduction, mean relative error). One loop, two accumulators
//! (value·weight and weight), exercising the grouped reduction rewrite.

use paraprox::{Metric, Workload};
use paraprox_ir::{Expr, KernelBuilder, MemSpace, Program, Scalar, Ty};
use paraprox_vgpu::{BufferInit, BufferSpec, Dim2, LaunchPlan, Pipeline, PlanArg};

use crate::inputs;
use crate::{App, AppSpec, Scale};

fn dims(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Test => (32, 32),
        Scale::Paper => (64, 64),
    }
}

/// Range-kernel sharpness (1/(2σ²) with σ ≈ 20 gray levels).
const INV2SIGMA2: f32 = 1.0 / (2.0 * 20.0 * 20.0);

/// Host reference.
pub fn reference(img: &[f32], w: usize, h: usize) -> Vec<f32> {
    let mut out = img.to_vec();
    for y in 2..h - 2 {
        for x in 2..w - 2 {
            let center = img[y * w + x];
            let mut vsum = 0.0f32;
            let mut wsum = 0.0f32;
            for i in 0..5 {
                for j in 0..5 {
                    let v = img[(y + i - 2) * w + (x + j - 2)];
                    let d = v - center;
                    let wgt = (-d * d * INV2SIGMA2).exp();
                    vsum += v * wgt;
                    wsum += wgt;
                }
            }
            out[y * w + x] = vsum / wsum;
        }
    }
    out
}

/// Generate the noisy image input.
pub fn gen_inputs(scale: Scale, seed: u64) -> Vec<BufferInit> {
    let (w, h) = dims(scale);
    let mut r = inputs::rng(seed ^ 0xDE0);
    vec![BufferInit::F32(inputs::smooth_image(&mut r, w, h))]
}

/// Build the workload.
pub fn build(scale: Scale, seed: u64) -> Workload {
    let (w, h) = dims(scale);
    let mut program = Program::new();

    let mut kb = KernelBuilder::new("denoise5x5");
    let img = kb.buffer("img", Ty::F32, MemSpace::Global);
    let out = kb.buffer("out", Ty::F32, MemSpace::Global);
    let width = kb.scalar("w", Ty::I32);
    let height = kb.scalar("h", Ty::I32);
    let x = kb.let_("x", KernelBuilder::global_id_x());
    let y = kb.let_("y", KernelBuilder::global_id_y());
    let center_idx = kb.let_("center_idx", y.clone() * width.clone() + x.clone());
    let interior = x.clone().gt(Expr::i32(1))
        & x.clone().lt(width.clone() - Expr::i32(2))
        & y.clone().gt(Expr::i32(1))
        & y.clone().lt(height.clone() - Expr::i32(2));
    kb.if_else(
        interior,
        |kb| {
            let center = kb.let_("center", kb.load(img, center_idx.clone()));
            let vsum = kb.let_mut("vsum", Ty::F32, Expr::f32(0.0));
            let wsum = kb.let_mut("wsum", Ty::F32, Expr::f32(0.0));
            kb.for_up("i", Expr::i32(0), Expr::i32(5), Expr::i32(1), |kb, i| {
                kb.for_up("j", Expr::i32(0), Expr::i32(5), Expr::i32(1), |kb, j| {
                    let idx = (y.clone() + i.clone() - Expr::i32(2)) * width.clone()
                        + x.clone()
                        + j.clone()
                        - Expr::i32(2);
                    let v = kb.let_("v", kb.load(img, idx));
                    let d = kb.let_("d", v.clone() - center.clone());
                    let wgt = kb.let_(
                        "wgt",
                        (-(d.clone() * d.clone()) * Expr::f32(INV2SIGMA2)).exp(),
                    );
                    kb.assign(vsum, Expr::Var(vsum) + v * wgt.clone());
                    kb.assign(wsum, Expr::Var(wsum) + wgt);
                });
            });
            kb.store(out, center_idx.clone(), Expr::Var(vsum) / Expr::Var(wsum));
        },
        |kb| {
            let v = kb.let_("vb", kb.load(img, center_idx.clone()));
            kb.store(out, center_idx.clone(), v);
        },
    );
    let kernel = program.add_kernel(kb.finish());

    let mut pipeline = Pipeline::default();
    let img_b = pipeline.add_buffer(BufferSpec {
        name: "img".to_string(),
        ty: Ty::F32,
        space: MemSpace::Global,
        init: gen_inputs(scale, seed).remove(0),
    });
    let out_b = pipeline.add_buffer(BufferSpec::zeroed_f32("out", w * h));
    pipeline.launches.push(LaunchPlan {
        kernel,
        grid: Dim2::new(w / 16, h / 8),
        block: Dim2::new(16, 8),
        args: vec![
            PlanArg::Buffer(img_b),
            PlanArg::Buffer(out_b),
            PlanArg::Scalar(Scalar::I32(w as i32)),
            PlanArg::Scalar(Scalar::I32(h as i32)),
        ],
    });
    pipeline.outputs = vec![out_b];

    Workload::new("Image Denoising", program, pipeline, Metric::MeanRelative)
        .with_input_slots(vec![img_b])
}

/// Registry entry.
pub fn app() -> App {
    App {
        spec: AppSpec {
            name: "Image Denoising",
            domain: "Image Processing",
            input_desc: "64x64 image, 5x5 window (paper: 2048x2048)",
            patterns: "Reduction",
            metric: Metric::MeanRelative,
        },
        build,
        gen_inputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_vgpu::{Device, DeviceProfile};

    #[test]
    fn exact_pipeline_matches_host_reference() {
        let w = build(Scale::Test, 13);
        let (wd, ht) = dims(Scale::Test);
        let mut device = Device::new(DeviceProfile::gtx560());
        let run = w.pipeline.execute(&mut device, &w.program).unwrap();
        let BufferInit::F32(img) = &gen_inputs(Scale::Test, 13)[0] else {
            panic!()
        };
        let expected = reference(img, wd, ht);
        for (i, e) in expected.iter().enumerate() {
            assert!(
                (run.outputs[0][i] as f32 - e).abs() < 1e-2,
                "pixel {i}: {} vs {e}",
                run.outputs[0][i]
            );
        }
    }

    #[test]
    fn two_accumulators_in_one_reduction_loop() {
        let w = build(Scale::Test, 1);
        let table = paraprox::latency_table_for(&DeviceProfile::gtx560());
        let compiled = paraprox::compile(&w, &table, &paraprox::CompileOptions::minimal()).unwrap();
        assert!(compiled.pattern_names().contains(&"reduction"));
        // The innermost (j) loop carries both vsum and wsum.
        let reds: Vec<_> = compiled
            .patterns
            .iter()
            .flat_map(|kp| kp.reductions())
            .collect();
        assert!(reds.len() >= 2, "found {}", reds.len());
        assert!(compiled
            .variants
            .iter()
            .any(|v| matches!(v.knob, paraprox::Knob::Reduction { .. })));
    }
}
