//! BoxMuller — uniform-to-normal transformation (Statistics,
//! Scatter/Gather, L1-norm).
//!
//! The kernel gathers uniform variates through an index buffer (making the
//! accesses data-dependent — McCool's *gather*) and maps each through a
//! normal-inverse-CDF transform. We implement the transform with Acklam's
//! rational approximation: its central branch costs one division-heavy
//! rational evaluation and its tail branch adds `log`/`sqrt` plus another
//! division, comfortably clearing the paper's Eq. (1) memoization
//! threshold on both device profiles. (The CUDA SDK's BoxMuller plays the
//! same role — turning uniforms into normals with subroutine-class math —
//! so the substitution preserves the benchmark's character.)

use paraprox::{Metric, Workload};
use paraprox_ir::{Expr, FuncBuilder, FuncId, KernelBuilder, MemSpace, Program, Scalar, Ty};
use paraprox_vgpu::{BufferInit, BufferSpec, Dim2, LaunchPlan, Pipeline, PlanArg};

use crate::inputs;
use crate::{App, AppSpec, Scale};

fn sizes(scale: Scale) -> usize {
    match scale {
        Scale::Test => 512,
        Scale::Paper => 4096,
    }
}

const BLOCK: usize = 64;
const P_LOW: f32 = 0.02425;

/// Acklam's inverse-normal-CDF coefficients.
const A: [f32; 6] = [
    -39.696_83,
    220.946_1,
    -275.928_5,
    138.357_75,
    -30.664_48,
    2.506_628_2,
];
const B: [f32; 5] = [-54.476_098, 161.585_83, -155.698_98, 66.801_31, -13.280_68];
const C: [f32; 6] = [
    -0.007_784_894_9,
    -0.322_396_46,
    -2.400_758_3,
    -2.549_732_5,
    4.374_664_1,
    2.938_163_6,
];
const D: [f32; 4] = [0.007_784_696, 0.322_467_2, 2.445_134_1, 3.754_408_7];

fn build_norminv(program: &mut Program) -> FuncId {
    let mut fb = FuncBuilder::new("norminv", Ty::F32);
    let u = fb.scalar("u", Ty::F32);
    // Clamp into the open interval.
    let p = fb.let_("p", u.max(Expr::f32(1e-6)).min(Expr::f32(1.0 - 1e-6)));
    // Central region: z = q·num(r)/den(r), r = q².
    let q = fb.let_("q", p.clone() - Expr::f32(0.5));
    let r = fb.let_("r", q.clone() * q.clone());
    let num = fb.let_(
        "num",
        ((((Expr::f32(A[0]) * r.clone() + Expr::f32(A[1])) * r.clone() + Expr::f32(A[2]))
            * r.clone()
            + Expr::f32(A[3]))
            * r.clone()
            + Expr::f32(A[4]))
            * r.clone()
            + Expr::f32(A[5]),
    );
    let den = fb.let_(
        "den",
        ((((Expr::f32(B[0]) * r.clone() + Expr::f32(B[1])) * r.clone() + Expr::f32(B[2]))
            * r.clone()
            + Expr::f32(B[3]))
            * r.clone()
            + Expr::f32(B[4]))
            * r.clone()
            + Expr::f32(1.0),
    );
    let central = fb.let_("central", q * num / den);
    // Lower tail: z = num_t(s)/den_t(s), s = sqrt(-2 ln p).
    let s_lo = fb.let_("s_lo", (Expr::f32(-2.0) * p.clone().log()).sqrt());
    let tail_of = |fb: &mut FuncBuilder, name: &str, s: Expr| -> Expr {
        let num_t = ((((Expr::f32(C[0]) * s.clone() + Expr::f32(C[1])) * s.clone()
            + Expr::f32(C[2]))
            * s.clone()
            + Expr::f32(C[3]))
            * s.clone()
            + Expr::f32(C[4]))
            * s.clone()
            + Expr::f32(C[5]);
        let den_t = (((Expr::f32(D[0]) * s.clone() + Expr::f32(D[1])) * s.clone()
            + Expr::f32(D[2]))
            * s.clone()
            + Expr::f32(D[3]))
            * s
            + Expr::f32(1.0);
        fb.let_(name, num_t / den_t)
    };
    let lower = tail_of(&mut fb, "lower", s_lo);
    let s_hi = fb.let_(
        "s_hi",
        (Expr::f32(-2.0) * (Expr::f32(1.0) - p.clone()).log()).sqrt(),
    );
    let upper_raw = tail_of(&mut fb, "upper_raw", s_hi);
    let upper = fb.let_("upper", -upper_raw);
    fb.if_else(
        p.clone().lt(Expr::f32(P_LOW)),
        |fb| fb.ret(lower.clone()),
        |fb| {
            fb.if_else(
                p.clone().gt(Expr::f32(1.0 - P_LOW)),
                |fb| fb.ret(upper.clone()),
                |fb| fb.ret(central.clone()),
            );
        },
    );
    program.add_func(fb.finish())
}

/// Host reference.
pub fn reference(u: f32) -> f32 {
    let p = u.clamp(1e-6, 1.0 - 1e-6);
    let q = p - 0.5;
    let r = q * q;
    let central = {
        let num = ((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5];
        let den = ((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0;
        q * num / den
    };
    let tail = |s: f32| {
        let num = ((((C[0] * s + C[1]) * s + C[2]) * s + C[3]) * s + C[4]) * s + C[5];
        let den = (((D[0] * s + D[1]) * s + D[2]) * s + D[3]) * s + 1.0;
        num / den
    };
    if p < P_LOW {
        tail((-2.0 * p.ln()).sqrt())
    } else if p > 1.0 - P_LOW {
        -tail((-2.0 * (1.0 - p).ln()).sqrt())
    } else {
        central
    }
}

/// Generate the gather indices and uniform variates.
pub fn gen_inputs(scale: Scale, seed: u64) -> Vec<BufferInit> {
    let n = sizes(scale);
    let mut r = inputs::rng(seed ^ 0xB0);
    vec![
        BufferInit::I32(inputs::permutation(&mut r, n)),
        BufferInit::F32(inputs::uniform_open01(&mut r, n)),
    ]
}

/// Build the workload.
pub fn build(scale: Scale, seed: u64) -> Workload {
    let n = sizes(scale);
    let mut program = Program::new();
    let func = build_norminv(&mut program);

    let mut kb = KernelBuilder::new("box_muller");
    let indices = kb.buffer("indices", Ty::I32, MemSpace::Global);
    let uniforms = kb.buffer("uniforms", Ty::F32, MemSpace::Global);
    let out = kb.buffer("normals", Ty::F32, MemSpace::Global);
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    let idx = kb.let_("idx", kb.load(indices, gid.clone()));
    let u = kb.let_("u", kb.load(uniforms, idx));
    kb.store(
        out,
        gid,
        Expr::Call {
            func,
            args: vec![u],
        },
    );
    let kernel = program.add_kernel(kb.finish());

    let mut data = gen_inputs(scale, seed);
    let mut pipeline = Pipeline::default();
    let idx_b = pipeline.add_buffer(BufferSpec {
        name: "indices".to_string(),
        ty: Ty::I32,
        space: MemSpace::Global,
        init: data.remove(0),
    });
    let uni_b = pipeline.add_buffer(BufferSpec {
        name: "uniforms".to_string(),
        ty: Ty::F32,
        space: MemSpace::Global,
        init: data.remove(0),
    });
    let out_b = pipeline.add_buffer(BufferSpec::zeroed_f32("normals", n));
    pipeline.launches.push(LaunchPlan {
        kernel,
        grid: Dim2::linear(n / BLOCK),
        block: Dim2::linear(BLOCK),
        args: vec![
            PlanArg::Buffer(idx_b),
            PlanArg::Buffer(uni_b),
            PlanArg::Buffer(out_b),
        ],
    });
    pipeline.outputs = vec![out_b];

    let mut trng = inputs::rng(0xB0771);
    let samples: Vec<Vec<Scalar>> = (0..192)
        .map(|_| vec![Scalar::F32(trng.random_range(1e-6f32..1.0 - 1e-6))])
        .collect();

    Workload::new("BoxMuller", program, pipeline, Metric::L1Norm)
        .with_training(func, samples)
        .with_input_slots(vec![idx_b, uni_b])
}

/// Registry entry.
pub fn app() -> App {
    App {
        spec: AppSpec {
            name: "BoxMuller",
            domain: "Statistics",
            input_desc: "4K variates (paper: 24M)",
            patterns: "Scatter/Gather",
            metric: Metric::L1Norm,
        },
        build,
        gen_inputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_vgpu::{Device, DeviceProfile};

    #[test]
    fn exact_pipeline_matches_host_reference() {
        let w = build(Scale::Test, 5);
        let mut device = Device::new(DeviceProfile::gtx560());
        let run = w.pipeline.execute(&mut device, &w.program).unwrap();
        let data = gen_inputs(Scale::Test, 5);
        let (BufferInit::I32(idx), BufferInit::F32(uni)) = (&data[0], &data[1]) else {
            panic!()
        };
        for g in 0..idx.len() {
            let expected = reference(uni[idx[g] as usize]);
            let got = run.outputs[0][g] as f32;
            assert!(
                (got - expected).abs() < 1e-4 * expected.abs().max(1.0),
                "lane {g}: {got} vs {expected}"
            );
        }
    }

    #[test]
    fn inverse_cdf_shape_is_sane() {
        assert!(reference(0.5).abs() < 1e-3);
        assert!(reference(0.975) > 1.9 && reference(0.975) < 2.0);
        assert!(reference(0.025) < -1.9 && reference(0.025) > -2.0);
        assert!(reference(0.001) < -3.0);
        assert!(reference(0.999) > 3.0);
    }

    #[test]
    fn classified_as_scatter_gather() {
        let w = build(Scale::Test, 1);
        let table = paraprox::latency_table_for(&DeviceProfile::gtx560());
        let compiled = paraprox::compile(&w, &table, &paraprox::CompileOptions::minimal()).unwrap();
        assert!(compiled.pattern_names().contains(&"scatter/gather"));
    }
}
