//! Mean Filter — 3×3 box blur (Image Processing, Stencil, mean relative
//! error). The tile is *manually unrolled* by the programmer (paper §4.3),
//! so there is no reduction loop: only the stencil optimization applies.

use paraprox::{Metric, Workload};
use paraprox_ir::{MemSpace, Scalar, Ty};
use paraprox_vgpu::{BufferInit, BufferSpec, Dim2, LaunchPlan, Pipeline, PlanArg};

use crate::inputs;
use crate::{App, AppSpec, Scale};

fn dims(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Test => (64, 32),
        Scale::Paper => (128, 128),
    }
}

/// Kernel source (parsed through the `paraprox-lang` frontend). The 3×3
/// neighborhood is manually unrolled, exactly as the paper describes this
/// benchmark — so there is no reduction loop to perforate.
pub const SOURCE: &str = r#"
__global__ void mean3x3(float* img, float* out, int w, int h) {
    int x = blockIdx.x * blockDim.x + threadIdx.x;
    int y = blockIdx.y * blockDim.y + threadIdx.y;
    int center = y * w + x;
    if (x > 0 && x < w - 1 && y > 0 && y < h - 1) {
        float sum = img[(y - 1) * w + x - 1] + img[(y - 1) * w + x]
                  + img[(y - 1) * w + x + 1] + img[y * w + x - 1]
                  + img[y * w + x] + img[y * w + x + 1]
                  + img[(y + 1) * w + x - 1] + img[(y + 1) * w + x]
                  + img[(y + 1) * w + x + 1];
        out[center] = sum * 0.11111111f;
    } else {
        out[center] = img[center];
    }
}
"#;

/// Host reference.
pub fn reference(img: &[f32], w: usize, h: usize) -> Vec<f32> {
    let mut out = img.to_vec();
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            let mut acc = 0.0f32;
            for dy in 0..3 {
                for dx in 0..3 {
                    acc += img[(y + dy - 1) * w + (x + dx - 1)];
                }
            }
            out[y * w + x] = acc / 9.0;
        }
    }
    out
}

/// Generate the image input.
pub fn gen_inputs(scale: Scale, seed: u64) -> Vec<BufferInit> {
    let (w, h) = dims(scale);
    let mut r = inputs::rng(seed ^ 0x3EA);
    vec![BufferInit::F32(inputs::smooth_image(&mut r, w, h))]
}

/// Build the workload (parsing [`SOURCE`] through the language frontend).
pub fn build(scale: Scale, seed: u64) -> Workload {
    let (w, h) = dims(scale);
    let program = paraprox_lang::parse_program(SOURCE).expect("embedded source is valid");
    let kernel = program.kernel_by_name("mean3x3").expect("declared");

    let mut pipeline = Pipeline::default();
    let img_b = pipeline.add_buffer(BufferSpec {
        name: "img".to_string(),
        ty: Ty::F32,
        space: MemSpace::Global,
        init: gen_inputs(scale, seed).remove(0),
    });
    let out_b = pipeline.add_buffer(BufferSpec::zeroed_f32("out", w * h));
    pipeline.launches.push(LaunchPlan {
        kernel,
        grid: Dim2::new(w / 16, h / 8),
        block: Dim2::new(16, 8),
        args: vec![
            PlanArg::Buffer(img_b),
            PlanArg::Buffer(out_b),
            PlanArg::Scalar(Scalar::I32(w as i32)),
            PlanArg::Scalar(Scalar::I32(h as i32)),
        ],
    });
    pipeline.outputs = vec![out_b];

    Workload::new("Mean Filter", program, pipeline, Metric::MeanRelative)
        .with_input_slots(vec![img_b])
}

/// Registry entry.
pub fn app() -> App {
    App {
        spec: AppSpec {
            name: "Mean Filter",
            domain: "Image Processing",
            input_desc: "128x128 image (paper: 512x512)",
            patterns: "Stencil",
            metric: Metric::MeanRelative,
        },
        build,
        gen_inputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_vgpu::{Device, DeviceProfile};

    #[test]
    fn exact_pipeline_matches_host_reference() {
        let w = build(Scale::Test, 17);
        let (wd, ht) = dims(Scale::Test);
        let mut device = Device::new(DeviceProfile::gtx560());
        let run = w.pipeline.execute(&mut device, &w.program).unwrap();
        let BufferInit::F32(img) = &gen_inputs(Scale::Test, 17)[0] else {
            panic!()
        };
        let expected = reference(img, wd, ht);
        for (i, e) in expected.iter().enumerate() {
            assert!(
                (run.outputs[0][i] as f32 - e).abs() < 1e-3,
                "pixel {i}: {} vs {e}",
                run.outputs[0][i]
            );
        }
    }

    #[test]
    fn unrolled_stencil_detected_no_reduction() {
        let w = build(Scale::Test, 1);
        let table = paraprox::latency_table_for(&DeviceProfile::gtx560());
        let compiled = paraprox::compile(&w, &table, &paraprox::CompileOptions::minimal()).unwrap();
        let names = compiled.pattern_names();
        assert!(names.contains(&"stencil"), "{names:?}");
        assert!(
            !names.contains(&"reduction"),
            "manually unrolled filter has no reduction loop: {names:?}"
        );
        let cand = compiled
            .patterns
            .iter()
            .flat_map(|kp| kp.stencils())
            .next()
            .unwrap();
        assert_eq!(cand.offsets.len(), 9);
        assert!(cand.row_loops.is_empty() && cand.col_loops.is_empty());
    }
}
