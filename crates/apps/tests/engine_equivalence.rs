//! Whole-application differential test: every benchmark pipeline must
//! produce bit-identical outputs, simulated cycles, and cache statistics
//! under the bytecode engine and the tree-walking oracle, on both device
//! profiles, serial and block-parallel.
//!
//! This is the broad-coverage counterpart to the targeted kernels in
//! `paraprox-vgpu`'s `bytecode_equivalence` suite: the 13 applications
//! exercise every pattern (map, stencil, reduction with atomics, scan,
//! scatter/gather) at realistic kernel sizes, so a charging or masking
//! discrepancy anywhere in the bytecode compiler shows up here.

use paraprox_apps::{registry, Scale};
use paraprox_vgpu::{Device, DeviceProfile, ExecEngine, PipelineRun};

fn run(profile: DeviceProfile, workload: &paraprox::Workload) -> PipelineRun {
    let mut device = Device::new(profile);
    workload
        .pipeline
        .execute(&mut device, &workload.program)
        .expect("pipeline must execute")
}

fn assert_bit_identical(app: &str, setting: &str, reference: &PipelineRun, got: &PipelineRun) {
    // Every simulated counter (cycles, instructions, cache hits/misses,
    // transactions) — host wall-clock fields are excluded from equality.
    assert_eq!(
        got.stats, reference.stats,
        "{app}: stats diverged ({setting})"
    );
    assert_eq!(
        got.outputs.len(),
        reference.outputs.len(),
        "{app}: output arity diverged ({setting})"
    );
    for (b, (r, g)) in reference.outputs.iter().zip(&got.outputs).enumerate() {
        assert_eq!(r.len(), g.len(), "{app}: output {b} length ({setting})");
        for (i, (x, y)) in r.iter().zip(g).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{app}: output {b}[{i}] bits diverged ({setting})"
            );
        }
    }
}

fn check_profile(base: DeviceProfile) {
    for app in registry() {
        let workload = (app.build)(Scale::Test, 7);
        let reference = run(
            base.clone()
                .with_engine(ExecEngine::TreeWalk)
                .with_parallelism(1),
            &workload,
        );
        for (engine, workers) in [
            (ExecEngine::Bytecode, 1),
            (ExecEngine::Bytecode, 4),
            (ExecEngine::TreeWalk, 4),
        ] {
            let got = run(
                base.clone().with_engine(engine).with_parallelism(workers),
                &workload,
            );
            let setting = format!("{engine:?} x{workers} on {}", base.name);
            assert_bit_identical(app.spec.name, &setting, &reference, &got);
        }
    }
}

#[test]
fn all_apps_bit_identical_across_engines_gpu() {
    check_profile(DeviceProfile::gtx560());
}

#[test]
fn all_apps_bit_identical_across_engines_cpu() {
    check_profile(DeviceProfile::core_i7_965());
}
