//! Fused-vs-unfused differential over every benchmark application.
//!
//! Each app's pipeline runs twice on one device so the second pass
//! dispatches the fused superinstruction artifacts produced by the first
//! (profiling) pass, then the whole experiment repeats with fusion force
//! disabled via [`Device::set_fusion`]. Both passes of both settings must
//! be bit-identical to the tree-walking oracle — outputs, simulated
//! cycles, and cache statistics — at 1, 2, and 4 workers, and fusion must
//! actually have engaged (`fusions_hit > 0`) on the fused second pass of
//! at least most apps.

use paraprox_apps::{registry, Scale};
use paraprox_vgpu::{Device, DeviceProfile, ExecEngine, PipelineRun};

/// Run the pipeline twice on one device (pass 1 profiles and fuses, pass
/// 2 dispatches fused ops when fusion is on).
fn run_twice(workload: &paraprox::Workload, workers: usize, fusion: bool) -> [PipelineRun; 2] {
    let mut device = Device::new(
        DeviceProfile::gtx560()
            .with_engine(ExecEngine::Bytecode)
            .with_parallelism(workers),
    );
    device.set_fusion(fusion);
    let mut runs = Vec::new();
    for _ in 0..2 {
        runs.push(
            workload
                .pipeline
                .execute(&mut device, &workload.program)
                .expect("pipeline must execute"),
        );
    }
    let second = runs.pop().expect("two runs");
    let first = runs.pop().expect("two runs");
    [first, second]
}

fn assert_bit_identical(app: &str, setting: &str, reference: &PipelineRun, got: &PipelineRun) {
    assert_eq!(
        got.stats, reference.stats,
        "{app}: stats diverged ({setting})"
    );
    assert_eq!(got.outputs.len(), reference.outputs.len(), "{app}: arity");
    for (b, (r, g)) in reference.outputs.iter().zip(&got.outputs).enumerate() {
        assert_eq!(r.len(), g.len(), "{app}: output {b} length ({setting})");
        for (i, (x, y)) in r.iter().zip(g).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{app}: output {b}[{i}] bits diverged ({setting})"
            );
        }
    }
}

#[test]
fn all_apps_fused_matches_unfused_and_oracle() {
    let mut apps_with_fusion = 0usize;
    let mut total = 0usize;
    for app in registry() {
        let workload = (app.build)(Scale::Test, 7);
        let mut oracle_device =
            Device::new(DeviceProfile::gtx560().with_engine(ExecEngine::TreeWalk));
        let oracle = workload
            .pipeline
            .execute(&mut oracle_device, &workload.program)
            .expect("oracle pipeline must execute");
        total += 1;
        let mut fused_anywhere = false;
        for workers in [1usize, 2, 4] {
            let fused = run_twice(&workload, workers, true);
            let plain = run_twice(&workload, workers, false);
            for (pass, (f, p)) in fused.iter().zip(&plain).enumerate() {
                let setting = format!("x{workers} pass {pass}");
                assert_bit_identical(app.spec.name, &setting, p, f);
                assert_bit_identical(app.spec.name, &setting, &oracle, f);
                assert_eq!(p.stats.fusions_hit, 0, "{}: disabled", app.spec.name);
            }
            // Second pass dispatches the fused artifact compiled from the
            // first pass's profile; fewer dispatch-loop iterations, same
            // simulated machine.
            if fused[1].stats.fusions_hit > 0 {
                fused_anywhere = true;
                assert!(
                    fused[1].stats.ops_dispatched < plain[1].stats.ops_dispatched,
                    "{}: fusion should shrink dispatch count (x{workers})",
                    app.spec.name
                );
            }
        }
        if fused_anywhere {
            apps_with_fusion += 1;
        }
    }
    // Fusable pairs (mul+add, load+cast, cmp+branch, bin+store) are
    // ubiquitous in these kernels: fusion must engage broadly, not just
    // on a lucky app.
    assert!(
        apps_with_fusion * 2 >= total,
        "fusion engaged on only {apps_with_fusion}/{total} apps"
    );
}
