//! The TOQ knob actually grades aggressiveness: raising the target must
//! never produce a *faster* (more aggressive) choice, and quality must not
//! decrease — the monotonicity that makes the paper's runtime policy
//! coherent.

use paraprox::{compile, latency_table_for, CompileOptions, Device, DeviceApp, DeviceProfile};
use paraprox_apps::Scale;
use paraprox_runtime::{Toq, Tuner};

fn tune_at(app: &paraprox_apps::App, toq: f64) -> (f64, f64) {
    let workload = (app.build)(Scale::Test, 0);
    let profile = DeviceProfile::gtx560();
    let compiled = compile(
        &workload,
        &latency_table_for(&profile),
        &CompileOptions::default(),
    )
    .expect("compile");
    let mut device_app =
        DeviceApp::new(Device::new(profile), &compiled, app.input_gen(Scale::Test));
    let tuner = Tuner {
        toq: Toq::new(toq).expect("valid toq"),
        training_seeds: vec![0, 1],
    };
    let report = tuner.tune(&mut device_app).expect("tune");
    (report.chosen_speedup(), report.chosen_quality())
}

#[test]
fn stricter_toq_never_yields_faster_or_worse_choices() {
    for name in [
        "BlackScholes",
        "Kernel Density",
        "Mean Filter",
        "Cumulative",
    ] {
        let app = paraprox_apps::find(name).expect("known app");
        let (s90, q90) = tune_at(&app, 90.0);
        let (s97, q97) = tune_at(&app, 97.0);
        let (s999, q999) = tune_at(&app, 99.9);
        assert!(
            s97 <= s90 + 1e-9,
            "{name}: stricter TOQ must not speed up ({s90} -> {s97})"
        );
        assert!(
            s999 <= s97 + 1e-9,
            "{name}: stricter TOQ must not speed up ({s97} -> {s999})"
        );
        assert!(
            q97 >= q90 - 1e-9,
            "{name}: stricter TOQ must not lower quality ({q90} -> {q97})"
        );
        assert!(q999 >= q97 - 1e-9, "{name}: ({q97} -> {q999})");
        // At 99.9% almost nothing qualifies: quality must be essentially
        // exact.
        assert!(q999 >= 99.9, "{name}: q999 = {q999}");
    }
}

#[test]
fn toq_zero_accepts_the_most_aggressive_variant() {
    let app = paraprox_apps::find("Kernel Density").expect("known app");
    let (s0, _) = tune_at(&app, 0.0);
    let (s90, _) = tune_at(&app, 90.0);
    assert!(
        s0 >= s90,
        "an unconstrained target must allow at least the TOQ-90 speedup ({s0} vs {s90})"
    );
}
