//! Batched-vs-sequential differential over every benchmark application.
//!
//! The serving engine's batcher coalesces requests into one fused device
//! dispatch ([`DeviceApp`]'s `run_batch` override). Its contract is
//! bit-identity: a fused batch must produce exactly the outputs, simulated
//! cycles, and executor diagnostics that running the same (variant, seed)
//! sequence one request at a time produces — at any device worker count
//! and any store-schedule seed. Every one of the 13 apps is checked on a
//! mixed exact/variant batch.

use paraprox::{compile, latency_table_for, CompileOptions, Device, DeviceApp, DeviceProfile};
use paraprox_apps::{registry, Scale};
use paraprox_runtime::{Approximable, BatchRun, RunOutcome};
use paraprox_vgpu::ExecEngine;

/// Bind a fresh device app for one (workers, schedule-seed) setting.
fn bind(
    app: &paraprox_apps::App,
    compiled: &paraprox::Compiled,
    profile: &DeviceProfile,
    workers: usize,
    schedule_seed: Option<u64>,
) -> DeviceApp {
    let mut device = Device::new(
        profile
            .clone()
            .with_engine(ExecEngine::Bytecode)
            .with_parallelism(workers),
    );
    device.set_schedule_seed(schedule_seed);
    DeviceApp::new(device, compiled, app.input_gen(Scale::Test))
}

/// A mixed batch: exact runs interleaved with the first and last
/// *runnable* variants (some candidate variants legitimately fail on the
/// device — e.g. a shared-memory table that does not fit — and the tuner
/// would never deploy those).
fn batch_runs(usable: &[usize], seeds: &[u64]) -> Vec<BatchRun> {
    seeds
        .iter()
        .enumerate()
        .map(|(i, &seed)| {
            let variant = if usable.is_empty() {
                None
            } else {
                // None, first, last, first, None, first, last, ...
                match i % 4 {
                    0 => None,
                    1 | 3 => Some(usable[0]),
                    _ => Some(*usable.last().expect("non-empty")),
                }
            };
            BatchRun { variant, seed }
        })
        .collect()
}

fn assert_outcomes_bit_identical(
    app: &str,
    setting: &str,
    reference: &[RunOutcome],
    got: &[RunOutcome],
) {
    assert_eq!(got.len(), reference.len(), "{app}: batch arity ({setting})");
    for (i, (r, g)) in reference.iter().zip(got).enumerate() {
        assert_eq!(r.cycles, g.cycles, "{app}: run {i} cycles ({setting})");
        assert_eq!(
            r.output.len(),
            g.output.len(),
            "{app}: run {i} output length ({setting})"
        );
        for (j, (x, y)) in r.output.iter().zip(&g.output).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{app}: run {i} output[{j}] bits diverged ({setting})"
            );
        }
    }
}

#[test]
fn all_apps_batched_execution_is_bit_identical_to_sequential() {
    let profile = DeviceProfile::gtx560();
    let seeds: Vec<u64> = (100..106).collect();
    for app in registry() {
        let workload = (app.build)(Scale::Test, 0);
        let compiled = compile(
            &workload,
            &latency_table_for(&profile),
            &CompileOptions::default(),
        )
        .expect("compile must succeed");

        // Probe which variants the device can actually run.
        let mut probe = bind(&app, &compiled, &profile, 1, None);
        let usable: Vec<usize> = (0..probe.variant_count())
            .filter(|&v| probe.run_variant(v, seeds[0]).is_ok())
            .collect();

        // Sequential reference: one request at a time, in batch order, on
        // the default single-worker device.
        let mut seq_app = bind(&app, &compiled, &profile, 1, None);
        let runs = batch_runs(&usable, &seeds);
        let reference: Vec<RunOutcome> = runs
            .iter()
            .map(|r| match r.variant {
                Some(v) => seq_app.run_variant(v, r.seed),
                None => seq_app.run_exact(r.seed),
            })
            .map(|out| out.expect("sequential run must succeed"))
            .collect();
        let seq_diag = seq_app.engine_diagnostics();

        for workers in [1usize, 2, 4] {
            for schedule_seed in [None, Some(9u64)] {
                let setting = format!("x{workers} schedule {schedule_seed:?}");
                let mut batched = bind(&app, &compiled, &profile, workers, schedule_seed);
                let got = batched.run_batch(&runs).expect("batched run must succeed");
                assert_outcomes_bit_identical(app.spec.name, &setting, &reference, &got);
                // Host-side fusion may engage at different points (the
                // sequential path dispatches fused superinstructions from
                // run 2; a single fused batch profiles all jobs first),
                // but the instruction stream is the same: each fusion hit
                // packs two ops into one dispatch, so dispatched + hits
                // is invariant.
                let diag = batched.engine_diagnostics();
                assert_eq!(
                    diag.ops_dispatched + diag.fusions_hit,
                    seq_diag.ops_dispatched + seq_diag.fusions_hit,
                    "{}: executed op stream diverged ({setting})",
                    app.spec.name
                );
                if workers == 1 && schedule_seed.is_none() {
                    // A second batch on the same app dispatches the fused
                    // artifacts stored by the first — the serving steady
                    // state. Outcomes must still be bit-identical (runs
                    // are history-independent).
                    let again = batched.run_batch(&runs).expect("second batch must succeed");
                    assert_outcomes_bit_identical(
                        app.spec.name,
                        &format!("{setting}, second batch"),
                        &reference,
                        &again,
                    );
                }
            }
        }
    }
}
