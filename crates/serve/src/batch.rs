//! The batcher: coalesce a claimed tenant's queued requests into fused
//! deployment batches.
//!
//! A worker that claims a tenant pops up to `batch_window` consecutive
//! requests (the tenant's FIFO order) and serves them here as one *batch*.
//! The batch is split into rung-stable chunks by
//! [`Deployment::plan_batch`] — a chunk never crosses a calibration
//! boundary, so the watchdog sees exactly the per-request sequence it
//! would have seen — and each chunk executes through the application's
//! [`Approximable::run_batch`], which device-backed apps fuse into a
//! single multi-block launch over the worker-image pool. The per-request
//! decision trace (variants served, check qualities, back-offs,
//! re-promotions) is bit-identical to serving the same stream one request
//! at a time; only wall-clock cost changes.
//!
//! A batch of one request takes the classic [`Deployment::invoke`] path,
//! so a `batch_window` of 1 reproduces the pre-batching engine exactly —
//! that is the baseline the benchmarks compare against.

use std::sync::mpsc;
use std::time::Instant;

use paraprox_runtime::{
    Approximable, BatchRun, Calibration, Deployment, InvokeResult, RuntimeError,
};

use crate::engine::{Response, TenantId};
use crate::stats::TenantStats;

/// Everything a worker needs to serve one tenant. One mutex per tenant:
/// the scheduler guarantees at most one worker holds a tenant at a time,
/// so this lock is uncontended and exists only to move the state safely.
pub(crate) struct Core {
    pub app: Box<dyn Approximable + Send>,
    pub deployment: Deployment,
    pub stats: TenantStats,
}

/// One popped request, ready to serve.
pub(crate) struct BatchItem {
    pub seq: u64,
    pub seed: u64,
    /// Time the request waited in the tenant FIFO, nanoseconds.
    pub queue_nanos: u64,
    pub reply: mpsc::Sender<Response>,
}

/// Serve a claimed tenant's popped requests and reply to each ticket.
/// Returns the number of requests completed (always `items.len()`).
pub(crate) fn serve_claimed(tenant: TenantId, core: &mut Core, items: Vec<BatchItem>) -> usize {
    let count = items.len();
    if count == 0 {
        return 0;
    }
    core.stats.batches += 1;
    core.stats.peak_batch = core.stats.peak_batch.max(count as u64);
    if count == 1 {
        serve_single(tenant, core, items.into_iter().next().expect("one item"));
        return 1;
    }
    let mut rest = items.as_slice();
    while !rest.is_empty() {
        let plan = core.deployment.plan_batch(rest.len());
        let (chunk, tail) = rest.split_at(plan.len);
        rest = tail;
        let started = Instant::now();
        let outcome = run_chunk(core, &plan, chunk);
        let service_nanos = started.elapsed().as_nanos() as u64;
        match outcome {
            Ok(results) => {
                for (item, r) in chunk.iter().zip(results) {
                    record(core, item, service_nanos, Ok(r), tenant);
                }
            }
            Err(e) => {
                // The chunk failed as a unit: every request in it gets the
                // error, the deployment is left unchanged, and the next
                // chunk proceeds (requests are independent submissions).
                for item in chunk {
                    record(core, item, service_nanos, Err(&e), tenant);
                }
            }
        }
    }
    count
}

/// Execute one rung-stable chunk: served runs plus the boundary
/// calibration re-execution, fused into a single `run_batch` call, then
/// committed to the deployment.
fn run_chunk(
    core: &mut Core,
    plan: &paraprox_runtime::BatchPlan,
    chunk: &[BatchItem],
) -> Result<Vec<InvokeResult>, RuntimeError> {
    let mut runs: Vec<BatchRun> = chunk
        .iter()
        .map(|item| BatchRun {
            variant: plan.variant,
            seed: item.seed,
        })
        .collect();
    if let Some(c) = &plan.calibration {
        let boundary = chunk.last().expect("calibration implies a non-empty chunk");
        runs.push(BatchRun {
            variant: match c {
                Calibration::Exact => None,
                Calibration::Probe(v) => Some(*v),
            },
            seed: boundary.seed,
        });
    }
    let mut outcomes = core.app.run_batch(&runs)?;
    if outcomes.len() != runs.len() {
        return Err(RuntimeError(format!(
            "run_batch returned {} outcomes for {} runs",
            outcomes.len(),
            runs.len()
        )));
    }
    let calibration = plan.calibration.as_ref().map(|_| {
        outcomes
            .pop()
            .expect("calibration outcome appended to the batch")
    });
    core.deployment
        .commit_batch(core.app.as_ref(), plan, outcomes, calibration)
}

/// The classic one-request path ([`Deployment::invoke`]): used for
/// degenerate batches so a window of 1 behaves exactly like the
/// pre-batching engine.
fn serve_single(tenant: TenantId, core: &mut Core, item: BatchItem) {
    let started = Instant::now();
    let outcome = core.deployment.invoke(core.app.as_mut(), item.seed);
    let service_nanos = started.elapsed().as_nanos() as u64;
    match outcome {
        Ok(r) => record(core, &item, service_nanos, Ok(r), tenant),
        Err(e) => record(core, &item, service_nanos, Err(&e), tenant),
    }
}

/// Account one completed request in the tenant's stats and reply to its
/// ticket. A dropped ticket is not an error.
fn record(
    core: &mut Core,
    item: &BatchItem,
    service_nanos: u64,
    outcome: Result<InvokeResult, &RuntimeError>,
    tenant: TenantId,
) {
    core.stats.served += 1;
    core.stats.queue_ns.push(item.queue_nanos);
    core.stats.service_ns.push(service_nanos);
    let response = match outcome {
        Ok(r) => {
            core.stats.cycles += r.cycles;
            core.stats.backoffs += u64::from(r.backed_off);
            core.stats.promotions += u64::from(r.promoted);
            if let Some(q) = r.checked_quality {
                core.stats.quality.observe(q);
            }
            Response {
                tenant,
                seq: item.seq,
                seed: item.seed,
                output: r.output,
                cycles: r.cycles,
                variant: r.variant,
                checked_quality: r.checked_quality,
                backed_off: r.backed_off,
                promoted: r.promoted,
                queue_nanos: item.queue_nanos,
                service_nanos,
                error: None,
            }
        }
        Err(e) => {
            core.stats.errors += 1;
            Response {
                tenant,
                seq: item.seq,
                seed: item.seed,
                output: Vec::new(),
                cycles: 0,
                variant: None,
                checked_quality: None,
                backed_off: false,
                promoted: false,
                queue_nanos: item.queue_nanos,
                service_nanos,
                error: Some(e.to_string()),
            }
        }
    };
    let _ = item.reply.send(response);
}
