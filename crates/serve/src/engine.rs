//! The serving engine: bounded admission, per-tenant actor scheduling,
//! persistent workers, and the online quality watchdog.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use paraprox_quality::QualityStream;
use paraprox_runtime::{Approximable, Deployment, DeploymentConfig, Toq, TuneReport};

use crate::stats::{percentile, TenantSnapshot, TenantStats};

/// Identifies a registered tenant (the index returned by
/// [`EngineBuilder::register`]).
pub type TenantId = usize;

/// Engine policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Maximum number of admitted-but-incomplete requests (queued *and*
    /// in flight) across all tenants. Submissions beyond this budget are
    /// rejected with [`SubmitError::QueueFull`]. Clamped to at least 1.
    pub queue_capacity: usize,
    /// Worker threads; `0` means one per available CPU.
    pub workers: usize,
    /// Target output quality enforced by every tenant's watchdog.
    pub toq: Toq,
    /// Calibration cadence: check every `check_every`-th served request
    /// (per tenant). The paper's §5 cites 40–50 as keeping overhead under
    /// 5%; serving tests use smaller values to exercise the watchdog.
    pub check_every: u64,
    /// Consecutive clean checks required before re-promoting one rung up
    /// the ladder. `0` disables re-promotion (back-off only).
    pub promote_after: u64,
    /// EWMA smoothing factor for the streaming quality estimate.
    pub quality_alpha: f64,
}

impl ServeConfig {
    /// Paper-flavoured defaults: TOQ 90%, check every 40th request,
    /// re-promote after 3 clean checks, a 64-deep queue, auto workers.
    pub fn paper_default() -> ServeConfig {
        ServeConfig {
            queue_capacity: 64,
            workers: 0,
            toq: Toq::paper_default(),
            check_every: 40,
            promote_after: 3,
            quality_alpha: 0.25,
        }
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission budget is exhausted. `retry_after` is the number of
    /// admitted-but-incomplete requests ahead of the caller — a hint for
    /// how many completions to wait for before resubmitting.
    QueueFull {
        /// Queue depth at rejection time (completions to wait for).
        retry_after: usize,
    },
    /// No tenant with that id is registered.
    UnknownTenant(TenantId),
    /// The engine is shutting down and no longer admits work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { retry_after } => {
                write!(f, "queue full: retry after {retry_after} completions")
            }
            SubmitError::UnknownTenant(id) => write!(f, "unknown tenant {id}"),
            SubmitError::ShuttingDown => write!(f, "engine is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// The completed result of one admitted request.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Tenant the request was for.
    pub tenant: TenantId,
    /// Per-tenant sequence number (0-based submission order).
    pub seq: u64,
    /// The request's input seed.
    pub seed: u64,
    /// Output values (empty when `error` is set).
    pub output: Vec<f64>,
    /// Simulated device cycles of the served execution.
    pub cycles: u64,
    /// The variant served (`None` = exact).
    pub variant: Option<usize>,
    /// Calibration quality when this request was a watchdog check.
    pub checked_quality: Option<f64>,
    /// Whether this request triggered a back-off.
    pub backed_off: bool,
    /// Whether this request triggered a re-promotion.
    pub promoted: bool,
    /// Time spent waiting for a worker, nanoseconds.
    pub queue_nanos: u64,
    /// Execution (service) time, nanoseconds.
    pub service_nanos: u64,
    /// Execution error, if the kernel failed.
    pub error: Option<String>,
}

/// Handle to one admitted request; redeem it with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    /// Tenant the request was admitted for.
    pub tenant: TenantId,
    /// Per-tenant sequence number assigned at admission.
    pub seq: u64,
    rx: mpsc::Receiver<Response>,
}

impl Ticket {
    /// Block until the request completes.
    ///
    /// # Errors
    ///
    /// Fails only if the engine's worker panicked before replying.
    pub fn wait(self) -> Result<Response, mpsc::RecvError> {
        self.rx.recv()
    }
}

struct Request {
    seq: u64,
    seed: u64,
    submitted_at: Instant,
    reply: mpsc::Sender<Response>,
}

/// Everything a worker needs to serve one tenant. One mutex per tenant:
/// the scheduler guarantees at most one worker holds a tenant at a time,
/// so this lock is uncontended and exists only to move the state safely.
struct Core {
    app: Box<dyn Approximable + Send>,
    deployment: Deployment,
    stats: TenantStats,
}

/// Scheduler state, under a single short-held mutex.
struct State {
    /// Per-tenant FIFO of admitted requests.
    pending: Vec<VecDeque<Request>>,
    /// Whether the tenant is in `ready` or held by a worker.
    scheduled: Vec<bool>,
    /// Per-tenant next sequence number.
    submitted: Vec<u64>,
    /// Round-robin queue of tenants with work.
    ready: VecDeque<TenantId>,
    /// Admitted-but-incomplete requests (queued + in flight).
    queued: usize,
    /// Submissions rejected by admission control.
    rejected: u64,
    shutdown: bool,
}

struct Shared {
    config: ServeConfig,
    names: Vec<String>,
    cores: Vec<Mutex<Core>>,
    state: Mutex<State>,
    /// Signals workers: work available, or shutdown drained.
    work_cv: Condvar,
}

/// Registers tenants, then [`EngineBuilder::start`]s the worker set.
pub struct EngineBuilder {
    config: ServeConfig,
    names: Vec<String>,
    cores: Vec<Mutex<Core>>,
}

impl EngineBuilder {
    /// Start building an engine with the given policy.
    pub fn new(config: ServeConfig) -> EngineBuilder {
        EngineBuilder {
            config,
            names: Vec::new(),
            cores: Vec::new(),
        }
    }

    /// Register a tenant: an application plus its offline tune report.
    /// The engine builds the tenant's deployment (back-off ladder,
    /// watchdog cadence, re-promotion hysteresis) from the engine config.
    /// Returns the tenant's id, used with [`Engine::submit`].
    pub fn register(
        &mut self,
        name: impl Into<String>,
        app: Box<dyn Approximable + Send>,
        report: &TuneReport,
    ) -> TenantId {
        let deployment = Deployment::with_config(
            report,
            DeploymentConfig {
                toq: self.config.toq,
                check_every: self.config.check_every,
                promote_after: self.config.promote_after,
            },
        );
        let stats = TenantStats::new(QualityStream::new(
            self.config.toq,
            self.config.quality_alpha,
        ));
        self.names.push(name.into());
        self.cores.push(Mutex::new(Core {
            app,
            deployment,
            stats,
        }));
        self.names.len() - 1
    }

    /// Spawn the persistent worker set and start serving.
    pub fn start(self) -> Engine {
        let tenants = self.names.len();
        let workers = if self.config.workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.config.workers
        }
        .max(1);
        let shared = Arc::new(Shared {
            config: ServeConfig {
                queue_capacity: self.config.queue_capacity.max(1),
                ..self.config
            },
            names: self.names,
            cores: self.cores,
            state: Mutex::new(State {
                pending: (0..tenants).map(|_| VecDeque::new()).collect(),
                scheduled: vec![false; tenants],
                submitted: vec![0; tenants],
                ready: VecDeque::new(),
                queued: 0,
                rejected: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Engine { shared, handles }
    }
}

/// Point-in-time summary of the whole engine.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSnapshot {
    /// Submissions rejected by admission control.
    pub rejected: u64,
    /// Per-tenant summaries, in registration order.
    pub tenants: Vec<TenantSnapshot>,
}

/// The running engine. Prefer [`Engine::shutdown`] (which returns the
/// final summary); dropping the engine also drains and joins the workers.
pub struct Engine {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl Drop for Engine {
    fn drop(&mut self) {
        if self.handles.is_empty() {
            return;
        }
        {
            let mut state = self.shared.state.lock().unwrap();
            state.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Engine {
    /// Build an engine. Register tenants, then `start()`.
    pub fn builder(config: ServeConfig) -> EngineBuilder {
        EngineBuilder::new(config)
    }

    /// The policy the engine runs under.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.config
    }

    /// Registered tenant names, in registration order.
    pub fn tenant_names(&self) -> &[String] {
        &self.shared.names
    }

    /// Number of worker threads serving requests.
    pub fn worker_count(&self) -> usize {
        self.handles.len()
    }

    /// Submit a request for `tenant` on the input derived from `seed`.
    ///
    /// Non-blocking admission: the request is either admitted — the
    /// returned [`Ticket`] completes once a worker has served it — or
    /// rejected immediately.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when the admission budget is exhausted
    /// (with a retry-after hint), [`SubmitError::UnknownTenant`] for an
    /// unregistered id, [`SubmitError::ShuttingDown`] after shutdown
    /// begins.
    pub fn submit(&self, tenant: TenantId, seed: u64) -> Result<Ticket, SubmitError> {
        if tenant >= self.shared.names.len() {
            return Err(SubmitError::UnknownTenant(tenant));
        }
        let mut state = self.shared.state.lock().unwrap();
        if state.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        if state.queued >= self.shared.config.queue_capacity {
            state.rejected += 1;
            return Err(SubmitError::QueueFull {
                retry_after: state.queued,
            });
        }
        let seq = state.submitted[tenant];
        state.submitted[tenant] += 1;
        state.queued += 1;
        let (tx, rx) = mpsc::channel();
        state.pending[tenant].push_back(Request {
            seq,
            seed,
            submitted_at: Instant::now(),
            reply: tx,
        });
        if !state.scheduled[tenant] {
            state.scheduled[tenant] = true;
            state.ready.push_back(tenant);
            self.shared.work_cv.notify_one();
        }
        Ok(Ticket { tenant, seq, rx })
    }

    /// Point-in-time summary of every tenant. Taking a snapshot briefly
    /// locks each tenant's core in turn; in-flight requests for a tenant
    /// delay only that tenant's row.
    pub fn snapshot(&self) -> EngineSnapshot {
        let rejected = self.shared.state.lock().unwrap().rejected;
        let tenants = self
            .shared
            .cores
            .iter()
            .zip(&self.shared.names)
            .map(|(core, name)| snapshot_core(&core.lock().unwrap(), name))
            .collect();
        EngineSnapshot { rejected, tenants }
    }

    /// Stop admitting work, drain every already-admitted request, join
    /// the workers, and return the final summary.
    pub fn shutdown(mut self) -> EngineSnapshot {
        {
            let mut state = self.shared.state.lock().unwrap();
            state.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        self.snapshot()
    }
}

fn snapshot_core(core: &Core, name: &str) -> TenantSnapshot {
    let d = &core.deployment;
    let s = &core.stats;
    TenantSnapshot {
        name: name.to_string(),
        served: s.served,
        errors: s.errors,
        checks: d.checks(),
        violations: d.violations(),
        backoffs: s.backoffs,
        promotions: s.promotions,
        rung: d.ladder()[d.position()].to_string(),
        position: d.position(),
        ladder_len: d.ladder().len(),
        mean_quality: s.quality.mean(),
        min_quality: s.quality.min(),
        ewma_quality: s.quality.ewma(),
        cycles: s.cycles,
        queue_p50_ns: percentile(&s.queue_ns, 50.0),
        queue_p99_ns: percentile(&s.queue_ns, 99.0),
        service_p50_ns: percentile(&s.service_ns, 50.0),
        service_p99_ns: percentile(&s.service_ns, 99.0),
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        // Claim the next ready tenant, or exit once shutdown has drained.
        let tenant = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if let Some(t) = state.ready.pop_front() {
                    break t;
                }
                if state.shutdown && state.queued == 0 {
                    return;
                }
                state = shared.work_cv.wait(state).unwrap();
            }
        };
        // The tenant is scheduled (owned by this worker): pop its oldest
        // request. It must exist — a tenant only enters `ready` with work.
        let request = {
            let mut state = shared.state.lock().unwrap();
            state.pending[tenant]
                .pop_front()
                .expect("ready tenant has a pending request")
        };
        let queue_nanos = request.submitted_at.elapsed().as_nanos() as u64;

        // Serve outside the scheduler lock. The per-tenant core mutex is
        // uncontended (only snapshot() may briefly touch it).
        let response = {
            let mut core = shared.cores[tenant].lock().unwrap();
            let core = &mut *core;
            let started = Instant::now();
            let outcome = core.deployment.invoke(core.app.as_mut(), request.seed);
            let service_nanos = started.elapsed().as_nanos() as u64;
            core.stats.served += 1;
            core.stats.queue_ns.push(queue_nanos);
            core.stats.service_ns.push(service_nanos);
            match outcome {
                Ok(r) => {
                    core.stats.cycles += r.cycles;
                    core.stats.backoffs += u64::from(r.backed_off);
                    core.stats.promotions += u64::from(r.promoted);
                    if let Some(q) = r.checked_quality {
                        core.stats.quality.observe(q);
                    }
                    Response {
                        tenant,
                        seq: request.seq,
                        seed: request.seed,
                        output: r.output,
                        cycles: r.cycles,
                        variant: r.variant,
                        checked_quality: r.checked_quality,
                        backed_off: r.backed_off,
                        promoted: r.promoted,
                        queue_nanos,
                        service_nanos,
                        error: None,
                    }
                }
                Err(e) => {
                    core.stats.errors += 1;
                    Response {
                        tenant,
                        seq: request.seq,
                        seed: request.seed,
                        output: Vec::new(),
                        cycles: 0,
                        variant: None,
                        checked_quality: None,
                        backed_off: false,
                        promoted: false,
                        queue_nanos,
                        service_nanos,
                        error: Some(e.to_string()),
                    }
                }
            }
        };
        // The caller may have dropped the ticket; that is not an error.
        let _ = request.reply.send(response);

        // Completion bookkeeping: release or re-enqueue the tenant.
        let mut state = shared.state.lock().unwrap();
        state.queued -= 1;
        if state.pending[tenant].is_empty() {
            state.scheduled[tenant] = false;
        } else {
            // Back of the queue: round-robin fairness across tenants.
            state.ready.push_back(tenant);
            shared.work_cv.notify_one();
        }
        if state.shutdown && state.queued == 0 {
            // Wake every idle worker so they observe the drained state.
            shared.work_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_runtime::{RunOutcome, RuntimeError, Tuner};

    /// Minimal deterministic app: one variant at fixed quality/cycles.
    struct Fixed {
        quality: f64,
    }

    impl Approximable for Fixed {
        fn variant_count(&self) -> usize {
            1
        }
        fn variant_label(&self, _: usize) -> String {
            "fixed".into()
        }
        fn run_exact(&mut self, _seed: u64) -> Result<RunOutcome, RuntimeError> {
            Ok(RunOutcome {
                output: vec![100.0],
                cycles: 1000,
            })
        }
        fn run_variant(&mut self, _: usize, _seed: u64) -> Result<RunOutcome, RuntimeError> {
            Ok(RunOutcome {
                output: vec![self.quality],
                cycles: 100,
            })
        }
        fn quality(&self, _exact: &[f64], approx: &[f64]) -> f64 {
            approx[0]
        }
    }

    fn fixed_engine(config: ServeConfig) -> (Engine, TenantId) {
        let report = Tuner::paper_default()
            .tune(&mut Fixed { quality: 95.0 })
            .unwrap();
        let mut builder = Engine::builder(config);
        let id = builder.register("fixed", Box::new(Fixed { quality: 95.0 }), &report);
        (builder.start(), id)
    }

    #[test]
    fn serves_and_snapshots() {
        let (engine, id) = fixed_engine(ServeConfig {
            workers: 2,
            check_every: 5,
            ..ServeConfig::paper_default()
        });
        assert_eq!(engine.tenant_names(), ["fixed".to_string()]);
        assert_eq!(engine.worker_count(), 2);
        let tickets: Vec<Ticket> = (0..20).map(|s| engine.submit(id, s).unwrap()).collect();
        for (i, t) in tickets.into_iter().enumerate() {
            assert_eq!(t.seq, i as u64);
            let r = t.wait().unwrap();
            assert_eq!(r.seq, i as u64);
            assert_eq!(r.variant, Some(0));
            assert!(r.error.is_none());
            assert_eq!(r.output, vec![95.0]);
        }
        let snap = engine.shutdown();
        assert_eq!(snap.rejected, 0);
        let t = &snap.tenants[0];
        assert_eq!(t.served, 20);
        assert_eq!(t.checks, 4);
        assert_eq!(t.violations, 0);
        assert_eq!(t.rung, "v0");
        assert_eq!(t.mean_quality, Some(95.0));
        assert!(t.service_p99_ns >= t.service_p50_ns);
    }

    #[test]
    fn unknown_tenant_rejected() {
        let (engine, id) = fixed_engine(ServeConfig::paper_default());
        assert_eq!(
            engine.submit(id + 1, 0).unwrap_err(),
            SubmitError::UnknownTenant(id + 1)
        );
        engine.shutdown();
    }

    #[test]
    fn shutdown_drains_admitted_work_and_rejects_new() {
        let (engine, id) = fixed_engine(ServeConfig {
            workers: 1,
            ..ServeConfig::paper_default()
        });
        let tickets: Vec<Ticket> = (0..10).map(|s| engine.submit(id, s).unwrap()).collect();
        let snap = engine.shutdown();
        assert_eq!(snap.tenants[0].served, 10, "shutdown must drain the queue");
        for t in tickets {
            assert!(t.wait().is_ok(), "admitted requests must complete");
        }
    }

    #[test]
    fn submit_after_shutdown_fails() {
        let (engine, id) = fixed_engine(ServeConfig::paper_default());
        {
            let mut state = engine.shared.state.lock().unwrap();
            state.shutdown = true;
        }
        assert_eq!(engine.submit(id, 0).unwrap_err(), SubmitError::ShuttingDown);
        engine.shutdown();
    }

    #[test]
    fn submit_error_display() {
        assert!(SubmitError::QueueFull { retry_after: 3 }
            .to_string()
            .contains("retry after 3"));
        assert!(SubmitError::UnknownTenant(7).to_string().contains('7'));
        assert!(!SubmitError::ShuttingDown.to_string().is_empty());
    }

    #[test]
    fn round_robin_across_tenants_is_fair() {
        // Two tenants, one worker: completions must interleave rather than
        // drain one tenant before the other.
        let report = Tuner::paper_default()
            .tune(&mut Fixed { quality: 95.0 })
            .unwrap();
        let mut builder = Engine::builder(ServeConfig {
            workers: 1,
            queue_capacity: 64,
            ..ServeConfig::paper_default()
        });
        let a = builder.register("a", Box::new(Fixed { quality: 95.0 }), &report);
        let b = builder.register("b", Box::new(Fixed { quality: 95.0 }), &report);
        let engine = builder.start();
        let mut tickets = Vec::new();
        for s in 0..8 {
            tickets.push(engine.submit(a, s).unwrap());
            tickets.push(engine.submit(b, s).unwrap());
        }
        for t in tickets {
            t.wait().unwrap();
        }
        let snap = engine.shutdown();
        assert_eq!(snap.tenants[0].served, 8);
        assert_eq!(snap.tenants[1].served, 8);
        assert_eq!(snap.tenants[0].name, "a");
    }
}
