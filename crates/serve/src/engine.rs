//! The serving engine: bounded admission, a request batcher, and a farm
//! of work-stealing device shards running the online quality watchdog.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use paraprox_quality::QualityStream;
use paraprox_runtime::{Approximable, Deployment, DeploymentConfig, Toq, TuneReport};

use crate::batch::{serve_claimed, BatchItem, Core};
use crate::shard::ShardSet;
use crate::stats::{percentile, TenantSnapshot, TenantStats};

/// Identifies a registered tenant (the index returned by
/// [`EngineBuilder::register`]).
pub type TenantId = usize;

/// Engine policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Maximum number of admitted-but-incomplete requests (queued *and*
    /// in flight) across all tenants. Submissions beyond this budget are
    /// rejected with [`SubmitError::QueueFull`]. Clamped to at least 1.
    pub queue_capacity: usize,
    /// Worker threads *per shard*; `0` means one per available CPU.
    pub workers: usize,
    /// Device shards. Tenants have affinity to shard `tenant % shards`;
    /// idle shards steal ready tenants from busy ones. Clamped to at
    /// least 1 — one shard reproduces the pre-sharding engine.
    pub shards: usize,
    /// Maximum consecutive requests of one tenant coalesced into a single
    /// fused batch. Clamped to at least 1; a window of 1 disables
    /// batching (every request takes the classic per-request path).
    pub batch_window: usize,
    /// Target output quality enforced by every tenant's watchdog.
    pub toq: Toq,
    /// Calibration cadence: check every `check_every`-th served request
    /// (per tenant). The paper's §5 cites 40–50 as keeping overhead under
    /// 5%; serving tests use smaller values to exercise the watchdog.
    pub check_every: u64,
    /// Consecutive clean checks required before re-promoting one rung up
    /// the ladder. `0` disables re-promotion (back-off only).
    pub promote_after: u64,
    /// EWMA smoothing factor for the streaming quality estimate.
    pub quality_alpha: f64,
}

impl ServeConfig {
    /// Paper-flavoured defaults: TOQ 90%, check every 40th request,
    /// re-promote after 3 clean checks, a 64-deep queue, auto workers,
    /// one shard, no batching.
    pub fn paper_default() -> ServeConfig {
        ServeConfig {
            queue_capacity: 64,
            workers: 0,
            shards: 1,
            batch_window: 1,
            toq: Toq::paper_default(),
            check_every: 40,
            promote_after: 3,
            quality_alpha: 0.25,
        }
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission budget is exhausted. `retry_after` is the number of
    /// admitted-but-incomplete requests ahead of the caller — a hint for
    /// how many completions to wait for before resubmitting.
    QueueFull {
        /// Queue depth at rejection time (completions to wait for).
        retry_after: usize,
    },
    /// No tenant with that id is registered.
    UnknownTenant(TenantId),
    /// The engine is shutting down and no longer admits work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { retry_after } => {
                write!(f, "queue full: retry after {retry_after} completions")
            }
            SubmitError::UnknownTenant(id) => write!(f, "unknown tenant {id}"),
            SubmitError::ShuttingDown => write!(f, "engine is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// The completed result of one admitted request.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Tenant the request was for.
    pub tenant: TenantId,
    /// Per-tenant sequence number (0-based submission order).
    pub seq: u64,
    /// The request's input seed.
    pub seed: u64,
    /// Output values (empty when `error` is set).
    pub output: Vec<f64>,
    /// Simulated device cycles of the served execution.
    pub cycles: u64,
    /// The variant served (`None` = exact).
    pub variant: Option<usize>,
    /// Calibration quality when this request was a watchdog check.
    pub checked_quality: Option<f64>,
    /// Whether this request triggered a back-off.
    pub backed_off: bool,
    /// Whether this request triggered a re-promotion.
    pub promoted: bool,
    /// Time spent waiting for a worker, nanoseconds.
    pub queue_nanos: u64,
    /// Execution (service) time, nanoseconds. Requests fused into one
    /// chunk share the chunk's wall-clock time: they complete together.
    pub service_nanos: u64,
    /// Execution error, if the kernel failed.
    pub error: Option<String>,
}

/// Handle to one admitted request; redeem it with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    /// Tenant the request was admitted for.
    pub tenant: TenantId,
    /// Per-tenant sequence number assigned at admission.
    pub seq: u64,
    rx: mpsc::Receiver<Response>,
}

impl Ticket {
    /// Block until the request completes.
    ///
    /// # Errors
    ///
    /// Fails only if the engine's worker panicked before replying.
    pub fn wait(self) -> Result<Response, mpsc::RecvError> {
        self.rx.recv()
    }
}

struct Request {
    seq: u64,
    seed: u64,
    submitted_at: Instant,
    reply: mpsc::Sender<Response>,
}

/// Scheduler state, under a single short-held mutex.
struct State {
    /// Per-tenant FIFO of admitted requests.
    pending: Vec<VecDeque<Request>>,
    /// Whether the tenant is in a ready queue or held by a worker.
    scheduled: Vec<bool>,
    /// Per-tenant next sequence number.
    submitted: Vec<u64>,
    /// Deepest each tenant's FIFO has been.
    peak_depth: Vec<usize>,
    /// Per-shard ready queues (round-robin within a shard, stealing
    /// across shards).
    ready: ShardSet,
    /// Admitted-but-incomplete requests (queued + in flight).
    queued: usize,
    /// Submissions rejected by admission control.
    rejected: u64,
    shutdown: bool,
}

struct Shared {
    config: ServeConfig,
    names: Vec<String>,
    cores: Vec<Mutex<Core>>,
    state: Mutex<State>,
    /// Signals workers: work available, or shutdown drained.
    work_cv: Condvar,
}

/// Registers tenants, then [`EngineBuilder::start`]s the worker set.
pub struct EngineBuilder {
    config: ServeConfig,
    names: Vec<String>,
    cores: Vec<Mutex<Core>>,
}

impl EngineBuilder {
    /// Start building an engine with the given policy.
    pub fn new(config: ServeConfig) -> EngineBuilder {
        EngineBuilder {
            config,
            names: Vec::new(),
            cores: Vec::new(),
        }
    }

    /// Register a tenant: an application plus its offline tune report.
    /// The engine builds the tenant's deployment (back-off ladder,
    /// watchdog cadence, re-promotion hysteresis) from the engine config.
    /// Returns the tenant's id, used with [`Engine::submit`].
    pub fn register(
        &mut self,
        name: impl Into<String>,
        app: Box<dyn Approximable + Send>,
        report: &TuneReport,
    ) -> TenantId {
        let deployment = Deployment::with_config(
            report,
            DeploymentConfig {
                toq: self.config.toq,
                check_every: self.config.check_every,
                promote_after: self.config.promote_after,
            },
        );
        let stats = TenantStats::new(QualityStream::new(
            self.config.toq,
            self.config.quality_alpha,
        ));
        self.names.push(name.into());
        self.cores.push(Mutex::new(Core {
            app,
            deployment,
            stats,
        }));
        self.names.len() - 1
    }

    /// Spawn the persistent worker set — `shards × workers` threads, each
    /// pinned to one shard — and start serving.
    pub fn start(self) -> Engine {
        let tenants = self.names.len();
        let shards = self.config.shards.max(1);
        let per_shard = if self.config.workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.config.workers
        }
        .max(1);
        let shared = Arc::new(Shared {
            config: ServeConfig {
                queue_capacity: self.config.queue_capacity.max(1),
                shards,
                batch_window: self.config.batch_window.max(1),
                ..self.config
            },
            names: self.names,
            cores: self.cores,
            state: Mutex::new(State {
                pending: (0..tenants).map(|_| VecDeque::new()).collect(),
                scheduled: vec![false; tenants],
                submitted: vec![0; tenants],
                peak_depth: vec![0; tenants],
                ready: ShardSet::new(shards),
                queued: 0,
                rejected: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
        });
        let handles = (0..shards * per_shard)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let shard = i % shards;
                std::thread::spawn(move || worker_loop(&shared, shard))
            })
            .collect();
        Engine { shared, handles }
    }
}

/// Point-in-time summary of the whole engine.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSnapshot {
    /// Submissions rejected by admission control.
    pub rejected: u64,
    /// Tenant claims satisfied by stealing from another shard's queue.
    pub steals: u64,
    /// Per-tenant summaries, in registration order.
    pub tenants: Vec<TenantSnapshot>,
}

/// The running engine. Prefer [`Engine::shutdown`] (which returns the
/// final summary); dropping the engine also drains and joins the workers.
pub struct Engine {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl Drop for Engine {
    fn drop(&mut self) {
        if self.handles.is_empty() {
            return;
        }
        {
            let mut state = self.shared.state.lock().unwrap();
            state.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Engine {
    /// Build an engine. Register tenants, then `start()`.
    pub fn builder(config: ServeConfig) -> EngineBuilder {
        EngineBuilder::new(config)
    }

    /// The policy the engine runs under.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.config
    }

    /// Registered tenant names, in registration order.
    pub fn tenant_names(&self) -> &[String] {
        &self.shared.names
    }

    /// Number of worker threads serving requests (across all shards).
    pub fn worker_count(&self) -> usize {
        self.handles.len()
    }

    /// Number of device shards.
    pub fn shard_count(&self) -> usize {
        self.shared.config.shards
    }

    /// Submit a request for `tenant` on the input derived from `seed`.
    ///
    /// Non-blocking admission: the request is either admitted — the
    /// returned [`Ticket`] completes once a worker has served it — or
    /// rejected immediately.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when the admission budget is exhausted
    /// (with a retry-after hint), [`SubmitError::UnknownTenant`] for an
    /// unregistered id, [`SubmitError::ShuttingDown`] after shutdown
    /// begins.
    pub fn submit(&self, tenant: TenantId, seed: u64) -> Result<Ticket, SubmitError> {
        if tenant >= self.shared.names.len() {
            return Err(SubmitError::UnknownTenant(tenant));
        }
        let mut state = self.shared.state.lock().unwrap();
        if state.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        if state.queued >= self.shared.config.queue_capacity {
            state.rejected += 1;
            return Err(SubmitError::QueueFull {
                retry_after: state.queued,
            });
        }
        let seq = state.submitted[tenant];
        state.submitted[tenant] += 1;
        state.queued += 1;
        let (tx, rx) = mpsc::channel();
        state.pending[tenant].push_back(Request {
            seq,
            seed,
            submitted_at: Instant::now(),
            reply: tx,
        });
        state.peak_depth[tenant] = state.peak_depth[tenant].max(state.pending[tenant].len());
        if !state.scheduled[tenant] {
            state.scheduled[tenant] = true;
            state.ready.push(tenant);
            self.shared.work_cv.notify_one();
        }
        Ok(Ticket { tenant, seq, rx })
    }

    /// Point-in-time summary of every tenant. Taking a snapshot briefly
    /// locks each tenant's core in turn; in-flight requests for a tenant
    /// delay only that tenant's row.
    pub fn snapshot(&self) -> EngineSnapshot {
        let (rejected, steals, peaks) = {
            let state = self.shared.state.lock().unwrap();
            (state.rejected, state.ready.steals, state.peak_depth.clone())
        };
        let tenants = self
            .shared
            .cores
            .iter()
            .zip(&self.shared.names)
            .zip(&peaks)
            .map(|((core, name), &peak)| snapshot_core(&core.lock().unwrap(), name, peak))
            .collect();
        EngineSnapshot {
            rejected,
            steals,
            tenants,
        }
    }

    /// Stop admitting work, drain every already-admitted request, join
    /// the workers, and return the final summary.
    pub fn shutdown(mut self) -> EngineSnapshot {
        {
            let mut state = self.shared.state.lock().unwrap();
            state.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        self.snapshot()
    }
}

fn snapshot_core(core: &Core, name: &str, peak_depth: usize) -> TenantSnapshot {
    let d = &core.deployment;
    let s = &core.stats;
    let diag = core.app.engine_diagnostics();
    TenantSnapshot {
        name: name.to_string(),
        served: s.served,
        errors: s.errors,
        checks: d.checks(),
        violations: d.violations(),
        backoffs: s.backoffs,
        promotions: s.promotions,
        rung: d.ladder()[d.position()].to_string(),
        position: d.position(),
        seeded_position: d.seeded_position(),
        ladder_len: d.ladder().len(),
        mean_quality: s.quality.mean(),
        min_quality: s.quality.min(),
        ewma_quality: s.quality.ewma(),
        cycles: s.cycles,
        batches: s.batches,
        peak_batch: s.peak_batch,
        peak_queue_depth: peak_depth,
        ops_dispatched: diag.ops_dispatched,
        fusions_hit: diag.fusions_hit,
        queue_p50_ns: percentile(&s.queue_ns, 50.0),
        queue_p99_ns: percentile(&s.queue_ns, 99.0),
        service_p50_ns: percentile(&s.service_ns, 50.0),
        service_p99_ns: percentile(&s.service_ns, 99.0),
    }
}

fn worker_loop(shared: &Shared, shard: usize) {
    loop {
        // Claim the next ready tenant — own shard first, then steal —
        // or exit once shutdown has drained. While the tenant is claimed,
        // pop up to `batch_window` consecutive requests: the batch.
        let (tenant, items) = {
            let mut state = shared.state.lock().unwrap();
            let tenant = loop {
                if let Some(t) = state.ready.claim(shard) {
                    break t;
                }
                if state.shutdown && state.queued == 0 {
                    return;
                }
                state = shared.work_cv.wait(state).unwrap();
            };
            let window = shared.config.batch_window;
            let mut items = Vec::with_capacity(window.min(state.pending[tenant].len()));
            while items.len() < window {
                let Some(request) = state.pending[tenant].pop_front() else {
                    break;
                };
                items.push(BatchItem {
                    seq: request.seq,
                    seed: request.seed,
                    queue_nanos: request.submitted_at.elapsed().as_nanos() as u64,
                    reply: request.reply,
                });
            }
            // A tenant only enters a ready queue with pending work.
            assert!(!items.is_empty(), "ready tenant has a pending request");
            (tenant, items)
        };
        let count = items.len();

        // Serve outside the scheduler lock. The per-tenant core mutex is
        // uncontended (only snapshot() may briefly touch it).
        {
            let mut core = shared.cores[tenant].lock().unwrap();
            serve_claimed(tenant, &mut core, items);
        }

        // Completion bookkeeping: release or re-enqueue the tenant.
        let mut state = shared.state.lock().unwrap();
        state.queued -= count;
        if state.pending[tenant].is_empty() {
            state.scheduled[tenant] = false;
        } else {
            // Back of the home queue: round-robin fairness across tenants.
            state.ready.push(tenant);
            shared.work_cv.notify_one();
        }
        if state.shutdown && state.queued == 0 {
            // Wake every idle worker so they observe the drained state.
            shared.work_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_runtime::{RunOutcome, RuntimeError, Tuner};

    /// Minimal deterministic app: one variant at fixed quality/cycles.
    struct Fixed {
        quality: f64,
    }

    impl Approximable for Fixed {
        fn variant_count(&self) -> usize {
            1
        }
        fn variant_label(&self, _: usize) -> String {
            "fixed".into()
        }
        fn run_exact(&mut self, _seed: u64) -> Result<RunOutcome, RuntimeError> {
            Ok(RunOutcome {
                output: vec![100.0],
                cycles: 1000,
            })
        }
        fn run_variant(&mut self, _: usize, _seed: u64) -> Result<RunOutcome, RuntimeError> {
            Ok(RunOutcome {
                output: vec![self.quality],
                cycles: 100,
            })
        }
        fn quality(&self, _exact: &[f64], approx: &[f64]) -> f64 {
            approx[0]
        }
    }

    fn fixed_engine(config: ServeConfig) -> (Engine, TenantId) {
        let report = Tuner::paper_default()
            .tune(&mut Fixed { quality: 95.0 })
            .unwrap();
        let mut builder = Engine::builder(config);
        let id = builder.register("fixed", Box::new(Fixed { quality: 95.0 }), &report);
        (builder.start(), id)
    }

    #[test]
    fn serves_and_snapshots() {
        let (engine, id) = fixed_engine(ServeConfig {
            workers: 2,
            check_every: 5,
            ..ServeConfig::paper_default()
        });
        assert_eq!(engine.tenant_names(), ["fixed".to_string()]);
        assert_eq!(engine.worker_count(), 2);
        assert_eq!(engine.shard_count(), 1);
        let tickets: Vec<Ticket> = (0..20).map(|s| engine.submit(id, s).unwrap()).collect();
        for (i, t) in tickets.into_iter().enumerate() {
            assert_eq!(t.seq, i as u64);
            let r = t.wait().unwrap();
            assert_eq!(r.seq, i as u64);
            assert_eq!(r.variant, Some(0));
            assert!(r.error.is_none());
            assert_eq!(r.output, vec![95.0]);
        }
        let snap = engine.shutdown();
        assert_eq!(snap.rejected, 0);
        assert_eq!(snap.steals, 0, "one shard never steals");
        let t = &snap.tenants[0];
        assert_eq!(t.served, 20);
        assert_eq!(t.checks, 4);
        assert_eq!(t.violations, 0);
        assert_eq!(t.rung, "v0");
        assert_eq!(t.mean_quality, Some(95.0));
        assert!(t.service_p99_ns >= t.service_p50_ns);
        assert_eq!(t.batches, 20, "window 1: every request is its own batch");
        assert_eq!(t.peak_batch, 1);
        assert!(t.peak_queue_depth >= 1);
    }

    /// Two rungs — v0 fast at quality 95, v1 slower at quality 99. With a
    /// static table attached to the tune report and a serving TOQ of 97%,
    /// the deployment must seed its starting rung past v0 (predicted 95)
    /// straight onto v1, and the snapshot must report where it started.
    struct Stepped;

    impl Approximable for Stepped {
        fn variant_count(&self) -> usize {
            2
        }
        fn variant_label(&self, i: usize) -> String {
            format!("v{i}")
        }
        fn run_exact(&mut self, _seed: u64) -> Result<RunOutcome, RuntimeError> {
            Ok(RunOutcome {
                output: vec![100.0],
                cycles: 1000,
            })
        }
        fn run_variant(&mut self, i: usize, _seed: u64) -> Result<RunOutcome, RuntimeError> {
            Ok(RunOutcome {
                output: vec![[95.0, 99.0][i]],
                cycles: [100, 200][i],
            })
        }
        fn quality(&self, _exact: &[f64], approx: &[f64]) -> f64 {
            approx[0]
        }
    }

    #[test]
    fn static_table_seeds_tenant_starting_rung() {
        let sq = |predicted: f64| paraprox_runtime::StaticQuality {
            label: String::new(),
            error_bound: 1.0 - predicted / 100.0,
            quality_floor: predicted,
            predicted_quality: predicted,
            predictive: true,
            refused: false,
            refusals: Vec::new(),
        };
        // Tune at the paper TOQ (90%): both rungs qualify, ladder is
        // [v0, v1, exact] by speedup.
        let statics = vec![sq(95.0), sq(99.0)];
        let report = Tuner::paper_default()
            .tune_with_static(&mut Stepped, &statics)
            .unwrap();
        // Serve at a stricter TOQ (97%): the static table disqualifies v0
        // up front, so the tenant starts on v1 without ever serving (and
        // then backing off from) the doomed rung.
        let mut builder = Engine::builder(ServeConfig {
            workers: 1,
            toq: Toq::new(97.0).unwrap(),
            check_every: 4,
            ..ServeConfig::paper_default()
        });
        let id = builder.register("stepped", Box::new(Stepped), &report);
        let engine = builder.start();
        let tickets: Vec<Ticket> = (0..8).map(|s| engine.submit(id, s).unwrap()).collect();
        for t in tickets {
            let r = t.wait().unwrap();
            assert_eq!(
                r.variant,
                Some(1),
                "every request served from the seeded rung"
            );
            assert_eq!(r.output, vec![99.0]);
            assert!(!r.backed_off);
        }
        let snap = engine.shutdown();
        let t = &snap.tenants[0];
        assert_eq!(t.seeded_position, 1, "v0 statically disqualified at TOQ 97");
        assert_eq!(
            t.position, 1,
            "no violations at 99 quality: still on the seed"
        );
        assert_eq!(t.rung, "v1");
        assert_eq!(t.backoffs, 0);
        assert_eq!(t.violations, 0);
    }

    /// An app that blocks on a gate before completing, so the test can
    /// pile up a deep queue behind the first request deterministically.
    struct Gated {
        gate: mpsc::Receiver<()>,
    }

    impl Approximable for Gated {
        fn variant_count(&self) -> usize {
            0
        }
        fn variant_label(&self, _: usize) -> String {
            unreachable!("no variants")
        }
        fn run_exact(&mut self, _seed: u64) -> Result<RunOutcome, RuntimeError> {
            self.gate.recv().map_err(|e| RuntimeError(e.to_string()))?;
            Ok(RunOutcome {
                output: vec![1.0],
                cycles: 10,
            })
        }
        fn run_variant(&mut self, _: usize, _: u64) -> Result<RunOutcome, RuntimeError> {
            unreachable!("no variants")
        }
        fn quality(&self, _: &[f64], _: &[f64]) -> f64 {
            100.0
        }
    }

    #[test]
    fn batching_coalesces_queued_requests() {
        let (gate_tx, gate_rx) = mpsc::channel();
        let report = Tuner::paper_default()
            .tune(&mut Gated {
                gate: {
                    let (tx, rx) = mpsc::channel();
                    for _ in 0..10 {
                        tx.send(()).unwrap();
                    }
                    rx
                },
            })
            .unwrap();
        let mut builder = Engine::builder(ServeConfig {
            workers: 1,
            batch_window: 8,
            queue_capacity: 256,
            ..ServeConfig::paper_default()
        });
        let id = builder.register("gated", Box::new(Gated { gate: gate_rx }), &report);
        let engine = builder.start();
        // The worker blocks on the gate inside its first batch, so the
        // remaining submissions pile up in the tenant FIFO.
        let tickets: Vec<Ticket> = (0..40).map(|s| engine.submit(id, s).unwrap()).collect();
        for _ in 0..40 {
            gate_tx.send(()).unwrap();
        }
        for (i, t) in tickets.into_iter().enumerate() {
            let r = t.wait().unwrap();
            assert_eq!(r.seq, i as u64, "batching preserves per-tenant order");
            assert!(r.error.is_none());
        }
        let snap = engine.shutdown();
        let t = &snap.tenants[0];
        assert_eq!(t.served, 40);
        // The first batch holds 1..=8 requests (a race with submission);
        // everything after it was already queued, so the window is full:
        // at most 1 + ceil(39 / 8) = 6 dispatches for 40 requests.
        assert!(
            t.batches <= 6,
            "expected coalescing, got {} batches for 40 requests",
            t.batches
        );
        assert_eq!(t.peak_batch, 8, "a full window must have formed");
        assert!(t.peak_queue_depth >= 32, "queue built up behind the gate");
    }

    #[test]
    fn sharded_engine_drains_all_tenants() {
        let report = Tuner::paper_default()
            .tune(&mut Fixed { quality: 95.0 })
            .unwrap();
        let mut builder = Engine::builder(ServeConfig {
            workers: 1,
            shards: 4,
            batch_window: 4,
            queue_capacity: 256,
            ..ServeConfig::paper_default()
        });
        let tenants: Vec<TenantId> = (0..3)
            .map(|i| builder.register(format!("t{i}"), Box::new(Fixed { quality: 95.0 }), &report))
            .collect();
        let engine = builder.start();
        assert_eq!(engine.worker_count(), 4, "one worker per shard");
        assert_eq!(engine.shard_count(), 4);
        let mut tickets = Vec::new();
        for s in 0..10 {
            for &t in &tenants {
                tickets.push(engine.submit(t, s).unwrap());
            }
        }
        for t in tickets {
            assert!(t.wait().unwrap().error.is_none());
        }
        let snap = engine.shutdown();
        for t in &snap.tenants {
            assert_eq!(t.served, 10);
        }
    }

    #[test]
    fn unknown_tenant_rejected() {
        let (engine, id) = fixed_engine(ServeConfig::paper_default());
        assert_eq!(
            engine.submit(id + 1, 0).unwrap_err(),
            SubmitError::UnknownTenant(id + 1)
        );
        engine.shutdown();
    }

    #[test]
    fn shutdown_drains_admitted_work_and_rejects_new() {
        let (engine, id) = fixed_engine(ServeConfig {
            workers: 1,
            ..ServeConfig::paper_default()
        });
        let tickets: Vec<Ticket> = (0..10).map(|s| engine.submit(id, s).unwrap()).collect();
        let snap = engine.shutdown();
        assert_eq!(snap.tenants[0].served, 10, "shutdown must drain the queue");
        for t in tickets {
            assert!(t.wait().is_ok(), "admitted requests must complete");
        }
    }

    #[test]
    fn submit_after_shutdown_fails() {
        let (engine, id) = fixed_engine(ServeConfig::paper_default());
        {
            let mut state = engine.shared.state.lock().unwrap();
            state.shutdown = true;
        }
        assert_eq!(engine.submit(id, 0).unwrap_err(), SubmitError::ShuttingDown);
        engine.shutdown();
    }

    #[test]
    fn submit_error_display() {
        assert!(SubmitError::QueueFull { retry_after: 3 }
            .to_string()
            .contains("retry after 3"));
        assert!(SubmitError::UnknownTenant(7).to_string().contains('7'));
        assert!(!SubmitError::ShuttingDown.to_string().is_empty());
    }

    #[test]
    fn round_robin_across_tenants_is_fair() {
        // Two tenants, one worker: completions must interleave rather than
        // drain one tenant before the other.
        let report = Tuner::paper_default()
            .tune(&mut Fixed { quality: 95.0 })
            .unwrap();
        let mut builder = Engine::builder(ServeConfig {
            workers: 1,
            queue_capacity: 64,
            ..ServeConfig::paper_default()
        });
        let a = builder.register("a", Box::new(Fixed { quality: 95.0 }), &report);
        let b = builder.register("b", Box::new(Fixed { quality: 95.0 }), &report);
        let engine = builder.start();
        let mut tickets = Vec::new();
        for s in 0..8 {
            tickets.push(engine.submit(a, s).unwrap());
            tickets.push(engine.submit(b, s).unwrap());
        }
        for t in tickets {
            t.wait().unwrap();
        }
        let snap = engine.shutdown();
        assert_eq!(snap.tenants[0].served, 8);
        assert_eq!(snap.tenants[1].served, 8);
        assert_eq!(snap.tenants[0].name, "a");
    }
}
