//! Device shards: per-shard ready queues with tenant affinity and work
//! stealing.
//!
//! The engine partitions its workers into *shards*. Every tenant has a
//! home shard (`tenant % shards`), and a tenant with pending work waits in
//! its home shard's ready queue — so under steady load, a tenant's
//! requests are served by the same small worker set, keeping its
//! device-side working state (program caches, pooled worker images) on one
//! shard. When a shard's own queue runs dry its workers *steal*: they scan
//! the other shards' queues round-robin, starting after their own shard,
//! and claim the oldest ready tenant they find. Stealing trades affinity
//! for utilization exactly when affinity is worthless (the home shard has
//! nothing to run).
//!
//! Stealing never reorders a single tenant's requests — a tenant is
//! claimed *whole* (the scheduler's one-owner-at-a-time invariant is
//! unchanged), so which worker serves a batch affects wall-clock placement
//! only, never the watchdog's decision trace.

use std::collections::VecDeque;

use crate::engine::TenantId;

/// The per-shard ready queues. Lives inside the engine's scheduler state,
/// under the scheduler mutex; methods are O(shards) at worst.
#[derive(Debug)]
pub(crate) struct ShardSet {
    queues: Vec<VecDeque<TenantId>>,
    /// Claims satisfied from another shard's queue.
    pub steals: u64,
}

impl ShardSet {
    /// `shards` empty ready queues (clamped to at least one).
    pub fn new(shards: usize) -> ShardSet {
        ShardSet {
            queues: (0..shards.max(1)).map(|_| VecDeque::new()).collect(),
            steals: 0,
        }
    }

    /// A tenant's home shard.
    pub fn home(&self, tenant: TenantId) -> usize {
        tenant % self.queues.len()
    }

    /// Enqueue a ready tenant on its home shard.
    pub fn push(&mut self, tenant: TenantId) {
        let home = self.home(tenant);
        self.queues[home].push_back(tenant);
    }

    /// Claim the next ready tenant for a worker on `shard`: the shard's
    /// own queue first, then the other shards' queues round-robin
    /// (stealing). Returns `None` when every queue is empty.
    pub fn claim(&mut self, shard: usize) -> Option<TenantId> {
        let n = self.queues.len();
        debug_assert!(shard < n);
        if let Some(t) = self.queues[shard].pop_front() {
            return Some(t);
        }
        for step in 1..n {
            let victim = (shard + step) % n;
            if let Some(t) = self.queues[victim].pop_front() {
                self.steals += 1;
                return Some(t);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn home_shard_is_tenant_modulo_shards() {
        let set = ShardSet::new(3);
        assert_eq!(set.home(0), 0);
        assert_eq!(set.home(4), 1);
        assert_eq!(set.home(5), 2);
    }

    #[test]
    fn claim_prefers_own_queue() {
        let mut set = ShardSet::new(2);
        set.push(0); // home shard 0
        set.push(1); // home shard 1
        assert_eq!(set.claim(0), Some(0));
        assert_eq!(set.steals, 0);
        assert_eq!(set.claim(1), Some(1));
        assert_eq!(set.steals, 0);
        assert_eq!(set.claim(0), None);
    }

    #[test]
    fn empty_shard_steals_round_robin() {
        let mut set = ShardSet::new(3);
        set.push(1); // home shard 1
        set.push(2); // home shard 2
                     // Shard 0 is empty: it must steal from shard 1 first (next in the
                     // round-robin scan), then shard 2.
        assert_eq!(set.claim(0), Some(1));
        assert_eq!(set.claim(0), Some(2));
        assert_eq!(set.steals, 2);
        assert_eq!(set.claim(0), None);
        assert_eq!(set.steals, 2, "failed claims are not steals");
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let mut set = ShardSet::new(0);
        assert_eq!(set.home(7), 0, "every tenant homes on the only shard");
        set.push(7);
        assert_eq!(set.claim(0), Some(7));
    }
}
