//! A closed-loop load generator for serving experiments.
//!
//! Drives an [`Engine`] the way the paper's measurement loops drive a
//! deployment: a fixed number of seeded requests per tenant, submitted
//! round-robin with a bounded number outstanding (closed loop, so the
//! generator never outruns the engine by more than `inflight`). Admission
//! rejections are honoured as designed: on [`SubmitError::QueueFull`] the
//! generator waits for its oldest outstanding ticket — a completion *is*
//! the retry-after signal — and resubmits.
//!
//! Seeds are `seed_base + sequence`, so a run is fully described by
//! `(seed_base, requests)` and reproducible by construction; keeping
//! `seed_base` above the tuner's training seeds ensures serving traffic
//! never replays a training input.

use std::collections::VecDeque;
use std::time::Instant;

use crate::engine::{Engine, Response, SubmitError, TenantId, Ticket};

/// Shape of a closed-loop run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadSpec {
    /// Requests per tenant.
    pub requests: u64,
    /// First request seed; request `i` of every tenant uses
    /// `seed_base + i`. Keep this above the training seeds so serving
    /// traffic is disjoint from tuning traffic.
    pub seed_base: u64,
    /// Maximum outstanding (admitted, not yet redeemed) tickets. Clamped
    /// to at least 1.
    pub inflight: usize,
}

impl LoadSpec {
    /// `requests` per tenant from seed 1000, 8 outstanding.
    pub fn new(requests: u64) -> LoadSpec {
        LoadSpec {
            requests,
            seed_base: 1000,
            inflight: 8,
        }
    }
}

/// What a closed-loop run observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadReport {
    /// Wall-clock duration of the whole run, nanoseconds.
    pub wall_nanos: u64,
    /// Responses redeemed (requests per tenant × tenants).
    pub completed: u64,
    /// Submissions rejected with `QueueFull` and retried to success.
    pub retries: u64,
    /// Responses carrying an execution error.
    pub errors: u64,
}

impl LoadReport {
    /// Completed requests per wall-clock second.
    pub fn throughput_rps(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        self.completed as f64 / (self.wall_nanos as f64 / 1e9)
    }
}

/// Drive `spec.requests` seeded requests per tenant through the engine,
/// round-robin, redeeming every ticket. `on_response` sees each response
/// as it is redeemed (per tenant, in sequence order).
///
/// # Panics
///
/// Panics if a tenant id is unknown, submission races shutdown, or a
/// worker dies without replying — load generation is a harness, and
/// harnesses want loud failures.
pub fn run_closed_loop(
    engine: &Engine,
    tenants: &[TenantId],
    spec: &LoadSpec,
    mut on_response: impl FnMut(&Response),
) -> LoadReport {
    let inflight = spec.inflight.max(1);
    let mut outstanding: VecDeque<Ticket> = VecDeque::with_capacity(inflight);
    let mut report = LoadReport {
        wall_nanos: 0,
        completed: 0,
        retries: 0,
        errors: 0,
    };
    let mut redeem_oldest = |outstanding: &mut VecDeque<Ticket>, report: &mut LoadReport| {
        let ticket = outstanding.pop_front().expect("an outstanding ticket");
        let response = ticket.wait().expect("worker must reply");
        report.completed += 1;
        report.errors += u64::from(response.error.is_some());
        on_response(&response);
    };

    let started = Instant::now();
    for i in 0..spec.requests {
        let seed = spec.seed_base + i;
        for &tenant in tenants {
            loop {
                match engine.submit(tenant, seed) {
                    Ok(ticket) => {
                        outstanding.push_back(ticket);
                        break;
                    }
                    Err(SubmitError::QueueFull { .. }) => {
                        // Backpressure: drain one completion, then retry.
                        report.retries += 1;
                        redeem_oldest(&mut outstanding, &mut report);
                    }
                    Err(e) => panic!("submit failed: {e}"),
                }
            }
            while outstanding.len() >= inflight {
                redeem_oldest(&mut outstanding, &mut report);
            }
        }
    }
    while !outstanding.is_empty() {
        redeem_oldest(&mut outstanding, &mut report);
    }
    report.wall_nanos = started.elapsed().as_nanos() as u64;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServeConfig;
    use paraprox_runtime::{Approximable, RunOutcome, RuntimeError, Tuner};

    struct Echo;

    impl Approximable for Echo {
        fn variant_count(&self) -> usize {
            0
        }
        fn variant_label(&self, _: usize) -> String {
            unreachable!()
        }
        fn run_exact(&mut self, seed: u64) -> Result<RunOutcome, RuntimeError> {
            Ok(RunOutcome {
                output: vec![seed as f64],
                cycles: 1,
            })
        }
        fn run_variant(&mut self, _: usize, _: u64) -> Result<RunOutcome, RuntimeError> {
            unreachable!()
        }
        fn quality(&self, _: &[f64], _: &[f64]) -> f64 {
            100.0
        }
    }

    #[test]
    fn closed_loop_completes_every_request_under_tiny_queue() {
        let report = Tuner::paper_default().tune(&mut Echo).unwrap();
        let mut builder = Engine::builder(ServeConfig {
            // Queue smaller than inflight × tenants: the loop must absorb
            // QueueFull rejections via retries and still finish.
            queue_capacity: 2,
            workers: 2,
            ..ServeConfig::paper_default()
        });
        let a = builder.register("a", Box::new(Echo), &report);
        let b = builder.register("b", Box::new(Echo), &report);
        let engine = builder.start();
        let spec = LoadSpec {
            requests: 25,
            seed_base: 1000,
            inflight: 8,
        };
        let mut seen = Vec::new();
        let load = run_closed_loop(&engine, &[a, b], &spec, |r| {
            assert_eq!(r.output, vec![r.seed as f64]);
            seen.push((r.tenant, r.seq, r.seed));
        });
        assert_eq!(load.completed, 50);
        assert_eq!(load.errors, 0);
        assert!(load.throughput_rps() > 0.0);
        // Per tenant: all 25 seqs redeemed in order, seeds offset by base.
        for t in [a, b] {
            let seqs: Vec<u64> = seen.iter().filter(|x| x.0 == t).map(|x| x.1).collect();
            assert_eq!(seqs, (0..25).collect::<Vec<u64>>());
        }
        assert!(seen.iter().all(|x| x.2 == 1000 + x.1));
        let snap = engine.shutdown();
        assert_eq!(snap.tenants[0].served + snap.tenants[1].served, 50);
    }
}
