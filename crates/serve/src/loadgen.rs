//! Load generators for serving experiments: closed-loop and open-loop.
//!
//! **Closed loop** ([`run_closed_loop`]) drives an [`Engine`] the way the
//! paper's measurement loops drive a deployment: a fixed number of seeded
//! requests per tenant, submitted round-robin with a bounded number
//! outstanding (so the generator never outruns the engine by more than
//! `inflight`). Admission rejections are honoured as designed: on
//! [`SubmitError::QueueFull`] the generator waits for its oldest
//! outstanding ticket — a completion *is* the retry-after signal — and
//! resubmits. A closed loop measures *capacity*: the engine is never
//! starved, so completed/wall-clock is saturation throughput.
//!
//! **Open loop** ([`run_open_loop`]) submits on a precomputed arrival
//! schedule — exponential inter-arrival gaps drawn deterministically from
//! a SplitMix64 stream — regardless of how fast the engine drains. The
//! schedule depends only on `(schedule_seed, rate_rps, requests)`, never
//! on observed service times, so two engines under comparison face the
//! *same* offered stream. Requests the admission queue rejects are
//! *dropped* (counted, not retried): an open-loop generator models
//! independent outside arrivals, and sweeping `rate_rps` past capacity
//! traces the throughput/latency saturation curve.
//!
//! Seeds are `seed_base + sequence`, so a run is fully described by its
//! spec and reproducible by construction; keeping `seed_base` above the
//! tuner's training seeds ensures serving traffic never replays a
//! training input.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use crate::engine::{Engine, Response, SubmitError, TenantId, Ticket};
use crate::stats::percentile;

/// Shape of a closed-loop run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadSpec {
    /// Requests per tenant.
    pub requests: u64,
    /// First request seed; request `i` of every tenant uses
    /// `seed_base + i`. Keep this above the training seeds so serving
    /// traffic is disjoint from tuning traffic.
    pub seed_base: u64,
    /// Maximum outstanding (admitted, not yet redeemed) tickets. Clamped
    /// to at least 1.
    pub inflight: usize,
}

impl LoadSpec {
    /// `requests` per tenant from seed 1000, 8 outstanding.
    pub fn new(requests: u64) -> LoadSpec {
        LoadSpec {
            requests,
            seed_base: 1000,
            inflight: 8,
        }
    }
}

/// What a closed-loop run observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadReport {
    /// Wall-clock duration of the whole run, nanoseconds.
    pub wall_nanos: u64,
    /// Responses redeemed (requests per tenant × tenants).
    pub completed: u64,
    /// Submissions rejected with `QueueFull` and retried to success.
    pub retries: u64,
    /// Responses carrying an execution error.
    pub errors: u64,
}

impl LoadReport {
    /// Completed requests per wall-clock second.
    pub fn throughput_rps(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        self.completed as f64 / (self.wall_nanos as f64 / 1e9)
    }
}

/// Drive `spec.requests` seeded requests per tenant through the engine,
/// round-robin, redeeming every ticket. `on_response` sees each response
/// as it is redeemed (per tenant, in sequence order).
///
/// # Panics
///
/// Panics if a tenant id is unknown, submission races shutdown, or a
/// worker dies without replying — load generation is a harness, and
/// harnesses want loud failures.
pub fn run_closed_loop(
    engine: &Engine,
    tenants: &[TenantId],
    spec: &LoadSpec,
    mut on_response: impl FnMut(&Response),
) -> LoadReport {
    let inflight = spec.inflight.max(1);
    let mut outstanding: VecDeque<Ticket> = VecDeque::with_capacity(inflight);
    let mut report = LoadReport {
        wall_nanos: 0,
        completed: 0,
        retries: 0,
        errors: 0,
    };
    let mut redeem_oldest = |outstanding: &mut VecDeque<Ticket>, report: &mut LoadReport| {
        let ticket = outstanding.pop_front().expect("an outstanding ticket");
        let response = ticket.wait().expect("worker must reply");
        report.completed += 1;
        report.errors += u64::from(response.error.is_some());
        on_response(&response);
    };

    let started = Instant::now();
    for i in 0..spec.requests {
        let seed = spec.seed_base + i;
        for &tenant in tenants {
            loop {
                match engine.submit(tenant, seed) {
                    Ok(ticket) => {
                        outstanding.push_back(ticket);
                        break;
                    }
                    Err(SubmitError::QueueFull { .. }) => {
                        // Backpressure: drain one completion, then retry.
                        // The admission counter releases a batch's slots
                        // only after the whole batch is served, so the
                        // queue can read full for a moment after our last
                        // ticket has already been redeemed — with nothing
                        // left to drain, just yield until a slot frees.
                        report.retries += 1;
                        if outstanding.is_empty() {
                            std::thread::yield_now();
                        } else {
                            redeem_oldest(&mut outstanding, &mut report);
                        }
                    }
                    Err(e) => panic!("submit failed: {e}"),
                }
            }
            while outstanding.len() >= inflight {
                redeem_oldest(&mut outstanding, &mut report);
            }
        }
    }
    while !outstanding.is_empty() {
        redeem_oldest(&mut outstanding, &mut report);
    }
    report.wall_nanos = started.elapsed().as_nanos() as u64;
    report
}

/// Shape of an open-loop run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenLoopSpec {
    /// Total requests across all tenants (assigned round-robin).
    pub requests: u64,
    /// Offered load, requests per second across all tenants. Arrival gaps
    /// are exponential with this rate (a Poisson arrival process).
    pub rate_rps: f64,
    /// First request seed; request `i` of every tenant uses
    /// `seed_base + i` (the same seed-per-sequence convention as
    /// [`LoadSpec`]).
    pub seed_base: u64,
    /// Seed of the arrival schedule's SplitMix64 stream. The schedule is
    /// a pure function of `(schedule_seed, rate_rps, requests)`.
    pub schedule_seed: u64,
}

impl OpenLoopSpec {
    /// `requests` arrivals at `rate_rps`, seeds from 1000, schedule 7.
    pub fn new(requests: u64, rate_rps: f64) -> OpenLoopSpec {
        OpenLoopSpec {
            requests,
            rate_rps,
            seed_base: 1000,
            schedule_seed: 7,
        }
    }

    /// The arrival schedule: nanosecond offsets from the run's start, one
    /// per request, strictly derived from the spec (service times never
    /// feed back into it). Gaps are `-ln(u)/rate` with `u` uniform in
    /// `(0, 1]` from SplitMix64 — exponential inter-arrivals.
    pub fn arrival_offsets_ns(&self) -> Vec<u64> {
        let rate = self.rate_rps.max(1e-9);
        let mut state = self.schedule_seed;
        let mut at_ns = 0.0f64;
        (0..self.requests)
            .map(|_| {
                let bits = paraprox_prng::splitmix64(&mut state);
                // Uniform in (0, 1]: never 0, so ln(u) is finite.
                let u = ((bits >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
                at_ns += -u.ln() / rate * 1e9;
                at_ns as u64
            })
            .collect()
    }
}

/// What an open-loop run observed.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopReport {
    /// Wall-clock duration of the whole run (last redemption included),
    /// nanoseconds.
    pub wall_nanos: u64,
    /// Requests offered (the spec's `requests`).
    pub offered: u64,
    /// Requests admitted and completed.
    pub completed: u64,
    /// Requests dropped at admission (`QueueFull`).
    pub dropped: u64,
    /// Completed responses carrying an execution error.
    pub errors: u64,
    /// End-to-end latency of each completed request (queue wait plus
    /// service), nanoseconds, in completion-redemption order.
    pub latency_ns: Vec<u64>,
}

impl OpenLoopReport {
    /// Completed requests per wall-clock second (achieved throughput; at
    /// most the offered rate, less once the engine saturates and drops).
    pub fn achieved_rps(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        self.completed as f64 / (self.wall_nanos as f64 / 1e9)
    }

    /// Nearest-rank latency percentile, nanoseconds.
    pub fn latency_p(&self, p: f64) -> u64 {
        percentile(&self.latency_ns, p)
    }

    /// Dropped / offered.
    pub fn drop_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.dropped as f64 / self.offered as f64
    }
}

/// Offer `spec.requests` arrivals to the engine on the spec's
/// deterministic schedule, round-robin across `tenants`, then redeem
/// every admitted ticket. Submission never blocks on completions: the
/// generator sleeps until each arrival time and submits, dropping the
/// request if admission rejects it. Latency is measured engine-side
/// (queue wait + service) per completed request.
///
/// # Panics
///
/// Panics if a tenant id is unknown, submission races shutdown, or a
/// worker dies without replying.
pub fn run_open_loop(engine: &Engine, tenants: &[TenantId], spec: &OpenLoopSpec) -> OpenLoopReport {
    assert!(!tenants.is_empty(), "open loop needs at least one tenant");
    let offsets = spec.arrival_offsets_ns();
    let mut report = OpenLoopReport {
        wall_nanos: 0,
        offered: spec.requests,
        completed: 0,
        dropped: 0,
        errors: 0,
        latency_ns: Vec::new(),
    };
    let mut tickets: Vec<Ticket> = Vec::with_capacity(offsets.len());
    let mut next_seq = vec![0u64; tenants.len()];
    let started = Instant::now();
    for (i, &at_ns) in offsets.iter().enumerate() {
        let elapsed = started.elapsed().as_nanos() as u64;
        if at_ns > elapsed {
            std::thread::sleep(Duration::from_nanos(at_ns - elapsed));
        }
        let slot = i % tenants.len();
        let seed = spec.seed_base + next_seq[slot];
        next_seq[slot] += 1;
        match engine.submit(tenants[slot], seed) {
            Ok(ticket) => tickets.push(ticket),
            Err(SubmitError::QueueFull { .. }) => report.dropped += 1,
            Err(e) => panic!("submit failed: {e}"),
        }
    }
    for ticket in tickets {
        let response = ticket.wait().expect("worker must reply");
        report.completed += 1;
        report.errors += u64::from(response.error.is_some());
        report
            .latency_ns
            .push(response.queue_nanos + response.service_nanos);
    }
    report.wall_nanos = started.elapsed().as_nanos() as u64;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServeConfig;
    use paraprox_runtime::{Approximable, RunOutcome, RuntimeError, Tuner};

    struct Echo;

    impl Approximable for Echo {
        fn variant_count(&self) -> usize {
            0
        }
        fn variant_label(&self, _: usize) -> String {
            unreachable!()
        }
        fn run_exact(&mut self, seed: u64) -> Result<RunOutcome, RuntimeError> {
            Ok(RunOutcome {
                output: vec![seed as f64],
                cycles: 1,
            })
        }
        fn run_variant(&mut self, _: usize, _: u64) -> Result<RunOutcome, RuntimeError> {
            unreachable!()
        }
        fn quality(&self, _: &[f64], _: &[f64]) -> f64 {
            100.0
        }
    }

    #[test]
    fn closed_loop_completes_every_request_under_tiny_queue() {
        let report = Tuner::paper_default().tune(&mut Echo).unwrap();
        let mut builder = Engine::builder(ServeConfig {
            // Queue smaller than inflight × tenants: the loop must absorb
            // QueueFull rejections via retries and still finish.
            queue_capacity: 2,
            workers: 2,
            ..ServeConfig::paper_default()
        });
        let a = builder.register("a", Box::new(Echo), &report);
        let b = builder.register("b", Box::new(Echo), &report);
        let engine = builder.start();
        let spec = LoadSpec {
            requests: 25,
            seed_base: 1000,
            inflight: 8,
        };
        let mut seen = Vec::new();
        let load = run_closed_loop(&engine, &[a, b], &spec, |r| {
            assert_eq!(r.output, vec![r.seed as f64]);
            seen.push((r.tenant, r.seq, r.seed));
        });
        assert_eq!(load.completed, 50);
        assert_eq!(load.errors, 0);
        assert!(load.throughput_rps() > 0.0);
        // Per tenant: all 25 seqs redeemed in order, seeds offset by base.
        for t in [a, b] {
            let seqs: Vec<u64> = seen.iter().filter(|x| x.0 == t).map(|x| x.1).collect();
            assert_eq!(seqs, (0..25).collect::<Vec<u64>>());
        }
        assert!(seen.iter().all(|x| x.2 == 1000 + x.1));
        let snap = engine.shutdown();
        assert_eq!(snap.tenants[0].served + snap.tenants[1].served, 50);
    }

    #[test]
    fn arrival_schedule_is_deterministic_and_monotone() {
        let spec = OpenLoopSpec::new(500, 10_000.0);
        let a = spec.arrival_offsets_ns();
        let b = spec.arrival_offsets_ns();
        assert_eq!(a, b, "schedule is a pure function of the spec");
        assert_eq!(a.len(), 500);
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "offsets are sorted");
        // Mean gap of exponential(rate) is 1/rate: 100µs at 10k rps. The
        // 500-arrival sample mean should be within a factor of two.
        let mean_gap = a.last().unwrap() / 500;
        assert!(
            (50_000..200_000).contains(&mean_gap),
            "mean gap {mean_gap}ns far from 100µs"
        );
        // A different schedule seed yields a different schedule.
        let other = OpenLoopSpec {
            schedule_seed: 8,
            ..spec
        };
        assert_ne!(other.arrival_offsets_ns(), a);
    }

    #[test]
    fn open_loop_completes_offered_load_below_capacity() {
        let report = Tuner::paper_default().tune(&mut Echo).unwrap();
        let mut builder = Engine::builder(ServeConfig {
            queue_capacity: 64,
            workers: 2,
            ..ServeConfig::paper_default()
        });
        let a = builder.register("a", Box::new(Echo), &report);
        let b = builder.register("b", Box::new(Echo), &report);
        let engine = builder.start();
        // Echo is near-instant: 2k rps is far below capacity, so nothing
        // should be dropped.
        let spec = OpenLoopSpec::new(40, 2_000.0);
        let load = run_open_loop(&engine, &[a, b], &spec);
        assert_eq!(load.offered, 40);
        assert_eq!(load.completed, 40);
        assert_eq!(load.dropped, 0);
        assert_eq!(load.errors, 0);
        assert_eq!(load.drop_rate(), 0.0);
        assert_eq!(load.latency_ns.len(), 40);
        assert!(load.achieved_rps() > 0.0);
        assert!(load.latency_p(99.0) >= load.latency_p(50.0));
        let snap = engine.shutdown();
        assert_eq!(snap.tenants[0].served + snap.tenants[1].served, 40);
    }

    #[test]
    fn open_loop_drops_rather_than_blocking_when_the_queue_is_full() {
        // A gate the test never opens until after submission: with a
        // 2-deep queue, an instantaneous burst must drop the overflow
        // instead of retrying (open-loop semantics).
        use std::sync::mpsc;
        struct Gated {
            gate: mpsc::Receiver<()>,
        }
        impl Approximable for Gated {
            fn variant_count(&self) -> usize {
                0
            }
            fn variant_label(&self, _: usize) -> String {
                unreachable!()
            }
            fn run_exact(&mut self, _: u64) -> Result<RunOutcome, RuntimeError> {
                self.gate.recv().map_err(|e| RuntimeError(e.to_string()))?;
                Ok(RunOutcome {
                    output: vec![1.0],
                    cycles: 1,
                })
            }
            fn run_variant(&mut self, _: usize, _: u64) -> Result<RunOutcome, RuntimeError> {
                unreachable!()
            }
            fn quality(&self, _: &[f64], _: &[f64]) -> f64 {
                100.0
            }
        }
        let (gate_tx, gate_rx) = mpsc::channel();
        let report = Tuner::paper_default()
            .tune(&mut Gated {
                gate: {
                    let (tx, rx) = mpsc::channel();
                    for _ in 0..10 {
                        tx.send(()).unwrap();
                    }
                    rx
                },
            })
            .unwrap();
        let mut builder = Engine::builder(ServeConfig {
            queue_capacity: 2,
            workers: 1,
            ..ServeConfig::paper_default()
        });
        let id = builder.register("gated", Box::new(Gated { gate: gate_rx }), &report);
        let engine = builder.start();
        // Effectively-infinite rate: all 10 arrivals are due immediately,
        // but only 2 fit the admission budget while the worker is gated.
        let spec = OpenLoopSpec::new(10, 1e12);
        let handle = std::thread::spawn({
            move || {
                for _ in 0..10 {
                    // Feed the gate until the run's admitted requests have
                    // all been served (extra sends are never received).
                    if gate_tx.send(()).is_err() {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        });
        let load = run_open_loop(&engine, &[id], &spec);
        assert_eq!(load.completed + load.dropped, 10);
        assert!(load.dropped > 0, "burst over a 2-deep queue must drop");
        assert!(load.drop_rate() > 0.0);
        engine.shutdown();
        let _ = handle.join();
    }
}
