//! Per-tenant serving statistics and snapshots.

use paraprox_quality::QualityStream;

/// Nearest-rank percentile of a sample set, in the sample's unit.
/// Returns 0 for an empty set; `p` is clamped into `[0, 100]`.
pub fn percentile(samples: &[u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.max(1) - 1]
}

/// Mutable per-tenant accounting, owned by whichever worker currently
/// holds the tenant (so no atomics are needed).
#[derive(Debug)]
pub struct TenantStats {
    /// Streaming estimate over calibration-check qualities.
    pub quality: QualityStream,
    /// Requests served (including failed ones).
    pub served: u64,
    /// Requests that failed with an execution error.
    pub errors: u64,
    /// Back-offs taken down the ladder.
    pub backoffs: u64,
    /// Re-promotions up the ladder.
    pub promotions: u64,
    /// Total simulated device cycles spent serving.
    pub cycles: u64,
    /// Per-request time spent waiting for a worker, nanoseconds.
    pub queue_ns: Vec<u64>,
    /// Per-request execution time, nanoseconds.
    pub service_ns: Vec<u64>,
}

impl TenantStats {
    /// Fresh accounting with the given streaming-quality estimator.
    pub fn new(quality: QualityStream) -> TenantStats {
        TenantStats {
            quality,
            served: 0,
            errors: 0,
            backoffs: 0,
            promotions: 0,
            cycles: 0,
            queue_ns: Vec::new(),
            service_ns: Vec::new(),
        }
    }
}

/// An immutable point-in-time summary of one tenant, as returned by
/// [`crate::Engine::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSnapshot {
    /// Tenant name as registered.
    pub name: String,
    /// Requests served so far.
    pub served: u64,
    /// Requests that failed with an execution error.
    pub errors: u64,
    /// Calibration checks performed (including shadow probes).
    pub checks: u64,
    /// Checks that violated the TOQ.
    pub violations: u64,
    /// Back-offs taken down the ladder.
    pub backoffs: u64,
    /// Re-promotions up the ladder.
    pub promotions: u64,
    /// The rung currently served ("v3" or "exact").
    pub rung: String,
    /// Position in the back-off ladder (0 = most aggressive).
    pub position: usize,
    /// Ladder length including the terminal exact rung.
    pub ladder_len: usize,
    /// Mean calibration quality, if any check has run.
    pub mean_quality: Option<f64>,
    /// Minimum calibration quality, if any check has run.
    pub min_quality: Option<f64>,
    /// Smoothed (EWMA) calibration quality, if any check has run.
    pub ewma_quality: Option<f64>,
    /// Total simulated device cycles spent serving.
    pub cycles: u64,
    /// Median queue wait, nanoseconds.
    pub queue_p50_ns: u64,
    /// 99th-percentile queue wait, nanoseconds.
    pub queue_p99_ns: u64,
    /// Median service time, nanoseconds.
    pub service_p50_ns: u64,
    /// 99th-percentile service time, nanoseconds.
    pub service_p99_ns: u64,
}

impl TenantSnapshot {
    /// Back-offs plus re-promotions: how often the watchdog recalibrated
    /// the serving rung.
    pub fn recalibrations(&self) -> u64 {
        self.backoffs + self.promotions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let ns: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&ns, 50.0), 50);
        assert_eq!(percentile(&ns, 99.0), 99);
        assert_eq!(percentile(&ns, 100.0), 100);
        assert_eq!(percentile(&ns, 0.0), 1);
        // Unsorted input and duplicates.
        assert_eq!(percentile(&[7, 3, 3, 9], 50.0), 3);
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[42], 99.0), 42);
    }

    #[test]
    fn stats_start_empty() {
        let s = TenantStats::new(QualityStream::paper_default());
        assert_eq!(s.served, 0);
        assert_eq!(s.quality.count(), 0);
        assert!(s.queue_ns.is_empty());
    }
}
