//! Per-tenant serving statistics and snapshots.

use paraprox_quality::QualityStream;

/// Nearest-rank percentile of a sample set, in the sample's unit.
/// Returns 0 for an empty set; `p` is clamped into `[0, 100]`.
pub fn percentile(samples: &[u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.max(1) - 1]
}

/// Mutable per-tenant accounting, owned by whichever worker currently
/// holds the tenant (so no atomics are needed).
#[derive(Debug)]
pub struct TenantStats {
    /// Streaming estimate over calibration-check qualities.
    pub quality: QualityStream,
    /// Requests served (including failed ones).
    pub served: u64,
    /// Requests that failed with an execution error.
    pub errors: u64,
    /// Back-offs taken down the ladder.
    pub backoffs: u64,
    /// Re-promotions up the ladder.
    pub promotions: u64,
    /// Total simulated device cycles spent serving.
    pub cycles: u64,
    /// Dispatches: each time a worker claimed this tenant and served a
    /// coalesced run of its requests (a batch of 1 under a unit window).
    pub batches: u64,
    /// Largest batch served in one dispatch.
    pub peak_batch: u64,
    /// Per-request time spent waiting for a worker, nanoseconds.
    pub queue_ns: Vec<u64>,
    /// Per-request execution time, nanoseconds.
    pub service_ns: Vec<u64>,
}

impl TenantStats {
    /// Fresh accounting with the given streaming-quality estimator.
    pub fn new(quality: QualityStream) -> TenantStats {
        TenantStats {
            quality,
            served: 0,
            errors: 0,
            backoffs: 0,
            promotions: 0,
            cycles: 0,
            batches: 0,
            peak_batch: 0,
            queue_ns: Vec::new(),
            service_ns: Vec::new(),
        }
    }
}

/// An immutable point-in-time summary of one tenant, as returned by
/// [`crate::Engine::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSnapshot {
    /// Tenant name as registered.
    pub name: String,
    /// Requests served so far.
    pub served: u64,
    /// Requests that failed with an execution error.
    pub errors: u64,
    /// Calibration checks performed (including shadow probes).
    pub checks: u64,
    /// Checks that violated the TOQ.
    pub violations: u64,
    /// Back-offs taken down the ladder.
    pub backoffs: u64,
    /// Re-promotions up the ladder.
    pub promotions: u64,
    /// The rung currently served ("v3" or "exact").
    pub rung: String,
    /// Position in the back-off ladder (0 = most aggressive).
    pub position: usize,
    /// Ladder position the tenant *started* at: 0 unless its tune report
    /// carried a static error-propagation table that disqualified the
    /// leading rungs for the engine's TOQ (see
    /// [`paraprox_runtime::Deployment::seeded_position`]).
    pub seeded_position: usize,
    /// Ladder length including the terminal exact rung.
    pub ladder_len: usize,
    /// Mean calibration quality, if any check has run.
    pub mean_quality: Option<f64>,
    /// Minimum calibration quality, if any check has run.
    pub min_quality: Option<f64>,
    /// Smoothed (EWMA) calibration quality, if any check has run.
    pub ewma_quality: Option<f64>,
    /// Total simulated device cycles spent serving.
    pub cycles: u64,
    /// Dispatches (coalesced batches, including batches of one).
    pub batches: u64,
    /// Largest batch served in one dispatch.
    pub peak_batch: u64,
    /// Deepest the tenant's request FIFO has been.
    pub peak_queue_depth: usize,
    /// Bytecode operations the tenant's executor dispatched (0 for
    /// backends that do not track them).
    pub ops_dispatched: u64,
    /// Fused superinstructions the tenant's executor hit.
    pub fusions_hit: u64,
    /// Median queue wait, nanoseconds.
    pub queue_p50_ns: u64,
    /// 99th-percentile queue wait, nanoseconds.
    pub queue_p99_ns: u64,
    /// Median service time, nanoseconds.
    pub service_p50_ns: u64,
    /// 99th-percentile service time, nanoseconds.
    pub service_p99_ns: u64,
}

impl TenantSnapshot {
    /// Back-offs plus re-promotions: how often the watchdog recalibrated
    /// the serving rung.
    pub fn recalibrations(&self) -> u64 {
        self.backoffs + self.promotions
    }

    /// Mean batch occupancy: requests served per dispatch (1.0 under a
    /// unit batch window, up to the window under saturation).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.served as f64 / self.batches as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let ns: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&ns, 50.0), 50);
        assert_eq!(percentile(&ns, 99.0), 99);
        assert_eq!(percentile(&ns, 100.0), 100);
        assert_eq!(percentile(&ns, 0.0), 1);
        // Unsorted input and duplicates.
        assert_eq!(percentile(&[7, 3, 3, 9], 50.0), 3);
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[42], 99.0), 42);
    }

    #[test]
    fn percentile_single_sample_is_that_sample_at_every_rank() {
        // n = 1: nearest rank is 1 for every p, including the p = 0 and
        // p = 100 extremes.
        for p in [0.0, 0.1, 50.0, 99.9, 100.0] {
            assert_eq!(percentile(&[42], p), 42, "p = {p}");
        }
    }

    #[test]
    fn percentile_all_ties_collapse_to_the_tied_value() {
        let ties = [7u64; 64];
        for p in [0.0, 25.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile(&ties, p), 7, "p = {p}");
        }
    }

    #[test]
    fn percentile_extremes_are_min_and_max() {
        let ns: Vec<u64> = (1..=10).rev().collect();
        assert_eq!(percentile(&ns, 0.0), 1, "p0 is the minimum");
        assert_eq!(percentile(&ns, 100.0), 10, "p100 is the maximum");
        // Out-of-range p clamps rather than panicking or extrapolating.
        assert_eq!(percentile(&ns, -5.0), 1);
        assert_eq!(percentile(&ns, 250.0), 10);
    }

    #[test]
    fn percentile_fractional_ranks_round_up() {
        // Nearest-rank uses ceil: with 10 samples, p = 0.1 already selects
        // rank 1 and p = 90.1 selects rank 10.
        let ns: Vec<u64> = (1..=10).collect();
        assert_eq!(percentile(&ns, 0.1), 1);
        assert_eq!(percentile(&ns, 10.0), 1);
        assert_eq!(percentile(&ns, 10.1), 2);
        assert_eq!(percentile(&ns, 90.0), 9);
        assert_eq!(percentile(&ns, 90.1), 10);
        assert_eq!(percentile(&ns, 99.9), 10);
    }

    #[test]
    fn stats_start_empty() {
        let s = TenantStats::new(QualityStream::paper_default());
        assert_eq!(s.served, 0);
        assert_eq!(s.quality.count(), 0);
        assert!(s.queue_ns.is_empty());
        assert_eq!(s.batches, 0);
        assert_eq!(s.peak_batch, 0);
    }

    #[test]
    fn mean_batch_occupancy() {
        let snap = |served, batches| TenantSnapshot {
            name: "t".into(),
            served,
            errors: 0,
            checks: 0,
            violations: 0,
            backoffs: 0,
            promotions: 0,
            rung: "exact".into(),
            position: 0,
            seeded_position: 0,
            ladder_len: 1,
            mean_quality: None,
            min_quality: None,
            ewma_quality: None,
            cycles: 0,
            batches,
            peak_batch: 0,
            peak_queue_depth: 0,
            ops_dispatched: 0,
            fusions_hit: 0,
            queue_p50_ns: 0,
            queue_p99_ns: 0,
            service_p50_ns: 0,
            service_p99_ns: 0,
        };
        assert_eq!(snap(0, 0).mean_batch(), 0.0, "no dispatches yet");
        assert_eq!(snap(40, 5).mean_batch(), 8.0);
        assert_eq!(snap(20, 20).mean_batch(), 1.0);
    }
}
