//! paraprox-serve: a multi-tenant approximate-kernel serving engine.
//!
//! The paper's runtime (§2, §5) tunes candidate kernels offline and then
//! deploys the fastest one meeting the target output quality (TOQ),
//! checking every N-th invocation against exact execution and backing off
//! when quality drifts. That loop assumes a single caller invoking one
//! deployment synchronously. This crate turns it into a *serving engine*:
//! a long-running process that owns one [`paraprox_runtime::Deployment`]
//! per registered application (a **tenant**), accepts kernel-invocation
//! requests through a bounded submission queue, coalesces them into fused
//! device batches, and dispatches them across a farm of work-stealing
//! device shards while the quality watchdog runs online — sampling served
//! requests on the configured cadence, walking down
//! [`paraprox_runtime::TuneReport::backoff_ladder`] on TOQ violations, and
//! re-promoting after a configurable streak of clean checks (hysteresis,
//! so recovered tenants climb back up without flapping).
//!
//! # Architecture: a pipeline of farms
//!
//! ```text
//!  stage 1: ADMISSION        stage 2: BATCHER         stage 3: SHARD FARM
//!
//!  submit() ── bounded ──▶ per-tenant FIFO ──▶ shard 0: [ready q] ─ workers
//!     │        budget          │        ╲       shard 1: [ready q] ─ workers
//!     ▼        (QueueFull      │     tenant ──▶ shard 2: [ready q] ─ workers
//!  reject w/    + retry-       │     affinity:      ▲ idle shards steal
//!  retry-after  after)      strict seq   t % shards │ ready tenants
//!  when full)               order per           a claiming worker pops up
//!                           tenant              to `batch_window` requests
//!                                               and serves them as ONE
//!                                               fused deployment batch
//! ```
//!
//! **Admission** is a single bounded budget over *admitted-but-incomplete*
//! requests (queued **and** in flight). When the budget is exhausted,
//! [`Engine::submit`] fails fast with [`SubmitError::QueueFull`] carrying
//! a retry-after hint instead of blocking the caller — classic
//! reject-with-backpressure.
//!
//! **Batching** happens at claim time: the worker that claims a ready
//! tenant pops up to [`ServeConfig::batch_window`] consecutive requests
//! and serves them as one batch. The deployment splits the batch into
//! rung-stable chunks (a chunk never crosses a calibration boundary —
//! [`paraprox_runtime::Deployment::plan_batch`]), and device-backed
//! applications fuse each chunk into a single multi-block launch over the
//! device's pooled worker images, amortizing per-request launch overhead.
//!
//! **Sharding**: workers are partitioned into [`ServeConfig::shards`]
//! shards; a tenant's home shard is `tenant % shards`, so its requests
//! keep hitting the same small worker set (device-state affinity). A
//! shard whose ready queue runs dry *steals* the oldest ready tenant from
//! another shard instead of idling.
//!
//! # Determinism
//!
//! Scheduling is per-tenant **actor style**: each tenant's requests are
//! processed strictly in submission order by at most one worker at a
//! time. Every watchdog decision depends only on the tenant's own request
//! order — never on cross-tenant interleaving, batch formation, or which
//! shard served it. Batch boundaries cannot shift a calibration check:
//! chunks are planned to end exactly at check boundaries, and fused
//! execution is bit-identical to sequential execution per run. The
//! sequence of served variants, check qualities, back-offs and
//! re-promotions is therefore **deterministic for a given seeded request
//! stream, independent of worker count, shard count, and batch window**.
//! Tests exploit this: the same stream replayed across shards × workers ×
//! windows yields bit-identical decision traces.
//!
//! Everything is built on `std` threads, mutexes and condition variables —
//! no external dependencies, in keeping with the rest of the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod drift;
mod engine;
mod loadgen;
mod shard;
mod stats;

pub use drift::drift_inputs;
pub use engine::{
    Engine, EngineBuilder, EngineSnapshot, Response, ServeConfig, SubmitError, TenantId, Ticket,
};
pub use loadgen::{
    run_closed_loop, run_open_loop, LoadReport, LoadSpec, OpenLoopReport, OpenLoopSpec,
};
pub use stats::{percentile, TenantSnapshot, TenantStats};
