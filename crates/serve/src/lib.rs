//! paraprox-serve: a multi-tenant approximate-kernel serving engine.
//!
//! The paper's runtime (§2, §5) tunes candidate kernels offline and then
//! deploys the fastest one meeting the target output quality (TOQ),
//! checking every N-th invocation against exact execution and backing off
//! when quality drifts. That loop assumes a single caller invoking one
//! deployment synchronously. This crate turns it into a *serving engine*:
//! a long-running process that owns one [`paraprox_runtime::Deployment`]
//! per registered application (a **tenant**), accepts kernel-invocation
//! requests through a bounded submission queue, and dispatches them across
//! a persistent set of worker threads while the quality watchdog runs
//! online — sampling served requests on the configured cadence, walking
//! down [`paraprox_runtime::TuneReport::backoff_ladder`] on TOQ
//! violations, and re-promoting after a configurable streak of clean
//! checks (hysteresis, so recovered tenants climb back up without
//! flapping).
//!
//! # Architecture
//!
//! ```text
//!  submit() ── admission ──▶ per-tenant FIFO ──▶ ready queue ──▶ workers
//!     │        (bounded:          │                                │
//!     ▼         reject with    strict seq            one worker owns a
//!  QueueFull    retry-after    order per             tenant at a time:
//!  when full)   when full)     tenant                deployment + stats
//! ```
//!
//! Admission is a single bounded budget over *admitted-but-incomplete*
//! requests (queued **and** in flight). When the budget is exhausted,
//! [`Engine::submit`] fails fast with [`SubmitError::QueueFull`] carrying
//! a retry-after hint instead of blocking the caller — classic
//! reject-with-backpressure.
//!
//! Scheduling is per-tenant **actor style**: each tenant's requests are
//! processed strictly in submission order by at most one worker at a time,
//! and a tenant with pending work re-enters the ready queue at the back
//! after every request (round-robin fairness). Because every watchdog
//! decision depends only on the tenant's own request order — never on
//! cross-tenant interleaving — the sequence of served variants, check
//! qualities, back-offs and re-promotions is **deterministic for a given
//! seeded request stream, independent of the worker count**. Tests and
//! benchmarks exploit this: the same stream replayed on 1, 2 or 8 workers
//! yields bit-identical decision traces.
//!
//! Everything is built on `std` threads, mutexes and condition variables —
//! no external dependencies, in keeping with the rest of the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod drift;
mod engine;
mod loadgen;
mod stats;

pub use drift::drift_inputs;
pub use engine::{
    Engine, EngineBuilder, EngineSnapshot, Response, ServeConfig, SubmitError, TenantId, Ticket,
};
pub use loadgen::{run_closed_loop, LoadReport, LoadSpec};
pub use stats::{percentile, TenantSnapshot, TenantStats};
