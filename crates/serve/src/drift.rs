//! Input-drift injection for serving experiments.
//!
//! The paper's watchdog exists because deployed inputs drift away from the
//! training distribution. To exercise that online, [`drift_inputs`] wraps
//! an input generator so that requests whose seed falls inside a window
//! produce *scaled* inputs: `f32` buffers are multiplied by a gain,
//! pushing values outside the ranges the approximate kernels (e.g.
//! memoization tables) were trained on and degrading their output quality
//! for real. Seeds outside the window pass through untouched, so a stream
//! that leaves the window recovers — which is exactly what re-promotion
//! hysteresis needs to demonstrate.

use paraprox_vgpu::BufferInit;

/// Wrap an input generator so seeds in `[from, until)` produce inputs
/// with every `f32` buffer scaled by `gain` (integer buffers — typically
/// sizes, indices or histogram bins — are left untouched). The wrapper is
/// deterministic: the same seed always yields the same buffers.
pub fn drift_inputs(
    mut inner: Box<dyn FnMut(u64) -> Vec<BufferInit> + Send>,
    from: u64,
    until: u64,
    gain: f32,
) -> Box<dyn FnMut(u64) -> Vec<BufferInit> + Send> {
    Box::new(move |seed| {
        let mut buffers = inner(seed);
        if (from..until).contains(&seed) {
            for buffer in &mut buffers {
                if let BufferInit::F32(data) = buffer {
                    for v in data.iter_mut() {
                        *v *= gain;
                    }
                }
            }
        }
        buffers
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen() -> Box<dyn FnMut(u64) -> Vec<BufferInit> + Send> {
        Box::new(|seed| {
            vec![
                BufferInit::F32(vec![1.0, 2.0, seed as f32]),
                BufferInit::I32(vec![3, 4]),
            ]
        })
    }

    #[test]
    fn scales_f32_only_inside_window() {
        let mut g = drift_inputs(gen(), 10, 20, 2.0);
        assert_eq!(
            g(9),
            vec![
                BufferInit::F32(vec![1.0, 2.0, 9.0]),
                BufferInit::I32(vec![3, 4])
            ]
        );
        assert_eq!(
            g(10),
            vec![
                BufferInit::F32(vec![2.0, 4.0, 20.0]),
                BufferInit::I32(vec![3, 4])
            ]
        );
        assert_eq!(
            g(19),
            vec![
                BufferInit::F32(vec![2.0, 4.0, 38.0]),
                BufferInit::I32(vec![3, 4])
            ]
        );
        assert_eq!(
            g(20),
            vec![
                BufferInit::F32(vec![1.0, 2.0, 20.0]),
                BufferInit::I32(vec![3, 4])
            ]
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = drift_inputs(gen(), 5, 8, 1.5);
        let mut b = drift_inputs(gen(), 5, 8, 1.5);
        for seed in 0..12 {
            assert_eq!(a(seed), b(seed));
        }
    }
}
