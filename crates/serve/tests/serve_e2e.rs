//! End-to-end serving tests: deterministic drift/recovery across worker
//! counts, and bounded-queue backpressure.

use std::sync::mpsc;

use paraprox_runtime::{Approximable, RunOutcome, RuntimeError, Tuner};
use paraprox_serve::{Engine, ServeConfig, SubmitError, TenantId, Ticket};

/// A deterministic mock whose variant quality degrades for seeds inside a
/// window — the serving analogue of input drift. Quality depends only on
/// the seed, never on wall-clock or run order, so the watchdog's decision
/// trace is a pure function of the request stream.
struct Drifting {
    clean_quality: f64,
    drift_quality: f64,
    window: std::ops::Range<u64>,
}

impl Approximable for Drifting {
    fn variant_count(&self) -> usize {
        1
    }
    fn variant_label(&self, _: usize) -> String {
        "drifting".into()
    }
    fn run_exact(&mut self, _seed: u64) -> Result<RunOutcome, RuntimeError> {
        Ok(RunOutcome {
            output: vec![100.0],
            cycles: 1000,
        })
    }
    fn run_variant(&mut self, _: usize, seed: u64) -> Result<RunOutcome, RuntimeError> {
        let q = if self.window.contains(&seed) {
            self.drift_quality
        } else {
            self.clean_quality
        };
        Ok(RunOutcome {
            output: vec![q],
            cycles: 100,
        })
    }
    fn quality(&self, _exact: &[f64], approx: &[f64]) -> f64 {
        approx[0]
    }
}

/// One watchdog decision, as observed by the client.
#[derive(Debug, Clone, PartialEq)]
struct Decision {
    seq: u64,
    variant: Option<usize>,
    checked_quality: Option<f64>,
    backed_off: bool,
    promoted: bool,
}

/// Serve `requests` seeded requests to three drifting tenants on a
/// `shards × workers` farm coalescing up to `batch_window` requests per
/// dispatch, and return each tenant's decision trace in sequence order.
fn run_drift_stream(
    shards: usize,
    workers: usize,
    batch_window: usize,
    requests: u64,
) -> Vec<Vec<Decision>> {
    let drifting = || Drifting {
        clean_quality: 95.0,
        drift_quality: 70.0,
        // Seeds are the request sequence numbers: drift hits requests
        // 20..35 of every tenant, then recovers.
        window: 20..35,
    };
    let report = Tuner::paper_default().tune(&mut drifting()).unwrap();
    let mut builder = Engine::builder(ServeConfig {
        queue_capacity: 1024,
        workers,
        shards,
        batch_window,
        check_every: 4,
        promote_after: 2,
        ..ServeConfig::paper_default()
    });
    let tenants: Vec<TenantId> = (0..3)
        .map(|i| builder.register(format!("tenant{i}"), Box::new(drifting()), &report))
        .collect();
    let engine = builder.start();
    assert_eq!(engine.worker_count(), shards * workers);
    assert_eq!(engine.shard_count(), shards);

    let mut tickets: Vec<Vec<Ticket>> = (0..tenants.len()).map(|_| Vec::new()).collect();
    for seq in 0..requests {
        for &t in &tenants {
            tickets[t].push(engine.submit(t, seq).unwrap());
        }
    }
    let traces = tickets
        .into_iter()
        .map(|tenant_tickets| {
            tenant_tickets
                .into_iter()
                .map(|ticket| {
                    let r = ticket.wait().unwrap();
                    assert!(r.error.is_none(), "no request may fail: {:?}", r.error);
                    Decision {
                        seq: r.seq,
                        variant: r.variant,
                        checked_quality: r.checked_quality,
                        backed_off: r.backed_off,
                        promoted: r.promoted,
                    }
                })
                .collect()
        })
        .collect();
    engine.shutdown();
    traces
}

#[test]
fn drift_backs_off_and_repromotes_deterministically_across_worker_counts() {
    let requests = 60;
    // Reference: the original single-actor path — one shard, one worker,
    // no batching.
    let reference = run_drift_stream(1, 1, 1, requests);

    for trace in &reference {
        // Per-tenant FIFO: responses arrive in submission order.
        let seqs: Vec<u64> = trace.iter().map(|d| d.seq).collect();
        assert_eq!(seqs, (0..requests).collect::<Vec<u64>>());

        // Checks fire every 4th served request (seq 3, 7, 11, ...).
        let checked: Vec<u64> = trace
            .iter()
            .filter(|d| d.checked_quality.is_some())
            .map(|d| d.seq)
            .collect();
        assert_eq!(checked, (3..requests).step_by(4).collect::<Vec<u64>>());

        // Drift hits seeds 20..35: the first drifted check is seq 23, and
        // the watchdog must back off to exact there — within one check
        // window of the drift onset.
        let backoff: Vec<&Decision> = trace.iter().filter(|d| d.backed_off).collect();
        assert_eq!(backoff.len(), 1, "exactly one back-off");
        assert_eq!(backoff[0].seq, 23);
        assert_eq!(backoff[0].checked_quality, Some(70.0));
        assert_eq!(trace[24].variant, None, "serving exact after back-off");

        // Shadow probes at 27 and 31 still see drift (window ends at 35);
        // 35 and 39 are clean, so the 2-clean-check hysteresis re-promotes
        // at seq 39 and the variant serves again from seq 40.
        let promote: Vec<&Decision> = trace.iter().filter(|d| d.promoted).collect();
        assert_eq!(promote.len(), 1, "exactly one re-promotion");
        assert_eq!(promote[0].seq, 39);
        assert_eq!(
            trace[40].variant,
            Some(0),
            "variant restored after recovery"
        );
        assert_eq!(trace[59].variant, Some(0));
    }

    // The decision trace is a pure function of the request stream: more
    // workers must not change a single decision.
    for workers in [2, 4] {
        let trace = run_drift_stream(1, workers, 1, requests);
        assert_eq!(trace, reference, "{workers} workers diverged from 1");
    }
}

/// The tentpole guarantee: the per-tenant watchdog decision trace is
/// bit-identical at **any** shard count, worker count, and batch window.
/// Every cell of the {shards} × {workers} × {windows} matrix must replay
/// the single-actor reference exactly — batch formation is timing-
/// dependent (a worker pops whatever is queued, up to the window), so
/// this asserts that *when* requests coalesce cannot leak into *what*
/// the watchdog decides.
#[test]
fn decision_trace_is_identical_across_shards_workers_and_batch_windows() {
    let requests = 60;
    let reference = run_drift_stream(1, 1, 1, requests);
    for shards in [1, 2, 4] {
        for workers in [1, 2, 4] {
            for window in [1, 8] {
                if (shards, workers, window) == (1, 1, 1) {
                    continue;
                }
                let trace = run_drift_stream(shards, workers, window, requests);
                assert_eq!(
                    trace, reference,
                    "shards={shards} workers={workers} window={window} \
                     diverged from the single-actor reference"
                );
            }
        }
    }
}

/// An app that blocks on a gate channel before completing, so the test
/// can hold requests in flight and fill the queue deterministically.
struct Gated {
    gate: mpsc::Receiver<()>,
}

impl Approximable for Gated {
    fn variant_count(&self) -> usize {
        0
    }
    fn variant_label(&self, _: usize) -> String {
        unreachable!("no variants")
    }
    fn run_exact(&mut self, _seed: u64) -> Result<RunOutcome, RuntimeError> {
        self.gate.recv().map_err(|e| RuntimeError(e.to_string()))?;
        Ok(RunOutcome {
            output: vec![1.0],
            cycles: 10,
        })
    }
    fn run_variant(&mut self, _: usize, _: u64) -> Result<RunOutcome, RuntimeError> {
        unreachable!("no variants")
    }
    fn quality(&self, _: &[f64], _: &[f64]) -> f64 {
        100.0
    }
}

#[test]
fn bounded_queue_rejects_with_retry_after_and_recovers() {
    let (gate_tx, gate_rx) = mpsc::channel();
    // No variants: the tune report yields an exact-only ladder, so every
    // request runs the gated exact kernel. Tuning runs on a separate
    // instance whose gate is pre-opened for the 10 training runs.
    let report = Tuner::paper_default()
        .tune(&mut Gated {
            gate: {
                let (tx, rx) = mpsc::channel();
                for _ in 0..10 {
                    tx.send(()).unwrap();
                }
                rx
            },
        })
        .unwrap();

    let capacity = 4;
    let mut builder = Engine::builder(ServeConfig {
        queue_capacity: capacity,
        workers: 1,
        ..ServeConfig::paper_default()
    });
    let id = builder.register("gated", Box::new(Gated { gate: gate_rx }), &report);
    let engine = builder.start();

    // Fill the admission budget: `capacity` requests admitted (one may be
    // in flight, blocked on the gate; in flight still counts).
    let tickets: Vec<Ticket> = (0..capacity as u64)
        .map(|s| engine.submit(id, s).unwrap())
        .collect();

    // The budget is exhausted: the next submission must be rejected, with
    // a retry-after hint equal to the admitted depth.
    match engine.submit(id, 99).unwrap_err() {
        SubmitError::QueueFull { retry_after } => assert_eq!(retry_after, capacity),
        other => panic!("expected QueueFull, got {other:?}"),
    }
    // Rejection is sticky while nothing completes.
    assert!(matches!(
        engine.submit(id, 100),
        Err(SubmitError::QueueFull { .. })
    ));

    // Open the gate: all admitted requests complete...
    for _ in 0..capacity {
        gate_tx.send(()).unwrap();
    }
    for t in tickets {
        let r = t.wait().unwrap();
        assert!(r.error.is_none());
        assert_eq!(r.variant, None, "exact-only ladder");
    }

    // ...and admission recovers.
    gate_tx.send(()).unwrap();
    let ticket = engine.submit(id, 200).expect("queue drained: must admit");
    assert!(ticket.wait().unwrap().error.is_none());

    let snap = engine.shutdown();
    assert_eq!(snap.rejected, 2, "both over-budget submissions counted");
    assert_eq!(snap.tenants[0].served, capacity as u64 + 1);
    assert_eq!(snap.tenants[0].errors, 0);
}
