//! Hand-rolled argument parsing (no external dependencies).

/// Usage text shown on argument errors.
pub const USAGE: &str = "\
usage:
  paraprox list
      Print the benchmark registry (the paper's Table 1).

  paraprox tune <app> [--device gpu|cpu] [--toq <percent>] [--scale paper|test]
                      [--seeds <n>] [--all]
      Compile an application, profile every approximate variant, and report
      the tuner's choice. --all prints every variant, not just qualifying
      ones.

  paraprox run <app> [--device gpu|cpu] [--scale paper|test] [--threads <n>]
               [--approx-mem <rate>] [--iters <n>] [--schedule <name>]
      Execute an application's exact pipeline once and print the launch
      report: blocks, warps, occupancy, host workers, and wall-clock time.
      --threads 0 (the default) uses every available core; the
      PARAPROX_THREADS environment variable overrides the flag. Results are
      bit-identical for every thread count. --approx-mem re-places every
      Tolerant global buffer (per the criticality partition) in the
      approximate memory space and injects bit flips at the given error
      rate (0..=1); the report then includes per-buffer placements and
      injected-flip counts. Rate 0 is bit-identical to exact. --iters
      switches to the *iterative* registry (Jacobi, Sobel Flow): the app's
      loop-of-stencil-reduce job runs to convergence under the exact
      schedule and every preset approximation schedule, capped at <n>
      iterations (0 = the app's default), and the report compares
      iterations, residuals, cycles, and quality per schedule. --schedule
      restricts the sweep to one named rung (requires --iters).

  paraprox inspect <file.cu> [--bytecode <kernel>] [--effects] [--partition]
  paraprox inspect <app> --schedule <name> [--iters <n>] [--scale paper|test]
  paraprox inspect <app> --rungs [--scale paper|test]
      Parse CUDA-flavored kernel source and report the data-parallel
      patterns Paraprox detects in each kernel. --bytecode additionally
      prints the register-machine bytecode the virtual device compiles the
      named kernel (prefix match) into; --effects prints each kernel's
      side-effect summary (loads/stores/atomics/barriers) next to the
      pattern report; --partition prints each kernel's buffer-criticality
      partition (critical vs tolerant, with witness chains). With
      --schedule the positional names an *iterative* application instead
      of a file: the named preset schedule's per-iteration plan is printed
      (stencil stages, residual cadence, predictor), followed by the
      safety gate's verdict for it under the loop's launch contexts;
      --iters overrides the iteration cap the plan spans. With --rungs the
      positional names a registry application: every auto-generated rung
      is listed with its static error bound and predicted quality next to
      the quality actually measured on the device — the static table vs
      the ground truth, side by side.

  paraprox analyze <app> [--scale paper|test] [--json] [--partition]
                   [--error-bounds]
      Run the full static-analysis lint suite (shared-memory races, bounds,
      uninitialized locals, dead stores, approximate-placement) on an
      application's exact kernels under their real launch shapes. Exits
      nonzero when any finding has error severity. --partition additionally
      prints the buffer-criticality partition; --error-bounds compiles the
      approximate variants and prints each rung's static error bound,
      quality floor, and predicted quality (with refusal reasons where the
      error-propagation analysis refused to bound a rung); --json emits the
      findings, the partition table, and the per-rung error bounds as
      machine-readable JSON (schema documented in DESIGN.md).

  paraprox serve [--apps <a,b,...>] [--device gpu|cpu] [--requests <n>]
                 [--drift-at <k>] [--drift-len <n>] [--drift-gain <g>]
                 [--shards <n>] [--workers <n>] [--batch-window <k>]
                 [--queue <n>] [--inflight <n>]
                 [--check-every <n>] [--promote-after <n>] [--toq <percent>]
                 [--scale paper|test] [--seeds <n>]
      Tune each listed application (comma-separated name prefixes; default
      blackscholes,gamma,mean), register them as tenants of the serving
      engine, and drive <n> requests per tenant through a closed-loop load
      generator while the quality watchdog recalibrates online. --drift-at
      scales f32 inputs by --drift-gain for requests k..k+len, forcing a
      TOQ violation window; the per-tenant report shows back-offs and
      re-promotions. The engine runs --shards device shards (tenant
      affinity by id, idle shards steal) of --workers threads each
      (0 = every available core), coalescing up to --batch-window queued
      requests per tenant into one fused device batch; the watchdog's
      decision trace is identical for every shard/worker/window setting.
";

/// Which device profile to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceArg {
    /// Simulated GTX 560.
    Gpu,
    /// Simulated Core i7 965.
    Cpu,
}

/// Parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `paraprox list`
    List,
    /// `paraprox tune <app> ...`
    Tune {
        /// Application name (prefix match).
        app: String,
        /// Device profile.
        device: DeviceArg,
        /// Target output quality (percent).
        toq: f64,
        /// Use the small test-scale inputs.
        test_scale: bool,
        /// Training seeds.
        seeds: usize,
        /// Print all variants.
        all: bool,
    },
    /// `paraprox run <app> ...`
    Run {
        /// Application name (prefix match).
        app: String,
        /// Device profile.
        device: DeviceArg,
        /// Use the small test-scale inputs.
        test_scale: bool,
        /// Host worker threads (0 = all available cores).
        threads: usize,
        /// Serve Tolerant global buffers from approximate memory at this
        /// bit-error rate.
        approx_mem: Option<f64>,
        /// Run the app as an iterative convergence loop capped at this
        /// many iterations (0 = the app's default cap).
        iters: Option<u32>,
        /// Restrict the iterative sweep to one named schedule.
        schedule: Option<String>,
    },
    /// `paraprox inspect <file>` (or `inspect <app> --schedule <name>`)
    Inspect {
        /// Path to the kernel source file (or an iterative application
        /// name when `schedule` is set).
        file: String,
        /// Kernel name (prefix match) to disassemble to vGPU bytecode.
        bytecode: Option<String>,
        /// Print per-kernel side-effect summaries.
        effects: bool,
        /// Print per-kernel buffer-criticality partitions.
        partition: bool,
        /// Describe this preset schedule for the named iterative app and
        /// print the safety gate's verdict.
        schedule: Option<String>,
        /// Iteration cap the schedule plan spans (0 = app default; only
        /// with `schedule`).
        iters: u32,
        /// Print every rung of the named registry application: static
        /// error bound vs measured quality, side by side.
        rungs: bool,
        /// Use the small test-scale inputs (only with `schedule` or
        /// `rungs`).
        test_scale: bool,
    },
    /// `paraprox analyze <app>`
    Analyze {
        /// Application name (prefix match).
        app: String,
        /// Use the small test-scale inputs.
        test_scale: bool,
        /// Emit machine-readable JSON instead of the human report.
        json: bool,
        /// Include the buffer-criticality partition in the report.
        partition: bool,
        /// Include the per-rung static error bounds in the report.
        error_bounds: bool,
    },
    /// `paraprox serve ...`
    Serve {
        /// Application names (prefix match), the engine's tenants.
        apps: Vec<String>,
        /// Device profile.
        device: DeviceArg,
        /// Requests per tenant.
        requests: u64,
        /// Inject input drift starting at this request index.
        drift_at: Option<u64>,
        /// Length of the drift window, in requests.
        drift_len: u64,
        /// Gain applied to `f32` inputs inside the drift window.
        drift_gain: f64,
        /// Device shards (tenant affinity by id; idle shards steal).
        shards: usize,
        /// Worker threads per shard (0 = all available cores).
        workers: usize,
        /// Max requests coalesced into one fused device batch.
        batch_window: usize,
        /// Admission-queue capacity.
        queue: usize,
        /// Closed-loop outstanding-request window.
        inflight: usize,
        /// Watchdog check cadence (every Nth served request).
        check_every: u64,
        /// Clean checks required before re-promotion (0 disables).
        promote_after: u64,
        /// Target output quality (percent).
        toq: f64,
        /// Use the small test-scale inputs.
        test_scale: bool,
        /// Training seeds for the offline tune.
        seeds: usize,
    },
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> Result<T, String> {
    let v = value.ok_or_else(|| format!("{flag} needs a value"))?;
    v.parse::<T>()
        .map_err(|_| format!("bad {flag} value `{v}`"))
}

/// Parse an argument vector.
///
/// # Errors
///
/// Returns a human-readable message on unknown commands, missing values,
/// or malformed options.
pub fn parse(argv: &[String]) -> Result<Command, String> {
    let mut it = argv.iter();
    match it.next().map(String::as_str) {
        Some("list") => {
            if it.next().is_some() {
                return Err("`list` takes no arguments".to_string());
            }
            Ok(Command::List)
        }
        Some("tune") => {
            let app = it
                .next()
                .ok_or_else(|| "`tune` needs an application name".to_string())?
                .clone();
            let mut device = DeviceArg::Gpu;
            let mut toq = 90.0f64;
            let mut test_scale = false;
            let mut seeds = 3usize;
            let mut all = false;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--device" => {
                        device = match it.next().map(String::as_str) {
                            Some("gpu") => DeviceArg::Gpu,
                            Some("cpu") => DeviceArg::Cpu,
                            other => {
                                return Err(format!("--device needs `gpu` or `cpu`, got {other:?}"))
                            }
                        };
                    }
                    "--toq" => {
                        let v = it.next().ok_or_else(|| "--toq needs a value".to_string())?;
                        toq = v
                            .parse::<f64>()
                            .map_err(|_| format!("bad --toq value `{v}`"))?;
                        if !(0.0..=100.0).contains(&toq) {
                            return Err("--toq must be between 0 and 100".to_string());
                        }
                    }
                    "--scale" => {
                        test_scale = match it.next().map(String::as_str) {
                            Some("paper") => false,
                            Some("test") => true,
                            other => {
                                return Err(format!(
                                    "--scale needs `paper` or `test`, got {other:?}"
                                ))
                            }
                        };
                    }
                    "--seeds" => {
                        let v = it
                            .next()
                            .ok_or_else(|| "--seeds needs a value".to_string())?;
                        seeds = v
                            .parse::<usize>()
                            .map_err(|_| format!("bad --seeds value `{v}`"))?;
                        if seeds == 0 {
                            return Err("--seeds must be at least 1".to_string());
                        }
                    }
                    "--all" => all = true,
                    other => return Err(format!("unknown option `{other}`")),
                }
            }
            Ok(Command::Tune {
                app,
                device,
                toq,
                test_scale,
                seeds,
                all,
            })
        }
        Some("run") => {
            let app = it
                .next()
                .ok_or_else(|| "`run` needs an application name".to_string())?
                .clone();
            let mut device = DeviceArg::Gpu;
            let mut test_scale = false;
            let mut threads = 0usize;
            let mut approx_mem = None;
            let mut iters = None;
            let mut schedule = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--device" => {
                        device = match it.next().map(String::as_str) {
                            Some("gpu") => DeviceArg::Gpu,
                            Some("cpu") => DeviceArg::Cpu,
                            other => {
                                return Err(format!("--device needs `gpu` or `cpu`, got {other:?}"))
                            }
                        };
                    }
                    "--scale" => {
                        test_scale = match it.next().map(String::as_str) {
                            Some("paper") => false,
                            Some("test") => true,
                            other => {
                                return Err(format!(
                                    "--scale needs `paper` or `test`, got {other:?}"
                                ))
                            }
                        };
                    }
                    "--threads" => {
                        let v = it
                            .next()
                            .ok_or_else(|| "--threads needs a value".to_string())?;
                        threads = v
                            .parse::<usize>()
                            .map_err(|_| format!("bad --threads value `{v}`"))?;
                    }
                    "--approx-mem" => {
                        let rate: f64 = parse_num(flag, it.next())?;
                        if !(0.0..=1.0).contains(&rate) {
                            return Err("--approx-mem must be between 0 and 1".to_string());
                        }
                        approx_mem = Some(rate);
                    }
                    "--iters" => iters = Some(parse_num(flag, it.next())?),
                    "--schedule" => {
                        schedule = Some(
                            it.next()
                                .ok_or_else(|| "--schedule needs a name".to_string())?
                                .clone(),
                        );
                    }
                    other => return Err(format!("unknown option `{other}`")),
                }
            }
            if iters.is_some() && approx_mem.is_some() {
                return Err("--iters and --approx-mem cannot be combined".to_string());
            }
            if schedule.is_some() && iters.is_none() {
                return Err("--schedule requires --iters".to_string());
            }
            Ok(Command::Run {
                app,
                device,
                test_scale,
                threads,
                approx_mem,
                iters,
                schedule,
            })
        }
        Some("inspect") => {
            let file = it
                .next()
                .ok_or_else(|| "`inspect` needs a source file".to_string())?
                .clone();
            let mut bytecode = None;
            let mut effects = false;
            let mut partition = false;
            let mut schedule = None;
            let mut iters = 0u32;
            let mut rungs = false;
            let mut test_scale = false;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--bytecode" => {
                        bytecode = Some(
                            it.next()
                                .ok_or_else(|| "--bytecode needs a kernel name".to_string())?
                                .clone(),
                        );
                    }
                    "--effects" => effects = true,
                    "--partition" => partition = true,
                    "--rungs" => rungs = true,
                    "--schedule" => {
                        schedule = Some(
                            it.next()
                                .ok_or_else(|| "--schedule needs a name".to_string())?
                                .clone(),
                        );
                    }
                    "--iters" => iters = parse_num(flag, it.next())?,
                    "--scale" => {
                        test_scale = match it.next().map(String::as_str) {
                            Some("paper") => false,
                            Some("test") => true,
                            other => {
                                return Err(format!(
                                    "--scale needs `paper` or `test`, got {other:?}"
                                ))
                            }
                        };
                    }
                    other => return Err(format!("unknown option `{other}`")),
                }
            }
            if schedule.is_some() && (bytecode.is_some() || effects || partition) {
                return Err(
                    "--schedule inspects an iterative app; it cannot be combined with \
                     --bytecode/--effects/--partition"
                        .to_string(),
                );
            }
            if rungs && (bytecode.is_some() || effects || partition || schedule.is_some()) {
                return Err(
                    "--rungs inspects a registry app; it cannot be combined with \
                     --bytecode/--effects/--partition/--schedule"
                        .to_string(),
                );
            }
            if schedule.is_none() && iters != 0 {
                return Err("--iters on `inspect` requires --schedule".to_string());
            }
            if schedule.is_none() && !rungs && test_scale {
                return Err("--scale on `inspect` requires --schedule or --rungs".to_string());
            }
            Ok(Command::Inspect {
                file,
                bytecode,
                effects,
                partition,
                schedule,
                iters,
                rungs,
                test_scale,
            })
        }
        Some("analyze") => {
            let app = it
                .next()
                .ok_or_else(|| "`analyze` needs an application name".to_string())?
                .clone();
            let mut test_scale = false;
            let mut json = false;
            let mut partition = false;
            let mut error_bounds = false;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--scale" => {
                        test_scale = match it.next().map(String::as_str) {
                            Some("paper") => false,
                            Some("test") => true,
                            other => {
                                return Err(format!(
                                    "--scale needs `paper` or `test`, got {other:?}"
                                ))
                            }
                        };
                    }
                    "--json" => json = true,
                    "--partition" => partition = true,
                    "--error-bounds" => error_bounds = true,
                    other => return Err(format!("unknown option `{other}`")),
                }
            }
            Ok(Command::Analyze {
                app,
                test_scale,
                json,
                partition,
                error_bounds,
            })
        }
        Some("serve") => {
            let mut apps = vec![
                "blackscholes".to_string(),
                "gamma".to_string(),
                "mean".to_string(),
            ];
            let mut device = DeviceArg::Gpu;
            let mut requests = 120u64;
            let mut drift_at = None;
            let mut drift_len = 40u64;
            let mut drift_gain = 8.0f64;
            let mut shards = 1usize;
            let mut workers = 0usize;
            let mut batch_window = 8usize;
            let mut queue = 64usize;
            let mut inflight = 8usize;
            let mut check_every = 10u64;
            let mut promote_after = 3u64;
            let mut toq = 90.0f64;
            let mut test_scale = false;
            let mut seeds = 3usize;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--apps" => {
                        let v = it
                            .next()
                            .ok_or_else(|| "--apps needs a value".to_string())?;
                        apps = v
                            .split(',')
                            .map(|s| s.trim().to_string())
                            .filter(|s| !s.is_empty())
                            .collect();
                        if apps.is_empty() {
                            return Err("--apps needs at least one name".to_string());
                        }
                    }
                    "--device" => {
                        device = match it.next().map(String::as_str) {
                            Some("gpu") => DeviceArg::Gpu,
                            Some("cpu") => DeviceArg::Cpu,
                            other => {
                                return Err(format!("--device needs `gpu` or `cpu`, got {other:?}"))
                            }
                        };
                    }
                    "--requests" => {
                        requests = parse_num(flag, it.next())?;
                        if requests == 0 {
                            return Err("--requests must be at least 1".to_string());
                        }
                    }
                    "--drift-at" => drift_at = Some(parse_num(flag, it.next())?),
                    "--drift-len" => drift_len = parse_num(flag, it.next())?,
                    "--drift-gain" => drift_gain = parse_num(flag, it.next())?,
                    "--shards" => {
                        shards = parse_num(flag, it.next())?;
                        if shards == 0 {
                            return Err("--shards must be at least 1".to_string());
                        }
                    }
                    "--workers" => workers = parse_num(flag, it.next())?,
                    "--batch-window" => {
                        batch_window = parse_num(flag, it.next())?;
                        if batch_window == 0 {
                            return Err("--batch-window must be at least 1".to_string());
                        }
                    }
                    "--queue" => {
                        queue = parse_num(flag, it.next())?;
                        if queue == 0 {
                            return Err("--queue must be at least 1".to_string());
                        }
                    }
                    "--inflight" => {
                        inflight = parse_num(flag, it.next())?;
                        if inflight == 0 {
                            return Err("--inflight must be at least 1".to_string());
                        }
                    }
                    "--check-every" => {
                        check_every = parse_num(flag, it.next())?;
                        if check_every == 0 {
                            return Err("--check-every must be at least 1".to_string());
                        }
                    }
                    "--promote-after" => promote_after = parse_num(flag, it.next())?,
                    "--toq" => {
                        toq = parse_num(flag, it.next())?;
                        if !(0.0..=100.0).contains(&toq) {
                            return Err("--toq must be between 0 and 100".to_string());
                        }
                    }
                    "--scale" => {
                        test_scale = match it.next().map(String::as_str) {
                            Some("paper") => false,
                            Some("test") => true,
                            other => {
                                return Err(format!(
                                    "--scale needs `paper` or `test`, got {other:?}"
                                ))
                            }
                        };
                    }
                    "--seeds" => {
                        seeds = parse_num(flag, it.next())?;
                        if seeds == 0 {
                            return Err("--seeds must be at least 1".to_string());
                        }
                    }
                    other => return Err(format!("unknown option `{other}`")),
                }
            }
            Ok(Command::Serve {
                apps,
                device,
                requests,
                drift_at,
                drift_len,
                drift_gain,
                shards,
                workers,
                batch_window,
                queue,
                inflight,
                check_every,
                promote_after,
                toq,
                test_scale,
                seeds,
            })
        }
        Some(other) => Err(format!("unknown command `{other}`")),
        None => Err("no command given".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_list() {
        assert_eq!(parse(&v(&["list"])).unwrap(), Command::List);
        assert!(parse(&v(&["list", "extra"])).is_err());
    }

    #[test]
    fn parses_tune_with_defaults() {
        let cmd = parse(&v(&["tune", "blackscholes"])).unwrap();
        assert_eq!(
            cmd,
            Command::Tune {
                app: "blackscholes".into(),
                device: DeviceArg::Gpu,
                toq: 90.0,
                test_scale: false,
                seeds: 3,
                all: false,
            }
        );
    }

    #[test]
    fn parses_tune_with_options() {
        let cmd = parse(&v(&[
            "tune", "kde", "--device", "cpu", "--toq", "95", "--scale", "test", "--seeds", "5",
            "--all",
        ]))
        .unwrap();
        let Command::Tune {
            device,
            toq,
            test_scale,
            seeds,
            all,
            ..
        } = cmd
        else {
            panic!()
        };
        assert_eq!(device, DeviceArg::Cpu);
        assert_eq!(toq, 95.0);
        assert!(test_scale);
        assert_eq!(seeds, 5);
        assert!(all);
    }

    #[test]
    fn rejects_bad_options() {
        assert!(parse(&v(&["tune"])).is_err());
        assert!(parse(&v(&["tune", "x", "--device", "tpu"])).is_err());
        assert!(parse(&v(&["tune", "x", "--toq", "150"])).is_err());
        assert!(parse(&v(&["tune", "x", "--seeds", "0"])).is_err());
        assert!(parse(&v(&["tune", "x", "--bogus"])).is_err());
        assert!(parse(&v(&["frobnicate"])).is_err());
        assert!(parse(&v(&[])).is_err());
    }

    #[test]
    fn parses_run() {
        let cmd = parse(&v(&["run", "sobel"])).unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                app: "sobel".into(),
                device: DeviceArg::Gpu,
                test_scale: false,
                threads: 0,
                approx_mem: None,
                iters: None,
                schedule: None,
            }
        );
        let cmd = parse(&v(&[
            "run",
            "sobel",
            "--device",
            "cpu",
            "--scale",
            "test",
            "--threads",
            "4",
            "--approx-mem",
            "0.001",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                app: "sobel".into(),
                device: DeviceArg::Cpu,
                test_scale: true,
                threads: 4,
                approx_mem: Some(0.001),
                iters: None,
                schedule: None,
            }
        );
        assert!(parse(&v(&["run"])).is_err());
        assert!(parse(&v(&["run", "x", "--threads", "many"])).is_err());
        assert!(parse(&v(&["run", "x", "--approx-mem", "2"])).is_err());
        assert!(parse(&v(&["run", "x", "--approx-mem", "-0.5"])).is_err());
        assert!(parse(&v(&["run", "x", "--approx-mem"])).is_err());
    }

    #[test]
    fn parses_run_iters() {
        let cmd = parse(&v(&[
            "run",
            "jacobi",
            "--iters",
            "40",
            "--schedule",
            "trend-exit",
            "--scale",
            "test",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                app: "jacobi".into(),
                device: DeviceArg::Gpu,
                test_scale: true,
                threads: 0,
                approx_mem: None,
                iters: Some(40),
                schedule: Some("trend-exit".into()),
            }
        );
        // --iters 0 means "the app's default cap", still iterative mode.
        let Command::Run { iters, .. } = parse(&v(&["run", "jacobi", "--iters", "0"])).unwrap()
        else {
            panic!()
        };
        assert_eq!(iters, Some(0));
        assert!(parse(&v(&["run", "x", "--iters"])).is_err());
        assert!(parse(&v(&["run", "x", "--iters", "many"])).is_err());
        assert!(parse(&v(&["run", "x", "--schedule", "exact"])).is_err());
        assert!(parse(&v(&["run", "x", "--iters", "4", "--approx-mem", "0.1"])).is_err());
    }

    #[test]
    fn parses_inspect() {
        assert_eq!(
            parse(&v(&["inspect", "k.cu"])).unwrap(),
            Command::Inspect {
                file: "k.cu".into(),
                bytecode: None,
                effects: false,
                partition: false,
                schedule: None,
                iters: 0,
                rungs: false,
                test_scale: false,
            }
        );
        assert_eq!(
            parse(&v(&[
                "inspect",
                "k.cu",
                "--bytecode",
                "conv",
                "--effects",
                "--partition"
            ]))
            .unwrap(),
            Command::Inspect {
                file: "k.cu".into(),
                bytecode: Some("conv".into()),
                effects: true,
                partition: true,
                schedule: None,
                iters: 0,
                rungs: false,
                test_scale: false,
            }
        );
        assert!(parse(&v(&["inspect"])).is_err());
        assert!(parse(&v(&["inspect", "k.cu", "--bytecode"])).is_err());
        assert!(parse(&v(&["inspect", "k.cu", "--bogus"])).is_err());
    }

    #[test]
    fn parses_inspect_schedule() {
        assert_eq!(
            parse(&v(&[
                "inspect",
                "jacobi",
                "--schedule",
                "reach-ramp",
                "--iters",
                "24",
                "--scale",
                "test"
            ]))
            .unwrap(),
            Command::Inspect {
                file: "jacobi".into(),
                bytecode: None,
                effects: false,
                partition: false,
                schedule: Some("reach-ramp".into()),
                iters: 24,
                rungs: false,
                test_scale: true,
            }
        );
        // Schedule mode excludes the source-file flags, and the
        // schedule-only flags need --schedule.
        assert!(parse(&v(&["inspect", "jacobi", "--schedule", "x", "--effects"])).is_err());
        assert!(parse(&v(&["inspect", "k.cu", "--iters", "5"])).is_err());
        assert!(parse(&v(&["inspect", "k.cu", "--scale", "test"])).is_err());
        assert!(parse(&v(&["inspect", "jacobi", "--schedule"])).is_err());
    }

    #[test]
    fn parses_analyze() {
        assert_eq!(
            parse(&v(&["analyze", "matmul"])).unwrap(),
            Command::Analyze {
                app: "matmul".into(),
                test_scale: false,
                json: false,
                partition: false,
                error_bounds: false,
            }
        );
        assert_eq!(
            parse(&v(&[
                "analyze",
                "matmul",
                "--scale",
                "test",
                "--json",
                "--partition",
                "--error-bounds"
            ]))
            .unwrap(),
            Command::Analyze {
                app: "matmul".into(),
                test_scale: true,
                json: true,
                partition: true,
                error_bounds: true,
            }
        );
        assert!(parse(&v(&["analyze"])).is_err());
        assert!(parse(&v(&["analyze", "matmul", "--scale", "big"])).is_err());
        assert!(parse(&v(&["analyze", "matmul", "--bogus"])).is_err());
    }

    #[test]
    fn parses_serve_with_defaults() {
        let cmd = parse(&v(&["serve"])).unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                apps: vec!["blackscholes".into(), "gamma".into(), "mean".into()],
                device: DeviceArg::Gpu,
                requests: 120,
                drift_at: None,
                drift_len: 40,
                drift_gain: 8.0,
                shards: 1,
                workers: 0,
                batch_window: 8,
                queue: 64,
                inflight: 8,
                check_every: 10,
                promote_after: 3,
                toq: 90.0,
                test_scale: false,
                seeds: 3,
            }
        );
    }

    #[test]
    fn parses_serve_with_options() {
        let cmd = parse(&v(&[
            "serve",
            "--apps",
            "hotspot, gaussian",
            "--device",
            "cpu",
            "--requests",
            "60",
            "--drift-at",
            "20",
            "--drift-len",
            "15",
            "--drift-gain",
            "16",
            "--shards",
            "2",
            "--workers",
            "4",
            "--batch-window",
            "16",
            "--queue",
            "32",
            "--inflight",
            "12",
            "--check-every",
            "5",
            "--promote-after",
            "2",
            "--toq",
            "95",
            "--scale",
            "test",
            "--seeds",
            "5",
        ]))
        .unwrap();
        let Command::Serve {
            apps,
            device,
            requests,
            drift_at,
            drift_len,
            drift_gain,
            shards,
            workers,
            batch_window,
            queue,
            inflight,
            check_every,
            promote_after,
            toq,
            test_scale,
            seeds,
        } = cmd
        else {
            panic!()
        };
        assert_eq!(apps, vec!["hotspot".to_string(), "gaussian".to_string()]);
        assert_eq!(device, DeviceArg::Cpu);
        assert_eq!(requests, 60);
        assert_eq!(drift_at, Some(20));
        assert_eq!(drift_len, 15);
        assert_eq!(drift_gain, 16.0);
        assert_eq!(shards, 2);
        assert_eq!(workers, 4);
        assert_eq!(batch_window, 16);
        assert_eq!(queue, 32);
        assert_eq!(inflight, 12);
        assert_eq!(check_every, 5);
        assert_eq!(promote_after, 2);
        assert_eq!(toq, 95.0);
        assert!(test_scale);
        assert_eq!(seeds, 5);
    }

    #[test]
    fn rejects_bad_serve_options() {
        assert!(parse(&v(&["serve", "--apps", ""])).is_err());
        assert!(parse(&v(&["serve", "--requests", "0"])).is_err());
        assert!(parse(&v(&["serve", "--requests", "many"])).is_err());
        assert!(parse(&v(&["serve", "--shards", "0"])).is_err());
        assert!(parse(&v(&["serve", "--batch-window", "0"])).is_err());
        assert!(parse(&v(&["serve", "--queue", "0"])).is_err());
        assert!(parse(&v(&["serve", "--inflight", "0"])).is_err());
        assert!(parse(&v(&["serve", "--check-every", "0"])).is_err());
        assert!(parse(&v(&["serve", "--toq", "150"])).is_err());
        assert!(parse(&v(&["serve", "--drift-at"])).is_err());
        assert!(parse(&v(&["serve", "--bogus"])).is_err());
    }
}
