//! `paraprox` — command-line front door to the reproduction.
//!
//! ```text
//! paraprox list                         # the Table-1 application registry
//! paraprox tune <app> [options]        # compile + tune one application
//! paraprox inspect <file.cu>           # parse kernel source, report patterns
//! ```

use std::process::ExitCode;

mod args;
mod commands;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(cmd) => match commands::run(cmd) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            eprintln!("error: {msg}\n");
            eprintln!("{}", args::USAGE);
            ExitCode::FAILURE
        }
    }
}
