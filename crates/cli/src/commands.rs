//! Command implementations.

use std::error::Error;

use paraprox::{compile, latency_table_for, CompileOptions, Device, DeviceApp, DeviceProfile};
use paraprox_apps::Scale;
use paraprox_runtime::{Toq, Tuner};
use paraprox_serve::{drift_inputs, run_closed_loop, Engine, LoadSpec, ServeConfig};

use crate::args::{Command, DeviceArg};

/// Options of the `serve` subcommand (mirrors [`Command::Serve`]).
struct ServeOpts {
    apps: Vec<String>,
    device: DeviceArg,
    requests: u64,
    drift_at: Option<u64>,
    drift_len: u64,
    drift_gain: f64,
    shards: usize,
    workers: usize,
    batch_window: usize,
    queue: usize,
    inflight: usize,
    check_every: u64,
    promote_after: u64,
    toq: f64,
    test_scale: bool,
    seeds: usize,
}

pub fn run(cmd: Command) -> Result<(), Box<dyn Error>> {
    match cmd {
        Command::List => list(),
        Command::Tune {
            app,
            device,
            toq,
            test_scale,
            seeds,
            all,
        } => tune(&app, device, toq, test_scale, seeds, all),
        Command::Run {
            app,
            device,
            test_scale,
            threads,
            approx_mem,
            iters,
            schedule,
        } => match iters {
            Some(cap) => run_iter_app(&app, device, test_scale, threads, cap, schedule.as_deref()),
            None => run_app(&app, device, test_scale, threads, approx_mem),
        },
        Command::Inspect {
            file,
            bytecode,
            effects,
            partition,
            schedule,
            iters,
            rungs,
            test_scale,
        } => match (schedule, rungs) {
            (Some(name), _) => inspect_schedule(&file, &name, iters, test_scale),
            (None, true) => inspect_rungs(&file, test_scale),
            (None, false) => inspect(&file, bytecode.as_deref(), effects, partition),
        },
        Command::Analyze {
            app,
            test_scale,
            json,
            partition,
            error_bounds,
        } => analyze(&app, test_scale, json, partition, error_bounds),
        Command::Serve {
            apps,
            device,
            requests,
            drift_at,
            drift_len,
            drift_gain,
            shards,
            workers,
            batch_window,
            queue,
            inflight,
            check_every,
            promote_after,
            toq,
            test_scale,
            seeds,
        } => serve(ServeOpts {
            apps,
            device,
            requests,
            drift_at,
            drift_len,
            drift_gain,
            shards,
            workers,
            batch_window,
            queue,
            inflight,
            check_every,
            promote_after,
            toq,
            test_scale,
            seeds,
        }),
    }
}

fn profile_of(device: DeviceArg) -> DeviceProfile {
    match device {
        DeviceArg::Gpu => DeviceProfile::gtx560(),
        DeviceArg::Cpu => DeviceProfile::core_i7_965(),
    }
}

fn list() -> Result<(), Box<dyn Error>> {
    println!(
        "{:<32} {:<18} {:<22} metric",
        "application", "domain", "patterns"
    );
    for app in paraprox_apps::registry() {
        println!(
            "{:<32} {:<18} {:<22} {}",
            app.spec.name, app.spec.domain, app.spec.patterns, app.spec.metric
        );
    }
    Ok(())
}

fn tune(
    name: &str,
    device: DeviceArg,
    toq: f64,
    test_scale: bool,
    seeds: usize,
    all: bool,
) -> Result<(), Box<dyn Error>> {
    let app = paraprox_apps::find(name)
        .ok_or_else(|| format!("no application matching `{name}` (try `paraprox list`)"))?;
    let scale = if test_scale {
        Scale::Test
    } else {
        Scale::Paper
    };
    let profile = profile_of(device);
    println!("{} on {}", app.spec.name, profile.name);

    let workload = (app.build)(scale, 0);
    let compiled = compile(
        &workload,
        &latency_table_for(&profile),
        &CompileOptions::default(),
    )?;
    println!(
        "patterns: {}; variants: {}",
        compiled.pattern_names().join("+"),
        compiled.variants.len()
    );
    let mut device_app = DeviceApp::new(Device::new(profile), &compiled, app.input_gen(scale));
    let toq = Toq::new(toq)?;
    let tuner = Tuner {
        toq,
        training_seeds: (0..seeds as u64).collect(),
    };
    let statics = device_app.static_quality().to_vec();
    let report = tuner.tune_with_static(&mut device_app, &statics)?;
    println!(
        "\n{:<30} {:>8} {:>9}  status",
        "variant", "quality", "speedup"
    );
    for p in &report.profiles {
        if !all && !p.meets_toq {
            continue;
        }
        println!(
            "{:<30} {:>7.2}% {:>8.2}x  {}",
            p.label,
            p.mean_quality,
            p.speedup,
            if p.pruned {
                "pruned (static bound below TOQ)"
            } else if p.meets_toq {
                "ok"
            } else {
                "below TOQ"
            }
        );
    }
    match report.chosen {
        Some(i) => println!(
            "\nchosen: {} ({:.2}x at {:.1}%)",
            report.profiles[i].label,
            report.chosen_speedup(),
            report.chosen_quality()
        ),
        None => println!("\nno variant met the TOQ with a speedup; exact execution retained"),
    }
    if report.calibration_launches_saved > 0 {
        println!(
            "static error bounds pruned {} rung(s) before measurement, skipping {} calibration launch(es)",
            report.profiles.iter().filter(|p| p.pruned).count(),
            report.calibration_launches_saved
        );
    }
    Ok(())
}

fn run_app(
    name: &str,
    device: DeviceArg,
    test_scale: bool,
    threads: usize,
    approx_mem: Option<f64>,
) -> Result<(), Box<dyn Error>> {
    let app = paraprox_apps::find(name)
        .ok_or_else(|| format!("no application matching `{name}` (try `paraprox list`)"))?;
    let scale = if test_scale {
        Scale::Test
    } else {
        Scale::Paper
    };
    let profile = profile_of(device).with_parallelism(threads);
    let mut workload = (app.build)(scale, 0);
    let mut dev = Device::new(profile.clone());
    if let Some(rate) = approx_mem {
        println!(
            "{} on {} (exact pipeline, approx memory at rate {rate:e})",
            app.spec.name, profile.name
        );
        let partition = paraprox::partition_program(&workload.program);
        let slots = paraprox::tolerant_buffer_slots(&workload, &partition);
        println!("\nbuffer placements");
        for (i, spec) in workload.pipeline.buffers.iter().enumerate() {
            println!(
                "  {:<20} {}",
                spec.name,
                if slots.contains(&i) {
                    "approx (tolerant)"
                } else {
                    "exact"
                }
            );
        }
        for &slot in &slots {
            workload.pipeline.buffers[slot] = workload.pipeline.buffers[slot]
                .clone()
                .with_space(paraprox_ir::MemSpace::Approx);
        }
        dev.set_approx_rate(rate);
    } else {
        println!("{} on {} (exact pipeline)", app.spec.name, profile.name);
    }
    let run = workload.pipeline.execute(&mut dev, &workload.program)?;
    let s = &run.stats;

    let warps_per_block = if s.blocks > 0 {
        s.warps as f64 / s.blocks as f64
    } else {
        0.0
    };
    println!("\nlaunch report");
    println!("  blocks          {:>12}", s.blocks);
    println!("  warps           {:>12}", s.warps);
    println!("  warps/block     {:>12.1}", warps_per_block);
    println!("  instructions    {:>12}", s.instructions);
    println!(
        "  cycles          {:>12}  (compute={}, memory={}, overhead={})",
        s.total_cycles(),
        s.compute_cycles,
        s.memory_cycles,
        s.overhead_cycles
    );
    println!("  l1 hit rate     {:>11.1}%", s.l1_hit_rate() * 100.0);
    if approx_mem.is_some() {
        println!("  approx loads    {:>12}", s.approx_loads);
        println!("  bit flips       {:>12}", s.bit_flips);
    }
    println!("  host workers    {:>12}", s.workers);
    println!(
        "  wall time       {:>12}",
        format!("{:.3} ms", s.wall_nanos as f64 / 1e6)
    );
    Ok(())
}

/// Look up an iterative app and a preset schedule by (prefix) name, with
/// error messages that list what exists.
fn find_iter_app(name: &str) -> Result<paraprox_apps::IterApp, String> {
    paraprox_apps::find_iter(name).ok_or_else(|| {
        let names: Vec<&str> = paraprox_apps::iter_registry()
            .iter()
            .map(|a| a.name)
            .collect();
        format!(
            "no iterative application matching `{name}` (available: {})",
            names.join(", ")
        )
    })
}

fn find_schedule(name: &str, max_iters: u32) -> Result<paraprox_iter::IterSchedule, String> {
    let presets = paraprox_iter::IterSchedule::presets(max_iters);
    let lower = name.to_lowercase();
    presets
        .iter()
        .find(|s| s.label.starts_with(&lower))
        .cloned()
        .ok_or_else(|| {
            let labels: Vec<&str> = presets.iter().map(|s| s.label.as_str()).collect();
            format!(
                "no preset schedule matching `{name}` (available: {})",
                labels.join(", ")
            )
        })
}

/// `run <app> --iters <n>`: drive the iterative loop-of-stencil-reduce
/// job to convergence under each (or one named) schedule and compare.
fn run_iter_app(
    name: &str,
    device: DeviceArg,
    test_scale: bool,
    threads: usize,
    cap: u32,
    only: Option<&str>,
) -> Result<(), Box<dyn Error>> {
    let app = find_iter_app(name)?;
    let scale = if test_scale {
        Scale::Test
    } else {
        Scale::Paper
    };
    let profile = profile_of(device).with_parallelism(threads);
    let mut spec = (app.spec)(scale);
    if cap > 0 {
        spec.max_iters = cap;
    }
    let model = (app.build)(scale);
    println!(
        "{} on {} ({}x{} field, tol {:.0e} abs / {}% rel, cap {} iters)",
        app.name,
        profile.name,
        model.width,
        model.height,
        spec.tol_abs,
        spec.tol_rel * 100.0,
        spec.max_iters
    );
    let mut job =
        paraprox_iter::IterativeApp::new(Device::new(profile), model, spec, app.field_gen(scale))?
            .with_presets()?;

    let mut schedules = vec![paraprox_iter::IterSchedule::exact()];
    schedules.extend(job.schedules().iter().cloned());
    if let Some(only) = only {
        let wanted = find_schedule(only, spec.max_iters)?;
        schedules.retain(|s| s.label == wanted.label || s.is_exact());
    }

    // Deployment seed, past the tuner's training range.
    let seed = 1000u64;
    println!(
        "\n{:<16} {:>6} {:>7} {:>11} {:>10} {:>9} {:>8}  outcome",
        "schedule", "iters", "checks", "residual", "cycles", "speedup", "quality"
    );
    let mut exact_out: Option<paraprox_runtime::RunOutcome> = None;
    for schedule in &schedules {
        let out = job.run_schedule(schedule, seed)?;
        let run = job.last_run().cloned().ok_or("loop recorded no run")?;
        let (speedup, quality) = match &exact_out {
            None => (1.0, 100.0),
            Some(e) => (
                e.cycles as f64 / out.cycles.max(1) as f64,
                paraprox_runtime::Approximable::quality(&job, &e.output, &out.output),
            ),
        };
        println!(
            "{:<16} {:>6} {:>7} {:>11.4e} {:>10} {:>8.2}x {:>7.2}%  {}",
            run.schedule,
            run.iterations,
            run.checks,
            run.residual,
            out.cycles,
            speedup,
            quality,
            if run.predicted {
                "converged (predicted)"
            } else if run.converged {
                "converged"
            } else {
                "iteration cap"
            }
        );
        if schedule.is_exact() {
            exact_out = Some(out);
        }
    }
    Ok(())
}

/// `inspect <app> --schedule <name>`: print the schedule's plan and the
/// safety gate's verdict under the loop's launch contexts.
fn inspect_schedule(
    name: &str,
    schedule: &str,
    cap: u32,
    test_scale: bool,
) -> Result<(), Box<dyn Error>> {
    let app = find_iter_app(name)?;
    let scale = if test_scale {
        Scale::Test
    } else {
        Scale::Paper
    };
    let mut spec = (app.spec)(scale);
    if cap > 0 {
        spec.max_iters = cap;
    }
    let sched = find_schedule(schedule, spec.max_iters)?;
    let model = (app.build)(scale);
    println!(
        "{} ({}x{} field, {} metric)\n",
        app.name, model.width, model.height, app.metric
    );
    println!("{}", sched.describe(spec.max_iters));
    let contexts = paraprox_iter::iter_launch_contexts(&model, &sched);
    println!(
        "\ngate: {} launch context(s) per stage program",
        contexts.len()
    );
    match paraprox_iter::gate_schedule(&model, &sched) {
        Ok(stages) => {
            println!(
                "gate: admitted — {} stage program(s) passed the effect contract and \
                 the full lint suite",
                stages.len()
            );
            Ok(())
        }
        Err(paraprox_iter::IterError::Refused { label, reasons }) => {
            println!("gate: REFUSED schedule `{label}`:");
            for r in &reasons {
                println!("  - {r}");
            }
            Err(format!("schedule `{label}` refused by the safety gate").into())
        }
        Err(e) => Err(e.into()),
    }
}

/// `inspect <app> --rungs`: compile every auto-generated rung of a
/// registry application and print the static error-propagation table next
/// to the quality actually measured on the device.
fn inspect_rungs(name: &str, test_scale: bool) -> Result<(), Box<dyn Error>> {
    use paraprox_runtime::Approximable;

    /// Bit-error rates for the appended approximate-memory rungs
    /// (mirrors `bench_errorprop`: one plausible, one the static table
    /// should reject).
    const APPROX_RATES: [f64; 2] = [1e-7, 1e-2];
    const MEASURE_SEEDS: u64 = 2;

    let app = paraprox_apps::find(name)
        .ok_or_else(|| format!("no application matching `{name}` (try `paraprox list`)"))?;
    let scale = if test_scale {
        Scale::Test
    } else {
        Scale::Paper
    };
    let profile = DeviceProfile::gtx560();
    let workload = (app.build)(scale, 0);
    let compiled = compile(
        &workload,
        &latency_table_for(&profile),
        &CompileOptions::default(),
    )?;
    let mut dapp = DeviceApp::new(
        Device::new(profile.clone()),
        &compiled,
        app.input_gen(scale),
    )
    .with_approx_memory(&compiled, &APPROX_RATES);
    let statics = dapp.static_quality().to_vec();
    println!(
        "{} on {}: {} rung(s); static bound vs quality measured over {} seed(s)\n",
        app.spec.name,
        profile.name,
        statics.len(),
        MEASURE_SEEDS
    );
    println!(
        "{:<30} {:>12} {:>10} {:>10}  status",
        "rung", "static bound", "predicted", "measured"
    );
    for (i, s) in statics.iter().enumerate() {
        let mut quality = 0.0f64;
        let mut failed = None;
        for seed in 0..MEASURE_SEEDS {
            let exact = dapp.run_exact(seed)?;
            match dapp.run_variant(i, seed) {
                Ok(run) => quality += dapp.quality(&exact.output, &run.output),
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            }
        }
        let bound = if s.error_bound.is_finite() {
            format!("{:.4}", s.error_bound)
        } else {
            "unbounded".to_string()
        };
        let (measured, status) = match &failed {
            Some(e) => ("-".to_string(), format!("did not run: {e}")),
            None => (
                format!("{:.2}%", quality / MEASURE_SEEDS as f64),
                if s.refused {
                    "refused (measure dynamically)".to_string()
                } else if s.predictive {
                    "bound".to_string()
                } else {
                    "no claim (widened to +inf)".to_string()
                },
            ),
        };
        println!(
            "{:<30} {:>12} {:>9.2}% {:>10}  {}",
            s.label, bound, s.predicted_quality, measured, status
        );
        for r in &s.refusals {
            println!("    {r}");
        }
    }
    Ok(())
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render the partition table of one kernel, human-readable.
fn print_partition(part: &paraprox_analysis::KernelPartition) {
    println!("kernel `{}` partition:", part.kernel_name);
    for v in &part.verdicts {
        println!(
            "  {:<20} {:<9} ({})",
            v.name,
            v.criticality.to_string(),
            v.declared
        );
        for step in &v.witness {
            println!("      {step}");
        }
    }
}

/// A finite f64 as a JSON number, non-finite as `null` (JSON has no
/// infinity; an unbounded static error bound serializes as `null`).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// The version of the `analyze --json` schema emitted by
/// [`analyze_json_report`]; bumped on any breaking field change. The full
/// schema is documented in DESIGN.md.
const ANALYZE_SCHEMA_VERSION: u32 = 2;

/// Render the complete `analyze --json` document (see DESIGN.md for the
/// schema). Factored out of [`analyze`] so tests can round-trip it.
fn analyze_json_report(
    app_name: &str,
    workload: &paraprox::Workload,
    diags: &[paraprox::Diagnostic],
    parts: &[paraprox_analysis::KernelPartition],
    statics: &[paraprox::StaticQuality],
) -> String {
    let errors = diags
        .iter()
        .filter(|d| d.severity == paraprox::Severity::Error)
        .count();
    let misplaced = diags
        .iter()
        .filter(|d| d.code == "approx-placement")
        .count();
    let findings: Vec<String> = diags
        .iter()
        .map(|d| {
            format!(
                "{{\"severity\":{},\"code\":{},\"kernel\":{},\"path\":{},\"message\":{}}}",
                json_str(match d.severity {
                    paraprox::Severity::Error => "error",
                    paraprox::Severity::Warning => "warning",
                }),
                json_str(d.code),
                json_str(&d.kernel_name),
                json_str(&d.path_string()),
                json_str(&d.message)
            )
        })
        .collect();
    let partitions: Vec<String> = parts
        .iter()
        .map(|p| {
            let buffers: Vec<String> = p
                .verdicts
                .iter()
                .map(|v| {
                    let witness: Vec<String> = v.witness.iter().map(|w| json_str(w)).collect();
                    format!(
                        "{{\"name\":{},\"mem\":{},\"declared\":{},\"criticality\":{},\"witness\":[{}]}}",
                        json_str(&v.name),
                        json_str(&v.mem.to_string()),
                        json_str(&v.declared.to_string()),
                        json_str(&v.criticality.to_string()),
                        witness.join(",")
                    )
                })
                .collect();
            format!(
                "{{\"kernel\":{},\"buffers\":[{}]}}",
                json_str(&p.kernel_name),
                buffers.join(",")
            )
        })
        .collect();
    let bounds: Vec<String> = statics
        .iter()
        .map(|s| {
            let refusals: Vec<String> = s.refusals.iter().map(|r| json_str(r)).collect();
            format!(
                "{{\"label\":{},\"error_bound\":{},\"quality_floor\":{},\"predicted_quality\":{},\"predictive\":{},\"refused\":{},\"refusals\":[{}]}}",
                json_str(&s.label),
                json_f64(s.error_bound),
                json_f64(s.quality_floor),
                json_f64(s.predicted_quality),
                s.predictive,
                s.refused,
                refusals.join(",")
            )
        })
        .collect();
    format!(
        "{{\"schema\":{ANALYZE_SCHEMA_VERSION},\"app\":{},\"kernels\":{},\"launches\":{},\"findings\":[{}],\"errors\":{},\"warnings\":{},\"misplaced\":{},\"partition\":[{}],\"error_bounds\":[{}]}}",
        json_str(app_name),
        workload.program.kernel_count(),
        workload.pipeline.launches.len(),
        findings.join(","),
        errors,
        diags.len() - errors,
        misplaced,
        partitions.join(","),
        bounds.join(",")
    )
}

/// Print the per-rung static error-bound table, human-readable.
fn print_error_bounds(statics: &[paraprox::StaticQuality]) {
    println!(
        "\nper-rung static error bounds ({} auto-generated rung(s)):",
        statics.len()
    );
    println!(
        "{:<30} {:>12} {:>8} {:>10}  status",
        "rung", "error bound", "floor", "predicted"
    );
    for s in statics {
        let bound = if s.error_bound.is_finite() {
            format!("{:.4}", s.error_bound)
        } else {
            "unbounded".to_string()
        };
        println!(
            "{:<30} {:>12} {:>7.2}% {:>9.2}%  {}",
            s.label,
            bound,
            s.quality_floor,
            s.predicted_quality,
            if s.refused {
                "refused"
            } else if s.predictive {
                "bound"
            } else {
                "no claim (widened to +inf)"
            }
        );
        for r in &s.refusals {
            println!("    {r}");
        }
    }
}

fn analyze(
    name: &str,
    test_scale: bool,
    json: bool,
    partition: bool,
    error_bounds: bool,
) -> Result<(), Box<dyn Error>> {
    let app = paraprox_apps::find(name)
        .ok_or_else(|| format!("no application matching `{name}` (try `paraprox list`)"))?;
    let scale = if test_scale {
        Scale::Test
    } else {
        Scale::Paper
    };
    let workload = (app.build)(scale, 0);
    let diags = paraprox::analyze_workload(&workload);
    let parts = paraprox::partition_program(&workload.program);
    let errors = diags
        .iter()
        .filter(|d| d.severity == paraprox::Severity::Error)
        .count();
    // The JSON report always carries the per-rung error bounds; the human
    // report only pays for variant generation when asked.
    let statics = if json || error_bounds {
        let compiled = compile(
            &workload,
            &latency_table_for(&DeviceProfile::gtx560()),
            &CompileOptions::default(),
        )?;
        compiled.static_quality
    } else {
        Vec::new()
    };

    if json {
        println!(
            "{}",
            analyze_json_report(app.spec.name, &workload, &diags, &parts, &statics)
        );
        if errors > 0 {
            return Err(format!("static analysis found {errors} error(s)").into());
        }
        return Ok(());
    }

    println!(
        "{}: {} kernel(s), {} launch(es)",
        app.spec.name,
        workload.program.kernel_count(),
        workload.pipeline.launches.len()
    );
    if partition {
        for p in &parts {
            print_partition(p);
        }
    }
    if error_bounds {
        print_error_bounds(&statics);
    }
    if diags.is_empty() {
        println!("no findings: races, bounds, dataflow, and placement lints are all clean");
        return Ok(());
    }
    for d in &diags {
        println!("{d}");
    }
    println!(
        "{} finding(s), {} error(s), {} warning(s)",
        diags.len(),
        errors,
        diags.len() - errors
    );
    if errors > 0 {
        return Err(format!("static analysis found {errors} error(s)").into());
    }
    Ok(())
}

fn serve(o: ServeOpts) -> Result<(), Box<dyn Error>> {
    let scale = if o.test_scale {
        Scale::Test
    } else {
        Scale::Paper
    };
    let profile = profile_of(o.device);
    let toq = Toq::new(o.toq)?;
    // Serving seeds start well above the training seeds so deployed
    // traffic never replays a tuning input.
    let spec = LoadSpec {
        requests: o.requests,
        seed_base: 1000,
        inflight: o.inflight,
    };

    let mut builder = Engine::builder(ServeConfig {
        queue_capacity: o.queue,
        shards: o.shards,
        workers: o.workers,
        batch_window: o.batch_window,
        toq,
        check_every: o.check_every,
        promote_after: o.promote_after,
        quality_alpha: 0.25,
    });
    println!(
        "serving on {} (TOQ {:.0}%, check every {}, promote after {})",
        profile.name, o.toq, o.check_every, o.promote_after
    );
    let mut tenants = Vec::new();
    for name in &o.apps {
        let app = paraprox_apps::find(name)
            .ok_or_else(|| format!("no application matching `{name}` (try `paraprox list`)"))?;
        let workload = (app.build)(scale, 0);
        let compiled = compile(
            &workload,
            &latency_table_for(&profile),
            &CompileOptions::default(),
        )?;
        let mut input_gen = app.input_gen(scale);
        if let Some(k) = o.drift_at {
            input_gen = drift_inputs(
                input_gen,
                spec.seed_base + k,
                spec.seed_base + k + o.drift_len,
                o.drift_gain as f32,
            );
        }
        let mut device_app = DeviceApp::new(Device::new(profile.clone()), &compiled, input_gen);
        let tuner = Tuner {
            toq,
            training_seeds: (0..o.seeds as u64).collect(),
        };
        let statics = device_app.static_quality().to_vec();
        let report = tuner.tune_with_static(&mut device_app, &statics)?;
        let ladder: Vec<String> = report
            .backoff_ladder()
            .iter()
            .map(|r| match r.variant() {
                Some(i) => report.profiles[i].label.clone(),
                None => "exact".to_string(),
            })
            .collect();
        println!("  {:<32} ladder: {}", app.spec.name, ladder.join(" -> "));
        tenants.push(builder.register(app.spec.name, Box::new(device_app), &report));
    }

    let engine = builder.start();
    println!(
        "\n{} shard(s) x {} worker(s), batch window {}, queue capacity {}, {} in flight; \
         {} requests/tenant from seed {}",
        engine.shard_count(),
        engine.worker_count() / engine.shard_count(),
        o.batch_window,
        o.queue,
        o.inflight,
        o.requests,
        spec.seed_base
    );
    if let Some(k) = o.drift_at {
        println!(
            "drift window: requests {k}..{} at gain {}x",
            k + o.drift_len,
            o.drift_gain
        );
    }
    println!();
    let names = engine.tenant_names();
    let load = run_closed_loop(&engine, &tenants, &spec, |r| {
        if r.backed_off {
            println!(
                "  [{} #{}] TOQ violated at {:.1}% -> backed off",
                names[r.tenant],
                r.seq,
                r.checked_quality.unwrap_or(0.0)
            );
        } else if r.promoted {
            println!(
                "  [{} #{}] quality recovered -> re-promoted",
                names[r.tenant], r.seq
            );
        }
    });
    let snap = engine.shutdown();

    println!(
        "\n{:<32} {:>6} {:>6} {:>5} {:>8} {:>8} {:>7} {:>5} {:>7} {:>5} {:>9} {:>10} {:>10}",
        "tenant",
        "served",
        "checks",
        "viol",
        "backoff",
        "promote",
        "rung",
        "start",
        "meanQ",
        "depth",
        "batch",
        "p50",
        "p99"
    );
    let mut ops_dispatched = 0u64;
    let mut fusions_hit = 0u64;
    for t in &snap.tenants {
        ops_dispatched += t.ops_dispatched;
        fusions_hit += t.fusions_hit;
        println!(
            "{:<32} {:>6} {:>6} {:>5} {:>8} {:>8} {:>7} {:>5} {:>6.1}% {:>5} {:>5.1}/{:<3} {:>8.2}ms {:>8.2}ms",
            t.name,
            t.served,
            t.checks,
            t.violations,
            t.backoffs,
            t.promotions,
            t.rung,
            t.seeded_position,
            t.mean_quality.unwrap_or(100.0),
            t.peak_queue_depth,
            t.mean_batch(),
            t.peak_batch,
            t.service_p50_ns as f64 / 1e6,
            t.service_p99_ns as f64 / 1e6
        );
    }
    println!(
        "\nthroughput: {:.1} req/s ({} requests in {:.2}s); {} rejected-with-retry, {} error(s)",
        load.throughput_rps(),
        load.completed,
        load.wall_nanos as f64 / 1e9,
        load.retries,
        load.errors
    );
    println!(
        "device: {} op(s) dispatched, {} fusion hit(s), {} cross-shard steal(s)",
        ops_dispatched, fusions_hit, snap.steals
    );
    if load.errors > 0 {
        return Err(format!("{} request(s) failed", load.errors).into());
    }
    Ok(())
}

fn inspect(
    file: &str,
    bytecode: Option<&str>,
    effects: bool,
    partition: bool,
) -> Result<(), Box<dyn Error>> {
    let source = std::fs::read_to_string(file)?;
    let program = paraprox_lang::parse_program(&source)?;
    println!(
        "{file}: {} device function(s), {} kernel(s)\n",
        program.func_count(),
        program.kernel_count()
    );
    let table = latency_table_for(&DeviceProfile::gtx560());
    let detected = paraprox_patterns::detect(
        &program,
        &table,
        &paraprox_patterns::DetectOptions::default(),
    );
    for kp in &detected {
        let kernel = program.kernel(kp.kernel);
        println!("kernel `{}`:", kernel.name);
        if effects {
            println!(
                "  effects: {}",
                paraprox_analysis::summarize_kernel(&program, kp.kernel)
            );
        }
        if partition {
            let part = paraprox_analysis::partition_kernel(&program, kp.kernel);
            for v in &part.verdicts {
                println!(
                    "  buffer {:<16} {:<9} ({})",
                    v.name,
                    v.criticality.to_string(),
                    v.declared
                );
                for step in &v.witness {
                    println!("      {step}");
                }
            }
        }
        if kp.instances.is_empty() {
            println!("  (no approximable patterns)");
        }
        for inst in &kp.instances {
            match inst {
                paraprox_patterns::PatternInstance::Map(c) => {
                    let func = program.func(c.func);
                    println!(
                        "  {}: function `{}` is pure and costs ~{} cycles (Eq. 1) -> approximate memoization",
                        inst.name(),
                        func.name,
                        c.cycles_needed
                    );
                }
                paraprox_patterns::PatternInstance::Stencil(s) => {
                    println!(
                        "  {}: {}x{} tile over buffer {:?} -> center/row/column value replication",
                        inst.name(),
                        s.tile_h,
                        s.tile_w,
                        s.buffer
                    );
                }
                paraprox_patterns::PatternInstance::Reduction(r) => {
                    println!(
                        "  reduction: loop at depth {} ({:?}) -> sampling + adjustment",
                        r.path.depth(),
                        r.kind
                    );
                }
                paraprox_patterns::PatternInstance::Scan(m) => {
                    println!(
                        "  scan: phase-I template over {}-element subarrays -> subarray prediction",
                        m.subarray_len
                    );
                }
            }
        }
    }
    if let Some(name) = bytecode {
        let lower = name.to_lowercase();
        let Some((_, kernel)) = program
            .kernels()
            .find(|(_, k)| k.name.to_lowercase().starts_with(&lower))
        else {
            return Err(format!("no kernel matching `{name}` in {file}").into());
        };
        let profile = DeviceProfile::gtx560();
        let compiled = paraprox_vgpu::compile_kernel(&program, kernel, &profile);
        println!(
            "\nbytecode for kernel `{}` ({} ops, compiled for {}):\n",
            kernel.name,
            compiled.op_count(),
            profile.name
        );
        print!("{}", compiled.disassemble());
        let fused = compiled.fuse_all();
        let supers = fused.superinstructions();
        if supers.is_empty() {
            println!("\nno fusable op pairs in this kernel");
        } else {
            println!(
                "\nfused superinstructions ({} of {} ops fusable; each line shows its constituent ops):",
                supers.len(),
                compiled.op_count()
            );
            for line in &supers {
                println!("{line}");
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal JSON value and recursive-descent parser — just enough to
    /// deserialize the `analyze --json` document and prove the schema
    /// round-trips without an external serde dependency.
    #[derive(Debug, Clone, PartialEq)]
    enum Json {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Json>),
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        fn get(&self, key: &str) -> Option<&Json> {
            match self {
                Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        fn to_json(&self) -> String {
            match self {
                Json::Null => "null".to_string(),
                Json::Bool(b) => b.to_string(),
                Json::Num(n) => format!("{n}"),
                Json::Str(s) => json_str(s),
                Json::Arr(items) => {
                    let inner: Vec<String> = items.iter().map(Json::to_json).collect();
                    format!("[{}]", inner.join(","))
                }
                Json::Obj(fields) => {
                    let inner: Vec<String> = fields
                        .iter()
                        .map(|(k, v)| format!("{}:{}", json_str(k), v.to_json()))
                        .collect();
                    format!("{{{}}}", inner.join(","))
                }
            }
        }
    }

    fn parse_value(s: &[u8], mut i: usize) -> Result<(Json, usize), String> {
        while i < s.len() && s[i].is_ascii_whitespace() {
            i += 1;
        }
        match *s.get(i).ok_or("unexpected end of input")? {
            b'n' => expect(s, i, "null").map(|i| (Json::Null, i)),
            b't' => expect(s, i, "true").map(|i| (Json::Bool(true), i)),
            b'f' => expect(s, i, "false").map(|i| (Json::Bool(false), i)),
            b'"' => parse_string(s, i).map(|(v, i)| (Json::Str(v), i)),
            b'[' => {
                i += 1;
                let mut items = Vec::new();
                loop {
                    while i < s.len() && s[i].is_ascii_whitespace() {
                        i += 1;
                    }
                    if s.get(i) == Some(&b']') {
                        return Ok((Json::Arr(items), i + 1));
                    }
                    if !items.is_empty() {
                        if s.get(i) != Some(&b',') {
                            return Err(format!("expected `,` or `]` at byte {i}"));
                        }
                        i += 1;
                    }
                    let (v, next) = parse_value(s, i)?;
                    items.push(v);
                    i = next;
                }
            }
            b'{' => {
                i += 1;
                let mut fields = Vec::new();
                loop {
                    while i < s.len() && s[i].is_ascii_whitespace() {
                        i += 1;
                    }
                    if s.get(i) == Some(&b'}') {
                        return Ok((Json::Obj(fields), i + 1));
                    }
                    if !fields.is_empty() {
                        if s.get(i) != Some(&b',') {
                            return Err(format!("expected `,` or `}}` at byte {i}"));
                        }
                        i += 1;
                        while i < s.len() && s[i].is_ascii_whitespace() {
                            i += 1;
                        }
                    }
                    let (key, next) = parse_string(s, i)?;
                    i = next;
                    while i < s.len() && s[i].is_ascii_whitespace() {
                        i += 1;
                    }
                    if s.get(i) != Some(&b':') {
                        return Err(format!("expected `:` at byte {i}"));
                    }
                    let (v, next) = parse_value(s, i + 1)?;
                    fields.push((key, v));
                    i = next;
                }
            }
            c if c == b'-' || c.is_ascii_digit() => {
                let start = i;
                while i < s.len()
                    && (s[i].is_ascii_digit() || matches!(s[i], b'-' | b'+' | b'.' | b'e' | b'E'))
                {
                    i += 1;
                }
                let text = std::str::from_utf8(&s[start..i]).map_err(|e| e.to_string())?;
                let n: f64 = text.parse().map_err(|_| format!("bad number `{text}`"))?;
                Ok((Json::Num(n), i))
            }
            c => Err(format!("unexpected byte {c:?} at {i}")),
        }
    }

    fn expect(s: &[u8], i: usize, word: &str) -> Result<usize, String> {
        if s[i..].starts_with(word.as_bytes()) {
            Ok(i + word.len())
        } else {
            Err(format!("expected `{word}` at byte {i}"))
        }
    }

    fn parse_string(s: &[u8], mut i: usize) -> Result<(String, usize), String> {
        if s.get(i) != Some(&b'"') {
            return Err(format!("expected string at byte {i}"));
        }
        i += 1;
        let mut out = String::new();
        while let Some(&c) = s.get(i) {
            match c {
                b'"' => return Ok((out, i + 1)),
                b'\\' => {
                    let esc = *s.get(i + 1).ok_or("unterminated escape")?;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = s
                                .get(i + 2..i + 6)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            i += 4;
                        }
                        other => return Err(format!("unknown escape `\\{}`", other as char)),
                    }
                    i += 2;
                }
                _ => {
                    // Multi-byte UTF-8 sequences pass through untouched.
                    let rest = std::str::from_utf8(&s[i..]).map_err(|e| e.to_string())?;
                    let ch = rest.chars().next().ok_or("unexpected end of string")?;
                    out.push(ch);
                    i += ch.len_utf8();
                }
            }
        }
        Err("unterminated string".to_string())
    }

    fn parse_json(text: &str) -> Result<Json, String> {
        let (v, end) = parse_value(text.as_bytes(), 0)?;
        if text.as_bytes()[end..]
            .iter()
            .any(|b| !b.is_ascii_whitespace())
        {
            return Err(format!("trailing garbage after byte {end}"));
        }
        Ok(v)
    }

    #[test]
    fn analyze_json_round_trips() {
        let app = paraprox_apps::find("gamma").expect("registry app");
        let workload = (app.build)(Scale::Test, 0);
        let diags = paraprox::analyze_workload(&workload);
        let parts = paraprox::partition_program(&workload.program);
        let compiled = compile(
            &workload,
            &latency_table_for(&DeviceProfile::gtx560()),
            &CompileOptions::default(),
        )
        .expect("compile");
        let text = analyze_json_report(
            app.spec.name,
            &workload,
            &diags,
            &parts,
            &compiled.static_quality,
        );

        // Deserialize, check the versioned schema, then re-serialize and
        // re-parse: the document must survive a full round trip.
        let doc = parse_json(&text).expect("analyze --json output parses");
        assert_eq!(doc.get("schema"), Some(&Json::Num(2.0)));
        assert_eq!(doc.get("app"), Some(&Json::Str(app.spec.name.to_string())));
        assert_eq!(doc.get("errors"), Some(&Json::Num(0.0)));
        assert_eq!(doc.get("findings"), Some(&Json::Arr(Vec::new())));
        let Some(Json::Arr(bounds)) = doc.get("error_bounds") else {
            panic!("error_bounds must be an array");
        };
        assert_eq!(
            bounds.len(),
            compiled.static_quality.len(),
            "one entry per auto-generated rung"
        );
        for (entry, sq) in bounds.iter().zip(&compiled.static_quality) {
            assert_eq!(entry.get("label"), Some(&Json::Str(sq.label.clone())));
            assert_eq!(entry.get("refused"), Some(&Json::Bool(sq.refused)));
            match entry.get("error_bound") {
                Some(Json::Num(n)) => assert!((n - sq.error_bound).abs() < 1e-12),
                Some(Json::Null) => assert!(!sq.error_bound.is_finite()),
                other => panic!("error_bound must be a number or null, got {other:?}"),
            }
        }
        let reparsed = parse_json(&doc.to_json()).expect("re-serialized JSON parses");
        assert_eq!(reparsed, doc, "round trip is lossless");
    }

    #[test]
    fn json_f64_maps_non_finite_to_null() {
        assert_eq!(json_f64(0.25), "0.25");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NAN), "null");
    }
}
