//! A set-associative LRU cache model used for the L1 and constant caches.
//!
//! Addresses are byte addresses in the device's flat address space; the
//! cache tracks lines only (no data — the backing store is always the
//! buffer contents, which keeps the model trivially coherent).

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub bytes: usize,
    /// Line size in bytes.
    pub line: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheGeometry {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        (self.bytes / self.line / self.ways).max(1)
    }
}

/// Cache configuration for a device: L1 (global memory) and constant cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Geometry of the L1 data cache in front of global memory.
    pub l1: CacheGeometry,
    /// Geometry of the constant cache.
    pub constant: CacheGeometry,
}

impl CacheConfig {
    /// Fermi-style 16 KB L1 + 8 KB constant cache (paper's default split:
    /// 48 KB shared / 16 KB L1).
    pub fn gpu_l1_16k() -> CacheConfig {
        CacheConfig {
            l1: CacheGeometry {
                bytes: 16 * 1024,
                line: 128,
                ways: 4,
            },
            constant: CacheGeometry {
                bytes: 8 * 1024,
                line: 64,
                ways: 4,
            },
        }
    }

    /// Fermi-style 48 KB L1 (the paper's Fig. 16 experiment flips the
    /// shared/L1 split to 32 KB L1; this helper takes the size explicitly).
    pub fn gpu_l1_bytes(bytes: usize) -> CacheConfig {
        CacheConfig {
            l1: CacheGeometry {
                bytes,
                line: 128,
                ways: 4,
            },
            constant: CacheGeometry {
                bytes: 8 * 1024,
                line: 64,
                ways: 4,
            },
        }
    }

    /// CPU-style 256 KB private cache with 64-byte lines.
    pub fn cpu_l1_256k() -> CacheConfig {
        CacheConfig {
            l1: CacheGeometry {
                bytes: 256 * 1024,
                line: 64,
                ways: 8,
            },
            constant: CacheGeometry {
                bytes: 32 * 1024,
                line: 64,
                ways: 8,
            },
        }
    }
}

/// A set-associative LRU cache over byte addresses (tags only).
#[derive(Debug, Clone)]
pub struct Cache {
    geometry: CacheGeometry,
    /// `sets[s]` holds the resident line tags in LRU order (front = MRU).
    sets: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Create an empty cache with the given geometry.
    pub fn new(geometry: CacheGeometry) -> Cache {
        Cache {
            geometry,
            sets: vec![Vec::new(); geometry.sets()],
            hits: 0,
            misses: 0,
        }
    }

    /// The geometry this cache was built with.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Line size in bytes.
    pub fn line(&self) -> usize {
        self.geometry.line
    }

    /// Access the line containing byte `addr`; returns `true` on a hit.
    /// On a miss the line is installed, evicting the set's LRU line if the
    /// set is full.
    pub fn access(&mut self, addr: u64) -> bool {
        let line_tag = addr / self.geometry.line as u64;
        let set_idx = (line_tag % self.sets.len() as u64) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == line_tag) {
            set.remove(pos);
            set.insert(0, line_tag);
            self.hits += 1;
            true
        } else {
            set.insert(0, line_tag);
            if set.len() > self.geometry.ways {
                set.pop();
            }
            self.misses += 1;
            false
        }
    }

    /// Hits since creation or the last [`Cache::reset_counters`].
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses since creation or the last [`Cache::reset_counters`].
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Clear the hit/miss counters but keep cache contents.
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Overwrite the hit/miss counters. Used by the block-parallel executor
    /// to merge per-block cache snapshots back into the device cache: the
    /// device keeps the last block's contents, with counters advanced by
    /// the deterministic sum of every block's deltas.
    pub(crate) fn set_counters(&mut self, hits: u64, misses: u64) {
        self.hits = hits;
        self.misses = misses;
    }

    /// Drop all resident lines and reset counters.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.reset_counters();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 lines of 64 B in 2 sets x 2 ways.
        Cache::new(CacheGeometry {
            bytes: 256,
            line: 64,
            ways: 2,
        })
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (tag % 2 == 0).
        assert!(!c.access(0)); // install tag 0
        assert!(!c.access(128)); // install tag 2
        assert!(!c.access(256)); // install tag 4, evicts tag 0 (LRU)
        assert!(!c.access(0)); // tag 0 was evicted
        assert!(c.access(256)); // tag 4 still resident
    }

    #[test]
    fn lru_order_updates_on_hit() {
        let mut c = tiny();
        c.access(0); // tag 0
        c.access(128); // tag 2
        c.access(0); // touch tag 0 -> MRU
        c.access(256); // tag 4 evicts tag 2
        assert!(c.access(0));
        assert!(!c.access(128));
    }

    #[test]
    fn flush_clears_contents_and_counters() {
        let mut c = tiny();
        c.access(0);
        c.flush();
        assert_eq!(c.hits() + c.misses(), 0);
        assert!(!c.access(0));
    }

    #[test]
    fn geometry_sets_never_zero() {
        let g = CacheGeometry {
            bytes: 64,
            line: 128,
            ways: 4,
        };
        assert_eq!(g.sets(), 1);
    }

    #[test]
    fn stock_configs_are_sane() {
        let g = CacheConfig::gpu_l1_16k();
        assert_eq!(g.l1.bytes, 16 * 1024);
        assert!(g.l1.sets() > 0);
        let c = CacheConfig::cpu_l1_256k();
        assert!(c.l1.bytes > g.l1.bytes);
    }
}
