//! Launch statistics: the cost side of a simulated kernel execution.

use std::fmt;
use std::ops::AddAssign;

/// Counters accumulated while executing one kernel launch (or summed over a
/// multi-launch pipeline).
///
/// Cycle counters are *warp-cycles*: each cost is charged once per warp that
/// executes the instruction, mirroring SIMT issue. Speedup between two
/// launches on the same [`crate::DeviceProfile`] is
/// `baseline.total_cycles() / variant.total_cycles()`.
#[derive(Debug, Clone, Copy, Default)]
pub struct LaunchStats {
    /// Cycles spent in arithmetic/logic/control instructions.
    pub compute_cycles: u64,
    /// Cycles spent in memory instructions (loads, stores, atomics).
    pub memory_cycles: u64,
    /// Fixed block-scheduling overhead cycles.
    pub overhead_cycles: u64,
    /// Dynamic warp-instructions issued.
    pub instructions: u64,
    /// Load instructions executed (per warp).
    pub loads: u64,
    /// Store instructions executed (per warp).
    pub stores: u64,
    /// Atomic operations executed (per lane).
    pub atomics: u64,
    /// Global-memory transactions issued for loads.
    pub load_transactions: u64,
    /// Extra transactions beyond one per warp load (the paper's Fig. 17
    /// "instruction serialization overhead" counts these).
    pub serialized_transactions: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// Constant-cache hits.
    pub const_hits: u64,
    /// Constant-cache misses.
    pub const_misses: u64,
    /// Shared-memory accesses (per warp transaction, conflict-free unit).
    pub shared_accesses: u64,
    /// Extra shared transactions caused by bank conflicts.
    pub bank_conflict_extra: u64,
    /// Warps launched.
    pub warps: u64,
    /// Blocks launched.
    pub blocks: u64,
    /// Host wall-clock time spent executing the launch, in nanoseconds.
    /// Measurement, not simulation: excluded from equality so results can
    /// be compared across worker counts.
    pub wall_nanos: u64,
    /// Host worker threads used for the launch (also excluded from
    /// equality).
    pub workers: u64,
    /// Bytecode ops dispatched by the interpreter inner loop (a fused
    /// superinstruction counts once). Zero on the tree-walking engine.
    /// Engine-dependent host-side diagnostic: excluded from equality.
    pub ops_dispatched: u64,
    /// Fused superinstructions executed. Zero on the tree-walking engine
    /// and on unfused bytecode; excluded from equality.
    pub fusions_hit: u64,
    /// Lane-loads served from buffers placed in [`MemSpace::Approx`]
    /// (per lane, not per warp). Placement diagnostic: excluded from
    /// equality, like `wall_nanos`.
    ///
    /// [`MemSpace::Approx`]: paraprox_ir::MemSpace::Approx
    pub approx_loads: u64,
    /// Bit flips injected into approximate-memory loads. Always zero at
    /// error rate 0; excluded from equality like `approx_loads`.
    pub bit_flips: u64,
}

/// Equality covers every *simulated* counter; `wall_nanos`, `workers`,
/// `ops_dispatched`, `fusions_hit`, `approx_loads`, and `bit_flips` are
/// diagnostics (the middle two depend on the engine and fusion state, the
/// last two on buffer placement, not on the simulated machine) and
/// deliberately ignored, so stats from runs at different parallelism
/// levels or engines compare equal iff the simulation agreed.
impl PartialEq for LaunchStats {
    fn eq(&self, other: &LaunchStats) -> bool {
        self.compute_cycles == other.compute_cycles
            && self.memory_cycles == other.memory_cycles
            && self.overhead_cycles == other.overhead_cycles
            && self.instructions == other.instructions
            && self.loads == other.loads
            && self.stores == other.stores
            && self.atomics == other.atomics
            && self.load_transactions == other.load_transactions
            && self.serialized_transactions == other.serialized_transactions
            && self.l1_hits == other.l1_hits
            && self.l1_misses == other.l1_misses
            && self.const_hits == other.const_hits
            && self.const_misses == other.const_misses
            && self.shared_accesses == other.shared_accesses
            && self.bank_conflict_extra == other.bank_conflict_extra
            && self.warps == other.warps
            && self.blocks == other.blocks
    }
}

impl Eq for LaunchStats {}

impl LaunchStats {
    /// Total simulated cycles for the launch.
    pub fn total_cycles(&self) -> u64 {
        self.compute_cycles + self.memory_cycles + self.overhead_cycles
    }

    /// Fraction of load transactions that were serialized beyond the ideal
    /// one-per-warp access (0.0 when no loads happened). This is the metric
    /// plotted in the paper's Fig. 17.
    pub fn serialization_overhead(&self) -> f64 {
        if self.load_transactions == 0 {
            0.0
        } else {
            self.serialized_transactions as f64 / self.load_transactions as f64
        }
    }

    /// L1 hit rate over global loads (1.0 when no L1 accesses happened).
    pub fn l1_hit_rate(&self) -> f64 {
        let total = self.l1_hits + self.l1_misses;
        if total == 0 {
            1.0
        } else {
            self.l1_hits as f64 / total as f64
        }
    }

    /// Speedup of `self` relative to `baseline` measured in total cycles
    /// (values > 1.0 mean `self` is faster).
    pub fn speedup_vs(&self, baseline: &LaunchStats) -> f64 {
        baseline.total_cycles() as f64 / self.total_cycles().max(1) as f64
    }

    /// Fold another launch's counters into this one — the single
    /// aggregation rule for multi-launch jobs (pipelines, fused batches,
    /// convergence loops): every simulated counter and every diagnostic
    /// counter sums, except `workers`, which takes the maximum seen (the
    /// launches shared one pool; summing would overcount it).
    pub fn accumulate(&mut self, rhs: &LaunchStats) {
        self.compute_cycles += rhs.compute_cycles;
        self.memory_cycles += rhs.memory_cycles;
        self.overhead_cycles += rhs.overhead_cycles;
        self.instructions += rhs.instructions;
        self.loads += rhs.loads;
        self.stores += rhs.stores;
        self.atomics += rhs.atomics;
        self.load_transactions += rhs.load_transactions;
        self.serialized_transactions += rhs.serialized_transactions;
        self.l1_hits += rhs.l1_hits;
        self.l1_misses += rhs.l1_misses;
        self.const_hits += rhs.const_hits;
        self.const_misses += rhs.const_misses;
        self.shared_accesses += rhs.shared_accesses;
        self.bank_conflict_extra += rhs.bank_conflict_extra;
        self.warps += rhs.warps;
        self.blocks += rhs.blocks;
        self.wall_nanos += rhs.wall_nanos;
        self.workers = self.workers.max(rhs.workers);
        self.ops_dispatched += rhs.ops_dispatched;
        self.fusions_hit += rhs.fusions_hit;
        self.approx_loads += rhs.approx_loads;
        self.bit_flips += rhs.bit_flips;
    }
}

impl AddAssign for LaunchStats {
    fn add_assign(&mut self, rhs: LaunchStats) {
        self.accumulate(&rhs);
    }
}

impl fmt::Display for LaunchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycles={} (compute={}, memory={}, overhead={}) instr={} loads={} l1={:.0}% ser={:.0}%",
            self.total_cycles(),
            self.compute_cycles,
            self.memory_cycles,
            self.overhead_cycles,
            self.instructions,
            self.loads,
            self.l1_hit_rate() * 100.0,
            self.serialization_overhead() * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_ratios() {
        let a = LaunchStats {
            compute_cycles: 600,
            memory_cycles: 300,
            overhead_cycles: 100,
            ..Default::default()
        };
        let b = LaunchStats {
            compute_cycles: 200,
            memory_cycles: 200,
            overhead_cycles: 100,
            ..Default::default()
        };
        assert_eq!(a.total_cycles(), 1000);
        assert!((b.speedup_vs(&a) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rates_handle_zero_denominators() {
        let s = LaunchStats::default();
        assert_eq!(s.serialization_overhead(), 0.0);
        assert_eq!(s.l1_hit_rate(), 1.0);
    }

    #[test]
    fn add_assign_accumulates_everything() {
        let mut a = LaunchStats {
            compute_cycles: 1,
            memory_cycles: 2,
            overhead_cycles: 3,
            instructions: 4,
            loads: 5,
            stores: 6,
            atomics: 7,
            load_transactions: 8,
            serialized_transactions: 9,
            l1_hits: 10,
            l1_misses: 11,
            const_hits: 12,
            const_misses: 13,
            shared_accesses: 14,
            bank_conflict_extra: 15,
            warps: 16,
            blocks: 17,
            wall_nanos: 18,
            workers: 19,
            ops_dispatched: 20,
            fusions_hit: 21,
            approx_loads: 22,
            bit_flips: 23,
        };
        a += a;
        assert_eq!(a.compute_cycles, 2);
        assert_eq!(a.blocks, 34);
        assert_eq!(a.bank_conflict_extra, 30);
        assert_eq!(a.wall_nanos, 36);
        assert_eq!(a.workers, 19); // max, not sum
        assert_eq!(a.ops_dispatched, 40);
        assert_eq!(a.fusions_hit, 42);
        assert_eq!(a.approx_loads, 44);
        assert_eq!(a.bit_flips, 46);
    }

    #[test]
    fn accumulate_sums_equality_excluded_diagnostics() {
        // The diagnostic fields that `PartialEq` deliberately ignores must
        // still aggregate across the launches of a multi-launch job:
        // everything sums except `workers` (max).
        let mut total = LaunchStats {
            wall_nanos: 10,
            workers: 4,
            ops_dispatched: 100,
            fusions_hit: 20,
            approx_loads: 7,
            bit_flips: 1,
            ..Default::default()
        };
        let step = LaunchStats {
            wall_nanos: 5,
            workers: 2,
            ops_dispatched: 50,
            fusions_hit: 3,
            approx_loads: 9,
            bit_flips: 4,
            ..Default::default()
        };
        total.accumulate(&step);
        total.accumulate(&step);
        assert_eq!(total.wall_nanos, 20);
        assert_eq!(total.workers, 4); // max, not 8
        assert_eq!(total.ops_dispatched, 200);
        assert_eq!(total.fusions_hit, 26);
        assert_eq!(total.approx_loads, 25);
        assert_eq!(total.bit_flips, 9);
        // The two accumulated stats compare equal to the original despite
        // the diagnostic drift: nothing simulated changed.
        assert_eq!(total, LaunchStats::default());
    }

    #[test]
    fn equality_ignores_host_measurements() {
        let a = LaunchStats {
            compute_cycles: 7,
            wall_nanos: 1,
            workers: 1,
            ..Default::default()
        };
        let b = LaunchStats {
            compute_cycles: 7,
            wall_nanos: 999,
            workers: 8,
            ops_dispatched: 123,
            fusions_hit: 45,
            approx_loads: 6,
            bit_flips: 2,
            ..Default::default()
        };
        assert_eq!(a, b);
        let c = LaunchStats {
            compute_cycles: 8,
            ..Default::default()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!LaunchStats::default().to_string().is_empty());
    }
}
