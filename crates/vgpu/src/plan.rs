//! Execution plans: multi-launch pipelines over a shared buffer table.
//!
//! Benchmarks are *pipelines* — one or more kernel launches over a set of
//! buffers (the three-phase scan is the extreme case). The approximation
//! rewriters in `paraprox-approx` transform pipelines (the scan optimization
//! changes grid sizes and swaps a kernel), and the runtime tuner executes
//! them; [`Pipeline`] is the common currency.

use paraprox_ir::{KernelId, MemSpace, Program, Scalar, Ty};

use crate::device::{ArgValue, Device, Dim2};
use crate::error::LaunchError;
use crate::stats::LaunchStats;

/// Initial contents of a pipeline buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum BufferInit {
    /// Zero-filled buffer of the given element count.
    Zeroed(usize),
    /// `f32` data.
    F32(Vec<f32>),
    /// `i32` data.
    I32(Vec<i32>),
    /// `u32` data.
    U32(Vec<u32>),
}

impl BufferInit {
    /// Element count.
    pub fn len(&self) -> usize {
        match self {
            BufferInit::Zeroed(n) => *n,
            BufferInit::F32(v) => v.len(),
            BufferInit::I32(v) => v.len(),
            BufferInit::U32(v) => v.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Declaration of one pipeline buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferSpec {
    /// Debug name.
    pub name: String,
    /// Element type. [`BufferInit::Zeroed`] uses this; data inits must
    /// match it.
    pub ty: Ty,
    /// Memory space to allocate in.
    pub space: MemSpace,
    /// Initial contents.
    pub init: BufferInit,
}

impl BufferSpec {
    /// Materialize the initial contents as scalars, enforcing that a data
    /// init's element type matches the declared buffer type — the same
    /// checks [`Pipeline::execute`] applies, shared with the fused batch
    /// executor.
    pub(crate) fn init_scalars(&self) -> Result<Vec<Scalar>, LaunchError> {
        match &self.init {
            BufferInit::Zeroed(n) => Ok(vec![Scalar::zero(self.ty); *n]),
            BufferInit::F32(data) => {
                if self.ty != Ty::F32 {
                    return Err(LaunchError::BufferTypeMismatch {
                        expected: self.ty,
                        found: Ty::F32,
                    });
                }
                Ok(data.iter().map(|&v| Scalar::F32(v)).collect())
            }
            BufferInit::I32(data) => {
                if self.ty != Ty::I32 {
                    return Err(LaunchError::BufferTypeMismatch {
                        expected: self.ty,
                        found: Ty::I32,
                    });
                }
                Ok(data.iter().map(|&v| Scalar::I32(v)).collect())
            }
            BufferInit::U32(data) => {
                if self.ty != Ty::U32 {
                    return Err(LaunchError::BufferTypeMismatch {
                        expected: self.ty,
                        found: Ty::U32,
                    });
                }
                Ok(data.iter().map(|&v| Scalar::U32(v)).collect())
            }
        }
    }

    /// A zeroed global `f32` buffer.
    pub fn zeroed_f32(name: &str, len: usize) -> BufferSpec {
        BufferSpec {
            name: name.to_string(),
            ty: Ty::F32,
            space: MemSpace::Global,
            init: BufferInit::Zeroed(len),
        }
    }

    /// A global `f32` buffer with data.
    pub fn f32(name: &str, data: Vec<f32>) -> BufferSpec {
        BufferSpec {
            name: name.to_string(),
            ty: Ty::F32,
            space: MemSpace::Global,
            init: BufferInit::F32(data),
        }
    }

    /// A global `i32` buffer with data.
    pub fn i32(name: &str, data: Vec<i32>) -> BufferSpec {
        BufferSpec {
            name: name.to_string(),
            ty: Ty::I32,
            space: MemSpace::Global,
            init: BufferInit::I32(data),
        }
    }

    /// The same spec placed in another memory space (used by the
    /// approximate-memory auto-placer to move Tolerant globals to
    /// [`MemSpace::Approx`]).
    pub fn with_space(mut self, space: MemSpace) -> BufferSpec {
        self.space = space;
        self
    }
}

/// An argument of a planned launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlanArg {
    /// Index into the pipeline's buffer table.
    Buffer(usize),
    /// A literal scalar.
    Scalar(Scalar),
}

impl From<Scalar> for PlanArg {
    fn from(s: Scalar) -> PlanArg {
        PlanArg::Scalar(s)
    }
}

/// One planned kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchPlan {
    /// Kernel to launch.
    pub kernel: KernelId,
    /// Grid shape (blocks).
    pub grid: Dim2,
    /// Block shape (threads).
    pub block: Dim2,
    /// Arguments, one per kernel parameter.
    pub args: Vec<PlanArg>,
}

/// A full execution plan: buffers, launches, and which buffers are the
/// observable outputs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Pipeline {
    /// Buffer table.
    pub buffers: Vec<BufferSpec>,
    /// Launches, executed in order.
    pub launches: Vec<LaunchPlan>,
    /// Buffer-table indices whose final contents constitute the output.
    pub outputs: Vec<usize>,
}

/// The result of executing a pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineRun {
    /// Summed launch statistics.
    pub stats: LaunchStats,
    /// Final contents of each output buffer (in [`Pipeline::outputs`]
    /// order), converted to `f64` for metric computation.
    pub outputs: Vec<Vec<f64>>,
}

impl PipelineRun {
    /// All output buffers flattened into one vector (the form the quality
    /// metrics consume).
    pub fn flat_output(&self) -> Vec<f64> {
        self.outputs.iter().flatten().copied().collect()
    }
}

impl Pipeline {
    /// Add a buffer; returns its table index.
    pub fn add_buffer(&mut self, spec: BufferSpec) -> usize {
        self.buffers.push(spec);
        self.buffers.len() - 1
    }

    /// Replace the initial contents of a buffer (used to re-run the same
    /// plan on fresh inputs).
    ///
    /// # Panics
    ///
    /// Panics when `slot` is out of range — callers control both sides.
    pub fn set_input(&mut self, slot: usize, init: BufferInit) {
        self.buffers[slot].init = init;
    }

    /// Execute the plan on a device: allocate buffers, run every launch,
    /// read back the outputs.
    ///
    /// Buffers are freshly allocated per execution, so repeated executions
    /// are independent (the device's caches stay warm unless flushed).
    ///
    /// # Errors
    ///
    /// Propagates launch-time errors; also fails when a data init's type
    /// contradicts the buffer's declared element type.
    pub fn execute(
        &self,
        device: &mut Device,
        program: &Program,
    ) -> Result<PipelineRun, LaunchError> {
        let mut ids = Vec::with_capacity(self.buffers.len());
        for spec in &self.buffers {
            let id = match &spec.init {
                BufferInit::Zeroed(n) => device.alloc_zeroed(spec.space, spec.ty, *n),
                BufferInit::F32(data) => {
                    if spec.ty != Ty::F32 {
                        return Err(LaunchError::BufferTypeMismatch {
                            expected: spec.ty,
                            found: Ty::F32,
                        });
                    }
                    device.alloc_f32(spec.space, data)
                }
                BufferInit::I32(data) => {
                    if spec.ty != Ty::I32 {
                        return Err(LaunchError::BufferTypeMismatch {
                            expected: spec.ty,
                            found: Ty::I32,
                        });
                    }
                    device.alloc_i32(spec.space, data)
                }
                BufferInit::U32(data) => {
                    if spec.ty != Ty::U32 {
                        return Err(LaunchError::BufferTypeMismatch {
                            expected: spec.ty,
                            found: Ty::U32,
                        });
                    }
                    device.alloc_u32(spec.space, data)
                }
            };
            ids.push(id);
        }
        let mut stats = LaunchStats::default();
        for launch in &self.launches {
            let args: Vec<ArgValue> = launch
                .args
                .iter()
                .map(|a| match a {
                    PlanArg::Buffer(slot) => ArgValue::Buffer(ids[*slot]),
                    PlanArg::Scalar(s) => ArgValue::Scalar(*s),
                })
                .collect();
            stats += device.launch(program, launch.kernel, launch.grid, launch.block, &args)?;
        }
        let mut outputs = Vec::with_capacity(self.outputs.len());
        for &slot in &self.outputs {
            let scalars = device.read_scalars(ids[slot])?;
            outputs.push(scalars.iter().map(|s| s.to_f64_lossy()).collect());
        }
        Ok(PipelineRun { stats, outputs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DeviceProfile;
    use paraprox_ir::KernelBuilder;

    fn scale_program() -> (Program, KernelId) {
        let mut program = Program::new();
        let mut kb = KernelBuilder::new("scale");
        let data = kb.buffer("data", Ty::F32, MemSpace::Global);
        let k = kb.scalar("k", Ty::F32);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let v = kb.let_("v", kb.load(data, gid.clone()));
        kb.store(data, gid, v * k);
        let kid = program.add_kernel(kb.finish());
        (program, kid)
    }

    #[test]
    fn pipeline_executes_launches_in_order() {
        let (program, kid) = scale_program();
        let mut p = Pipeline::default();
        let buf = p.add_buffer(BufferSpec::f32("data", vec![1.0; 32]));
        // Two launches: x2 then x3 => x6 total.
        for k in [2.0f32, 3.0] {
            p.launches.push(LaunchPlan {
                kernel: kid,
                grid: Dim2::linear(1),
                block: Dim2::linear(32),
                args: vec![PlanArg::Buffer(buf), Scalar::F32(k).into()],
            });
        }
        p.outputs.push(buf);
        let mut device = Device::new(DeviceProfile::gtx560());
        let run = p.execute(&mut device, &program).unwrap();
        assert_eq!(run.outputs[0], vec![6.0; 32]);
        assert_eq!(run.stats.blocks, 2);
        assert_eq!(run.flat_output().len(), 32);
    }

    #[test]
    fn set_input_changes_next_execution() {
        let (program, kid) = scale_program();
        let mut p = Pipeline::default();
        let buf = p.add_buffer(BufferSpec::f32("data", vec![1.0; 8]));
        p.launches.push(LaunchPlan {
            kernel: kid,
            grid: Dim2::linear(1),
            block: Dim2::linear(8),
            args: vec![PlanArg::Buffer(buf), Scalar::F32(2.0).into()],
        });
        p.outputs.push(buf);
        let mut device = Device::new(DeviceProfile::gtx560());
        assert_eq!(
            p.execute(&mut device, &program).unwrap().outputs[0],
            vec![2.0; 8]
        );
        p.set_input(buf, BufferInit::F32(vec![10.0; 8]));
        assert_eq!(
            p.execute(&mut device, &program).unwrap().outputs[0],
            vec![20.0; 8]
        );
    }

    #[test]
    fn init_type_mismatch_rejected() {
        let (program, kid) = scale_program();
        let mut p = Pipeline::default();
        let buf = p.add_buffer(BufferSpec {
            name: "data".into(),
            ty: Ty::I32,
            space: MemSpace::Global,
            init: BufferInit::F32(vec![0.0; 8]),
        });
        p.launches.push(LaunchPlan {
            kernel: kid,
            grid: Dim2::linear(1),
            block: Dim2::linear(8),
            args: vec![PlanArg::Buffer(buf), Scalar::F32(2.0).into()],
        });
        let mut device = Device::new(DeviceProfile::gtx560());
        assert!(p.execute(&mut device, &program).is_err());
    }

    #[test]
    fn buffer_init_lengths() {
        assert_eq!(BufferInit::Zeroed(4).len(), 4);
        assert_eq!(BufferInit::F32(vec![0.0; 3]).len(), 3);
        assert!(!BufferInit::I32(vec![1]).is_empty());
        assert!(BufferInit::U32(vec![]).is_empty());
    }
}
