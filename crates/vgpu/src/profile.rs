//! Device profiles: the latency tables and machine parameters that
//! differentiate the simulated GPU from the simulated CPU.

use paraprox_ir::{BinOp, UnOp};

use crate::cache::CacheConfig;

/// Broad class of device a profile models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// A discrete GPU: wide warps, special function unit, expensive
    /// divergence/atomics, high memory latency hidden by parallelism.
    Gpu,
    /// A multicore CPU with SIMD units: narrow "warps" (vector lanes),
    /// software transcendentals, cheap atomics, large caches.
    Cpu,
}

/// Which interpreter executes kernel launches.
///
/// Both engines are required to produce bit-identical buffers, simulated
/// cycles, and cache statistics; the choice only affects host wall-clock
/// time. The tree-walker is kept as the reference oracle for differential
/// testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecEngine {
    /// Compile each kernel once to register-machine bytecode and execute
    /// the flat instruction stream (the default, fastest engine).
    #[default]
    Bytecode,
    /// Walk the `Expr`/`Stmt` AST directly (the reference oracle).
    TreeWalk,
}

/// Resolve the engine for a launch: the `PARAPROX_ENGINE` environment
/// variable (`bytecode` or `tree`/`treewalk`/`tree-walk`, case-insensitive)
/// overrides the profile's [`DeviceProfile::engine`] knob; unrecognized
/// values are ignored.
pub(crate) fn resolve_engine(profile_engine: ExecEngine) -> ExecEngine {
    if let Ok(v) = std::env::var("PARAPROX_ENGINE") {
        match v.trim().to_ascii_lowercase().as_str() {
            "bytecode" => return ExecEngine::Bytecode,
            "tree" | "treewalk" | "tree-walk" => return ExecEngine::TreeWalk,
            _ => {}
        }
    }
    profile_engine
}

/// Machine parameters and per-instruction latencies for a simulated device.
///
/// The two stock profiles, [`DeviceProfile::gtx560`] and
/// [`DeviceProfile::core_i7_965`], encode the qualitative asymmetries the
/// paper's evaluation relies on:
///
/// * transcendental ops (`exp`, `log`, `sin`, `cos`, `rsqrt`) run on the
///   GPU's special function unit and are *cheap* there, but are software
///   subroutines on the CPU (hence Kernel Density Estimation approximates
///   better on the CPU — paper §4.3),
/// * float division/`pow` compile to high-latency subroutines on the GPU
///   (paper §4.4.2, citing Wong et al.),
/// * atomics serialize across a warp and are far more expensive on the GPU
///   (hence Naive Bayes speeds up >3.5x on GPU vs ~1.5x on CPU),
/// * cache misses hurt the GPU more than the CPU (paper §4.3's discussion of
///   lookup-table sizes).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable profile name.
    pub name: String,
    /// Device class.
    pub kind: DeviceKind,
    /// Threads per warp (SIMD width for CPUs).
    pub warp_width: usize,
    /// Number of streaming multiprocessors (cores). Only used to convert
    /// total warp-cycles into a wall-clock estimate; speedup ratios on the
    /// same profile are independent of it.
    pub sm_count: usize,
    /// Latency of a basic ALU op (add/sub/mul/compare/select/cast), cycles.
    pub alu_lat: u64,
    /// Latency of transcendental unary ops.
    pub transcendental_lat: u64,
    /// Latency of float division, remainder, and `pow`.
    pub div_lat: u64,
    /// Latency of `sqrt`.
    pub sqrt_lat: u64,
    /// Latency of integer division/remainder.
    pub int_div_lat: u64,
    /// Latency of a shared-memory access (per conflict-free transaction).
    pub shared_lat: u64,
    /// Latency of an L1 hit.
    pub l1_hit_lat: u64,
    /// Latency of a global-memory access that misses the L1.
    pub mem_lat: u64,
    /// Per-transaction issue cost for an L1-hit transaction beyond the
    /// first (uncoalesced accesses serialize at the cache port, but their
    /// latencies overlap).
    pub l1_issue: u64,
    /// Per-transaction issue cost for a missing transaction (DRAM accesses
    /// pipeline through the memory controller — MLP — so extra misses cost
    /// far less than a full `mem_lat` each).
    pub mem_issue: u64,
    /// Latency of a constant-cache hit (broadcast).
    pub const_hit_lat: u64,
    /// Latency of a store transaction (write-through, fire-and-forget).
    pub store_lat: u64,
    /// Miss latency of an access to the *approximate* memory region
    /// ([`paraprox_ir::MemSpace::Approx`]): a low-voltage, reduced-refresh
    /// DRAM class with relaxed timing margins, so a miss resolves in fewer
    /// cycles than `mem_lat` — the modeled payoff that makes tolerating
    /// bit errors worthwhile.
    pub approx_lat: u64,
    /// Per-transaction issue cost for an approximate-memory miss (cheaper
    /// controller path than `mem_issue`).
    pub approx_issue: u64,
    /// Latency of a store transaction into approximate memory.
    pub approx_store_lat: u64,
    /// Latency of one atomic operation (each active lane serializes).
    pub atomic_lat: u64,
    /// Fixed overhead charged per launched block (scheduling).
    pub block_overhead: u64,
    /// Latency-hiding factor: the exposed portion of a memory access's
    /// *base* latency is divided by this, modeling warp multiplexing (SMT
    /// on the CPU). Issue/serialization costs are throughput terms and are
    /// not hidden.
    pub latency_hiding: u64,
    /// Cache configuration (L1 + constant cache geometry).
    pub cache: CacheConfig,
    /// Bytes of shared memory available per block.
    pub shared_mem_bytes: usize,
    /// Host worker threads used to execute independent blocks concurrently.
    /// `0` means "all available cores"; `1` forces serial execution. The
    /// `PARAPROX_THREADS` environment variable overrides this knob. Results
    /// are bit-identical for every setting — this only affects wall-clock
    /// time, never simulated cycles.
    pub parallelism: usize,
    /// Which interpreter executes launches (bytecode by default; the
    /// tree-walking oracle for differential testing). The
    /// `PARAPROX_ENGINE` environment variable overrides this knob. Results
    /// are bit-identical for either engine.
    pub engine: ExecEngine,
}

impl DeviceProfile {
    /// Profile modeled after the paper's NVIDIA GTX 560 (Fermi GF114).
    pub fn gtx560() -> DeviceProfile {
        DeviceProfile {
            name: "NVIDIA GTX 560 (simulated)".to_string(),
            kind: DeviceKind::Gpu,
            warp_width: 32,
            sm_count: 7,
            alu_lat: 2,
            transcendental_lat: 20, // special function unit (precise sequences)
            div_lat: 180,           // software subroutine (Wong et al.)
            sqrt_lat: 22,
            int_div_lat: 70,
            shared_lat: 4,
            l1_hit_lat: 30,
            mem_lat: 440,
            l1_issue: 8,
            mem_issue: 48,
            const_hit_lat: 4,
            store_lat: 12,
            approx_lat: 180,
            approx_issue: 20,
            approx_store_lat: 6,
            atomic_lat: 120,
            block_overhead: 200,
            latency_hiding: 4, // dozens of resident warps per SM
            cache: CacheConfig::gpu_l1_16k(),
            shared_mem_bytes: 48 * 1024,
            parallelism: 0,
            engine: ExecEngine::default(),
        }
    }

    /// Profile modeled after the paper's Intel Core i7 965 (Nehalem).
    pub fn core_i7_965() -> DeviceProfile {
        DeviceProfile {
            name: "Intel Core i7 965 (simulated)".to_string(),
            kind: DeviceKind::Cpu,
            warp_width: 8, // 4 cores x modest SIMD, treated as an 8-wide vector unit
            sm_count: 4,
            alu_lat: 2,
            transcendental_lat: 60, // software libm
            div_lat: 24,
            sqrt_lat: 18,
            int_div_lat: 22,
            shared_lat: 5, // "shared" degenerates to L1-resident scratch
            l1_hit_lat: 5,
            mem_lat: 110,
            l1_issue: 3,
            mem_issue: 40, // fewer outstanding misses than a GPU
            const_hit_lat: 5,
            store_lat: 5,
            approx_lat: 55,
            approx_issue: 18,
            approx_store_lat: 3,
            atomic_lat: 24,
            block_overhead: 60,
            latency_hiding: 2, // two hardware threads per core
            cache: CacheConfig::cpu_l1_256k(),
            shared_mem_bytes: 256 * 1024,
            parallelism: 0,
            engine: ExecEngine::default(),
        }
    }

    /// Return the profile with its host-parallelism knob set (`0` = all
    /// available cores, `1` = serial).
    pub fn with_parallelism(mut self, workers: usize) -> DeviceProfile {
        self.parallelism = workers;
        self
    }

    /// Return the profile with its execution-engine knob set.
    pub fn with_engine(mut self, engine: ExecEngine) -> DeviceProfile {
        self.engine = engine;
        self
    }

    /// Latency of a unary operation.
    pub fn unop_lat(&self, op: UnOp) -> u64 {
        if op.is_transcendental() {
            self.transcendental_lat
        } else if op == UnOp::Sqrt {
            self.sqrt_lat
        } else {
            self.alu_lat
        }
    }

    /// Latency of a binary operation on operands of float/integer type.
    pub fn binop_lat(&self, op: BinOp, float: bool) -> u64 {
        match op {
            BinOp::Div | BinOp::Rem => {
                if float {
                    self.div_lat
                } else {
                    self.int_div_lat
                }
            }
            // powf compiles to a log/exp subroutine pair: two division-class
            // subroutines (Wong et al. measure powf among the slowest ops).
            BinOp::Pow => 2 * self.div_lat,
            _ => self.alu_lat,
        }
    }

    /// Convert total warp-cycles into an estimated wall-clock cycle count by
    /// spreading work across the device's cores.
    pub fn estimated_time_cycles(&self, total_warp_cycles: u64) -> u64 {
        total_warp_cycles / self.sm_count as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_profile_asymmetries() {
        let gpu = DeviceProfile::gtx560();
        let cpu = DeviceProfile::core_i7_965();
        // SFU: transcendental cheap on GPU, expensive on CPU.
        assert!(gpu.transcendental_lat < cpu.transcendental_lat);
        // Division: subroutine on GPU, pipelined on CPU.
        assert!(gpu.div_lat > cpu.div_lat);
        // Atomics: much worse on GPU.
        assert!(gpu.atomic_lat > cpu.atomic_lat);
        // Memory latency gap larger on GPU.
        assert!(gpu.mem_lat > cpu.mem_lat);
        // Approximate memory is cheaper than exact DRAM on both devices.
        assert!(gpu.approx_lat < gpu.mem_lat && gpu.approx_issue < gpu.mem_issue);
        assert!(cpu.approx_lat < cpu.mem_lat && cpu.approx_issue < cpu.mem_issue);
        assert!(gpu.approx_store_lat < gpu.store_lat);
        assert!(cpu.approx_store_lat < cpu.store_lat);
        assert_eq!(gpu.kind, DeviceKind::Gpu);
        assert_eq!(cpu.kind, DeviceKind::Cpu);
    }

    #[test]
    fn op_latency_dispatch() {
        let gpu = DeviceProfile::gtx560();
        assert_eq!(gpu.unop_lat(UnOp::Exp), gpu.transcendental_lat);
        assert_eq!(gpu.unop_lat(UnOp::Sqrt), gpu.sqrt_lat);
        assert_eq!(gpu.unop_lat(UnOp::Neg), gpu.alu_lat);
        assert_eq!(gpu.binop_lat(BinOp::Div, true), gpu.div_lat);
        assert_eq!(gpu.binop_lat(BinOp::Div, false), gpu.int_div_lat);
        assert_eq!(gpu.binop_lat(BinOp::Add, true), gpu.alu_lat);
        assert!(gpu.binop_lat(BinOp::Pow, true) > gpu.div_lat);
    }

    #[test]
    fn time_estimate_scales_with_sms() {
        let gpu = DeviceProfile::gtx560();
        assert_eq!(gpu.estimated_time_cycles(700), 700 / gpu.sm_count as u64);
    }
}
