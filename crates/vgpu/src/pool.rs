//! A dependency-free work-stealing scheduler for block-parallel execution.
//!
//! The interpreter executes independent thread blocks; this module hands
//! block indices to a fixed set of host workers. Each worker owns a
//! contiguous range of block ids packed into one `AtomicU64`
//! (`start` in the high half, `end` in the low half). A worker pops from
//! the *front* of its own range; when its range drains it steals the *back*
//! half of a victim's range and installs the loot as its new range. All
//! transfers are CAS transitions on the victim's slot, so every block id is
//! handed out exactly once without locks or `unsafe`.
//!
//! Which worker executes which block is schedule-dependent, but the
//! executor makes block results order-independent (see `exec.rs`), so the
//! scheduler needs no fairness or ordering guarantees — only the
//! exactly-once property.

use std::sync::atomic::{AtomicU64, Ordering};

/// Pack a `[start, end)` range of block ids into one atomic word.
fn pack(start: u32, end: u32) -> u64 {
    (u64::from(start) << 32) | u64::from(end)
}

fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

/// A fixed-worker work-stealing queue over the block ids `0..total`.
pub(crate) struct WorkQueue {
    slots: Vec<AtomicU64>,
}

impl WorkQueue {
    /// Partition `0..total` into `workers` contiguous ranges (the first
    /// `total % workers` ranges get one extra block).
    pub(crate) fn new(total: usize, workers: usize) -> WorkQueue {
        assert!(workers > 0, "need at least one worker");
        assert!(total <= u32::MAX as usize, "block count exceeds u32 range");
        let base = total / workers;
        let extra = total % workers;
        let mut start = 0u32;
        let slots = (0..workers)
            .map(|w| {
                let len = (base + usize::from(w < extra)) as u32;
                let slot = AtomicU64::new(pack(start, start + len));
                start += len;
                slot
            })
            .collect();
        WorkQueue { slots }
    }

    /// Take the next block id for `worker`: the front of its own range, or
    /// a stolen batch from another worker. Returns `None` when no work is
    /// visible anywhere. (Work held by a thief mid-transfer is invisible to
    /// this scan; the thief itself will execute it, so every block still
    /// runs exactly once.)
    pub(crate) fn pop(&self, worker: usize) -> Option<usize> {
        loop {
            let cur = self.slots[worker].load(Ordering::Acquire);
            let (start, end) = unpack(cur);
            if start < end {
                if self.slots[worker]
                    .compare_exchange_weak(
                        cur,
                        pack(start + 1, end),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok()
                {
                    return Some(start as usize);
                }
                continue; // lost a race on our own slot; retry
            }
            match self.steal(worker) {
                Some(id) => return Some(id),
                None => return None,
            }
        }
    }

    /// Steal the back half of some victim's range. The first stolen id is
    /// returned; the rest becomes the thief's own range.
    fn steal(&self, thief: usize) -> Option<usize> {
        let n = self.slots.len();
        for offset in 1..n {
            let victim = (thief + offset) % n;
            loop {
                let cur = self.slots[victim].load(Ordering::Acquire);
                let (start, end) = unpack(cur);
                if start >= end {
                    break; // victim empty; try the next one
                }
                // Victim keeps the front half, thief takes [mid, end).
                let mid = start + (end - start) / 2;
                if self.slots[victim]
                    .compare_exchange(cur, pack(start, mid), Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    // Our own slot is empty (pop checked it) and nobody
                    // steals from an empty slot, so a plain store is safe.
                    self.slots[thief].store(pack(mid + 1, end), Ordering::Release);
                    return Some(mid as usize);
                }
                // Lost the race for this victim; re-read its range.
            }
        }
        None
    }
}

/// Number of host threads to use when a profile requests "auto" (0).
pub(crate) fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolve the worker count for a launch: the `PARAPROX_THREADS`
/// environment variable (if set to a positive integer) overrides the
/// profile's `parallelism` knob; `0` in either place means "all available
/// cores".
pub(crate) fn resolve_workers(profile_parallelism: usize) -> usize {
    if let Ok(v) = std::env::var("PARAPROX_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    if profile_parallelism > 0 {
        profile_parallelism
    } else {
        default_parallelism()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn single_worker_drains_in_order() {
        let q = WorkQueue::new(7, 1);
        let got: Vec<usize> = std::iter::from_fn(|| q.pop(0)).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn empty_queue_yields_nothing() {
        let q = WorkQueue::new(0, 3);
        assert_eq!(q.pop(0), None);
        assert_eq!(q.pop(2), None);
    }

    #[test]
    fn partition_covers_everything_without_overlap() {
        for total in [1usize, 2, 5, 16, 33] {
            for workers in [1usize, 2, 3, 8] {
                let q = WorkQueue::new(total, workers);
                let mut seen = vec![false; total];
                // Interleave: one pop per worker first, then drain.
                for w in 0..workers {
                    if let Some(id) = q.pop(w) {
                        assert!(!seen[id], "block {id} handed out twice");
                        seen[id] = true;
                    }
                }
                // Drain the rest from worker 0 (stealing).
                while let Some(id) = q.pop(0) {
                    assert!(!seen[id], "block {id} handed out twice");
                    seen[id] = true;
                }
                assert!(seen.iter().all(|&s| s), "{total}/{workers}: blocks lost");
            }
        }
    }

    #[test]
    fn concurrent_workers_each_block_exactly_once() {
        let total = 1000usize;
        let workers = 4usize;
        let q = WorkQueue::new(total, workers);
        let claims: Vec<AtomicUsize> = (0..total).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|s| {
            for w in 0..workers {
                let q = &q;
                let claims = &claims;
                s.spawn(move || {
                    while let Some(id) = q.pop(w) {
                        claims[id].fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        for (id, c) in claims.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "block {id} claimed wrongly");
        }
    }

    #[test]
    fn resolver_prefers_env_then_profile_then_cores() {
        // The env var is global process state; tests elsewhere must not set
        // it, so only exercise the profile/default fallbacks here.
        if std::env::var("PARAPROX_THREADS").is_err() {
            assert_eq!(resolve_workers(3), 3);
            assert_eq!(resolve_workers(0), default_parallelism());
        }
        assert!(default_parallelism() >= 1);
    }
}
