//! Per-warp `u64` divergence bitsets shared by both execution engines.
//!
//! A [`LaneMask`] records which lanes of a thread block are active. It
//! replaces the historical `Vec<bool>` masks: one bit per lane, packed in
//! `u64` words, so `any`/`all`/warp-occupancy queries are word-wise
//! instead of lane-wise and mask clones are eight times smaller. Warp
//! widths used by the device profiles (32 and 8) divide the word size, so
//! a warp's bits never straddle a word boundary and the active-warp count
//! behind every cycle charge is a shift-and-mask per warp.
//!
//! The tail bits past `lanes` are kept zero at all times; `all` compares
//! whole words against the full pattern and the final partial word against
//! the tail pattern.

/// Bits per storage word.
const WORD: usize = 64;

/// A per-lane activity bitset for one thread block.
///
/// The `Default` mask is `empty(0)` — a zero-lane placeholder used by the
/// executors' growable mask arenas.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct LaneMask {
    lanes: usize,
    words: Vec<u64>,
}

/// Full-word pattern for the trailing partial word of an `lanes`-bit mask
/// (all ones when `lanes` is a multiple of 64).
#[inline]
fn tail_pattern(lanes: usize) -> u64 {
    let rem = lanes % WORD;
    if rem == 0 {
        u64::MAX
    } else {
        (1u64 << rem) - 1
    }
}

impl LaneMask {
    /// All `lanes` lanes active.
    pub fn full(lanes: usize) -> LaneMask {
        let n = lanes.div_ceil(WORD);
        let mut words = vec![u64::MAX; n];
        if let Some(last) = words.last_mut() {
            *last = tail_pattern(lanes);
        }
        LaneMask { lanes, words }
    }

    /// No lanes active.
    pub fn empty(lanes: usize) -> LaneMask {
        LaneMask {
            lanes,
            words: vec![0; lanes.div_ceil(WORD)],
        }
    }

    /// Number of lanes this mask covers (active or not).
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Is lane `lane` active?
    #[inline]
    pub fn get(&self, lane: usize) -> bool {
        debug_assert!(lane < self.lanes);
        self.words[lane / WORD] >> (lane % WORD) & 1 != 0
    }

    /// Set lane `lane` to `value`.
    #[inline]
    pub fn set(&mut self, lane: usize, value: bool) {
        debug_assert!(lane < self.lanes);
        let bit = 1u64 << (lane % WORD);
        if value {
            self.words[lane / WORD] |= bit;
        } else {
            self.words[lane / WORD] &= !bit;
        }
    }

    /// Is at least one lane active?
    #[inline]
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Are all lanes active?
    #[inline]
    pub fn all(&self) -> bool {
        if self.lanes == 0 {
            return true;
        }
        let (last, body) = self.words.split_last().expect("non-empty");
        body.iter().all(|&w| w == u64::MAX) && *last == tail_pattern(self.lanes)
    }

    /// Reset to an all-inactive mask over `lanes` lanes, reusing the
    /// allocation.
    pub fn reset_empty(&mut self, lanes: usize) {
        self.lanes = lanes;
        self.words.clear();
        self.words.resize(lanes.div_ceil(WORD), 0);
    }

    /// Reset to an all-active mask over `lanes` lanes, reusing the
    /// allocation.
    pub fn reset_full(&mut self, lanes: usize) {
        self.lanes = lanes;
        self.words.clear();
        self.words.resize(lanes.div_ceil(WORD), u64::MAX);
        if let Some(last) = self.words.last_mut() {
            *last = tail_pattern(lanes);
        }
    }

    /// Reuse this mask's allocation to copy `other`.
    pub fn copy_from(&mut self, other: &LaneMask) {
        self.lanes = other.lanes;
        self.words.clear();
        self.words.extend_from_slice(&other.words);
    }

    /// `self &= !other` — e.g. "live = mask minus returned lanes".
    pub fn and_not_assign(&mut self, other: &LaneMask) {
        debug_assert_eq!(self.lanes, other.lanes);
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= !o;
        }
    }

    /// The bits of the warp starting at lane `start`, `width` lanes wide
    /// (`width` ≤ 64 and warps never straddle a word because the profile
    /// warp widths divide 64). Bits past the block size read as zero.
    #[inline]
    pub fn warp_bits(&self, start: usize, width: usize) -> u64 {
        debug_assert!(width <= WORD && start.is_multiple_of(width));
        let w = self.words[start / WORD] >> (start % WORD);
        if width == WORD {
            w
        } else {
            w & ((1u64 << width) - 1)
        }
    }

    /// Number of warps (of `warp_width` lanes) with at least one active
    /// lane. This is the quantity behind every per-warp cycle charge.
    pub fn active_warps(&self, warp_width: usize) -> usize {
        let mut n = 0;
        let mut start = 0;
        while start < self.lanes {
            if self.warp_bits(start, warp_width) != 0 {
                n += 1;
            }
            start += warp_width;
        }
        n
    }

    /// Iterate the active lane indices in ascending order.
    #[inline]
    pub fn iter_set(&self) -> SetLanes<'_> {
        SetLanes {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Iterator over the set lane indices of a [`LaneMask`].
pub struct SetLanes<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for SetLanes<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * WORD + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_and_empty_masks() {
        for lanes in [0, 1, 31, 32, 63, 64, 65, 100, 128, 1024] {
            let f = LaneMask::full(lanes);
            let e = LaneMask::empty(lanes);
            assert!(f.all(), "full({lanes}) must be all");
            assert_eq!(f.any(), lanes > 0);
            assert_eq!(f.iter_set().count(), lanes);
            assert!(!e.any());
            assert_eq!(e.all(), lanes == 0);
            assert_eq!(e.iter_set().count(), 0);
            for lane in 0..lanes {
                assert!(f.get(lane));
                assert!(!e.get(lane));
            }
        }
    }

    #[test]
    fn set_get_roundtrip_and_tail_invariant() {
        let mut m = LaneMask::empty(70);
        m.set(0, true);
        m.set(63, true);
        m.set(64, true);
        m.set(69, true);
        assert_eq!(m.iter_set().collect::<Vec<_>>(), vec![0, 63, 64, 69]);
        assert_eq!(m.iter_set().count(), 4);
        m.set(63, false);
        assert_eq!(m.iter_set().collect::<Vec<_>>(), vec![0, 64, 69]);
        assert!(!m.all());
        for lane in [1, 2, 3, 63, 65, 66, 67, 68] {
            m.set(lane, true);
        }
        for lane in [0, 64, 69] {
            assert!(m.get(lane));
        }
        // Now only lanes 4..63 are missing.
        for lane in 4..63 {
            m.set(lane, true);
        }
        assert!(m.all());
    }

    #[test]
    fn warp_queries() {
        let mut m = LaneMask::empty(96);
        m.set(5, true); // warp 0 (width 32)
        m.set(70, true); // warp 2
        assert_eq!(m.active_warps(32), 2);
        assert_eq!(m.active_warps(8), 2);
        assert_eq!(m.warp_bits(0, 32), 1 << 5);
        assert_eq!(m.warp_bits(32, 32), 0);
        assert_eq!(m.warp_bits(64, 32), 1 << 6);
        assert_eq!(LaneMask::full(96).active_warps(32), 3);
        // Partial final warp still counts when any of its lanes is live.
        let mut p = LaneMask::empty(40);
        p.set(39, true);
        assert_eq!(p.active_warps(32), 1);
        assert_eq!(LaneMask::full(40).active_warps(32), 2);
    }

    #[test]
    fn boolean_mask_algebra() {
        let mut a = LaneMask::full(65);
        let mut b = LaneMask::empty(65);
        b.set(3, true);
        b.set(64, true);
        a.and_not_assign(&b);
        assert!(!a.get(3) && !a.get(64) && a.get(0) && a.get(63));
        assert_eq!(a.iter_set().count(), 63);
        a.and_not_assign(&LaneMask::full(65));
        assert!(!a.any());
        let mut c = LaneMask::empty(8);
        c.copy_from(&b);
        assert_eq!(c, b);
        c.reset_empty(65);
        assert!(!c.any());
        assert_eq!(c.lanes(), 65);
        c.reset_full(70);
        assert_eq!(c.lanes(), 70);
        assert!(c.all());
        c.reset_empty(3);
        assert_eq!(c.lanes(), 3);
        assert!(!c.any());
        assert_eq!(LaneMask::default(), LaneMask::empty(0));
    }
}
