//! Structure-of-arrays register rows for the bytecode engine.
//!
//! The tree-walking oracle evaluates `Vec<Scalar>` lane vectors: one enum
//! per lane, matched per lane per op. The bytecode engine instead keeps
//! each virtual register as a [`RegRow`] — a contiguous lane-major strip
//! of raw 32-bit patterns plus a type tag. Almost every row is *uniform*
//! (all lanes the same type), so the tag is one byte for the whole row and
//! an op over two uniform rows of equal tag runs as a tight slice loop
//! over `u32` bit patterns (`f32::from_bits`/`to_bits` are free bitcasts),
//! which LLVM autovectorizes. Per-lane tags are materialized only for the
//! rare *mixed* rows produced by divergent writes, and those fall back to
//! the exact per-lane `Scalar` path so error identity and position match
//! the oracle bit for bit.
//!
//! The typed loops below mirror `BinOp::apply`/`UnOp::apply`/
//! `CmpOp::apply`/`Scalar::cast` exactly; a property test cross-checks
//! every opcode against the scalar implementations over adversarial
//! values (NaN, -0.0, `i32::MIN`, shift overflow, ...).

use paraprox_ir::{BinOp, CmpOp, Scalar, Ty, UnOp};

use crate::mask::LaneMask;

/// Row tag: every lane is `f32`.
pub const TAG_F32: u8 = 0;
/// Row tag: every lane is `i32`.
pub const TAG_I32: u8 = 1;
/// Row tag: every lane is `u32`.
pub const TAG_U32: u8 = 2;
/// Row tag: every lane is `bool` (bit pattern 0 or 1).
pub const TAG_BOOL: u8 = 3;
/// Row tag: lanes disagree on type; per-lane tags are authoritative.
pub const TAG_MIXED: u8 = 0xFF;

/// Tag of a scalar value.
#[inline(always)]
pub fn tag_of(s: Scalar) -> u8 {
    match s {
        Scalar::F32(_) => TAG_F32,
        Scalar::I32(_) => TAG_I32,
        Scalar::U32(_) => TAG_U32,
        Scalar::Bool(_) => TAG_BOOL,
    }
}

/// Tag of an IR type.
#[inline(always)]
pub fn tag_of_ty(ty: Ty) -> u8 {
    match ty {
        Ty::F32 => TAG_F32,
        Ty::I32 => TAG_I32,
        Ty::U32 => TAG_U32,
        Ty::Bool => TAG_BOOL,
    }
}

/// IR type of a (non-mixed) tag.
#[inline(always)]
pub fn tag_ty(tag: u8) -> Ty {
    match tag {
        TAG_F32 => Ty::F32,
        TAG_I32 => Ty::I32,
        TAG_U32 => Ty::U32,
        _ => Ty::Bool,
    }
}

/// Bit pattern of a scalar (bool encodes as 0/1).
#[inline(always)]
pub fn encode_bits(s: Scalar) -> u32 {
    match s {
        Scalar::F32(v) => v.to_bits(),
        Scalar::I32(v) => v as u32,
        Scalar::U32(v) => v,
        Scalar::Bool(v) => u32::from(v),
    }
}

/// Reconstruct a scalar from a tag and bit pattern.
#[inline(always)]
pub fn decode(tag: u8, bits: u32) -> Scalar {
    match tag {
        TAG_F32 => Scalar::F32(f32::from_bits(bits)),
        TAG_I32 => Scalar::I32(bits as i32),
        TAG_U32 => Scalar::U32(bits),
        _ => Scalar::Bool(bits != 0),
    }
}

/// The bytecode engine's lane-filler value for untouched lanes
/// (type-tagged `i32` zero, like the tree-walker's `FILLER`).
const FILLER_TAG: u8 = TAG_I32;

/// One virtual register across all lanes of a block, stored lane-major.
/// `Default` is the zero-lane row (used as a [`std::mem::take`] placeholder).
#[derive(Clone, Debug, Default)]
pub struct RegRow {
    bits: Vec<u32>,
    /// Authoritative only when `uniform == TAG_MIXED`.
    tags: Vec<u8>,
    uniform: u8,
}

impl RegRow {
    /// A fresh filler row (`i32` zero in every lane).
    pub fn new(lanes: usize) -> RegRow {
        RegRow {
            bits: vec![0; lanes],
            tags: vec![FILLER_TAG; lanes],
            uniform: FILLER_TAG,
        }
    }

    /// Reset to the filler value, reusing the allocations.
    pub fn reset_filler(&mut self, lanes: usize) {
        self.bits.clear();
        self.bits.resize(lanes, 0);
        self.tags.clear();
        self.tags.resize(lanes, FILLER_TAG);
        self.uniform = FILLER_TAG;
    }

    /// The row-wide tag, or [`TAG_MIXED`] when lanes disagree.
    #[inline]
    pub fn uniform_tag(&self) -> u8 {
        self.uniform
    }

    /// Tag of one lane.
    #[inline]
    pub fn tag_at(&self, lane: usize) -> u8 {
        if self.uniform != TAG_MIXED {
            self.uniform
        } else {
            self.tags[lane]
        }
    }

    /// IR type of one lane.
    #[inline]
    pub fn ty_at(&self, lane: usize) -> Ty {
        tag_ty(self.tag_at(lane))
    }

    /// Scalar value of one lane.
    #[inline]
    pub fn get(&self, lane: usize) -> Scalar {
        decode(self.tag_at(lane), self.bits[lane])
    }

    /// Raw bit patterns, lane-major.
    #[inline]
    pub fn bits(&self) -> &[u32] {
        &self.bits
    }

    /// Store a scalar into one lane, demoting to mixed tags if its type
    /// differs from the row's uniform tag.
    #[inline]
    pub fn set(&mut self, lane: usize, v: Scalar) {
        let tag = tag_of(v);
        if self.uniform != TAG_MIXED && tag != self.uniform {
            self.tags.fill(self.uniform);
            self.uniform = TAG_MIXED;
        }
        if self.uniform == TAG_MIXED {
            self.tags[lane] = tag;
        }
        self.bits[lane] = encode_bits(v);
    }

    /// Overwrite every lane with the same scalar.
    pub fn fill(&mut self, lanes: usize, v: Scalar) {
        self.bits.clear();
        self.bits.resize(lanes, encode_bits(v));
        self.tags.resize(lanes, 0);
        self.uniform = tag_of(v);
    }

    /// Adopt a fully-written bit strip with a uniform tag, recycling the
    /// swapped-out allocation into `scratch`.
    pub fn adopt_uniform(&mut self, scratch: &mut Vec<u32>, tag: u8) {
        std::mem::swap(&mut self.bits, scratch);
        self.tags.resize(self.bits.len(), 0);
        self.uniform = tag;
    }

    /// Become a copy of `other`, reusing allocations.
    pub fn copy_from(&mut self, other: &RegRow) {
        self.bits.clear();
        self.bits.extend_from_slice(&other.bits);
        self.tags.clear();
        self.tags.extend_from_slice(&other.tags);
        self.uniform = other.uniform;
    }

    /// Copy the active lanes of `other` into `self` (inactive lanes keep
    /// their current value).
    pub fn copy_masked_from(&mut self, other: &RegRow, mask: &LaneMask) {
        if self.uniform != TAG_MIXED && self.uniform == other.uniform {
            for lane in mask.iter_set() {
                self.bits[lane] = other.bits[lane];
            }
        } else {
            for lane in mask.iter_set() {
                self.set(lane, other.get(lane));
            }
            self.normalize();
        }
    }

    /// Re-establish the uniform tag after per-lane writes if every lane
    /// agrees again.
    pub fn normalize(&mut self) {
        if self.uniform != TAG_MIXED || self.tags.is_empty() {
            return;
        }
        let first = self.tags[0];
        if self.tags.iter().all(|&t| t == first) {
            self.uniform = first;
        }
    }

    /// Type of the first active lane, if any.
    #[inline]
    pub fn first_ty(&self, mask: &LaneMask) -> Option<Ty> {
        if self.uniform != TAG_MIXED {
            if mask.any() {
                Some(tag_ty(self.uniform))
            } else {
                None
            }
        } else {
            mask.iter_set().next().map(|lane| self.ty_at(lane))
        }
    }
}

/// Can `op` over two equal-typed operands of `tag` take the typed loop?
/// Integer `Div`/`Rem` additionally require a zero-divisor pre-scan
/// ([`has_zero`]); everything not listed is unsupported for the type and
/// must take the scalar path (which raises the oracle's error).
pub fn bin_fast_eligible(op: BinOp, tag: u8) -> bool {
    match tag {
        TAG_F32 => !matches!(
            op,
            BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr
        ),
        TAG_I32 | TAG_U32 => !matches!(op, BinOp::Pow),
        TAG_BOOL => matches!(op, BinOp::And | BinOp::Or | BinOp::Xor),
        _ => false,
    }
}

/// Does the typed loop for `op`/`tag` require a zero-divisor pre-scan?
pub fn bin_needs_divisor_scan(op: BinOp, tag: u8) -> bool {
    matches!(tag, TAG_I32 | TAG_U32) && matches!(op, BinOp::Div | BinOp::Rem)
}

/// Any zero bit-pattern in the strip (used as the divisor pre-scan)?
pub fn has_zero(bits: &[u32]) -> bool {
    bits.contains(&0)
}

macro_rules! lanes2 {
    ($out:ident, $a:ident, $b:ident, |$x:ident, $y:ident| $body:expr) => {{
        $out.clear();
        $out.extend($a.iter().zip($b.iter()).map(|(&$x, &$y)| $body));
    }};
}

/// Typed full-width binary loop. Caller must have checked
/// [`bin_fast_eligible`] (and [`has_zero`] when
/// [`bin_needs_divisor_scan`]); semantics match `BinOp::apply` bit for
/// bit.
pub fn bin_fast(op: BinOp, tag: u8, out: &mut Vec<u32>, a: &[u32], b: &[u32]) {
    use BinOp::*;
    macro_rules! f32_op {
        (|$x:ident, $y:ident| $body:expr) => {
            lanes2!(out, a, b, |xb, yb| {
                let $x = f32::from_bits(xb);
                let $y = f32::from_bits(yb);
                ($body).to_bits()
            })
        };
    }
    macro_rules! i32_op {
        (|$x:ident, $y:ident| $body:expr) => {
            lanes2!(out, a, b, |xb, yb| {
                let $x = xb as i32;
                let $y = yb as i32;
                ($body) as u32
            })
        };
    }
    macro_rules! u32_op {
        (|$x:ident, $y:ident| $body:expr) => {
            lanes2!(out, a, b, |$x, $y| $body)
        };
    }
    match tag {
        TAG_F32 => match op {
            Add => f32_op!(|x, y| x + y),
            Sub => f32_op!(|x, y| x - y),
            Mul => f32_op!(|x, y| x * y),
            Div => f32_op!(|x, y| x / y),
            Min => f32_op!(|x, y| x.min(y)),
            Max => f32_op!(|x, y| x.max(y)),
            Pow => f32_op!(|x, y| x.powf(y)),
            Rem => f32_op!(|x, y| x % y),
            And | Or | Xor | Shl | Shr => unreachable!("ineligible f32 op"),
        },
        TAG_I32 => match op {
            Add => i32_op!(|x, y| x.wrapping_add(y)),
            Sub => i32_op!(|x, y| x.wrapping_sub(y)),
            Mul => i32_op!(|x, y| x.wrapping_mul(y)),
            Div => i32_op!(|x, y| x.wrapping_div(y)),
            Rem => i32_op!(|x, y| x.wrapping_rem(y)),
            Min => i32_op!(|x, y| x.min(y)),
            Max => i32_op!(|x, y| x.max(y)),
            And => i32_op!(|x, y| x & y),
            Or => i32_op!(|x, y| x | y),
            Xor => i32_op!(|x, y| x ^ y),
            Shl => i32_op!(|x, y| x.wrapping_shl(y as u32)),
            Shr => i32_op!(|x, y| x.wrapping_shr(y as u32)),
            Pow => unreachable!("ineligible i32 op"),
        },
        TAG_U32 => match op {
            Add => u32_op!(|x, y| x.wrapping_add(y)),
            Sub => u32_op!(|x, y| x.wrapping_sub(y)),
            Mul => u32_op!(|x, y| x.wrapping_mul(y)),
            Div => u32_op!(|x, y| x / y),
            Rem => u32_op!(|x, y| x % y),
            Min => u32_op!(|x, y| x.min(y)),
            Max => u32_op!(|x, y| x.max(y)),
            And => u32_op!(|x, y| x & y),
            Or => u32_op!(|x, y| x | y),
            Xor => u32_op!(|x, y| x ^ y),
            Shl => u32_op!(|x, y| x.wrapping_shl(y)),
            Shr => u32_op!(|x, y| x.wrapping_shr(y)),
            Pow => unreachable!("ineligible u32 op"),
        },
        _ => match op {
            // Bool values are stored as 0/1, so logical ops are bitwise.
            And => u32_op!(|x, y| x & y),
            Or => u32_op!(|x, y| x | y),
            Xor => u32_op!(|x, y| x ^ y),
            _ => unreachable!("ineligible bool op"),
        },
    }
}

/// Can `op` on a `tag`-typed operand take the typed unary loop? (All the
/// listed combinations are infallible; the rest raise `UnsupportedOp` on
/// the scalar path.)
pub fn un_fast_eligible(op: UnOp, tag: u8) -> bool {
    match tag {
        TAG_F32 => !matches!(op, UnOp::Not),
        TAG_I32 => matches!(op, UnOp::Neg | UnOp::Not | UnOp::Abs),
        TAG_U32 | TAG_BOOL => matches!(op, UnOp::Not),
        _ => false,
    }
}

/// Typed full-width unary loop; semantics match `UnOp::apply`.
pub fn un_fast(op: UnOp, tag: u8, out: &mut Vec<u32>, a: &[u32]) {
    use UnOp::*;
    macro_rules! map1 {
        (|$x:ident| $body:expr) => {{
            out.clear();
            out.extend(a.iter().map(|&$x| $body));
        }};
    }
    macro_rules! f32_un {
        (|$x:ident| $body:expr) => {
            map1!(|xb| {
                let $x = f32::from_bits(xb);
                ($body).to_bits()
            })
        };
    }
    match tag {
        TAG_F32 => match op {
            Neg => f32_un!(|x| -x),
            Exp => f32_un!(|x| x.exp()),
            Log => f32_un!(|x| x.ln()),
            Sqrt => f32_un!(|x| x.sqrt()),
            Rsqrt => f32_un!(|x| 1.0 / x.sqrt()),
            Sin => f32_un!(|x| x.sin()),
            Cos => f32_un!(|x| x.cos()),
            Abs => f32_un!(|x| x.abs()),
            Floor => f32_un!(|x| x.floor()),
            Not => unreachable!("ineligible f32 op"),
        },
        TAG_I32 => match op {
            Neg => map1!(|x| (x as i32).wrapping_neg() as u32),
            Not => map1!(|x| !(x as i32) as u32),
            Abs => map1!(|x| (x as i32).wrapping_abs() as u32),
            _ => unreachable!("ineligible i32 op"),
        },
        TAG_U32 => match op {
            Not => map1!(|x| !x),
            _ => unreachable!("ineligible u32 op"),
        },
        _ => match op {
            Not => map1!(|x| x ^ 1),
            _ => unreachable!("ineligible bool op"),
        },
    }
}

/// Typed full-width comparison loop (always infallible on equal tags);
/// output tag is always bool. Semantics match `CmpOp::apply`.
pub fn cmp_fast(op: CmpOp, tag: u8, out: &mut Vec<u32>, a: &[u32], b: &[u32]) {
    use CmpOp::*;
    macro_rules! cmp_as {
        ($dec:expr) => {{
            let dec = $dec;
            match op {
                Lt => lanes2!(out, a, b, |x, y| u32::from(dec(x) < dec(y))),
                Le => lanes2!(out, a, b, |x, y| u32::from(dec(x) <= dec(y))),
                Gt => lanes2!(out, a, b, |x, y| u32::from(dec(x) > dec(y))),
                Ge => lanes2!(out, a, b, |x, y| u32::from(dec(x) >= dec(y))),
                Eq => lanes2!(out, a, b, |x, y| u32::from(dec(x) == dec(y))),
                Ne => lanes2!(out, a, b, |x, y| u32::from(dec(x) != dec(y))),
            }
        }};
    }
    match tag {
        TAG_F32 => cmp_as!(f32::from_bits),
        TAG_I32 => cmp_as!(|v: u32| v as i32),
        TAG_U32 => cmp_as!(|v: u32| v),
        _ => cmp_as!(|v: u32| v != 0),
    }
}

/// One typed comparison (infallible on equal tags); semantics match
/// `CmpOp::apply(..).as_bool()`. Used by the loop-test refinement, where
/// the result feeds a mask bit instead of a row.
#[inline(always)]
pub fn cmp_one(op: CmpOp, tag: u8, x: u32, y: u32) -> bool {
    use CmpOp::*;
    macro_rules! cmp_with {
        ($dec:expr) => {{
            let dec = $dec;
            match op {
                Lt => dec(x) < dec(y),
                Le => dec(x) <= dec(y),
                Gt => dec(x) > dec(y),
                Ge => dec(x) >= dec(y),
                Eq => dec(x) == dec(y),
                Ne => dec(x) != dec(y),
            }
        }};
    }
    match tag {
        TAG_F32 => cmp_with!(f32::from_bits),
        TAG_I32 => cmp_with!(|v: u32| v as i32),
        TAG_U32 => cmp_with!(|v: u32| v),
        _ => cmp_with!(|v: u32| v != 0),
    }
}

/// Typed full-width cast loop (casts are always infallible); semantics
/// match `Scalar::cast`. `tag` is the (uniform) source tag.
pub fn cast_fast(ty: Ty, tag: u8, out: &mut Vec<u32>, a: &[u32]) {
    out.clear();
    out.extend(a.iter().map(|&x| encode_bits(decode(tag, x).cast(ty))));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge_bits(tag: u8) -> Vec<u32> {
        match tag {
            TAG_F32 => [
                0.0f32,
                -0.0,
                1.5,
                -3.25,
                f32::NAN,
                f32::INFINITY,
                f32::NEG_INFINITY,
                f32::MIN_POSITIVE,
                1e30,
                -7.0,
            ]
            .iter()
            .map(|v| v.to_bits())
            .collect(),
            TAG_I32 => [0i32, 1, -1, 7, -7, i32::MIN, i32::MAX, 31, 32, 100]
                .iter()
                .map(|&v| v as u32)
                .collect(),
            TAG_U32 => vec![0, 1, 2, 7, 31, 32, 33, u32::MAX, u32::MAX - 1, 1000],
            _ => vec![0, 1, 0, 1, 1, 0, 1, 1, 0, 0],
        }
    }

    fn pairs(tag: u8) -> Vec<(u32, u32)> {
        let vals = edge_bits(tag);
        let mut out = Vec::new();
        for &x in &vals {
            for &y in &vals {
                out.push((x, y));
            }
        }
        out
    }

    const ALL_TAGS: [u8; 4] = [TAG_F32, TAG_I32, TAG_U32, TAG_BOOL];

    const ALL_BIN: [BinOp; 13] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Rem,
        BinOp::Min,
        BinOp::Max,
        BinOp::Pow,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
    ];

    #[test]
    fn bin_fast_matches_scalar_apply() {
        for tag in ALL_TAGS {
            for op in ALL_BIN {
                if !bin_fast_eligible(op, tag) {
                    // Ineligible combinations must be exactly the fallible
                    // or unsupported ones.
                    let (x, y) = pairs(tag)[3];
                    let r = op.apply(decode(tag, x), decode(tag, y));
                    assert!(
                        r.is_err() || matches!(op, BinOp::Div | BinOp::Rem),
                        "{op:?}/{tag} marked ineligible but apply succeeded"
                    );
                    continue;
                }
                let cases = pairs(tag);
                let (a, b): (Vec<u32>, Vec<u32>) = cases.iter().copied().unzip();
                let skip_zero_div = bin_needs_divisor_scan(op, tag);
                let (a, b): (Vec<u32>, Vec<u32>) = a
                    .iter()
                    .zip(&b)
                    .filter(|&(_, &y)| !(skip_zero_div && y == 0))
                    .map(|(&x, &y)| (x, y))
                    .unzip();
                let mut out = Vec::new();
                bin_fast(op, tag, &mut out, &a, &b);
                for ((&x, &y), &got) in a.iter().zip(&b).zip(&out) {
                    let want = op
                        .apply(decode(tag, x), decode(tag, y))
                        .unwrap_or_else(|e| panic!("{op:?}/{tag} failed on eligible input: {e}"));
                    assert_eq!(
                        got,
                        encode_bits(want),
                        "{op:?}/{tag} lane mismatch on ({x:#x}, {y:#x})"
                    );
                }
            }
        }
    }

    #[test]
    fn un_fast_matches_scalar_apply() {
        const ALL_UN: [UnOp; 10] = [
            UnOp::Neg,
            UnOp::Not,
            UnOp::Exp,
            UnOp::Log,
            UnOp::Sqrt,
            UnOp::Rsqrt,
            UnOp::Sin,
            UnOp::Cos,
            UnOp::Abs,
            UnOp::Floor,
        ];
        for tag in ALL_TAGS {
            for op in ALL_UN {
                let a = edge_bits(tag);
                if !un_fast_eligible(op, tag) {
                    assert!(
                        op.apply(decode(tag, a[0])).is_err(),
                        "{op:?}/{tag} marked ineligible but apply succeeded"
                    );
                    continue;
                }
                let mut out = Vec::new();
                un_fast(op, tag, &mut out, &a);
                for (&x, &got) in a.iter().zip(&out) {
                    let want = op.apply(decode(tag, x)).unwrap();
                    assert_eq!(got, encode_bits(want), "{op:?}/{tag} on {x:#x}");
                }
            }
        }
    }

    #[test]
    fn cmp_fast_matches_scalar_apply() {
        const ALL_CMP: [CmpOp; 6] = [
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
            CmpOp::Eq,
            CmpOp::Ne,
        ];
        for tag in ALL_TAGS {
            for op in ALL_CMP {
                let (a, b): (Vec<u32>, Vec<u32>) = pairs(tag).into_iter().unzip();
                let mut out = Vec::new();
                cmp_fast(op, tag, &mut out, &a, &b);
                for ((&x, &y), &got) in a.iter().zip(&b).zip(&out) {
                    let want = op.apply(decode(tag, x), decode(tag, y)).unwrap();
                    assert_eq!(got, encode_bits(want), "{op:?}/{tag} on ({x:#x}, {y:#x})");
                    assert_eq!(
                        cmp_one(op, tag, x, y),
                        want == Scalar::Bool(true),
                        "cmp_one {op:?}/{tag} on ({x:#x}, {y:#x})"
                    );
                }
            }
        }
    }

    #[test]
    fn cast_fast_matches_scalar_cast() {
        for tag in ALL_TAGS {
            for ty in [Ty::F32, Ty::I32, Ty::U32, Ty::Bool] {
                let a = edge_bits(tag);
                let mut out = Vec::new();
                cast_fast(ty, tag, &mut out, &a);
                for (&x, &got) in a.iter().zip(&out) {
                    let want = decode(tag, x).cast(ty);
                    assert_eq!(got, encode_bits(want), "cast {tag}->{ty:?} on {x:#x}");
                }
            }
        }
    }

    #[test]
    fn regrow_set_demotes_and_normalize_recovers() {
        let mut r = RegRow::new(4);
        assert_eq!(r.uniform_tag(), TAG_I32);
        r.set(0, Scalar::F32(1.5));
        assert_eq!(r.uniform_tag(), TAG_MIXED);
        assert_eq!(r.get(0), Scalar::F32(1.5));
        assert_eq!(r.get(1), Scalar::I32(0));
        for lane in 1..4 {
            r.set(lane, Scalar::F32(lane as f32));
        }
        r.normalize();
        assert_eq!(r.uniform_tag(), TAG_F32);
        assert_eq!(r.ty_at(3), Ty::F32);
        let mut m = LaneMask::empty(4);
        m.set(2, true);
        assert_eq!(r.first_ty(&m), Some(Ty::F32));
        let mut dst = RegRow::new(4);
        dst.copy_masked_from(&r, &m);
        assert_eq!(dst.get(2), Scalar::F32(2.0));
        assert_eq!(dst.get(1), Scalar::I32(0));
    }
}
