//! The lockstep SIMT interpreter, executed block-parallel on the host.
//!
//! A block's threads execute each statement together under an active-lane
//! mask. `if` and `for` refine the mask (divergence); `Sync` validates that
//! the block has reconverged. Costs are charged per *warp*: every warp with
//! at least one active lane pays the instruction's latency, exactly like
//! SIMT issue on real hardware — so a divergent branch pays for both arms
//! and a warp looping for its slowest lane pays every iteration.
//!
//! # Host parallelism and determinism
//!
//! Thread blocks are independent in the CUDA execution model, so the
//! interpreter executes them concurrently on host workers (a work-stealing
//! scheduler, [`crate::pool`]). Determinism — bit-identical buffer
//! contents, cycle counts, and cache statistics for *any* worker count,
//! including 1 — is achieved by making every block's execution a pure
//! function of the launch-entry state:
//!
//! * **Caches**: each block simulates against a private clone of the
//!   launch-entry L1/constant cache (counters reset, so per-block hit/miss
//!   deltas fold without double counting). After the launch the device
//!   cache becomes the *last* block's final state — a deterministic choice
//!   that keeps caches warm across launches — with counters advanced by
//!   the summed per-block deltas.
//! * **Global memory**: each worker interprets against its own buffer
//!   image. Global writes are logged per block (stores record the value,
//!   atomics record the operation) and the worker's image is reverted
//!   after every block, so each block observes exactly the launch-entry
//!   buffer contents plus its own writes. When all blocks finish, the logs
//!   are replayed into the device's buffers in ascending block order:
//!   plain stores land last-block-wins (what serial execution produced)
//!   and atomic operations are re-applied, so cross-block accumulations
//!   (histograms, reductions) total correctly. A block reading another
//!   block's non-atomic global writes is a data race in CUDA and is
//!   outside this determinism contract.
//! * **Stats**: per-block [`LaunchStats`] are folded in ascending block
//!   order with the same `+=` the serial path uses.
//! * **Iteration budget**: a single shared atomic counter spans all
//!   workers, so the per-launch [`ITERATION_BUDGET`] bounds the whole
//!   launch, not each block.
//!
//! With those rules the schedule is unobservable, so `parallelism = 1`
//! (exactly the serial loop, no threads spawned) and `parallelism = N`
//! produce identical results.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use paraprox_ir::{
    BinOp, CmpOp, EvalError, Expr, Func, Kernel, LoopCond, LoopStep, MemRef, MemSpace, Program,
    Scalar, Special, Stmt, Ty,
};

use crate::cache::Cache;
use crate::device::{ArgValue, BufferStorage, Dim2};
use crate::error::LaunchError;
use crate::mask::LaneMask;
use crate::pool::{self, WorkQueue};
use crate::profile::DeviceProfile;
use crate::stats::LaunchStats;

/// Maximum total loop iterations (summed over all warps of all blocks,
/// across every worker) per launch; guards against non-terminating loops
/// in malformed IR.
pub(crate) const ITERATION_BUDGET: u64 = 1 << 33;

/// Divergence masks are per-warp `u64` bitsets, shared by both engines.
pub(crate) type Mask = LaneMask;

/// Iterate warp lane-ranges that contain at least one active lane, without
/// allocating. One shift-and-mask per warp (see [`LaneMask::warp_bits`]).
pub(crate) fn active_warp_ranges(
    warp_width: usize,
    lanes: usize,
    mask: &Mask,
) -> impl Iterator<Item = (usize, usize)> + '_ {
    let w = warp_width.max(1);
    (0..lanes)
        .step_by(w)
        .filter(move |&start| mask.warp_bits(start, w) != 0)
        .map(move |start| (start, (start + w).min(lanes)))
}

/// Lane-indexed values; entries for inactive lanes hold an arbitrary filler.
pub(crate) type Lanes = Vec<Scalar>;

pub(crate) const FILLER: Scalar = Scalar::I32(0);

/// Read access to one lane of a lane-indexed value container. Implemented
/// by the tree-walker's `Vec<Scalar>` and the bytecode engine's
/// [`crate::soa::RegRow`], so the memory pipeline (loads, stores, atomics,
/// coalescing/bank-conflict charging) is single-sourced across engines.
pub(crate) trait LaneGet {
    /// Scalar value of lane `i`.
    fn lane(&self, i: usize) -> Scalar;
}

impl LaneGet for Vec<Scalar> {
    #[inline(always)]
    fn lane(&self, i: usize) -> Scalar {
        self[i]
    }
}

impl LaneGet for crate::soa::RegRow {
    #[inline(always)]
    fn lane(&self, i: usize) -> Scalar {
        self.get(i)
    }
}

/// Write access to one lane of a lane-indexed value container.
pub(crate) trait LaneSet {
    /// Store `v` into lane `i`.
    fn set_lane(&mut self, i: usize, v: Scalar);
}

impl LaneSet for Vec<Scalar> {
    #[inline(always)]
    fn set_lane(&mut self, i: usize, v: Scalar) {
        self[i] = v;
    }
}

impl LaneSet for crate::soa::RegRow {
    #[inline(always)]
    fn set_lane(&mut self, i: usize, v: Scalar) {
        self.set(i, v);
    }
}

/// Reusable lane vectors: the interpreter churns through short-lived
/// per-statement vectors, so each worker keeps a small free list instead
/// of hitting the allocator per expression. (Masks are packed bitsets now
/// — one or two words for typical block sizes — and no longer pooled.)
#[derive(Default)]
pub(crate) struct ScratchPool {
    lanes: Vec<Lanes>,
}

/// Cap on pooled vectors; beyond this they are simply dropped.
const SCRATCH_POOL_CAP: usize = 64;

impl ScratchPool {
    fn take_lanes(&mut self, n: usize, fill: Scalar) -> Lanes {
        match self.lanes.pop() {
            Some(mut v) => {
                v.clear();
                v.resize(n, fill);
                v
            }
            None => vec![fill; n],
        }
    }

    /// Take a recycled vector initialized as a copy of `src` — one
    /// recycle-plus-memcpy, instead of filling with a placeholder and
    /// overwriting every slot.
    fn take_lanes_from(&mut self, src: &[Scalar]) -> Lanes {
        match self.lanes.pop() {
            Some(mut v) => {
                v.clear();
                v.extend_from_slice(src);
                v
            }
            None => src.to_vec(),
        }
    }

    fn put_lanes(&mut self, v: Lanes) {
        if self.lanes.len() < SCRATCH_POOL_CAP {
            self.lanes.push(v);
        }
    }
}

/// One global-memory write performed by a block, recorded so the write can
/// be (a) reverted from the worker's buffer image and (b) replayed onto the
/// device's buffers in block order.
#[derive(Debug, Clone, Copy)]
pub(crate) enum LoggedWrite {
    Store {
        buf: usize,
        index: usize,
        old: Scalar,
        new: Scalar,
    },
    Atomic {
        buf: usize,
        index: usize,
        op: BinOp,
        operand: Scalar,
        old: Scalar,
    },
}

/// Undo a block's writes on the worker's buffer image (reverse order, so
/// overlapping writes unwind correctly).
fn revert_writes(buffers: &mut [BufferStorage], log: &[LoggedWrite]) {
    for w in log.iter().rev() {
        match *w {
            LoggedWrite::Store {
                buf, index, old, ..
            }
            | LoggedWrite::Atomic {
                buf, index, old, ..
            } => buffers[buf].data[index] = old,
        }
    }
}

/// Apply a block's writes to the device's buffers. Stores overwrite;
/// atomics re-apply their operation against the accumulated value.
fn replay_writes(buffers: &mut [BufferStorage], log: &[LoggedWrite]) -> Result<(), EvalError> {
    for w in log {
        match *w {
            LoggedWrite::Store {
                buf, index, new, ..
            } => buffers[buf].data[index] = new,
            LoggedWrite::Atomic {
                buf,
                index,
                op,
                operand,
                ..
            } => {
                let current = buffers[buf].data[index];
                buffers[buf].data[index] = op.apply(current, operand)?;
            }
        }
    }
    Ok(())
}

enum FrameArgs<'v> {
    /// Kernel frame: scalar arguments come from the launch's `ArgValue`s.
    Kernel,
    /// Function frame: per-lane argument vectors.
    Func(&'v [Lanes]),
}

struct Frame<'v> {
    args: FrameArgs<'v>,
    locals: Vec<Option<Lanes>>,
    /// Set only for function frames: lanes that have executed `Return`,
    /// plus their values.
    returned: Option<(Mask, Lanes)>,
}

impl<'v> Frame<'v> {
    fn for_kernel(local_count: usize) -> Frame<'static> {
        Frame {
            args: FrameArgs::Kernel,
            locals: vec![None; local_count],
            returned: None,
        }
    }

    fn for_func(args: &'v [Lanes], local_count: usize, lanes: usize) -> Frame<'v> {
        Frame {
            args: FrameArgs::Func(args),
            locals: vec![None; local_count],
            returned: Some((LaneMask::empty(lanes), vec![FILLER; lanes])),
        }
    }
}

/// Launch-wide immutable state shared by every worker.
pub(crate) struct Launch<'a> {
    pub profile: &'a DeviceProfile,
    pub program: &'a Program,
    pub kernel: &'a Kernel,
    pub args: &'a [ArgValue],
    pub grid: Dim2,
    pub block: Dim2,
    /// Compiled bytecode for the kernel; `None` selects the tree-walking
    /// oracle. Shared read-only by all workers.
    pub compiled: Option<&'a crate::bytecode::CompiledKernel>,
    /// Seed for per-block store-application-order permutation (None =
    /// canonical lane order).
    pub schedule_seed: Option<u64>,
    /// Per-pc dynamic execution counters for the profile-guided fusion
    /// pass (bytecode engine only; indexed like `compiled`'s op stream).
    /// Atomic so concurrent pool workers can bump them racelessly — the
    /// summed counts are deterministic for any worker count.
    pub profile_counts: Option<&'a [AtomicU64]>,
    /// Bit-flip probability for [`MemSpace::Approx`] loads, pre-scaled to
    /// a `u64` threshold (`rate * 2^64`, saturating); 0 disables
    /// injection entirely. See [`approx_threshold`].
    pub approx_threshold: u64,
    /// Seed of the deterministic flip stream; mixed with the block id so
    /// each block draws an independent, worker-count-invariant stream.
    pub approx_seed: u64,
    /// Buffer arena indices this launch declares *input-overwritten*: the
    /// kernel never reads them (verified by
    /// [`crate::Device::launch_overwriting`]), so their contents at launch
    /// entry are unobservable and the per-worker image refresh may keep
    /// whatever bytes the pooled image already holds. Loop-carried
    /// ping-pong buffers hit this every iteration.
    pub overwritten: &'a [usize],
}

/// Counters for the pooled worker-image refresh: how many per-buffer
/// copies were performed and how many were skipped because the launch
/// declared the buffer input-overwritten. Atomic because the refresh runs
/// on the pool's worker threads; the totals are deterministic for a fixed
/// launch sequence and worker count.
#[derive(Debug, Default)]
pub(crate) struct RefreshCounters {
    pub copies: AtomicU64,
    pub skips: AtomicU64,
}

/// Refresh one pooled worker image from the master arena, skipping the
/// data copy for buffers the launch declared input-overwritten (metadata
/// is still synchronized so addresses and spaces stay coherent). A skip
/// is only taken when the pooled buffer already has the right type and
/// length — the first launch after an arena change always copies.
fn refresh_image(
    image: &mut Vec<BufferStorage>,
    src: &[BufferStorage],
    overwritten: &[usize],
    counters: &RefreshCounters,
) {
    if image.len() != src.len() {
        image.clear();
        image.extend(src.iter().cloned());
        counters
            .copies
            .fetch_add(src.len() as u64, Ordering::Relaxed);
        return;
    }
    let mut copies = 0u64;
    let mut skips = 0u64;
    for (i, (dst, s)) in image.iter_mut().zip(src).enumerate() {
        if overwritten.contains(&i) && dst.ty == s.ty && dst.data.len() == s.data.len() {
            dst.space = s.space;
            dst.base_addr = s.base_addr;
            skips += 1;
        } else {
            dst.clone_from(s);
            copies += 1;
        }
    }
    counters.copies.fetch_add(copies, Ordering::Relaxed);
    counters.skips.fetch_add(skips, Ordering::Relaxed);
}

/// Scale an error rate in `[0, 1]` to the `u64` comparison threshold the
/// executor uses: a flip happens when a uniform 64-bit draw is below
/// `rate * 2^64`. Rate 0 maps to 0 (no draws at all); rates at or above 1
/// saturate to `u64::MAX` (`f64 as u64` saturates), flipping every load.
pub(crate) fn approx_threshold(rate: f64) -> u64 {
    if rate > 0.0 {
        (rate * (u64::MAX as f64)) as u64
    } else {
        0
    }
}

/// Everything one block finished with; folded in ascending `block` order.
struct BlockOutcome {
    block: usize,
    stats: LaunchStats,
    l1: Cache,
    constant_cache: Cache,
    log: Vec<LoggedWrite>,
}

/// Per-worker mutable state, reused across the blocks a worker executes.
struct Worker<'a> {
    buffers: &'a mut Vec<BufferStorage>,
    log: Vec<LoggedWrite>,
    scratch: ScratchPool,
    bc: crate::bytecode::BcScratch,
}

impl Worker<'_> {
    /// Execute one block against this worker's buffer image, revert the
    /// image, and package the outcome. `isolate` is false only for
    /// single-block launches, where writes may land directly.
    fn run_block(
        &mut self,
        launch: &Launch<'_>,
        block_id: usize,
        l1_template: &Cache,
        cc_template: &Cache,
        iterations: &AtomicU64,
        isolate: bool,
    ) -> Result<BlockOutcome, EvalError> {
        let result = exec_block(
            launch,
            block_id,
            self.buffers,
            isolate.then_some(&mut self.log),
            l1_template.clone(),
            cc_template.clone(),
            iterations,
            &mut self.scratch,
            &mut self.bc,
        );
        revert_writes(self.buffers, &self.log);
        match result {
            Ok((stats, l1, constant_cache)) => Ok(BlockOutcome {
                block: block_id,
                stats,
                l1,
                constant_cache,
                log: std::mem::take(&mut self.log),
            }),
            Err(e) => {
                self.log.clear();
                Err(e)
            }
        }
    }
}

/// Execute every block of a launch — serially or across host workers — and
/// fold the results deterministically. This is the only entry point; the
/// worker count comes from `PARAPROX_THREADS` /
/// [`DeviceProfile::parallelism`] (see [`pool::resolve_workers`]).
pub(crate) fn run_launch(
    launch: &Launch<'_>,
    buffers: &mut Vec<BufferStorage>,
    l1: &mut Cache,
    constant_cache: &mut Cache,
    image_pool: &mut Vec<Vec<BufferStorage>>,
    refresh: &RefreshCounters,
) -> Result<LaunchStats, LaunchError> {
    let started = Instant::now();
    let total = launch.grid.count();
    let workers = pool::resolve_workers(launch.profile.parallelism)
        .min(total)
        .max(1);
    let iterations = AtomicU64::new(0);
    let eval_err = |source: EvalError| LaunchError::Eval {
        kernel: launch.kernel.name.clone(),
        source,
    };

    // Per-block cache snapshots start from the launch-entry state with
    // counters zeroed, so each block's counters are pure deltas.
    let entry_l1 = (l1.hits(), l1.misses());
    let entry_cc = (constant_cache.hits(), constant_cache.misses());
    let mut l1_template = l1.clone();
    l1_template.reset_counters();
    let mut cc_template = constant_cache.clone();
    cc_template.reset_counters();

    let mut outcomes: Vec<BlockOutcome> = Vec::with_capacity(total);
    if workers == 1 {
        // Serial path: interpret directly against the device's buffers.
        // Isolation (log + revert per block, replay below) is still applied
        // for multi-block launches so the observable semantics are
        // identical to the parallel path.
        let mut worker = Worker {
            buffers,
            log: Vec::new(),
            scratch: ScratchPool::default(),
            bc: crate::bytecode::BcScratch::default(),
        };
        for block_id in 0..total {
            let outcome = worker
                .run_block(
                    launch,
                    block_id,
                    &l1_template,
                    &cc_template,
                    &iterations,
                    total > 1,
                )
                .map_err(eval_err)?;
            outcomes.push(outcome);
        }
    } else {
        let queue = WorkQueue::new(total, workers);
        let abort = AtomicBool::new(false);
        let mut first_err: Option<(usize, EvalError)> = None;
        // Per-worker buffer images come from the device's pool: a repeated
        // launch (tuning sweep, serving loop) refreshes the retained
        // images in place — `BufferStorage::clone_from` reuses the heap
        // blocks — instead of cloning the arena per worker per launch.
        if image_pool.len() < workers {
            image_pool.resize_with(workers, Vec::new);
        }
        {
            let buffers_src: &Vec<BufferStorage> = buffers;
            let (l1_t, cc_t) = (&l1_template, &cc_template);
            let (queue_ref, abort_ref, iters_ref) = (&queue, &abort, &iterations);
            std::thread::scope(|s| {
                let handles: Vec<_> = image_pool[..workers]
                    .iter_mut()
                    .enumerate()
                    .map(|(w, image)| {
                        s.spawn(move || {
                            refresh_image(image, buffers_src, launch.overwritten, refresh);
                            let mut worker = Worker {
                                buffers: image,
                                log: Vec::new(),
                                scratch: ScratchPool::default(),
                                bc: crate::bytecode::BcScratch::default(),
                            };
                            let mut done = Vec::new();
                            let mut err = None;
                            while let Some(block_id) = queue_ref.pop(w) {
                                if abort_ref.load(Ordering::Relaxed) {
                                    break;
                                }
                                match worker
                                    .run_block(launch, block_id, l1_t, cc_t, iters_ref, true)
                                {
                                    Ok(outcome) => done.push(outcome),
                                    Err(e) => {
                                        err = Some((block_id, e));
                                        abort_ref.store(true, Ordering::Relaxed);
                                        break;
                                    }
                                }
                            }
                            (done, err)
                        })
                    })
                    .collect();
                for handle in handles {
                    let (done, err) = handle.join().expect("executor worker panicked");
                    outcomes.extend(done);
                    if let Some((block_id, e)) = err {
                        // Deterministic-ish selection: report the failure
                        // with the lowest block id among those observed.
                        if first_err.as_ref().is_none_or(|(b, _)| block_id < *b) {
                            first_err = Some((block_id, e));
                        }
                    }
                }
            });
        }
        if let Some((_, source)) = first_err {
            return Err(eval_err(source));
        }
        outcomes.sort_by_key(|o| o.block);
    }
    debug_assert_eq!(outcomes.len(), total);

    // Deterministic fold: stats and write logs in ascending block order.
    let mut stats = LaunchStats::default();
    for outcome in &outcomes {
        stats += outcome.stats;
    }
    for outcome in &outcomes {
        replay_writes(buffers, &outcome.log).map_err(eval_err)?;
    }
    if let Some(last) = outcomes.pop() {
        *l1 = last.l1;
        *constant_cache = last.constant_cache;
    }
    l1.set_counters(entry_l1.0 + stats.l1_hits, entry_l1.1 + stats.l1_misses);
    constant_cache.set_counters(
        entry_cc.0 + stats.const_hits,
        entry_cc.1 + stats.const_misses,
    );

    stats.workers = workers as u64;
    stats.wall_nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    Ok(stats)
}

/// One segment of a fused multi-launch: an independent launch plus the
/// simulated cache state it enters with. Segments must touch disjoint
/// buffers (each serving request allocates its own); their simulated
/// address spaces may overlap freely because every segment carries
/// private caches.
pub(crate) struct FusedSegment<'a> {
    pub launch: Launch<'a>,
    pub l1: Cache,
    pub constant_cache: Cache,
}

/// What one fused segment finished with: its summed stats and exit
/// caches (counters advanced past the entry values, exactly as
/// [`run_launch`] leaves the device caches).
pub(crate) struct SegmentOutcome {
    pub stats: LaunchStats,
    pub l1: Cache,
    pub constant_cache: Cache,
}

/// Execute several independent launches as one fused dispatch over a
/// single worker pool.
///
/// Semantically this is exactly `for segment { run_launch(segment) }` —
/// every segment's buffer contents, simulated cycles, and cache
/// statistics are bit-identical to running it alone — but the host cost
/// is paid once per *batch*: one scope of pooled workers, one shared
/// work queue spanning every segment's blocks, and one arena clone per
/// worker (instead of per launch).
///
/// Determinism follows the [`run_launch`] argument segment-wise: each
/// block is a pure function of its segment's entry state, and folding
/// (stats, write replay, exit caches) happens per segment in ascending
/// `(segment, block)` order. The iteration budget stays per-segment so a
/// runaway kernel is charged like it would be alone.
pub(crate) fn run_fused(
    segments: Vec<FusedSegment<'_>>,
    buffers: &mut Vec<BufferStorage>,
    image_pool: &mut Vec<Vec<BufferStorage>>,
) -> Result<Vec<SegmentOutcome>, LaunchError> {
    let started = Instant::now();
    struct Seg<'a> {
        launch: Launch<'a>,
        l1_template: Cache,
        cc_template: Cache,
        entry_l1: (u64, u64),
        entry_cc: (u64, u64),
        start: usize,
        iterations: AtomicU64,
    }
    let mut segs: Vec<Seg<'_>> = Vec::with_capacity(segments.len());
    let mut total = 0usize;
    for fs in segments {
        let FusedSegment {
            launch,
            mut l1,
            mut constant_cache,
        } = fs;
        let entry_l1 = (l1.hits(), l1.misses());
        let entry_cc = (constant_cache.hits(), constant_cache.misses());
        l1.reset_counters();
        constant_cache.reset_counters();
        let start = total;
        total += launch.grid.count();
        segs.push(Seg {
            launch,
            l1_template: l1,
            cc_template: constant_cache,
            entry_l1,
            entry_cc,
            start,
            iterations: AtomicU64::new(0),
        });
    }
    if segs.is_empty() {
        return Ok(Vec::new());
    }
    let workers = pool::resolve_workers(segs[0].launch.profile.parallelism)
        .min(total)
        .max(1);
    let eval_err = |seg: &Seg<'_>, source: EvalError| LaunchError::Eval {
        kernel: seg.launch.kernel.name.clone(),
        source,
    };
    // Fold one segment's sorted outcomes exactly like run_launch folds a
    // whole launch.
    let fold = |seg: &Seg<'_>,
                outcomes: Vec<BlockOutcome>,
                buffers: &mut Vec<BufferStorage>|
     -> Result<SegmentOutcome, LaunchError> {
        let mut stats = LaunchStats::default();
        for outcome in &outcomes {
            stats += outcome.stats;
        }
        let mut outcomes = outcomes;
        for outcome in &outcomes {
            replay_writes(buffers, &outcome.log).map_err(|e| eval_err(seg, e))?;
        }
        let last = outcomes.pop().expect("segment has at least one block");
        let mut l1 = last.l1;
        let mut constant_cache = last.constant_cache;
        l1.set_counters(
            seg.entry_l1.0 + stats.l1_hits,
            seg.entry_l1.1 + stats.l1_misses,
        );
        constant_cache.set_counters(
            seg.entry_cc.0 + stats.const_hits,
            seg.entry_cc.1 + stats.const_misses,
        );
        stats.workers = workers as u64;
        Ok(SegmentOutcome {
            stats,
            l1,
            constant_cache,
        })
    };

    let mut results: Vec<SegmentOutcome> = Vec::with_capacity(segs.len());
    if workers == 1 {
        // Serial path: segments run back-to-back against the device's
        // buffers, each with the same isolation rules run_launch applies.
        let mut worker = Worker {
            buffers,
            log: Vec::new(),
            scratch: ScratchPool::default(),
            bc: crate::bytecode::BcScratch::default(),
        };
        for seg in &segs {
            let blocks = seg.launch.grid.count();
            let mut outcomes = Vec::with_capacity(blocks);
            for block_id in 0..blocks {
                let outcome = worker
                    .run_block(
                        &seg.launch,
                        block_id,
                        &seg.l1_template,
                        &seg.cc_template,
                        &seg.iterations,
                        blocks > 1,
                    )
                    .map_err(|e| eval_err(seg, e))?;
                outcomes.push(outcome);
            }
            results.push(fold(seg, outcomes, &mut *worker.buffers)?);
        }
    } else {
        // Parallel path: one shared queue over every segment's blocks; a
        // global index maps back to (segment, local block) through the
        // segment start offsets.
        let queue = WorkQueue::new(total, workers);
        let abort = AtomicBool::new(false);
        let mut first_err: Option<(usize, usize, EvalError)> = None;
        let mut tagged: Vec<(usize, BlockOutcome)> = Vec::with_capacity(total);
        if image_pool.len() < workers {
            image_pool.resize_with(workers, Vec::new);
        }
        {
            let buffers_src: &Vec<BufferStorage> = buffers;
            let segs_ref = &segs;
            let (queue_ref, abort_ref) = (&queue, &abort);
            std::thread::scope(|s| {
                let handles: Vec<_> = image_pool[..workers]
                    .iter_mut()
                    .enumerate()
                    .map(|(w, image)| {
                        s.spawn(move || {
                            image.clone_from(buffers_src);
                            let mut worker = Worker {
                                buffers: image,
                                log: Vec::new(),
                                scratch: ScratchPool::default(),
                                bc: crate::bytecode::BcScratch::default(),
                            };
                            let mut done = Vec::new();
                            let mut err = None;
                            while let Some(global) = queue_ref.pop(w) {
                                if abort_ref.load(Ordering::Relaxed) {
                                    break;
                                }
                                let si = segs_ref.partition_point(|s| s.start <= global) - 1;
                                let seg = &segs_ref[si];
                                let block_id = global - seg.start;
                                match worker.run_block(
                                    &seg.launch,
                                    block_id,
                                    &seg.l1_template,
                                    &seg.cc_template,
                                    &seg.iterations,
                                    true,
                                ) {
                                    Ok(outcome) => done.push((si, outcome)),
                                    Err(e) => {
                                        err = Some((si, block_id, e));
                                        abort_ref.store(true, Ordering::Relaxed);
                                        break;
                                    }
                                }
                            }
                            (done, err)
                        })
                    })
                    .collect();
                for handle in handles {
                    let (done, err) = handle.join().expect("executor worker panicked");
                    tagged.extend(done);
                    if let Some((si, block_id, e)) = err {
                        // Deterministic-ish selection: lowest (segment,
                        // block) among observed failures.
                        if first_err
                            .as_ref()
                            .is_none_or(|(s0, b0, _)| (si, block_id) < (*s0, *b0))
                        {
                            first_err = Some((si, block_id, e));
                        }
                    }
                }
            });
        }
        if let Some((si, _, source)) = first_err {
            return Err(eval_err(&segs[si], source));
        }
        tagged.sort_by_key(|(si, o)| (*si, o.block));
        debug_assert_eq!(tagged.len(), total);
        let mut iter = tagged.into_iter().peekable();
        for (si, seg) in segs.iter().enumerate() {
            let mut outcomes = Vec::with_capacity(seg.launch.grid.count());
            while iter.peek().is_some_and(|(s, _)| *s == si) {
                outcomes.push(iter.next().expect("peeked").1);
            }
            results.push(fold(seg, outcomes, &mut *buffers)?);
        }
    }
    let wall = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    for r in &mut results {
        r.stats.wall_nanos = wall;
    }
    Ok(results)
}

/// Flip one bit of a scalar's 32-bit representation. Booleans carry a
/// single logical bit, so any flip negates them.
fn flip_bit(v: Scalar, bit: u32) -> Scalar {
    let m = 1u32 << (bit % 32);
    match v {
        Scalar::F32(f) => Scalar::F32(f32::from_bits(f.to_bits() ^ m)),
        Scalar::I32(i) => Scalar::I32(i ^ m as i32),
        Scalar::U32(u) => Scalar::U32(u ^ m),
        Scalar::Bool(b) => Scalar::Bool(!b),
    }
}

/// Fisher-Yates permutation of `0..lanes`, seeded per block so different
/// blocks shuffle independently.
fn store_permutation(seed: u64, block_id: u64, lanes: usize) -> Vec<usize> {
    let mut state = seed ^ block_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut order: Vec<usize> = (0..lanes).collect();
    for i in (1..lanes).rev() {
        let j = (paraprox_prng::splitmix64(&mut state) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

/// Run a single block to completion and return its stats and final caches.
#[allow(clippy::too_many_arguments)]
fn exec_block(
    launch: &Launch<'_>,
    block_id: usize,
    buffers: &mut Vec<BufferStorage>,
    log: Option<&mut Vec<LoggedWrite>>,
    l1: Cache,
    constant_cache: Cache,
    iterations: &AtomicU64,
    scratch: &mut ScratchPool,
    bc: &mut crate::bytecode::BcScratch,
) -> Result<(LaunchStats, Cache, Cache), EvalError> {
    let lanes = launch.block.count();
    let mut ctx = ExecCtx {
        profile: launch.profile,
        program: launch.program,
        kernel: launch.kernel,
        args: launch.args,
        grid: launch.grid,
        block: launch.block,
        lanes,
        buffers,
        log,
        l1,
        constant_cache,
        stats: LaunchStats::default(),
        shared: launch
            .kernel
            .shared
            .iter()
            .map(|decl| vec![Scalar::zero(decl.ty); decl.len])
            .collect(),
        block_x: (block_id % launch.grid.x) as i32,
        block_y: (block_id / launch.grid.x) as i32,
        iterations,
        scratch,
        store_order: launch
            .schedule_seed
            .map(|seed| store_permutation(seed, block_id as u64, lanes)),
        approx_threshold: launch.approx_threshold,
        approx_rng: launch.approx_seed
            ^ (block_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ 0x5851_F42D_4C95_7F2D,
    };
    ctx.stats.blocks = 1;
    ctx.stats.warps = lanes.div_ceil(ctx.profile.warp_width) as u64;
    ctx.stats.overhead_cycles = ctx.profile.block_overhead;
    match launch.compiled {
        Some(prog) => crate::bytecode::execute(&mut ctx, prog, bc, launch.profile_counts)?,
        None => {
            let mask = LaneMask::full(lanes);
            let mut frame = Frame::for_kernel(ctx.kernel.locals.len());
            ctx.run_block(&launch.kernel.body, &mask, &mut frame)?;
        }
    }
    Ok((ctx.stats, ctx.l1, ctx.constant_cache))
}

pub(crate) struct ExecCtx<'a> {
    pub(crate) profile: &'a DeviceProfile,
    pub(crate) program: &'a Program,
    pub(crate) kernel: &'a Kernel,
    pub(crate) args: &'a [ArgValue],
    pub(crate) grid: Dim2,
    pub(crate) block: Dim2,
    pub(crate) lanes: usize,
    pub(crate) buffers: &'a mut Vec<BufferStorage>,
    /// `Some` when the block must be isolated (multi-block launches):
    /// every global write is recorded for revert + ordered replay.
    pub(crate) log: Option<&'a mut Vec<LoggedWrite>>,
    /// Block-private cache snapshots (cloned from launch-entry state).
    pub(crate) l1: Cache,
    pub(crate) constant_cache: Cache,
    pub(crate) stats: LaunchStats,
    pub(crate) shared: Vec<Vec<Scalar>>,
    pub(crate) block_x: i32,
    pub(crate) block_y: i32,
    /// Launch-wide loop-iteration budget, shared across workers.
    pub(crate) iterations: &'a AtomicU64,
    pub(crate) scratch: &'a mut ScratchPool,
    /// When present, `store_order[k]` is the lane whose store is applied
    /// k-th. Only the *application order* of [`ExecCtx::do_store`] is
    /// permuted — cost accounting and atomics are order-independent.
    pub(crate) store_order: Option<Vec<usize>>,
    /// Flip threshold for [`MemSpace::Approx`] loads (0 = off); see
    /// [`approx_threshold`].
    pub(crate) approx_threshold: u64,
    /// Block-private flip stream state. Blocks execute their lane-loads
    /// in a deterministic sequence (ascending lanes within each access,
    /// program order across accesses, identical in both engines), so
    /// advancing this splitmix64 state per approx lane-load yields the
    /// same flips whatever the worker count or engine.
    pub(crate) approx_rng: u64,
}

impl ExecCtx<'_> {
    // ---- cost charging ------------------------------------------------

    /// Number of warps with at least one active lane — a word-wise bitset
    /// query, one shift-and-mask per warp.
    pub(crate) fn warp_count(&self, mask: &Mask) -> u64 {
        mask.active_warps(self.profile.warp_width) as u64
    }

    pub(crate) fn charge_compute(&mut self, lat: u64, mask: &Mask) {
        let warps = self.warp_count(mask);
        self.stats.compute_cycles += lat * warps;
        self.stats.instructions += warps;
    }

    // ---- expression evaluation ----------------------------------------

    fn eval(&mut self, e: &Expr, mask: &Mask, frame: &mut Frame<'_>) -> Result<Lanes, EvalError> {
        match e {
            Expr::Const(v) => Ok(self.scratch.take_lanes(self.lanes, *v)),
            Expr::Var(v) => {
                let lanes = frame.locals[v.index()]
                    .as_ref()
                    .ok_or(EvalError::UninitializedVar(v.0))?;
                Ok(self.scratch.take_lanes_from(lanes))
            }
            Expr::Param(i) => match &frame.args {
                FrameArgs::Kernel => match self.args.get(*i) {
                    Some(ArgValue::Scalar(s)) => Ok(self.scratch.take_lanes(self.lanes, *s)),
                    Some(ArgValue::Buffer(_)) => {
                        Err(EvalError::NotPure("buffer parameter read as a scalar"))
                    }
                    None => Err(EvalError::ArityMismatch {
                        expected: *i + 1,
                        found: self.args.len(),
                    }),
                },
                FrameArgs::Func(args) => match args.get(*i) {
                    Some(arg) => Ok(self.scratch.take_lanes_from(arg)),
                    None => Err(EvalError::ArityMismatch {
                        expected: *i + 1,
                        found: 0,
                    }),
                },
            },
            Expr::Special(s) => {
                if matches!(frame.args, FrameArgs::Func(_)) {
                    return Err(EvalError::NotPure("thread special"));
                }
                let bx = self.block_x;
                let by = self.block_y;
                let bdx = self.block.x as i32;
                let bdy = self.block.y as i32;
                let gdx = self.grid.x as i32;
                let gdy = self.grid.y as i32;
                let mut out = self.scratch.take_lanes(self.lanes, FILLER);
                for (lane, slot) in out.iter_mut().enumerate() {
                    let tx = (lane % self.block.x) as i32;
                    let ty = (lane / self.block.x) as i32;
                    *slot = Scalar::I32(match s {
                        Special::ThreadIdX => tx,
                        Special::ThreadIdY => ty,
                        Special::BlockIdX => bx,
                        Special::BlockIdY => by,
                        Special::BlockDimX => bdx,
                        Special::BlockDimY => bdy,
                        Special::GridDimX => gdx,
                        Special::GridDimY => gdy,
                    });
                }
                Ok(out)
            }
            Expr::Unary(op, a) => {
                let va = self.eval(a, mask, frame)?;
                self.charge_compute(self.profile.unop_lat(*op), mask);
                let mut out = self.scratch.take_lanes(self.lanes, FILLER);
                if mask.all() {
                    for lane in 0..self.lanes {
                        out[lane] = op.apply(va[lane])?;
                    }
                } else {
                    for lane in mask.iter_set() {
                        out[lane] = op.apply(va[lane])?;
                    }
                }
                self.scratch.put_lanes(va);
                Ok(out)
            }
            Expr::Binary(op, a, b) => {
                let va = self.eval(a, mask, frame)?;
                let vb = self.eval(b, mask, frame)?;
                let float = mask
                    .iter_set()
                    .next()
                    .map(|l| va[l].ty() == Ty::F32)
                    .unwrap_or(false);
                self.charge_compute(self.profile.binop_lat(*op, float), mask);
                let mut out = self.scratch.take_lanes(self.lanes, FILLER);
                if mask.all() {
                    for lane in 0..self.lanes {
                        out[lane] = op.apply(va[lane], vb[lane])?;
                    }
                } else {
                    for lane in mask.iter_set() {
                        out[lane] = op.apply(va[lane], vb[lane])?;
                    }
                }
                self.scratch.put_lanes(va);
                self.scratch.put_lanes(vb);
                Ok(out)
            }
            Expr::Cmp(op, a, b) => {
                let va = self.eval(a, mask, frame)?;
                let vb = self.eval(b, mask, frame)?;
                self.charge_compute(self.profile.alu_lat, mask);
                let mut out = self.scratch.take_lanes(self.lanes, FILLER);
                if mask.all() {
                    for lane in 0..self.lanes {
                        out[lane] = op.apply(va[lane], vb[lane])?;
                    }
                } else {
                    for lane in mask.iter_set() {
                        out[lane] = op.apply(va[lane], vb[lane])?;
                    }
                }
                self.scratch.put_lanes(va);
                self.scratch.put_lanes(vb);
                Ok(out)
            }
            Expr::Select {
                cond,
                if_true,
                if_false,
            } => {
                let c = self.eval(cond, mask, frame)?;
                self.charge_compute(self.profile.alu_lat, mask);
                let mut t_mask = LaneMask::empty(self.lanes);
                let mut f_mask = LaneMask::empty(self.lanes);
                for lane in mask.iter_set() {
                    if c[lane].as_bool()? {
                        t_mask.set(lane, true);
                    } else {
                        f_mask.set(lane, true);
                    }
                }
                self.scratch.put_lanes(c);
                let mut out = self.scratch.take_lanes(self.lanes, FILLER);
                if t_mask.any() {
                    let tv = self.eval(if_true, &t_mask, frame)?;
                    for lane in t_mask.iter_set() {
                        out[lane] = tv[lane];
                    }
                    self.scratch.put_lanes(tv);
                }
                if f_mask.any() {
                    let fv = self.eval(if_false, &f_mask, frame)?;
                    for lane in f_mask.iter_set() {
                        out[lane] = fv[lane];
                    }
                    self.scratch.put_lanes(fv);
                }
                Ok(out)
            }
            Expr::Cast(ty, a) => {
                let va = self.eval(a, mask, frame)?;
                self.charge_compute(self.profile.alu_lat, mask);
                let mut out = self.scratch.take_lanes(self.lanes, FILLER);
                if mask.all() {
                    for lane in 0..self.lanes {
                        out[lane] = va[lane].cast(*ty);
                    }
                } else {
                    for lane in mask.iter_set() {
                        out[lane] = va[lane].cast(*ty);
                    }
                }
                self.scratch.put_lanes(va);
                Ok(out)
            }
            Expr::Load { mem, index } => {
                let idx = self.eval(index, mask, frame)?;
                if matches!(frame.args, FrameArgs::Func(_)) {
                    return Err(EvalError::NotPure("load"));
                }
                let out = self.do_load(*mem, &idx, mask)?;
                self.scratch.put_lanes(idx);
                Ok(out)
            }
            Expr::Call { func, args } => {
                let callee = self
                    .program
                    .funcs()
                    .find(|(id, _)| id == func)
                    .map(|(_, f)| f)
                    .ok_or(EvalError::UnknownFunc(func.0))?;
                let mut arg_lanes = Vec::with_capacity(args.len());
                for a in args {
                    arg_lanes.push(self.eval(a, mask, frame)?);
                }
                let out = self.call_func(callee, &arg_lanes, mask)?;
                for v in arg_lanes {
                    self.scratch.put_lanes(v);
                }
                Ok(out)
            }
        }
    }

    fn call_func(&mut self, func: &Func, args: &[Lanes], mask: &Mask) -> Result<Lanes, EvalError> {
        if args.len() != func.params.len() {
            return Err(EvalError::ArityMismatch {
                expected: func.params.len(),
                found: args.len(),
            });
        }
        for (arg, param) in args.iter().zip(&func.params) {
            for lane in mask.iter_set() {
                if arg[lane].ty() != param.ty() {
                    return Err(EvalError::TypeMismatch {
                        expected: param.ty(),
                        found: arg[lane].ty(),
                    });
                }
            }
        }
        // Call overhead (argument setup / jump).
        self.charge_compute(self.profile.alu_lat, mask);
        let mut frame = Frame::for_func(args, func.locals.len(), self.lanes);
        self.run_block(&func.body, mask, &mut frame)?;
        let (returned, values) = frame.returned.expect("function frame has returned set");
        for lane in mask.iter_set() {
            if !returned.get(lane) {
                return Err(EvalError::MissingReturn(func.name.clone()));
            }
        }
        Ok(values)
    }

    // ---- statements ----------------------------------------------------

    fn run_block(
        &mut self,
        stmts: &[Stmt],
        mask: &Mask,
        frame: &mut Frame<'_>,
    ) -> Result<(), EvalError> {
        if frame.returned.is_none() {
            // Kernel frames never return, so the live mask is the incoming
            // mask for every statement — no per-statement bookkeeping.
            if !mask.any() {
                return Ok(());
            }
            for stmt in stmts {
                self.run_stmt(stmt, mask, frame)?;
            }
            return Ok(());
        }
        let mut live = LaneMask::empty(self.lanes);
        for stmt in stmts {
            let (returned, _) = frame.returned.as_ref().expect("checked above");
            live.copy_from(mask);
            live.and_not_assign(returned);
            if !live.any() {
                break;
            }
            self.run_stmt(stmt, &live, frame)?;
        }
        Ok(())
    }

    fn run_stmt(
        &mut self,
        stmt: &Stmt,
        mask: &Mask,
        frame: &mut Frame<'_>,
    ) -> Result<(), EvalError> {
        match stmt {
            Stmt::Let { var, init } | Stmt::Assign { var, value: init } => {
                let v = self.eval(init, mask, frame)?;
                match &mut frame.locals[var.index()] {
                    Some(existing) => {
                        if mask.all() {
                            existing.copy_from_slice(&v);
                        } else {
                            for lane in mask.iter_set() {
                                existing[lane] = v[lane];
                            }
                        }
                        self.scratch.put_lanes(v);
                    }
                    slot @ None => *slot = Some(v),
                }
                Ok(())
            }
            Stmt::Store { mem, index, value } => {
                if matches!(frame.args, FrameArgs::Func(_)) {
                    return Err(EvalError::NotPure("store"));
                }
                let idx = self.eval(index, mask, frame)?;
                let val = self.eval(value, mask, frame)?;
                let result = self.do_store(*mem, &idx, &val, mask);
                self.scratch.put_lanes(idx);
                self.scratch.put_lanes(val);
                result
            }
            Stmt::Atomic {
                op,
                mem,
                index,
                value,
            } => {
                if matches!(frame.args, FrameArgs::Func(_)) {
                    return Err(EvalError::NotPure("atomic"));
                }
                let idx = self.eval(index, mask, frame)?;
                let val = self.eval(value, mask, frame)?;
                let result = self.do_atomic(*op, *mem, &idx, &val, mask);
                self.scratch.put_lanes(idx);
                self.scratch.put_lanes(val);
                result
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.eval(cond, mask, frame)?;
                self.charge_compute(self.profile.alu_lat, mask); // branch
                let mut t_mask = LaneMask::empty(self.lanes);
                let mut f_mask = LaneMask::empty(self.lanes);
                for lane in mask.iter_set() {
                    if c[lane].as_bool()? {
                        t_mask.set(lane, true);
                    } else {
                        f_mask.set(lane, true);
                    }
                }
                self.scratch.put_lanes(c);
                if t_mask.any() {
                    self.run_block(then_body, &t_mask, frame)?;
                }
                if f_mask.any() {
                    self.run_block(else_body, &f_mask, frame)?;
                }
                Ok(())
            }
            Stmt::For {
                var,
                init,
                cond,
                step,
                body,
            } => {
                let init_v = self.eval(init, mask, frame)?;
                match &mut frame.locals[var.index()] {
                    Some(existing) => {
                        for lane in mask.iter_set() {
                            existing[lane] = init_v[lane];
                        }
                        self.scratch.put_lanes(init_v);
                    }
                    slot @ None => *slot = Some(init_v),
                }
                let cmp_op = match cond {
                    LoopCond::Lt(_) => CmpOp::Lt,
                    LoopCond::Le(_) => CmpOp::Le,
                    LoopCond::Gt(_) => CmpOp::Gt,
                    LoopCond::Ge(_) => CmpOp::Ge,
                };
                let step_op = match step {
                    LoopStep::Add(_) => BinOp::Add,
                    LoopStep::Sub(_) => BinOp::Sub,
                    LoopStep::Mul(_) => BinOp::Mul,
                    LoopStep::Shl(_) => BinOp::Shl,
                    LoopStep::Shr(_) => BinOp::Shr,
                };
                let mut loop_mask = mask.clone();
                if let Some((returned, _)) = &frame.returned {
                    loop_mask.and_not_assign(returned);
                }
                loop {
                    if !loop_mask.any() {
                        break;
                    }
                    // Evaluate the continuation condition for lanes still in
                    // the loop.
                    let bound = self.eval(cond.bound(), &loop_mask, frame)?;
                    self.charge_compute(self.profile.alu_lat, &loop_mask); // cmp+branch
                    let current = frame.locals[var.index()]
                        .as_ref()
                        .ok_or(EvalError::UninitializedVar(var.0))?;
                    let mut next_mask = LaneMask::empty(self.lanes);
                    for lane in loop_mask.iter_set() {
                        if cmp_op.apply(current[lane], bound[lane])?.as_bool()? {
                            next_mask.set(lane, true);
                        }
                    }
                    self.scratch.put_lanes(bound);
                    loop_mask = next_mask;
                    if !loop_mask.any() {
                        break;
                    }
                    // The iteration budget is launch-wide: one shared
                    // counter across all workers, so runaway loops are
                    // bounded per launch rather than per block.
                    let used = self.iterations.fetch_add(1, Ordering::Relaxed) + 1;
                    if used > ITERATION_BUDGET {
                        return Err(EvalError::IterationLimit);
                    }
                    self.run_block(body, &loop_mask, frame)?;
                    // Lanes that returned inside the body leave the loop.
                    if let Some((returned, _)) = &frame.returned {
                        loop_mask.and_not_assign(returned);
                    }
                    if !loop_mask.any() {
                        break;
                    }
                    let amount = self.eval(step.amount(), &loop_mask, frame)?;
                    self.charge_compute(self.profile.alu_lat, &loop_mask); // update
                    let current = frame.locals[var.index()]
                        .as_mut()
                        .ok_or(EvalError::UninitializedVar(var.0))?;
                    for lane in loop_mask.iter_set() {
                        current[lane] = step_op.apply(current[lane], amount[lane])?;
                    }
                    self.scratch.put_lanes(amount);
                }
                Ok(())
            }
            Stmt::Sync => {
                if matches!(frame.args, FrameArgs::Func(_)) {
                    return Err(EvalError::NotPure("sync"));
                }
                if mask.all() {
                    Ok(())
                } else {
                    Err(EvalError::DivergentBarrier)
                }
            }
            Stmt::Return(e) => {
                if frame.returned.is_none() {
                    return Err(EvalError::NotPure("return in kernel body"));
                }
                let v = self.eval(e, mask, frame)?;
                let (returned, values) = frame.returned.as_mut().expect("checked above");
                for lane in mask.iter_set() {
                    returned.set(lane, true);
                    values[lane] = v[lane];
                }
                self.scratch.put_lanes(v);
                Ok(())
            }
        }
    }

    // ---- memory --------------------------------------------------------

    fn resolve_buffer(&self, mem: MemRef) -> Result<usize, EvalError> {
        match mem {
            MemRef::Param(i) => match self.args.get(i) {
                Some(ArgValue::Buffer(id)) => Ok(id.index()),
                Some(ArgValue::Scalar(_)) => {
                    Err(EvalError::NotPure("scalar parameter used as a buffer"))
                }
                None => Err(EvalError::ArityMismatch {
                    expected: i + 1,
                    found: self.args.len(),
                }),
            },
            MemRef::Shared(_) => unreachable!("shared handled by caller"),
        }
    }

    pub(crate) fn index_to_i64(idx: Scalar) -> Result<i64, EvalError> {
        match idx {
            Scalar::I32(v) => Ok(i64::from(v)),
            Scalar::U32(v) => Ok(i64::from(v)),
            other => Err(EvalError::TypeMismatch {
                expected: Ty::I32,
                found: other.ty(),
            }),
        }
    }

    fn do_load(&mut self, mem: MemRef, idx: &Lanes, mask: &Mask) -> Result<Lanes, EvalError> {
        let mut out = self.scratch.take_lanes(self.lanes, FILLER);
        self.do_load_into(mem, idx, mask, &mut out)?;
        Ok(out)
    }

    /// Perform a load into `out`, which the caller has pre-filled with
    /// [`FILLER`] (inactive lanes keep the filler, exactly like the
    /// tree-walker's fresh scratch vector). Generic over the lane
    /// containers so both engines share one memory pipeline.
    pub(crate) fn do_load_into<I: LaneGet, O: LaneSet>(
        &mut self,
        mem: MemRef,
        idx: &I,
        mask: &Mask,
        out: &mut O,
    ) -> Result<(), EvalError> {
        match mem {
            MemRef::Shared(sid) => {
                let len = self
                    .shared
                    .get(sid.index())
                    .map(|s| s.len())
                    .ok_or(EvalError::UnknownFunc(sid.index()))?;
                // Values first (immutable borrow of shared).
                for lane in mask.iter_set() {
                    let i = Self::index_to_i64(idx.lane(lane))?;
                    if i < 0 || i as usize >= len {
                        return Err(EvalError::OutOfBounds { index: i, len });
                    }
                    out.set_lane(lane, self.shared[sid.index()][i as usize]);
                }
                self.charge_shared_access(idx, mask)?;
            }
            MemRef::Param(_) => {
                let b = self.resolve_buffer(mem)?;
                let space = self.buffers[b].space;
                let base = self.buffers[b].base_addr;
                let len = self.buffers[b].data.len();
                let inject = space == MemSpace::Approx && self.approx_threshold > 0;
                for lane in mask.iter_set() {
                    let i = Self::index_to_i64(idx.lane(lane))?;
                    if i < 0 || i as usize >= len {
                        return Err(EvalError::OutOfBounds { index: i, len });
                    }
                    let mut v = self.buffers[b].data[i as usize];
                    if space == MemSpace::Approx {
                        self.stats.approx_loads += 1;
                        if inject
                            && paraprox_prng::splitmix64(&mut self.approx_rng)
                                < self.approx_threshold
                        {
                            let bit = (paraprox_prng::splitmix64(&mut self.approx_rng) % 32) as u32;
                            v = flip_bit(v, bit);
                            self.stats.bit_flips += 1;
                        }
                    }
                    out.set_lane(lane, v);
                }
                match space {
                    MemSpace::Global | MemSpace::Shared => {
                        self.charge_global_load(base, idx, mask)?;
                    }
                    MemSpace::Approx => {
                        self.charge_approx_load(base, idx, mask)?;
                    }
                    MemSpace::Constant => {
                        self.charge_constant_load(base, idx, mask)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn charge_shared_access<I: LaneGet>(&mut self, idx: &I, mask: &Mask) -> Result<(), EvalError> {
        const BANKS: usize = 32;
        let (w, lanes) = (self.profile.warp_width, self.lanes);
        for (start, end) in active_warp_ranges(w, lanes, mask) {
            // Conflict degree: max number of *distinct word addresses*
            // mapping to the same bank within the warp.
            let mut per_bank: Vec<Vec<i64>> = vec![Vec::new(); BANKS];
            for lane in start..end {
                if mask.get(lane) {
                    let word = Self::index_to_i64(idx.lane(lane))?;
                    let bank = (word.rem_euclid(BANKS as i64)) as usize;
                    if !per_bank[bank].contains(&word) {
                        per_bank[bank].push(word);
                    }
                }
            }
            let degree = per_bank.iter().map(|v| v.len()).max().unwrap_or(1).max(1) as u64;
            self.stats.shared_accesses += 1;
            self.stats.bank_conflict_extra += degree - 1;
            self.stats.memory_cycles += self.profile.shared_lat * degree;
            self.stats.instructions += 1;
        }
        Ok(())
    }

    fn charge_global_load<I: LaneGet>(
        &mut self,
        base: u64,
        idx: &I,
        mask: &Mask,
    ) -> Result<(), EvalError> {
        let (miss_lat, miss_issue) = (self.profile.mem_lat, self.profile.mem_issue);
        self.charge_cached_load(base, idx, mask, miss_lat, miss_issue)
    }

    /// The approximate region sits behind the same L1 as exact global
    /// memory — cache state, transaction counts, and hit costs are
    /// identical — but a miss goes to the cheaper (lower-voltage) DRAM
    /// timings, so only the charged latency differs.
    fn charge_approx_load<I: LaneGet>(
        &mut self,
        base: u64,
        idx: &I,
        mask: &Mask,
    ) -> Result<(), EvalError> {
        let (miss_lat, miss_issue) = (self.profile.approx_lat, self.profile.approx_issue);
        self.charge_cached_load(base, idx, mask, miss_lat, miss_issue)
    }

    /// Shared L1-backed load costing, parametrized by the miss timings of
    /// the backing region (exact vs approximate DRAM).
    fn charge_cached_load<I: LaneGet>(
        &mut self,
        base: u64,
        idx: &I,
        mask: &Mask,
        miss_lat: u64,
        miss_issue: u64,
    ) -> Result<(), EvalError> {
        let line = self.l1.line() as u64;
        let (w, lanes) = (self.profile.warp_width, self.lanes);
        for (start, end) in active_warp_ranges(w, lanes, mask) {
            let mut segments: Vec<u64> = Vec::new();
            for lane in start..end {
                if mask.get(lane) {
                    let i = Self::index_to_i64(idx.lane(lane))?;
                    let addr = base + (i as u64) * 4;
                    let seg = addr / line;
                    if !segments.contains(&seg) {
                        segments.push(seg);
                    }
                }
            }
            let transactions = segments.len() as u64;
            self.stats.loads += 1;
            self.stats.instructions += 1;
            self.stats.load_transactions += transactions;
            self.stats.serialized_transactions += transactions.saturating_sub(1);
            let mut hits = 0u64;
            let mut misses = 0u64;
            for seg in segments {
                if self.l1.access(seg * line) {
                    hits += 1;
                } else {
                    misses += 1;
                }
            }
            self.stats.l1_hits += hits;
            self.stats.l1_misses += misses;
            // Exposed latency once (the slowest class present), plus a
            // pipelined issue cost for every further transaction —
            // memory-level parallelism overlaps their latencies.
            let (base, first_issue) = if misses > 0 {
                (miss_lat, miss_issue)
            } else if hits > 0 {
                (self.profile.l1_hit_lat, self.profile.l1_issue)
            } else {
                (0, 0)
            };
            let issue = hits * self.profile.l1_issue + misses * miss_issue;
            let exposed = base / self.profile.latency_hiding.max(1);
            self.stats.memory_cycles += exposed + issue.saturating_sub(first_issue);
        }
        Ok(())
    }

    fn charge_constant_load<I: LaneGet>(
        &mut self,
        base: u64,
        idx: &I,
        mask: &Mask,
    ) -> Result<(), EvalError> {
        let line = self.constant_cache.line() as u64;
        let (w, lanes) = (self.profile.warp_width, self.lanes);
        for (start, end) in active_warp_ranges(w, lanes, mask) {
            // The constant cache broadcasts one word per cycle: distinct
            // word addresses within a warp serialize.
            let mut words: Vec<u64> = Vec::new();
            for lane in start..end {
                if mask.get(lane) {
                    let i = Self::index_to_i64(idx.lane(lane))?;
                    let addr = base + (i as u64) * 4;
                    if !words.contains(&addr) {
                        words.push(addr);
                    }
                }
            }
            self.stats.loads += 1;
            self.stats.instructions += 1;
            self.stats.load_transactions += words.len() as u64;
            self.stats.serialized_transactions += (words.len() as u64).saturating_sub(1);
            let mut hits = 0u64;
            let mut misses = 0u64;
            for addr in words {
                if self.constant_cache.access((addr / line) * line) {
                    hits += 1;
                } else {
                    misses += 1;
                }
            }
            self.stats.const_hits += hits;
            self.stats.const_misses += misses;
            let (base, first_issue) = if misses > 0 {
                (self.profile.mem_lat, self.profile.mem_issue)
            } else if hits > 0 {
                (self.profile.const_hit_lat, self.profile.const_hit_lat)
            } else {
                (0, 0)
            };
            // The constant port broadcasts one word per cycle: every
            // distinct word serializes at `const_hit_lat`; misses also pay
            // the pipelined DRAM issue cost.
            let issue = hits * self.profile.const_hit_lat + misses * self.profile.mem_issue;
            let exposed = base / self.profile.latency_hiding.max(1);
            self.stats.memory_cycles += exposed + issue.saturating_sub(first_issue);
        }
        Ok(())
    }

    pub(crate) fn do_store<I: LaneGet, V: LaneGet>(
        &mut self,
        mem: MemRef,
        idx: &I,
        val: &V,
        mask: &Mask,
    ) -> Result<(), EvalError> {
        match mem {
            MemRef::Shared(sid) => {
                let len = self
                    .shared
                    .get(sid.index())
                    .map(|s| s.len())
                    .ok_or(EvalError::UnknownFunc(sid.index()))?;
                for k in 0..self.lanes {
                    let lane = match &self.store_order {
                        Some(order) => order[k],
                        None => k,
                    };
                    if mask.get(lane) {
                        let i = Self::index_to_i64(idx.lane(lane))?;
                        if i < 0 || i as usize >= len {
                            return Err(EvalError::OutOfBounds { index: i, len });
                        }
                        let v = val.lane(lane);
                        let arr = &mut self.shared[sid.index()];
                        let expected = arr[i as usize].ty();
                        if v.ty() != expected {
                            return Err(EvalError::TypeMismatch {
                                expected,
                                found: v.ty(),
                            });
                        }
                        arr[i as usize] = v;
                    }
                }
                self.charge_shared_access(idx, mask)?;
                self.stats.stores += self.warp_count(mask);
            }
            MemRef::Param(_) => {
                let b = self.resolve_buffer(mem)?;
                if self.buffers[b].space == MemSpace::Constant {
                    return Err(EvalError::NotPure("store to constant memory"));
                }
                let base = self.buffers[b].base_addr;
                let len = self.buffers[b].data.len();
                let elem_ty = self.buffers[b].ty;
                for k in 0..self.lanes {
                    let lane = match &self.store_order {
                        Some(order) => order[k],
                        None => k,
                    };
                    if mask.get(lane) {
                        let i = Self::index_to_i64(idx.lane(lane))?;
                        if i < 0 || i as usize >= len {
                            return Err(EvalError::OutOfBounds { index: i, len });
                        }
                        let v = val.lane(lane);
                        if v.ty() != elem_ty {
                            return Err(EvalError::TypeMismatch {
                                expected: elem_ty,
                                found: v.ty(),
                            });
                        }
                        if let Some(log) = self.log.as_mut() {
                            log.push(LoggedWrite::Store {
                                buf: b,
                                index: i as usize,
                                old: self.buffers[b].data[i as usize],
                                new: v,
                            });
                        }
                        self.buffers[b].data[i as usize] = v;
                    }
                }
                // Coalescing for stores: one transaction per distinct line.
                // Writes to the approximate region are exact (errors are a
                // read phenomenon) but land in the cheaper DRAM.
                let line = self.l1.line() as u64;
                let (w, lanes) = (self.profile.warp_width, self.lanes);
                let store_lat = if self.buffers[b].space == MemSpace::Approx {
                    self.profile.approx_store_lat
                } else {
                    self.profile.store_lat
                };
                for (start, end) in active_warp_ranges(w, lanes, mask) {
                    let mut segments: Vec<u64> = Vec::new();
                    for lane in start..end {
                        if mask.get(lane) {
                            let i = Self::index_to_i64(idx.lane(lane))?;
                            let addr = base + (i as u64) * 4;
                            let seg = addr / line;
                            if !segments.contains(&seg) {
                                segments.push(seg);
                            }
                        }
                    }
                    self.stats.stores += 1;
                    self.stats.instructions += 1;
                    self.stats.memory_cycles += store_lat * segments.len() as u64;
                }
            }
        }
        Ok(())
    }

    pub(crate) fn do_atomic<I: LaneGet, V: LaneGet>(
        &mut self,
        op: paraprox_ir::AtomicOp,
        mem: MemRef,
        idx: &I,
        val: &V,
        mask: &Mask,
    ) -> Result<(), EvalError> {
        let bin = op.to_bin_op();
        let mut active = 0u64;
        for lane in mask.iter_set() {
            active += 1;
            let i = Self::index_to_i64(idx.lane(lane))?;
            match mem {
                MemRef::Shared(sid) => {
                    let arr = self
                        .shared
                        .get_mut(sid.index())
                        .ok_or(EvalError::UnknownFunc(sid.index()))?;
                    let len = arr.len();
                    if i < 0 || i as usize >= len {
                        return Err(EvalError::OutOfBounds { index: i, len });
                    }
                    let old = arr[i as usize];
                    arr[i as usize] = bin.apply(old, val.lane(lane))?;
                }
                MemRef::Param(_) => {
                    let b = self.resolve_buffer(mem)?;
                    if self.buffers[b].space == MemSpace::Constant {
                        return Err(EvalError::NotPure("atomic on constant memory"));
                    }
                    let len = self.buffers[b].data.len();
                    if i < 0 || i as usize >= len {
                        return Err(EvalError::OutOfBounds { index: i, len });
                    }
                    let old = self.buffers[b].data[i as usize];
                    let new = bin.apply(old, val.lane(lane))?;
                    if let Some(log) = self.log.as_mut() {
                        log.push(LoggedWrite::Atomic {
                            buf: b,
                            index: i as usize,
                            op: bin,
                            operand: val.lane(lane),
                            old,
                        });
                    }
                    self.buffers[b].data[i as usize] = new;
                }
            }
        }
        // Atomics fully serialize across active lanes. They are also
        // always exact, even on an `Approx`-placed buffer: the partition
        // analysis marks atomic targets Critical, so auto-placement never
        // routes them here, and a forced placement still keeps its
        // read-modify-write cycle flip-free at exact timing.
        self.stats.atomics += active;
        self.stats.memory_cycles += self.profile.atomic_lat * active;
        self.stats.instructions += self.warp_count(mask);
        Ok(())
    }
}
