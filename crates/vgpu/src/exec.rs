//! The lockstep SIMT interpreter.
//!
//! A block's threads execute each statement together under an active-lane
//! mask. `if` and `for` refine the mask (divergence); `Sync` validates that
//! the block has reconverged. Costs are charged per *warp*: every warp with
//! at least one active lane pays the instruction's latency, exactly like
//! SIMT issue on real hardware — so a divergent branch pays for both arms
//! and a warp looping for its slowest lane pays every iteration.

use paraprox_ir::{
    BinOp, CmpOp, EvalError, Expr, Func, Kernel, LoopCond, LoopStep, MemRef, MemSpace,
    Program, Scalar, Special, Stmt, Ty,
};

use crate::cache::Cache;
use crate::device::{ArgValue, BufferStorage, Dim2};
use crate::error::LaunchError;
use crate::profile::DeviceProfile;
use crate::stats::LaunchStats;

/// Maximum total loop iterations (summed over lanes' warps) per launch;
/// guards against non-terminating loops in malformed IR.
const ITERATION_BUDGET: u64 = 1 << 33;

type Mask = Vec<bool>;

fn any(mask: &Mask) -> bool {
    mask.iter().any(|&b| b)
}

/// Lane-indexed values; entries for inactive lanes hold an arbitrary filler.
type Lanes = Vec<Scalar>;

const FILLER: Scalar = Scalar::I32(0);

enum FrameArgs<'v> {
    /// Kernel frame: scalar arguments come from the launch's `ArgValue`s.
    Kernel,
    /// Function frame: per-lane argument vectors.
    Func(&'v [Lanes]),
}

struct Frame<'v> {
    args: FrameArgs<'v>,
    locals: Vec<Option<Lanes>>,
    /// Set only for function frames: lanes that have executed `Return`,
    /// plus their values.
    returned: Option<(Mask, Lanes)>,
}

impl<'v> Frame<'v> {
    fn for_kernel(local_count: usize) -> Frame<'static> {
        Frame {
            args: FrameArgs::Kernel,
            locals: vec![None; local_count],
            returned: None,
        }
    }

    fn for_func(args: &'v [Lanes], local_count: usize, lanes: usize) -> Frame<'v> {
        Frame {
            args: FrameArgs::Func(args),
            locals: vec![None; local_count],
            returned: Some((vec![false; lanes], vec![FILLER; lanes])),
        }
    }

    /// Lanes of `mask` that are still executing (not yet returned).
    fn live(&self, mask: &Mask) -> Mask {
        match &self.returned {
            Some((returned, _)) => mask
                .iter()
                .zip(returned)
                .map(|(&m, &r)| m && !r)
                .collect(),
            None => mask.clone(),
        }
    }
}

pub(crate) struct ExecCtx<'a> {
    profile: &'a DeviceProfile,
    buffers: &'a mut Vec<BufferStorage>,
    l1: &'a mut Cache,
    constant_cache: &'a mut Cache,
    program: &'a Program,
    kernel: &'a Kernel,
    args: &'a [ArgValue],
    grid: Dim2,
    block: Dim2,
    stats: LaunchStats,
    lanes: usize,
    // Per-block state:
    shared: Vec<Vec<Scalar>>,
    block_x: i32,
    block_y: i32,
    iterations: u64,
}

impl<'a> ExecCtx<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        profile: &'a DeviceProfile,
        buffers: &'a mut Vec<BufferStorage>,
        l1: &'a mut Cache,
        constant_cache: &'a mut Cache,
        program: &'a Program,
        kernel: &'a Kernel,
        args: &'a [ArgValue],
        grid: Dim2,
        block: Dim2,
    ) -> ExecCtx<'a> {
        let lanes = block.count();
        ExecCtx {
            profile,
            buffers,
            l1,
            constant_cache,
            program,
            kernel,
            args,
            grid,
            block,
            stats: LaunchStats::default(),
            lanes,
            shared: Vec::new(),
            block_x: 0,
            block_y: 0,
            iterations: 0,
        }
    }

    pub(crate) fn run(mut self) -> Result<LaunchStats, LaunchError> {
        let warps_per_block = self.lanes.div_ceil(self.profile.warp_width) as u64;
        for by in 0..self.grid.y {
            for bx in 0..self.grid.x {
                self.block_x = bx as i32;
                self.block_y = by as i32;
                self.shared = self
                    .kernel
                    .shared
                    .iter()
                    .map(|decl| vec![Scalar::zero(decl.ty); decl.len])
                    .collect();
                self.stats.blocks += 1;
                self.stats.warps += warps_per_block;
                self.stats.overhead_cycles += self.profile.block_overhead;
                let mask = vec![true; self.lanes];
                let mut frame = Frame::for_kernel(self.kernel.locals.len());
                let body = &self.kernel.body;
                self.run_block(body, &mask, &mut frame)
                    .map_err(|source| LaunchError::Eval {
                        kernel: self.kernel.name.clone(),
                        source,
                    })?;
            }
        }
        Ok(self.stats)
    }

    // ---- cost charging ------------------------------------------------

    /// Iterate warp lane-ranges that contain at least one active lane.
    fn active_warp_ranges(&self, mask: &Mask) -> Vec<(usize, usize)> {
        let w = self.profile.warp_width;
        let mut out = Vec::new();
        let mut start = 0;
        while start < self.lanes {
            let end = (start + w).min(self.lanes);
            if mask[start..end].iter().any(|&b| b) {
                out.push((start, end));
            }
            start = end;
        }
        out
    }

    fn charge_compute(&mut self, lat: u64, mask: &Mask) {
        let warps = self.active_warp_ranges(mask).len() as u64;
        self.stats.compute_cycles += lat * warps;
        self.stats.instructions += warps;
    }

    // ---- expression evaluation ----------------------------------------

    fn eval(&mut self, e: &Expr, mask: &Mask, frame: &mut Frame<'_>) -> Result<Lanes, EvalError> {
        match e {
            Expr::Const(v) => Ok(vec![*v; self.lanes]),
            Expr::Var(v) => {
                let lanes = frame.locals[v.index()]
                    .as_ref()
                    .ok_or(EvalError::UninitializedVar(v.0))?;
                Ok(lanes.clone())
            }
            Expr::Param(i) => match &frame.args {
                FrameArgs::Kernel => match self.args.get(*i) {
                    Some(ArgValue::Scalar(s)) => Ok(vec![*s; self.lanes]),
                    Some(ArgValue::Buffer(_)) => {
                        Err(EvalError::NotPure("buffer parameter read as a scalar"))
                    }
                    None => Err(EvalError::ArityMismatch {
                        expected: *i + 1,
                        found: self.args.len(),
                    }),
                },
                FrameArgs::Func(args) => args
                    .get(*i)
                    .cloned()
                    .ok_or(EvalError::ArityMismatch {
                        expected: *i + 1,
                        found: 0,
                    }),
            },
            Expr::Special(s) => {
                if matches!(frame.args, FrameArgs::Func(_)) {
                    return Err(EvalError::NotPure("thread special"));
                }
                let bx = self.block_x;
                let by = self.block_y;
                let bdx = self.block.x as i32;
                let bdy = self.block.y as i32;
                let gdx = self.grid.x as i32;
                let gdy = self.grid.y as i32;
                let mut out = vec![FILLER; self.lanes];
                for (lane, slot) in out.iter_mut().enumerate() {
                    let tx = (lane % self.block.x) as i32;
                    let ty = (lane / self.block.x) as i32;
                    *slot = Scalar::I32(match s {
                        Special::ThreadIdX => tx,
                        Special::ThreadIdY => ty,
                        Special::BlockIdX => bx,
                        Special::BlockIdY => by,
                        Special::BlockDimX => bdx,
                        Special::BlockDimY => bdy,
                        Special::GridDimX => gdx,
                        Special::GridDimY => gdy,
                    });
                }
                Ok(out)
            }
            Expr::Unary(op, a) => {
                let va = self.eval(a, mask, frame)?;
                self.charge_compute(self.profile.unop_lat(*op), mask);
                let mut out = vec![FILLER; self.lanes];
                for lane in 0..self.lanes {
                    if mask[lane] {
                        out[lane] = op.apply(va[lane])?;
                    }
                }
                Ok(out)
            }
            Expr::Binary(op, a, b) => {
                let va = self.eval(a, mask, frame)?;
                let vb = self.eval(b, mask, frame)?;
                let float = mask
                    .iter()
                    .position(|&m| m)
                    .map(|l| va[l].ty() == Ty::F32)
                    .unwrap_or(false);
                self.charge_compute(self.profile.binop_lat(*op, float), mask);
                let mut out = vec![FILLER; self.lanes];
                for lane in 0..self.lanes {
                    if mask[lane] {
                        out[lane] = op.apply(va[lane], vb[lane])?;
                    }
                }
                Ok(out)
            }
            Expr::Cmp(op, a, b) => {
                let va = self.eval(a, mask, frame)?;
                let vb = self.eval(b, mask, frame)?;
                self.charge_compute(self.profile.alu_lat, mask);
                let mut out = vec![FILLER; self.lanes];
                for lane in 0..self.lanes {
                    if mask[lane] {
                        out[lane] = op.apply(va[lane], vb[lane])?;
                    }
                }
                Ok(out)
            }
            Expr::Select {
                cond,
                if_true,
                if_false,
            } => {
                let c = self.eval(cond, mask, frame)?;
                self.charge_compute(self.profile.alu_lat, mask);
                let mut t_mask = vec![false; self.lanes];
                let mut f_mask = vec![false; self.lanes];
                for lane in 0..self.lanes {
                    if mask[lane] {
                        if c[lane].as_bool()? {
                            t_mask[lane] = true;
                        } else {
                            f_mask[lane] = true;
                        }
                    }
                }
                let mut out = vec![FILLER; self.lanes];
                if any(&t_mask) {
                    let tv = self.eval(if_true, &t_mask, frame)?;
                    for lane in 0..self.lanes {
                        if t_mask[lane] {
                            out[lane] = tv[lane];
                        }
                    }
                }
                if any(&f_mask) {
                    let fv = self.eval(if_false, &f_mask, frame)?;
                    for lane in 0..self.lanes {
                        if f_mask[lane] {
                            out[lane] = fv[lane];
                        }
                    }
                }
                Ok(out)
            }
            Expr::Cast(ty, a) => {
                let va = self.eval(a, mask, frame)?;
                self.charge_compute(self.profile.alu_lat, mask);
                let mut out = vec![FILLER; self.lanes];
                for lane in 0..self.lanes {
                    if mask[lane] {
                        out[lane] = va[lane].cast(*ty);
                    }
                }
                Ok(out)
            }
            Expr::Load { mem, index } => {
                let idx = self.eval(index, mask, frame)?;
                if matches!(frame.args, FrameArgs::Func(_)) {
                    return Err(EvalError::NotPure("load"));
                }
                self.do_load(*mem, &idx, mask)
            }
            Expr::Call { func, args } => {
                let callee = self
                    .program
                    .funcs()
                    .find(|(id, _)| id == func)
                    .map(|(_, f)| f)
                    .ok_or(EvalError::UnknownFunc(func.0))?;
                let mut arg_lanes = Vec::with_capacity(args.len());
                for a in args {
                    arg_lanes.push(self.eval(a, mask, frame)?);
                }
                self.call_func(callee, &arg_lanes, mask)
            }
        }
    }

    fn call_func(
        &mut self,
        func: &Func,
        args: &[Lanes],
        mask: &Mask,
    ) -> Result<Lanes, EvalError> {
        if args.len() != func.params.len() {
            return Err(EvalError::ArityMismatch {
                expected: func.params.len(),
                found: args.len(),
            });
        }
        for (arg, param) in args.iter().zip(&func.params) {
            for lane in 0..self.lanes {
                if mask[lane] && arg[lane].ty() != param.ty() {
                    return Err(EvalError::TypeMismatch {
                        expected: param.ty(),
                        found: arg[lane].ty(),
                    });
                }
            }
        }
        // Call overhead (argument setup / jump).
        self.charge_compute(self.profile.alu_lat, mask);
        let mut frame = Frame::for_func(args, func.locals.len(), self.lanes);
        self.run_block(&func.body, mask, &mut frame)?;
        let (returned, values) = frame.returned.expect("function frame has returned set");
        for lane in 0..self.lanes {
            if mask[lane] && !returned[lane] {
                return Err(EvalError::MissingReturn(func.name.clone()));
            }
        }
        Ok(values)
    }

    // ---- statements ----------------------------------------------------

    fn run_block(
        &mut self,
        stmts: &[Stmt],
        mask: &Mask,
        frame: &mut Frame<'_>,
    ) -> Result<(), EvalError> {
        for stmt in stmts {
            let live = frame.live(mask);
            if !any(&live) {
                break;
            }
            self.run_stmt(stmt, &live, frame)?;
        }
        Ok(())
    }

    fn run_stmt(
        &mut self,
        stmt: &Stmt,
        mask: &Mask,
        frame: &mut Frame<'_>,
    ) -> Result<(), EvalError> {
        match stmt {
            Stmt::Let { var, init } | Stmt::Assign { var, value: init } => {
                let v = self.eval(init, mask, frame)?;
                match &mut frame.locals[var.index()] {
                    Some(existing) => {
                        for lane in 0..self.lanes {
                            if mask[lane] {
                                existing[lane] = v[lane];
                            }
                        }
                    }
                    slot @ None => *slot = Some(v),
                }
                Ok(())
            }
            Stmt::Store { mem, index, value } => {
                if matches!(frame.args, FrameArgs::Func(_)) {
                    return Err(EvalError::NotPure("store"));
                }
                let idx = self.eval(index, mask, frame)?;
                let val = self.eval(value, mask, frame)?;
                self.do_store(*mem, &idx, &val, mask)
            }
            Stmt::Atomic {
                op,
                mem,
                index,
                value,
            } => {
                if matches!(frame.args, FrameArgs::Func(_)) {
                    return Err(EvalError::NotPure("atomic"));
                }
                let idx = self.eval(index, mask, frame)?;
                let val = self.eval(value, mask, frame)?;
                self.do_atomic(*op, *mem, &idx, &val, mask)
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.eval(cond, mask, frame)?;
                self.charge_compute(self.profile.alu_lat, mask); // branch
                let mut t_mask = vec![false; self.lanes];
                let mut f_mask = vec![false; self.lanes];
                for lane in 0..self.lanes {
                    if mask[lane] {
                        if c[lane].as_bool()? {
                            t_mask[lane] = true;
                        } else {
                            f_mask[lane] = true;
                        }
                    }
                }
                if any(&t_mask) {
                    self.run_block(then_body, &t_mask, frame)?;
                }
                if any(&f_mask) {
                    self.run_block(else_body, &f_mask, frame)?;
                }
                Ok(())
            }
            Stmt::For {
                var,
                init,
                cond,
                step,
                body,
            } => {
                let init_v = self.eval(init, mask, frame)?;
                match &mut frame.locals[var.index()] {
                    Some(existing) => {
                        for lane in 0..self.lanes {
                            if mask[lane] {
                                existing[lane] = init_v[lane];
                            }
                        }
                    }
                    slot @ None => *slot = Some(init_v),
                }
                let cmp_op = match cond {
                    LoopCond::Lt(_) => CmpOp::Lt,
                    LoopCond::Le(_) => CmpOp::Le,
                    LoopCond::Gt(_) => CmpOp::Gt,
                    LoopCond::Ge(_) => CmpOp::Ge,
                };
                let step_op = match step {
                    LoopStep::Add(_) => BinOp::Add,
                    LoopStep::Sub(_) => BinOp::Sub,
                    LoopStep::Mul(_) => BinOp::Mul,
                    LoopStep::Shl(_) => BinOp::Shl,
                    LoopStep::Shr(_) => BinOp::Shr,
                };
                let mut loop_mask = frame.live(mask);
                loop {
                    if !any(&loop_mask) {
                        break;
                    }
                    // Evaluate the continuation condition for lanes still in
                    // the loop.
                    let bound = self.eval(cond.bound(), &loop_mask, frame)?;
                    self.charge_compute(self.profile.alu_lat, &loop_mask); // cmp+branch
                    let current = frame.locals[var.index()]
                        .as_ref()
                        .ok_or(EvalError::UninitializedVar(var.0))?;
                    let mut next_mask = vec![false; self.lanes];
                    for lane in 0..self.lanes {
                        if loop_mask[lane] && cmp_op.apply(current[lane], bound[lane])?.as_bool()? {
                            next_mask[lane] = true;
                        }
                    }
                    loop_mask = next_mask;
                    if !any(&loop_mask) {
                        break;
                    }
                    self.iterations += 1;
                    if self.iterations > ITERATION_BUDGET {
                        return Err(EvalError::IterationLimit);
                    }
                    self.run_block(body, &loop_mask, frame)?;
                    // Lanes that returned inside the body leave the loop.
                    loop_mask = frame.live(&loop_mask);
                    if !any(&loop_mask) {
                        break;
                    }
                    let amount = self.eval(step.amount(), &loop_mask, frame)?;
                    self.charge_compute(self.profile.alu_lat, &loop_mask); // update
                    let current = frame.locals[var.index()]
                        .as_mut()
                        .ok_or(EvalError::UninitializedVar(var.0))?;
                    for lane in 0..self.lanes {
                        if loop_mask[lane] {
                            current[lane] = step_op.apply(current[lane], amount[lane])?;
                        }
                    }
                }
                Ok(())
            }
            Stmt::Sync => {
                if matches!(frame.args, FrameArgs::Func(_)) {
                    return Err(EvalError::NotPure("sync"));
                }
                if mask.iter().all(|&b| b) {
                    Ok(())
                } else {
                    Err(EvalError::DivergentBarrier)
                }
            }
            Stmt::Return(e) => {
                if frame.returned.is_none() {
                    return Err(EvalError::NotPure("return in kernel body"));
                }
                let v = self.eval(e, mask, frame)?;
                let (returned, values) = frame.returned.as_mut().expect("checked above");
                for lane in 0..self.lanes {
                    if mask[lane] {
                        returned[lane] = true;
                        values[lane] = v[lane];
                    }
                }
                Ok(())
            }
        }
    }

    // ---- memory --------------------------------------------------------

    fn resolve_buffer(&self, mem: MemRef) -> Result<usize, EvalError> {
        match mem {
            MemRef::Param(i) => match self.args.get(i) {
                Some(ArgValue::Buffer(id)) => Ok(id.index()),
                Some(ArgValue::Scalar(_)) => {
                    Err(EvalError::NotPure("scalar parameter used as a buffer"))
                }
                None => Err(EvalError::ArityMismatch {
                    expected: i + 1,
                    found: self.args.len(),
                }),
            },
            MemRef::Shared(_) => unreachable!("shared handled by caller"),
        }
    }

    fn index_to_i64(idx: Scalar) -> Result<i64, EvalError> {
        match idx {
            Scalar::I32(v) => Ok(i64::from(v)),
            Scalar::U32(v) => Ok(i64::from(v)),
            other => Err(EvalError::TypeMismatch {
                expected: Ty::I32,
                found: other.ty(),
            }),
        }
    }

    fn do_load(&mut self, mem: MemRef, idx: &Lanes, mask: &Mask) -> Result<Lanes, EvalError> {
        let mut out = vec![FILLER; self.lanes];
        match mem {
            MemRef::Shared(sid) => {
                let len = self
                    .shared
                    .get(sid.index())
                    .map(|s| s.len())
                    .ok_or(EvalError::UnknownFunc(sid.index()))?;
                // Values first (immutable borrow of shared).
                for lane in 0..self.lanes {
                    if mask[lane] {
                        let i = Self::index_to_i64(idx[lane])?;
                        if i < 0 || i as usize >= len {
                            return Err(EvalError::OutOfBounds { index: i, len });
                        }
                        out[lane] = self.shared[sid.index()][i as usize];
                    }
                }
                self.charge_shared_access(idx, mask)?;
            }
            MemRef::Param(_) => {
                let b = self.resolve_buffer(mem)?;
                let space = self.buffers[b].space;
                let base = self.buffers[b].base_addr;
                let len = self.buffers[b].data.len();
                for lane in 0..self.lanes {
                    if mask[lane] {
                        let i = Self::index_to_i64(idx[lane])?;
                        if i < 0 || i as usize >= len {
                            return Err(EvalError::OutOfBounds { index: i, len });
                        }
                        out[lane] = self.buffers[b].data[i as usize];
                    }
                }
                match space {
                    MemSpace::Global | MemSpace::Shared => {
                        self.charge_global_load(base, idx, mask)?;
                    }
                    MemSpace::Constant => {
                        self.charge_constant_load(base, idx, mask)?;
                    }
                }
            }
        }
        Ok(out)
    }

    fn charge_shared_access(&mut self, idx: &Lanes, mask: &Mask) -> Result<(), EvalError> {
        const BANKS: usize = 32;
        for (start, end) in self.active_warp_ranges(mask) {
            // Conflict degree: max number of *distinct word addresses*
            // mapping to the same bank within the warp.
            let mut per_bank: Vec<Vec<i64>> = vec![Vec::new(); BANKS];
            for lane in start..end {
                if mask[lane] {
                    let word = Self::index_to_i64(idx[lane])?;
                    let bank = (word.rem_euclid(BANKS as i64)) as usize;
                    if !per_bank[bank].contains(&word) {
                        per_bank[bank].push(word);
                    }
                }
            }
            let degree = per_bank.iter().map(|v| v.len()).max().unwrap_or(1).max(1) as u64;
            self.stats.shared_accesses += 1;
            self.stats.bank_conflict_extra += degree - 1;
            self.stats.memory_cycles += self.profile.shared_lat * degree;
            self.stats.instructions += 1;
        }
        Ok(())
    }

    fn charge_global_load(
        &mut self,
        base: u64,
        idx: &Lanes,
        mask: &Mask,
    ) -> Result<(), EvalError> {
        let line = self.l1.line() as u64;
        for (start, end) in self.active_warp_ranges(mask) {
            let mut segments: Vec<u64> = Vec::new();
            for lane in start..end {
                if mask[lane] {
                    let i = Self::index_to_i64(idx[lane])?;
                    let addr = base + (i as u64) * 4;
                    let seg = addr / line;
                    if !segments.contains(&seg) {
                        segments.push(seg);
                    }
                }
            }
            let transactions = segments.len() as u64;
            self.stats.loads += 1;
            self.stats.instructions += 1;
            self.stats.load_transactions += transactions;
            self.stats.serialized_transactions += transactions.saturating_sub(1);
            let mut hits = 0u64;
            let mut misses = 0u64;
            for seg in segments {
                if self.l1.access(seg * line) {
                    hits += 1;
                } else {
                    misses += 1;
                }
            }
            self.stats.l1_hits += hits;
            self.stats.l1_misses += misses;
            // Exposed latency once (the slowest class present), plus a
            // pipelined issue cost for every further transaction —
            // memory-level parallelism overlaps their latencies.
            let (base, first_issue) = if misses > 0 {
                (self.profile.mem_lat, self.profile.mem_issue)
            } else if hits > 0 {
                (self.profile.l1_hit_lat, self.profile.l1_issue)
            } else {
                (0, 0)
            };
            let issue = hits * self.profile.l1_issue + misses * self.profile.mem_issue;
            let exposed = base / self.profile.latency_hiding.max(1);
            self.stats.memory_cycles += exposed + issue.saturating_sub(first_issue);
        }
        Ok(())
    }

    fn charge_constant_load(
        &mut self,
        base: u64,
        idx: &Lanes,
        mask: &Mask,
    ) -> Result<(), EvalError> {
        let line = self.constant_cache.line() as u64;
        for (start, end) in self.active_warp_ranges(mask) {
            // The constant cache broadcasts one word per cycle: distinct
            // word addresses within a warp serialize.
            let mut words: Vec<u64> = Vec::new();
            for lane in start..end {
                if mask[lane] {
                    let i = Self::index_to_i64(idx[lane])?;
                    let addr = base + (i as u64) * 4;
                    if !words.contains(&addr) {
                        words.push(addr);
                    }
                }
            }
            self.stats.loads += 1;
            self.stats.instructions += 1;
            self.stats.load_transactions += words.len() as u64;
            self.stats.serialized_transactions += (words.len() as u64).saturating_sub(1);
            let mut hits = 0u64;
            let mut misses = 0u64;
            for addr in words {
                if self.constant_cache.access((addr / line) * line) {
                    hits += 1;
                } else {
                    misses += 1;
                }
            }
            self.stats.const_hits += hits;
            self.stats.const_misses += misses;
            let (base, first_issue) = if misses > 0 {
                (self.profile.mem_lat, self.profile.mem_issue)
            } else if hits > 0 {
                (self.profile.const_hit_lat, self.profile.const_hit_lat)
            } else {
                (0, 0)
            };
            // The constant port broadcasts one word per cycle: every
            // distinct word serializes at `const_hit_lat`; misses also pay
            // the pipelined DRAM issue cost.
            let issue =
                hits * self.profile.const_hit_lat + misses * self.profile.mem_issue;
            let exposed = base / self.profile.latency_hiding.max(1);
            self.stats.memory_cycles += exposed + issue.saturating_sub(first_issue);
        }
        Ok(())
    }

    fn do_store(
        &mut self,
        mem: MemRef,
        idx: &Lanes,
        val: &Lanes,
        mask: &Mask,
    ) -> Result<(), EvalError> {
        match mem {
            MemRef::Shared(sid) => {
                let len = self
                    .shared
                    .get(sid.index())
                    .map(|s| s.len())
                    .ok_or(EvalError::UnknownFunc(sid.index()))?;
                for lane in 0..self.lanes {
                    if mask[lane] {
                        let i = Self::index_to_i64(idx[lane])?;
                        if i < 0 || i as usize >= len {
                            return Err(EvalError::OutOfBounds { index: i, len });
                        }
                        let arr = &mut self.shared[sid.index()];
                        let expected = arr[i as usize].ty();
                        if val[lane].ty() != expected {
                            return Err(EvalError::TypeMismatch {
                                expected,
                                found: val[lane].ty(),
                            });
                        }
                        arr[i as usize] = val[lane];
                    }
                }
                self.charge_shared_access(idx, mask)?;
                self.stats.stores += self.active_warp_ranges(mask).len() as u64;
            }
            MemRef::Param(_) => {
                let b = self.resolve_buffer(mem)?;
                if self.buffers[b].space == MemSpace::Constant {
                    return Err(EvalError::NotPure("store to constant memory"));
                }
                let base = self.buffers[b].base_addr;
                let len = self.buffers[b].data.len();
                let elem_ty = self.buffers[b].ty;
                for lane in 0..self.lanes {
                    if mask[lane] {
                        let i = Self::index_to_i64(idx[lane])?;
                        if i < 0 || i as usize >= len {
                            return Err(EvalError::OutOfBounds { index: i, len });
                        }
                        if val[lane].ty() != elem_ty {
                            return Err(EvalError::TypeMismatch {
                                expected: elem_ty,
                                found: val[lane].ty(),
                            });
                        }
                        self.buffers[b].data[i as usize] = val[lane];
                    }
                }
                // Coalescing for stores: one transaction per distinct line.
                let line = self.l1.line() as u64;
                for (start, end) in self.active_warp_ranges(mask) {
                    let mut segments: Vec<u64> = Vec::new();
                    for lane in start..end {
                        if mask[lane] {
                            let i = Self::index_to_i64(idx[lane])?;
                            let addr = base + (i as u64) * 4;
                            let seg = addr / line;
                            if !segments.contains(&seg) {
                                segments.push(seg);
                            }
                        }
                    }
                    self.stats.stores += 1;
                    self.stats.instructions += 1;
                    self.stats.memory_cycles +=
                        self.profile.store_lat * segments.len() as u64;
                }
            }
        }
        Ok(())
    }

    fn do_atomic(
        &mut self,
        op: paraprox_ir::AtomicOp,
        mem: MemRef,
        idx: &Lanes,
        val: &Lanes,
        mask: &Mask,
    ) -> Result<(), EvalError> {
        let bin = op.to_bin_op();
        let mut active = 0u64;
        for lane in 0..self.lanes {
            if mask[lane] {
                active += 1;
                let i = Self::index_to_i64(idx[lane])?;
                match mem {
                    MemRef::Shared(sid) => {
                        let arr = self
                            .shared
                            .get_mut(sid.index())
                            .ok_or(EvalError::UnknownFunc(sid.index()))?;
                        let len = arr.len();
                        if i < 0 || i as usize >= len {
                            return Err(EvalError::OutOfBounds { index: i, len });
                        }
                        let old = arr[i as usize];
                        arr[i as usize] = bin.apply(old, val[lane])?;
                    }
                    MemRef::Param(_) => {
                        let b = self.resolve_buffer(mem)?;
                        if self.buffers[b].space == MemSpace::Constant {
                            return Err(EvalError::NotPure("atomic on constant memory"));
                        }
                        let len = self.buffers[b].data.len();
                        if i < 0 || i as usize >= len {
                            return Err(EvalError::OutOfBounds { index: i, len });
                        }
                        let old = self.buffers[b].data[i as usize];
                        self.buffers[b].data[i as usize] = bin.apply(old, val[lane])?;
                    }
                }
            }
        }
        // Atomics fully serialize across active lanes.
        self.stats.atomics += active;
        self.stats.memory_cycles += self.profile.atomic_lat * active;
        self.stats.instructions += self.active_warp_ranges(mask).len() as u64;
        Ok(())
    }
}
