//! The virtual device: buffer management and kernel launching.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use paraprox_ir::{Func, Kernel, KernelId, MemSpace, Program, Scalar, Ty};

use crate::bytecode::{self, CompiledKernel};
use crate::cache::Cache;
use crate::error::LaunchError;
use crate::exec::{self, Launch};
use crate::profile::{DeviceProfile, ExecEngine};
use crate::stats::LaunchStats;

/// A two-dimensional grid or block shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dim2 {
    /// Extent in x (the fast axis; threads of a warp are consecutive in x).
    pub x: usize,
    /// Extent in y.
    pub y: usize,
}

impl Dim2 {
    /// Create a shape.
    pub fn new(x: usize, y: usize) -> Dim2 {
        Dim2 { x, y }
    }

    /// A one-dimensional shape.
    pub fn linear(x: usize) -> Dim2 {
        Dim2 { x, y: 1 }
    }

    /// Total element count.
    pub fn count(&self) -> usize {
        self.x * self.y
    }
}

impl std::fmt::Display for Dim2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// Handle to a device buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferId(pub(crate) usize);

impl BufferId {
    /// Raw index of the buffer on its device.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A kernel launch argument.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArgValue {
    /// A device buffer, bound to a buffer parameter.
    Buffer(BufferId),
    /// A scalar, bound to a scalar parameter.
    Scalar(Scalar),
}

impl From<BufferId> for ArgValue {
    fn from(b: BufferId) -> ArgValue {
        ArgValue::Buffer(b)
    }
}

impl From<Scalar> for ArgValue {
    fn from(s: Scalar) -> ArgValue {
        ArgValue::Scalar(s)
    }
}

#[derive(Debug)]
pub(crate) struct BufferStorage {
    pub ty: Ty,
    pub space: MemSpace,
    pub base_addr: u64,
    pub data: Vec<Scalar>,
}

impl Clone for BufferStorage {
    fn clone(&self) -> BufferStorage {
        BufferStorage {
            ty: self.ty,
            space: self.space,
            base_addr: self.base_addr,
            data: self.data.clone(),
        }
    }

    /// Allocation-reusing refresh: `Vec::clone_from` on a worker image
    /// dispatches here per buffer, so repeated launches (a serving loop)
    /// refill the existing heap blocks instead of reallocating an arena
    /// copy per worker per launch.
    fn clone_from(&mut self, source: &BufferStorage) {
        self.ty = source.ty;
        self.space = source.space;
        self.base_addr = source.base_addr;
        self.data.clear();
        self.data.extend_from_slice(&source.data);
    }
}

/// Upper bound on cached compiled kernels; past it the cache is cleared
/// (a backstop for pathological kernel-generating loops, far above what
/// the tuner's candidate sweeps produce).
const PROGRAM_CACHE_CAP: usize = 1024;

/// One verified entry of the compiled-program cache: the structural key
/// (kernel plus every function of its program, cloned at insert time), the
/// shared compiled artifact, the per-pc dynamic execution counters the
/// profiling launch fills, and — once a profiled launch has completed —
/// the fused superinstruction artifact every later launch runs.
#[derive(Debug)]
struct CacheEntry {
    kernel: Kernel,
    funcs: Vec<Func>,
    compiled: Arc<CompiledKernel>,
    /// Dynamic execution count per pc, bumped (for fusion-candidate pcs
    /// only) during the first launch of this entry.
    counts: Arc<Vec<AtomicU64>>,
    /// Profile-guided fused artifact, built after the first successful
    /// launch. `None` until then.
    fused: Option<Arc<CompiledKernel>>,
}

/// One cache entry borrowed out for a single launch: the artifacts plus
/// the `(key, idx)` handle needed to store a freshly fused artifact back
/// after the profiling launch completes.
#[derive(Clone)]
pub(crate) struct ProgramHandle {
    key: u64,
    idx: usize,
    pub(crate) compiled: Arc<CompiledKernel>,
    pub(crate) counts: Arc<Vec<AtomicU64>>,
    pub(crate) fused: Option<Arc<CompiledKernel>>,
}

impl ProgramHandle {
    /// Stable identity of the cache entry this handle points at, used to
    /// deduplicate post-launch fusion across the segments of a fused
    /// batch.
    pub(crate) fn entry_id(&self) -> (u64, usize) {
        (self.key, self.idx)
    }
}

/// Per-device cache of bytecode-compiled kernels, keyed by *structural*
/// identity (the kernel and its program's functions), so the tuner's
/// repeated launches of the same candidate — across different `Program`
/// allocations, buffer bindings, and launch geometries — compile exactly
/// once. Hash collisions fall back to a full structural comparison, so a
/// hit is never wrong; `NaN` literals (where `PartialEq` is stricter than
/// the bit-pattern hash) at worst force a recompile.
///
/// The cache deliberately survives [`Device::reclaim_buffers`] and
/// [`Device::flush_caches`]: compiled programs reference no buffers and
/// model no simulated state.
#[derive(Debug, Default)]
struct ProgramCache {
    entries: HashMap<u64, Vec<CacheEntry>>,
    len: usize,
    compiles: u64,
}

impl ProgramCache {
    fn get_or_compile(
        &mut self,
        program: &Program,
        kernel: &Kernel,
        profile: &DeviceProfile,
    ) -> ProgramHandle {
        let mut h = DefaultHasher::new();
        kernel.hash(&mut h);
        for (_, f) in program.funcs() {
            f.hash(&mut h);
        }
        let key = h.finish();
        if let Some(list) = self.entries.get(&key) {
            for (idx, e) in list.iter().enumerate() {
                if e.kernel == *kernel
                    && e.funcs.len() == program.func_count()
                    && program.funcs().all(|(id, f)| e.funcs[id.0] == *f)
                {
                    return ProgramHandle {
                        key,
                        idx,
                        compiled: Arc::clone(&e.compiled),
                        counts: Arc::clone(&e.counts),
                        fused: e.fused.as_ref().map(Arc::clone),
                    };
                }
            }
        }
        let compiled = Arc::new(bytecode::compile_kernel(program, kernel, profile));
        let counts: Arc<Vec<AtomicU64>> = Arc::new(
            (0..compiled.op_count())
                .map(|_| AtomicU64::new(0))
                .collect(),
        );
        self.compiles += 1;
        if self.len >= PROGRAM_CACHE_CAP {
            self.entries.clear();
            self.len = 0;
        }
        let list = self.entries.entry(key).or_default();
        list.push(CacheEntry {
            kernel: kernel.clone(),
            funcs: program.funcs().map(|(_, f)| f.clone()).collect(),
            compiled: Arc::clone(&compiled),
            counts: Arc::clone(&counts),
            fused: None,
        });
        let idx = list.len() - 1;
        self.len += 1;
        ProgramHandle {
            key,
            idx,
            compiled,
            counts,
            fused: None,
        }
    }

    /// Attach the fused artifact produced after a profiling launch. The
    /// `(key, idx)` handle is stable for the duration of one launch call
    /// (entries are only removed by the wholesale cap clear, which cannot
    /// run mid-launch); the defensive lookups cover the theoretical miss.
    fn store_fused(&mut self, key: u64, idx: usize, fused: Arc<CompiledKernel>) {
        if let Some(e) = self.entries.get_mut(&key).and_then(|l| l.get_mut(idx)) {
            e.fused = Some(fused);
        }
    }
}

/// A virtual device: owns buffers, caches, a compiled-program cache, and a
/// [`DeviceProfile`], and executes kernel launches.
#[derive(Debug)]
pub struct Device {
    pub(crate) profile: DeviceProfile,
    pub(crate) buffers: Vec<BufferStorage>,
    next_addr: u64,
    l1: Cache,
    constant_cache: Cache,
    programs: ProgramCache,
    /// When set, intra-block store *application order* is permuted
    /// per-block (see [`Device::set_schedule_seed`]).
    pub(crate) schedule_seed: Option<u64>,
    /// Profile-guided superinstruction fusion for the bytecode engine
    /// (default on; disabled by the `PARAPROX_NO_FUSE` environment
    /// variable or [`Device::set_fusion`]).
    pub(crate) fusion: bool,
    /// Per-worker buffer images, retained across launches so a serving
    /// loop reuses the allocations instead of cloning the arena per
    /// launch (see [`Device::pooled_images`]).
    pub(crate) image_pool: Vec<Vec<BufferStorage>>,
    /// Probability in `[0, 1]` that a lane-load from a
    /// [`MemSpace::Approx`] buffer suffers a single-bit flip (see
    /// [`Device::set_approx_rate`]). 0.0 — the default — injects nothing.
    pub(crate) approx_rate: f64,
    /// Seed for the deterministic bit-flip stream (see
    /// [`Device::set_approx_seed`]).
    pub(crate) approx_seed: u64,
    /// Worker-image refresh accounting (see
    /// [`Device::image_refresh_copies`]).
    refresh: exec::RefreshCounters,
}

impl Device {
    /// Create a device with the given profile.
    pub fn new(profile: DeviceProfile) -> Device {
        let l1 = Cache::new(profile.cache.l1);
        let constant_cache = Cache::new(profile.cache.constant);
        Device {
            profile,
            buffers: Vec::new(),
            next_addr: 0,
            l1,
            constant_cache,
            programs: ProgramCache::default(),
            schedule_seed: None,
            fusion: fusion_from_env(),
            image_pool: Vec::new(),
            approx_rate: 0.0,
            approx_seed: 0,
            refresh: exec::RefreshCounters::default(),
        }
    }

    /// Set the bit-error rate of buffers placed in [`MemSpace::Approx`]:
    /// the probability, per lane-load, that the loaded value suffers one
    /// flipped bit. Injection is deterministic — derived from the approx
    /// seed, the block id, and a per-block access counter — so results are
    /// bit-identical at any worker count, and rate `0.0` (the default) is
    /// bit-identical to exact memory. Values are clamped to `[0, 1]`;
    /// non-finite rates are treated as 0.
    ///
    /// Buffers in every other space are never touched, whatever the rate.
    pub fn set_approx_rate(&mut self, rate: f64) {
        self.approx_rate = if rate.is_finite() {
            rate.clamp(0.0, 1.0)
        } else {
            0.0
        };
    }

    /// The current approximate-memory bit-error rate.
    pub fn approx_rate(&self) -> f64 {
        self.approx_rate
    }

    /// Seed the deterministic bit-flip stream for approximate memory.
    /// Different seeds draw different (still deterministic) error
    /// patterns; the default is 0.
    pub fn set_approx_seed(&mut self, seed: u64) {
        self.approx_seed = seed;
    }

    /// Enable or disable profile-guided superinstruction fusion for the
    /// bytecode engine. The default comes from the `PARAPROX_NO_FUSE`
    /// environment variable (set it non-empty and not `0` to disable).
    /// Fusion never changes results: fused and unfused execution are
    /// bit-identical in buffers, simulated cycles, and cache statistics.
    pub fn set_fusion(&mut self, on: bool) {
        self.fusion = on;
    }

    /// Number of per-worker buffer images currently pooled. Parallel
    /// launches clone the buffer arena once per host worker; the device
    /// keeps those images and refreshes them in place on the next launch,
    /// so back-to-back requests (a tuning sweep, a serving loop) pay the
    /// copy but not the allocation. The pool deliberately survives
    /// [`Device::reclaim_buffers`]; call [`Device::clear_image_pool`] to
    /// release the memory.
    pub fn pooled_images(&self) -> usize {
        self.image_pool.len()
    }

    /// Drop the pooled per-worker buffer images (roughly one arena copy
    /// per host worker). The next parallel launch re-creates them.
    pub fn clear_image_pool(&mut self) {
        self.image_pool.clear();
    }

    /// Permute the order in which the lanes of a block apply their stores
    /// (a per-block Fisher-Yates shuffle derived from `seed`). The SIMT
    /// model says a correct kernel must not observe this order, so for
    /// race-free kernels results stay bit-identical for every seed — and a
    /// divergence between seeds is a dynamic witness of an intra-block
    /// race. `None` (the default) restores the canonical lane order.
    pub fn set_schedule_seed(&mut self, seed: Option<u64>) {
        self.schedule_seed = seed;
    }

    /// Number of bytecode compilations this device has performed. A kernel
    /// launched repeatedly (tuner sweeps, pipeline re-runs) compiles once;
    /// this counter lets tests assert that.
    pub fn compile_count(&self) -> u64 {
        self.programs.compiles
    }

    /// The device's profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Allocate a zero-initialized buffer of `len` elements of `ty` in
    /// `space`.
    pub fn alloc_zeroed(&mut self, space: MemSpace, ty: Ty, len: usize) -> BufferId {
        self.alloc_scalars(space, ty, vec![Scalar::zero(ty); len])
    }

    /// Allocate a buffer initialized from `f32` data.
    pub fn alloc_f32(&mut self, space: MemSpace, data: &[f32]) -> BufferId {
        self.alloc_scalars(
            space,
            Ty::F32,
            data.iter().map(|&v| Scalar::F32(v)).collect(),
        )
    }

    /// Allocate a buffer initialized from `i32` data.
    pub fn alloc_i32(&mut self, space: MemSpace, data: &[i32]) -> BufferId {
        self.alloc_scalars(
            space,
            Ty::I32,
            data.iter().map(|&v| Scalar::I32(v)).collect(),
        )
    }

    /// Allocate a buffer initialized from `u32` data.
    pub fn alloc_u32(&mut self, space: MemSpace, data: &[u32]) -> BufferId {
        self.alloc_scalars(
            space,
            Ty::U32,
            data.iter().map(|&v| Scalar::U32(v)).collect(),
        )
    }

    fn alloc_scalars(&mut self, space: MemSpace, ty: Ty, data: Vec<Scalar>) -> BufferId {
        let mut next = self.next_addr;
        let id = self.alloc_scalars_at(space, ty, data, &mut next);
        self.next_addr = next;
        id
    }

    /// Allocate a buffer whose simulated address comes from an external
    /// counter instead of the device's own `next_addr`. A fused batch
    /// gives every job its *own* counter, seeded from the device's current
    /// `next_addr`, so each job sees exactly the base addresses (and hence
    /// the cache-set behavior) it would have seen running alone — jobs
    /// have private simulated caches, so overlapping address spaces are
    /// unobservable.
    pub(crate) fn alloc_scalars_at(
        &mut self,
        space: MemSpace,
        ty: Ty,
        data: Vec<Scalar>,
        next_addr: &mut u64,
    ) -> BufferId {
        let id = BufferId(self.buffers.len());
        // Align each buffer to a 256-byte boundary so buffers never share
        // cache lines.
        let bytes = (data.len() as u64) * 4;
        let base_addr = *next_addr;
        *next_addr = (base_addr + bytes + 255) & !255;
        self.buffers.push(BufferStorage {
            ty,
            space,
            base_addr,
            data,
        });
        id
    }

    /// Overwrite a buffer's contents with `f32` data.
    ///
    /// # Errors
    ///
    /// Fails when the buffer is unknown, has a different element type, or a
    /// different length.
    pub fn write_f32(&mut self, id: BufferId, data: &[f32]) -> Result<(), LaunchError> {
        let buf = self
            .buffers
            .get_mut(id.0)
            .ok_or(LaunchError::UnknownBuffer(id.0))?;
        if buf.ty != Ty::F32 {
            return Err(LaunchError::BufferTypeMismatch {
                expected: Ty::F32,
                found: buf.ty,
            });
        }
        if buf.data.len() != data.len() {
            return Err(LaunchError::BufferSizeMismatch {
                supplied: data.len(),
                len: buf.data.len(),
            });
        }
        for (slot, &v) in buf.data.iter_mut().zip(data) {
            *slot = Scalar::F32(v);
        }
        Ok(())
    }

    /// Read a buffer back as `f32`s.
    ///
    /// # Errors
    ///
    /// Fails when the buffer is unknown or holds a different element type.
    pub fn read_f32(&self, id: BufferId) -> Result<Vec<f32>, LaunchError> {
        let buf = self
            .buffers
            .get(id.0)
            .ok_or(LaunchError::UnknownBuffer(id.0))?;
        if buf.ty != Ty::F32 {
            return Err(LaunchError::BufferTypeMismatch {
                expected: Ty::F32,
                found: buf.ty,
            });
        }
        buf.data
            .iter()
            .map(|s| {
                s.as_f32().map_err(|_| LaunchError::BufferTypeMismatch {
                    expected: Ty::F32,
                    found: s.ty(),
                })
            })
            .collect()
    }

    /// Read a buffer back as `i32`s.
    ///
    /// # Errors
    ///
    /// Fails when the buffer is unknown or holds a different element type.
    pub fn read_i32(&self, id: BufferId) -> Result<Vec<i32>, LaunchError> {
        let buf = self
            .buffers
            .get(id.0)
            .ok_or(LaunchError::UnknownBuffer(id.0))?;
        if buf.ty != Ty::I32 {
            return Err(LaunchError::BufferTypeMismatch {
                expected: Ty::I32,
                found: buf.ty,
            });
        }
        buf.data
            .iter()
            .map(|s| {
                s.as_i32().map_err(|_| LaunchError::BufferTypeMismatch {
                    expected: Ty::I32,
                    found: s.ty(),
                })
            })
            .collect()
    }

    /// Read a buffer back as raw scalars.
    ///
    /// # Errors
    ///
    /// Fails when the buffer id is unknown.
    pub fn read_scalars(&self, id: BufferId) -> Result<&[Scalar], LaunchError> {
        self.buffers
            .get(id.0)
            .map(|b| b.data.as_slice())
            .ok_or(LaunchError::UnknownBuffer(id.0))
    }

    /// Number of elements in a buffer.
    ///
    /// # Errors
    ///
    /// Fails when the buffer id is unknown.
    pub fn buffer_len(&self, id: BufferId) -> Result<usize, LaunchError> {
        self.buffers
            .get(id.0)
            .map(|b| b.data.len())
            .ok_or(LaunchError::UnknownBuffer(id.0))
    }

    /// The memory space a buffer was allocated in.
    ///
    /// # Errors
    ///
    /// Fails when the buffer id is unknown.
    pub fn buffer_space(&self, id: BufferId) -> Result<MemSpace, LaunchError> {
        self.buffers
            .get(id.0)
            .map(|b| b.space)
            .ok_or(LaunchError::UnknownBuffer(id.0))
    }

    /// An opaque marker of the current buffer arena, for
    /// [`Device::reclaim_buffers`].
    pub fn buffer_mark(&self) -> (usize, u64) {
        (self.buffers.len(), self.next_addr)
    }

    /// Free every buffer allocated after `mark` and flush the caches —
    /// the moral equivalent of tearing down a context after a kernel
    /// invocation. Long-running tuning/deployment loops call this between
    /// pipeline executions so the buffer arena does not grow without bound.
    ///
    /// Handles returned by allocations after the mark become invalid.
    pub fn reclaim_buffers(&mut self, mark: (usize, u64)) {
        let (len, next_addr) = mark;
        self.buffers.truncate(len);
        self.next_addr = next_addr;
        self.flush_caches();
    }

    /// Drop all cache contents (between independent experiments).
    pub fn flush_caches(&mut self) {
        self.l1.flush();
        self.constant_cache.flush();
    }

    /// Launch `kernel` of `program` over `grid` blocks of `block` threads.
    ///
    /// Returns the accumulated [`LaunchStats`]. Buffer contents are mutated
    /// in place. Caches stay warm across launches; call
    /// [`Device::flush_caches`] for cold-cache experiments.
    ///
    /// # Errors
    ///
    /// Fails on arity/type mismatches between `args` and the kernel's
    /// parameters, zero-sized launches, shared-memory oversubscription, or
    /// any runtime evaluation error (out-of-bounds access, divergent
    /// barrier, type error, division by zero).
    pub fn launch(
        &mut self,
        program: &Program,
        kernel: KernelId,
        grid: Dim2,
        block: Dim2,
        args: &[ArgValue],
    ) -> Result<LaunchStats, LaunchError> {
        self.launch_overwriting(program, kernel, grid, block, args, &[])
    }

    /// Per-buffer data copies performed while refreshing pooled worker
    /// images, cumulative over the device's lifetime. Together with
    /// [`Device::image_refresh_skips`] this exposes the cost of the
    /// parallel path's per-launch arena refresh; serial launches (one
    /// worker) never refresh and count nothing.
    pub fn image_refresh_copies(&self) -> u64 {
        self.refresh
            .copies
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Per-buffer data copies *skipped* during pooled worker-image
    /// refresh because the launch declared the buffer input-overwritten
    /// (see [`Device::launch_overwriting`]), cumulative.
    pub fn image_refresh_skips(&self) -> u64 {
        self.refresh
            .skips
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// [`Device::launch`], plus a declaration that the buffers bound to
    /// the parameter indices in `overwritten_params` are
    /// *input-overwritten*: the kernel writes them without ever reading
    /// them, so their pre-launch contents are unobservable. Repeated
    /// launches of the same compiled program (a convergence loop's
    /// ping-pong buffers, a serving loop's output buffers) then skip the
    /// redundant per-worker image copy for those buffers.
    ///
    /// The declaration is *verified*, not trusted: a parameter whose
    /// buffer the kernel loads from — or targets with an atomic, which
    /// reads — is rejected with [`LaunchError::ArgMismatch`], as is an
    /// index that is out of range or names a scalar parameter. Results
    /// are always bit-identical to [`Device::launch`].
    pub fn launch_overwriting(
        &mut self,
        program: &Program,
        kernel: KernelId,
        grid: Dim2,
        block: Dim2,
        args: &[ArgValue],
        overwritten_params: &[usize],
    ) -> Result<LaunchStats, LaunchError> {
        let k = program.kernel(kernel);
        self.validate_launch(k, grid, block, args)?;
        let mut overwritten = Vec::with_capacity(overwritten_params.len());
        for &pi in overwritten_params {
            let reject = |reason: String| {
                Err(LaunchError::ArgMismatch {
                    kernel: k.name.clone(),
                    index: pi,
                    reason,
                })
            };
            if pi >= k.params.len() {
                return reject(format!(
                    "overwritten declaration names parameter {pi} of a {}-parameter kernel",
                    k.params.len()
                ));
            }
            let ArgValue::Buffer(id) = args[pi] else {
                return reject("overwritten declaration names a scalar parameter".to_string());
            };
            if kernel_reads_param(k, pi) {
                return reject(format!(
                    "parameter {pi} is declared input-overwritten but the kernel reads it"
                ));
            }
            overwritten.push(id.0);
        }
        let handle = match crate::profile::resolve_engine(self.profile.engine) {
            ExecEngine::Bytecode => Some(self.programs.get_or_compile(program, k, &self.profile)),
            ExecEngine::TreeWalk => None,
        };
        // Pick the artifact: the fused one when available, otherwise the
        // base artifact — profiling pair frequencies on the way when this
        // is the entry's first (fusion-enabled) launch.
        let (compiled, profiling): (Option<&CompiledKernel>, bool) = match &handle {
            Some(h) if !self.fusion => (Some(&h.compiled), false),
            Some(h) => match &h.fused {
                Some(f) => (Some(f), false),
                None => (Some(&h.compiled), true),
            },
            None => (None, false),
        };
        let launch = Launch {
            profile: &self.profile,
            program,
            kernel: k,
            args,
            grid,
            block,
            compiled,
            schedule_seed: self.schedule_seed,
            profile_counts: match (&handle, profiling) {
                (Some(h), true) => Some(&h.counts[..]),
                _ => None,
            },
            approx_threshold: exec::approx_threshold(self.approx_rate),
            approx_seed: self.approx_seed,
            overwritten: &overwritten,
        };
        let result = exec::run_launch(
            &launch,
            &mut self.buffers,
            &mut self.l1,
            &mut self.constant_cache,
            &mut self.image_pool,
            &self.refresh,
        );
        // After a successful profiling launch, fuse the hot pairs and
        // cache the artifact; every later launch of this entry dispatches
        // the superinstructions. Errored launches skip fusing (their
        // counts may cover only a prefix of execution). The atomic counts
        // are worker-count independent: the *set* of executed pcs is
        // deterministic, and fusion only asks which counts are non-zero.
        if result.is_ok() && profiling {
            if let Some(h) = &handle {
                self.store_fused_from_counts(h);
            }
        }
        result
    }

    /// Validate a launch shape and argument list against a kernel's
    /// signature and this device's buffers and limits — the same checks
    /// [`Device::launch`] performs, shared with the fused batch executor.
    pub(crate) fn validate_launch(
        &self,
        k: &Kernel,
        grid: Dim2,
        block: Dim2,
        args: &[ArgValue],
    ) -> Result<(), LaunchError> {
        if grid.count() == 0 || block.count() == 0 {
            return Err(LaunchError::EmptyLaunch);
        }
        if args.len() != k.params.len() {
            return Err(LaunchError::ArityMismatch {
                kernel: k.name.clone(),
                expected: k.params.len(),
                found: args.len(),
            });
        }
        for (i, (arg, param)) in args.iter().zip(&k.params).enumerate() {
            match (arg, param) {
                (ArgValue::Buffer(id), paraprox_ir::Param::Buffer { ty, space, .. }) => {
                    let buf = self
                        .buffers
                        .get(id.0)
                        .ok_or(LaunchError::UnknownBuffer(id.0))?;
                    if buf.ty != *ty {
                        return Err(LaunchError::ArgMismatch {
                            kernel: k.name.clone(),
                            index: i,
                            reason: format!(
                                "buffer element type {} does not match parameter type {ty}",
                                buf.ty
                            ),
                        });
                    }
                    if !buf.space.binds_to(*space) {
                        return Err(LaunchError::ArgMismatch {
                            kernel: k.name.clone(),
                            index: i,
                            reason: format!(
                                "buffer lives in {} memory, parameter declares {space}",
                                buf.space
                            ),
                        });
                    }
                }
                (ArgValue::Scalar(s), paraprox_ir::Param::Scalar { ty, .. }) => {
                    if s.ty() != *ty {
                        return Err(LaunchError::ArgMismatch {
                            kernel: k.name.clone(),
                            index: i,
                            reason: format!(
                                "scalar argument type {} does not match parameter type {ty}",
                                s.ty()
                            ),
                        });
                    }
                }
                _ => {
                    return Err(LaunchError::ArgMismatch {
                        kernel: k.name.clone(),
                        index: i,
                        reason: "argument kind (buffer vs scalar) mismatch".to_string(),
                    });
                }
            }
        }
        let shared_bytes: usize = k.shared.iter().map(|s| s.len * 4).sum();
        if shared_bytes > self.profile.shared_mem_bytes {
            return Err(LaunchError::SharedMemoryExceeded {
                requested: shared_bytes,
                available: self.profile.shared_mem_bytes,
            });
        }
        Ok(())
    }

    /// Look up (or compile) the bytecode artifact for `kernel` of
    /// `program` under the device's resolved engine. `None` means the
    /// tree-walking engine is active.
    pub(crate) fn program_handle(
        &mut self,
        program: &Program,
        k: &Kernel,
    ) -> Option<ProgramHandle> {
        match crate::profile::resolve_engine(self.profile.engine) {
            ExecEngine::Bytecode => Some(self.programs.get_or_compile(program, k, &self.profile)),
            ExecEngine::TreeWalk => None,
        }
    }

    /// Build the fused superinstruction artifact from a handle's filled
    /// profiling counters and store it on the cache entry.
    pub(crate) fn store_fused_from_counts(&mut self, h: &ProgramHandle) {
        let snapshot: Vec<u64> = h.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        let fused = Arc::new(h.compiled.fuse(&snapshot));
        self.programs.store_fused(h.key, h.idx, fused);
    }
}

/// Whether a kernel ever *reads* buffer parameter `pi`: a load from it,
/// or an atomic targeting it (atomics read-modify-write). Device
/// functions take scalar arguments only, so a walk over the kernel body
/// — including loop bounds and branch conditions, which
/// [`paraprox_ir::visit::for_each_expr_in_stmts`] covers — is complete.
fn kernel_reads_param(k: &Kernel, pi: usize) -> bool {
    use paraprox_ir::{for_each_expr_in_stmts, for_each_stmt, Expr, MemRef, Stmt};
    let mut reads = false;
    for_each_expr_in_stmts(&k.body, &mut |e| {
        if let Expr::Load {
            mem: MemRef::Param(i),
            ..
        } = e
        {
            reads |= *i == pi;
        }
    });
    for_each_stmt(&k.body, &mut |s| {
        if let Stmt::Atomic {
            mem: MemRef::Param(i),
            ..
        } = s
        {
            reads |= *i == pi;
        }
    });
    reads
}

/// Fusion default from the environment: `PARAPROX_NO_FUSE` set to a
/// non-empty value other than `0` disables fusion (same trim/ignore idiom
/// as `PARAPROX_ENGINE`/`PARAPROX_THREADS`).
fn fusion_from_env() -> bool {
    match std::env::var("PARAPROX_NO_FUSE") {
        Ok(v) => {
            let t = v.trim();
            t.is_empty() || t == "0"
        }
        Err(_) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_ir::{Expr, KernelBuilder};

    #[test]
    fn dim2_counts() {
        assert_eq!(Dim2::new(4, 3).count(), 12);
        assert_eq!(Dim2::linear(7).count(), 7);
        assert!(!Dim2::new(1, 1).to_string().is_empty());
    }

    #[test]
    fn alloc_read_roundtrip() {
        let mut d = Device::new(DeviceProfile::gtx560());
        let b = d.alloc_f32(MemSpace::Global, &[1.0, 2.0]);
        assert_eq!(d.read_f32(b).unwrap(), vec![1.0, 2.0]);
        assert_eq!(d.buffer_len(b).unwrap(), 2);
        let i = d.alloc_i32(MemSpace::Global, &[3, 4]);
        assert_eq!(d.read_i32(i).unwrap(), vec![3, 4]);
        assert!(d.read_f32(i).is_err());
    }

    #[test]
    fn write_validates_shape_and_type() {
        let mut d = Device::new(DeviceProfile::gtx560());
        let b = d.alloc_f32(MemSpace::Global, &[0.0; 4]);
        assert!(d.write_f32(b, &[1.0; 4]).is_ok());
        assert!(d.write_f32(b, &[1.0; 3]).is_err());
        let i = d.alloc_i32(MemSpace::Global, &[0; 2]);
        assert!(d.write_f32(i, &[0.0; 2]).is_err());
    }

    #[test]
    fn launch_validates_args() {
        let mut program = Program::new();
        let mut kb = KernelBuilder::new("k");
        let _buf = kb.buffer("b", Ty::F32, MemSpace::Global);
        let _n = kb.scalar("n", Ty::I32);
        let kid = program.add_kernel(kb.finish());

        let mut d = Device::new(DeviceProfile::gtx560());
        let b = d.alloc_f32(MemSpace::Global, &[0.0; 4]);
        let wrong_ty = d.alloc_i32(MemSpace::Global, &[0; 4]);

        // Correct launch.
        assert!(d
            .launch(
                &program,
                kid,
                Dim2::linear(1),
                Dim2::linear(4),
                &[b.into(), Scalar::I32(4).into()]
            )
            .is_ok());
        // Arity.
        assert!(matches!(
            d.launch(&program, kid, Dim2::linear(1), Dim2::linear(4), &[b.into()]),
            Err(LaunchError::ArityMismatch { .. })
        ));
        // Buffer type.
        assert!(matches!(
            d.launch(
                &program,
                kid,
                Dim2::linear(1),
                Dim2::linear(4),
                &[wrong_ty.into(), Scalar::I32(4).into()]
            ),
            Err(LaunchError::ArgMismatch { .. })
        ));
        // Scalar type.
        assert!(matches!(
            d.launch(
                &program,
                kid,
                Dim2::linear(1),
                Dim2::linear(4),
                &[b.into(), Scalar::F32(4.0).into()]
            ),
            Err(LaunchError::ArgMismatch { .. })
        ));
        // Kind mismatch.
        assert!(matches!(
            d.launch(
                &program,
                kid,
                Dim2::linear(1),
                Dim2::linear(4),
                &[Scalar::I32(0).into(), Scalar::I32(4).into()]
            ),
            Err(LaunchError::ArgMismatch { .. })
        ));
        // Empty launch.
        assert!(matches!(
            d.launch(
                &program,
                kid,
                Dim2::new(0, 1),
                Dim2::linear(4),
                &[b.into(), Scalar::I32(4).into()]
            ),
            Err(LaunchError::EmptyLaunch)
        ));
    }

    #[test]
    fn space_mismatch_rejected() {
        let mut program = Program::new();
        let mut kb = KernelBuilder::new("k");
        let buf = kb.buffer("b", Ty::F32, MemSpace::Constant);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let _ = kb.let_("v", kb.load(buf, gid));
        let kid = program.add_kernel(kb.finish());
        let mut d = Device::new(DeviceProfile::gtx560());
        let global_buf = d.alloc_f32(MemSpace::Global, &[0.0; 4]);
        assert!(matches!(
            d.launch(
                &program,
                kid,
                Dim2::linear(1),
                Dim2::linear(4),
                &[global_buf.into()]
            ),
            Err(LaunchError::ArgMismatch { .. })
        ));
    }

    #[test]
    fn shared_memory_limit_enforced() {
        let mut program = Program::new();
        let mut kb = KernelBuilder::new("k");
        let _ = kb.shared_array("big", Ty::F32, 1 << 20);
        let kid = program.add_kernel(kb.finish());
        let mut d = Device::new(DeviceProfile::gtx560());
        assert!(matches!(
            d.launch(&program, kid, Dim2::linear(1), Dim2::linear(32), &[]),
            Err(LaunchError::SharedMemoryExceeded { .. })
        ));
    }

    #[test]
    fn worker_image_pool_is_retained_across_launches() {
        let mut program = Program::new();
        let mut kb = KernelBuilder::new("k");
        let buf = kb.buffer("b", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let v = kb.let_("v", kb.load(buf, gid.clone()));
        kb.store(buf, gid, v + Expr::f32(1.0));
        let kid = program.add_kernel(kb.finish());

        // Serial device: no images needed.
        let mut serial = Device::new(DeviceProfile::gtx560().with_parallelism(1));
        let sb = serial.alloc_f32(MemSpace::Global, &[0.0; 64]);
        serial
            .launch(
                &program,
                kid,
                Dim2::linear(4),
                Dim2::linear(16),
                &[sb.into()],
            )
            .unwrap();
        assert_eq!(serial.pooled_images(), 0);

        // Parallel device: one image per worker, retained and reused.
        let mut par = Device::new(DeviceProfile::gtx560().with_parallelism(3));
        let pb = par.alloc_f32(MemSpace::Global, &[0.0; 64]);
        for round in 1..=3u32 {
            par.launch(
                &program,
                kid,
                Dim2::linear(4),
                Dim2::linear(16),
                &[pb.into()],
            )
            .unwrap();
            assert_eq!(par.pooled_images(), 3, "pool must not grow past workers");
            assert_eq!(par.read_f32(pb).unwrap(), vec![round as f32; 64]);
        }
        assert_eq!(serial.read_f32(sb).unwrap(), vec![1.0; 64]);
        par.clear_image_pool();
        assert_eq!(par.pooled_images(), 0);
    }

    #[test]
    fn overwritten_declaration_skips_image_refresh() {
        // Ping-pong copy kernel: reads `src`, writes `dst`, never reads
        // `dst` — the loop-carried shape a convergence loop launches every
        // iteration.
        let mut program = Program::new();
        let mut kb = KernelBuilder::new("pingpong");
        let src = kb.buffer("src", Ty::F32, MemSpace::Global);
        let dst = kb.buffer("dst", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let v = kb.let_("v", kb.load(src, gid.clone()));
        kb.store(dst, gid, v + Expr::f32(1.0));
        let kid = program.add_kernel(kb.finish());

        let mut d = Device::new(DeviceProfile::gtx560().with_parallelism(3));
        let a = d.alloc_f32(MemSpace::Global, &[0.0; 64]);
        let b = d.alloc_f32(MemSpace::Global, &[0.0; 64]);
        let mut bufs = [a, b];
        for round in 1..=4u32 {
            let [cur, next] = bufs;
            d.launch_overwriting(
                &program,
                kid,
                Dim2::linear(4),
                Dim2::linear(16),
                &[cur.into(), next.into()],
                &[1],
            )
            .unwrap();
            assert_eq!(d.pooled_images(), 3, "pool must not grow past workers");
            assert_eq!(d.read_f32(next).unwrap(), vec![round as f32; 64]);
            bufs.swap(0, 1);
        }
        // First launch clones the whole arena into each of the 3 fresh
        // images (2 buffers each); the 3 later launches skip the declared
        // buffer and copy only the other one.
        assert_eq!(d.image_refresh_copies(), 3 * 2 + 3 * 3);
        assert_eq!(d.image_refresh_skips(), 3 * 3);

        // The skip is metadata-only: results match a plain-launch run.
        let mut exact = Device::new(DeviceProfile::gtx560().with_parallelism(3));
        let ea = exact.alloc_f32(MemSpace::Global, &[0.0; 64]);
        let eb = exact.alloc_f32(MemSpace::Global, &[0.0; 64]);
        let mut ebufs = [ea, eb];
        for _ in 0..4 {
            let [cur, next] = ebufs;
            exact
                .launch(
                    &program,
                    kid,
                    Dim2::linear(4),
                    Dim2::linear(16),
                    &[cur.into(), next.into()],
                )
                .unwrap();
            ebufs.swap(0, 1);
        }
        assert_eq!(exact.image_refresh_skips(), 0);
        assert_eq!(
            d.read_f32(bufs[0]).unwrap(),
            exact.read_f32(ebufs[0]).unwrap()
        );
        assert_eq!(
            d.read_f32(bufs[1]).unwrap(),
            exact.read_f32(ebufs[1]).unwrap()
        );
    }

    #[test]
    fn overwritten_declaration_is_verified() {
        // In-place kernel: reads and writes the same buffer, so declaring
        // it overwritten must be rejected; so must out-of-range and scalar
        // parameter indices.
        let mut program = Program::new();
        let mut kb = KernelBuilder::new("inplace");
        let buf = kb.buffer("b", Ty::F32, MemSpace::Global);
        let _n = kb.scalar("n", Ty::I32);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let v = kb.let_("v", kb.load(buf, gid.clone()));
        kb.store(buf, gid, v + Expr::f32(1.0));
        let kid = program.add_kernel(kb.finish());

        let mut d = Device::new(DeviceProfile::gtx560().with_parallelism(2));
        let b = d.alloc_f32(MemSpace::Global, &[0.0; 32]);
        let args = [b.into(), Scalar::I32(32).into()];
        let shape = (Dim2::linear(1), Dim2::linear(32));
        for bad in [&[0usize][..], &[1], &[2]] {
            assert!(matches!(
                d.launch_overwriting(&program, kid, shape.0, shape.1, &args, bad),
                Err(LaunchError::ArgMismatch { .. })
            ));
        }
        // An atomic target counts as a read too.
        let mut program2 = Program::new();
        let mut kb = KernelBuilder::new("atomic");
        let out = kb.buffer("out", Ty::I32, MemSpace::Global);
        kb.atomic(paraprox_ir::AtomicOp::Add, out, Expr::i32(0), Expr::i32(1));
        let kid2 = program2.add_kernel(kb.finish());
        let o = d.alloc_i32(MemSpace::Global, &[0; 4]);
        assert!(matches!(
            d.launch_overwriting(
                &program2,
                kid2,
                Dim2::linear(1),
                Dim2::linear(4),
                &[o.into()],
                &[0]
            ),
            Err(LaunchError::ArgMismatch { .. })
        ));
        // A rejected declaration leaves the device usable.
        d.launch(&program, kid, shape.0, shape.1, &args).unwrap();
    }

    #[test]
    fn buffers_do_not_share_cache_lines() {
        let mut d = Device::new(DeviceProfile::gtx560());
        let _a = d.alloc_f32(MemSpace::Global, &[0.0; 3]);
        let b = d.alloc_f32(MemSpace::Global, &[0.0; 3]);
        // Second buffer starts at a 256-byte boundary.
        assert_eq!(d.buffers[b.0].base_addr % 256, 0);
        assert!(d.buffers[b.0].base_addr >= 256);
    }

    #[test]
    fn launch_stats_returned() {
        let mut program = Program::new();
        let mut kb = KernelBuilder::new("k");
        let buf = kb.buffer("b", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let v = kb.let_("v", kb.load(buf, gid.clone()));
        kb.store(buf, gid, v + Expr::f32(1.0));
        let kid = program.add_kernel(kb.finish());
        let mut d = Device::new(DeviceProfile::gtx560());
        let b = d.alloc_f32(MemSpace::Global, &[0.0; 64]);
        let stats = d
            .launch(
                &program,
                kid,
                Dim2::linear(2),
                Dim2::linear(32),
                &[b.into()],
            )
            .unwrap();
        assert_eq!(stats.blocks, 2);
        assert_eq!(stats.warps, 2);
        assert!(stats.loads > 0);
        assert!(stats.total_cycles() > 0);
        assert_eq!(d.read_f32(b).unwrap(), vec![1.0; 64]);
    }
}
