//! Launch-time errors.

use std::error::Error;
use std::fmt;

use paraprox_ir::{EvalError, Ty};

/// Errors raised while preparing or executing a kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub enum LaunchError {
    /// Argument count did not match the kernel's parameter list.
    ArityMismatch {
        /// Kernel name.
        kernel: String,
        /// Parameters declared.
        expected: usize,
        /// Arguments supplied.
        found: usize,
    },
    /// An argument's kind or type did not match its parameter.
    ArgMismatch {
        /// Kernel name.
        kernel: String,
        /// Parameter index.
        index: usize,
        /// Explanation of the mismatch.
        reason: String,
    },
    /// A buffer id did not belong to this device.
    UnknownBuffer(usize),
    /// A host read/write did not match the buffer's length.
    BufferSizeMismatch {
        /// Elements supplied.
        supplied: usize,
        /// Elements in the buffer.
        len: usize,
    },
    /// A buffer was read back as the wrong element type.
    BufferTypeMismatch {
        /// Requested element type.
        expected: Ty,
        /// Actual element type.
        found: Ty,
    },
    /// The kernel requested more shared memory than the device has.
    SharedMemoryExceeded {
        /// Bytes requested.
        requested: usize,
        /// Bytes available per block.
        available: usize,
    },
    /// Grid or block dimensions were zero.
    EmptyLaunch,
    /// A runtime evaluation error inside the kernel, with thread context.
    Eval {
        /// Kernel name.
        kernel: String,
        /// Underlying evaluation error.
        source: EvalError,
    },
}

impl fmt::Display for LaunchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaunchError::ArityMismatch {
                kernel,
                expected,
                found,
            } => write!(
                f,
                "kernel `{kernel}` expects {expected} arguments, got {found}"
            ),
            LaunchError::ArgMismatch {
                kernel,
                index,
                reason,
            } => write!(f, "kernel `{kernel}` argument {index}: {reason}"),
            LaunchError::UnknownBuffer(id) => write!(f, "unknown buffer id {id}"),
            LaunchError::BufferSizeMismatch { supplied, len } => {
                write!(
                    f,
                    "host data of {supplied} elements does not match buffer of {len}"
                )
            }
            LaunchError::BufferTypeMismatch { expected, found } => {
                write!(f, "buffer holds {found}, requested {expected}")
            }
            LaunchError::SharedMemoryExceeded {
                requested,
                available,
            } => write!(
                f,
                "kernel requests {requested} bytes of shared memory, device has {available}"
            ),
            LaunchError::EmptyLaunch => write!(f, "grid and block dimensions must be nonzero"),
            LaunchError::Eval { kernel, source } => {
                write!(f, "evaluation error in kernel `{kernel}`: {source}")
            }
        }
    }
}

impl Error for LaunchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LaunchError::Eval { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty_and_source_wired() {
        let e = LaunchError::Eval {
            kernel: "k".into(),
            source: EvalError::DivisionByZero,
        };
        assert!(!e.to_string().is_empty());
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&LaunchError::EmptyLaunch).is_none());
    }
}
