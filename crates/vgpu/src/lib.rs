//! A deterministic SIMT virtual device for executing kernel IR.
//!
//! This crate is the hardware substitute in the Paraprox reproduction: it
//! plays the role of the NVIDIA GTX 560 and Intel Core i7 965 that the
//! paper measures on. Kernels written in [`paraprox_ir`] are executed by a
//! lockstep warp interpreter with:
//!
//! * per-thread divergence masks for `if`/`for` (SIMT semantics),
//! * global, shared, and constant memory spaces,
//! * an L1 cache and a constant cache (set-associative, LRU),
//! * memory-coalescing transaction counting per warp,
//! * shared-memory bank-conflict modeling,
//! * atomic-operation serialization,
//! * a per-instruction latency table supplied by a [`DeviceProfile`].
//!
//! Independent thread blocks execute concurrently on host worker threads
//! (see [`DeviceProfile::parallelism`] and the `PARAPROX_THREADS`
//! environment variable); results, simulated cycles, and cache statistics
//! are bit-identical for every worker count.
//!
//! Two execution engines are available (see [`ExecEngine`] and the
//! `PARAPROX_ENGINE` environment variable): the default *bytecode* engine
//! compiles each kernel once to a register-machine instruction stream
//! (cached per device, shared across launches and pool workers), and the
//! *tree-walking* engine interprets the AST directly and serves as the
//! reference oracle. Both produce bit-identical results, simulated cycles,
//! and cache statistics; only host wall-clock time differs.
//!
//! Executing a kernel yields both its *results* (buffer contents) and its
//! *cost* ([`LaunchStats`], in device cycles). All speedups reported by the
//! reproduction are ratios of simulated cycles on the same profile, mirroring
//! the paper's "relative to exact execution on the same architecture"
//! baseline.
//!
//! # Example
//!
//! ```
//! use paraprox_ir::{KernelBuilder, MemSpace, Program, Ty};
//! use paraprox_vgpu::{ArgValue, Device, DeviceProfile, Dim2};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut program = Program::new();
//! let mut kb = KernelBuilder::new("double");
//! let data = kb.buffer("data", Ty::F32, MemSpace::Global);
//! let gid = kb.let_("gid", KernelBuilder::global_id_x());
//! let v = kb.let_("v", kb.load(data, gid.clone()));
//! kb.store(data, gid, v * paraprox_ir::Expr::f32(2.0));
//! let kernel = program.add_kernel(kb.finish());
//!
//! let mut device = Device::new(DeviceProfile::gtx560());
//! let buf = device.alloc_f32(MemSpace::Global, &[1.0, 2.0, 3.0, 4.0]);
//! let stats = device.launch(
//!     &program,
//!     kernel,
//!     Dim2::new(1, 1),
//!     Dim2::new(4, 1),
//!     &[ArgValue::Buffer(buf)],
//! )?;
//! assert_eq!(device.read_f32(buf)?, vec![2.0, 4.0, 6.0, 8.0]);
//! assert!(stats.total_cycles() > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bytecode;
mod cache;
mod device;
mod error;
mod exec;
mod fused;
mod mask;
mod plan;
mod pool;
mod profile;
mod soa;
mod stats;

pub use bytecode::{compile_kernel, CompiledKernel};
pub use cache::{Cache, CacheConfig};
pub use device::{ArgValue, BufferId, Device, Dim2};
pub use error::LaunchError;
pub use fused::{execute_fused, FusedJob};
pub use plan::{BufferInit, BufferSpec, LaunchPlan, Pipeline, PipelineRun, PlanArg};
pub use profile::{DeviceKind, DeviceProfile, ExecEngine};
pub use stats::LaunchStats;
