//! Register-machine bytecode backend for the SIMT interpreter.
//!
//! [`compile_kernel`] lowers a [`Kernel`] and every device function it
//! (transitively) calls into one flat instruction stream over numbered
//! virtual registers: control flow becomes resolved jumps, locals and
//! parameters become pre-resolved register/bank slots, and constant
//! subexpressions are folded at compile time. The executor ([`execute`])
//! runs the stream against a preallocated register file of lane vectors
//! that is reused across statements, blocks, and launches — no `Box<Expr>`
//! chasing and almost no per-expression allocation.
//!
//! # Oracle contract
//!
//! The bytecode engine must be **bit-identical** to the tree-walking
//! interpreter in `exec.rs`: same buffer contents, same simulated cycle
//! counts, same cache statistics, and the same runtime error on invalid
//! programs. Every op therefore charges exactly what the corresponding
//! tree-walker step charges, in an order that preserves all observable
//! state:
//!
//! * memory ops delegate to the same `ExecCtx::do_*` routines, so the
//!   (stateful, order-sensitive) cache/LRU traffic is untouched;
//! * pure compute charges are order-insensitive sums per mask, which is
//!   what makes compile-time constant folding safe: a folded subtree's
//!   charges are re-charged in one [`Op::FoldedConst`] at its use site
//!   under the same mask ([`Op::FoldedConst::lat`]/`count` carry the sum);
//! * compile-time-detectable errors (e.g. `Return` in a kernel body, a
//!   load inside a pure function) become [`Op::Trap`]s placed at the exact
//!   point in evaluation order where the tree-walker would raise them.
//!
//! The single *documented deviation*: unbounded recursion through device
//! functions overflows the host stack in the tree-walker, while the
//! bytecode engine reports [`EvalError::IterationLimit`] at a fixed call
//! depth ([`CALL_DEPTH_LIMIT`]).
//!
//! # Register file layout
//!
//! Registers and masks live in per-frame *windows* of a single growable
//! arena. A kernel frame is `[locals | temps]`; a function frame is
//! `[locals | params | retval | temps]`. Mask windows reserve slot 0 for
//! the frame's base (all-true for kernels, the call mask for functions)
//! and, in function frames, slot 1 for the returned-lanes mask. Operand
//! encodings with the high bit set ([`BANK_FLAG`]) index the constant
//! bank: per-block read-only rows holding literals, scalar kernel
//! arguments, and thread-coordinate specials.

use std::sync::atomic::{AtomicU64, Ordering};

use paraprox_ir::{
    AtomicOp, BinOp, CmpOp, EvalError, Expr, Func, FuncId, Kernel, LoopCond, LoopStep, MemRef,
    Program, Scalar, Special, Stmt, Ty, UnOp,
};

use crate::exec::{ExecCtx, FILLER, ITERATION_BUDGET};
use crate::mask::LaneMask;
use crate::profile::DeviceProfile;
use crate::soa::{
    bin_fast, bin_fast_eligible, bin_needs_divisor_scan, cast_fast, cmp_fast, cmp_one, has_zero,
    tag_of_ty, tag_ty, un_fast, un_fast_eligible, RegRow, TAG_BOOL, TAG_MIXED,
};

/// Operand encodings at or above this value index the constant bank;
/// below it they are window-relative register numbers.
const BANK_FLAG: u16 = 0x8000;

/// Maximum device-function call depth. The tree-walking oracle recurses on
/// the host stack and would abort the process instead; this engine turns
/// runaway recursion into a reportable error.
const CALL_DEPTH_LIMIT: usize = 1024;

/// A constant-bank entry: a per-block read-only lane row, filled once per
/// block by the executor's prepare step (which charges nothing, exactly
/// like the tree-walker's leaf evaluations).
#[derive(Debug, Clone, Copy)]
enum BankEntry {
    /// A literal: every lane holds the value.
    Const(Scalar),
    /// A scalar kernel argument, resolved from the launch args.
    ScalarParam(usize),
    /// A thread/block coordinate, computed per lane.
    Special(Special),
}

/// Bit-pattern key for float-exact constant deduplication (`NaN` payloads
/// and signed zeroes stay distinct).
fn scalar_key(v: Scalar) -> (Ty, u32) {
    match v {
        Scalar::F32(x) => (Ty::F32, x.to_bits()),
        Scalar::I32(x) => (Ty::I32, x as u32),
        Scalar::U32(x) => (Ty::U32, x),
        Scalar::Bool(x) => (Ty::Bool, u32::from(x)),
    }
}

/// Per-frame register/mask window geometry.
#[derive(Debug, Clone, Copy, Default)]
struct FrameMeta {
    /// Number of local-variable slots (window-relative `0..n_locals`).
    n_locals: u16,
    /// Number of parameter slots (functions only; kernels read scalar
    /// params from the bank).
    n_params: u16,
    /// Total register-window size including temporaries.
    regs: u16,
    /// Total mask-window size including temporaries.
    masks: u16,
}

/// Compiled metadata for one device function.
#[derive(Debug, Clone)]
struct FuncMeta {
    name: String,
    /// Entry pc of the function's body in the shared op stream.
    entry: usize,
    frame: FrameMeta,
    /// Declared parameter types, for the call-site argument type check.
    param_tys: Box<[Ty]>,
}

/// One bytecode instruction.
///
/// `m`/`ml`/`t`/`f`/`base`/`live` are window-relative mask slots;
/// `dst`/`src`/`a`/`b`/`cond`/`idx`/`val`/`bound`/`amount` are operand
/// encodings (register or [`BANK_FLAG`]-tagged bank index); jump targets
/// (`skip*`/`exit`/`head`) are absolute pcs resolved at compile time.
///
/// The `Fused*` variants are superinstructions produced by
/// [`CompiledKernel::fuse`]: one dispatch executes both constituent ops
/// back to back with the exact charges, lane loops, and error order of
/// the unfused pair, then advances the pc by two (the second op stays in
/// the stream as unreachable padding so absolute jump targets survive).
#[derive(Debug, Clone)]
enum Op {
    /// Unary compute: charge `unop_lat`, then apply per active lane.
    Unary { m: u16, op: UnOp, dst: u16, a: u16 },
    /// Binary compute: float/int latency resolved from the first active
    /// lane of `a` (matching the tree-walker), then apply per lane.
    Binary {
        m: u16,
        op: BinOp,
        dst: u16,
        a: u16,
        b: u16,
    },
    /// Comparison: charge `alu_lat`, apply per lane.
    Cmp {
        m: u16,
        op: CmpOp,
        dst: u16,
        a: u16,
        b: u16,
    },
    /// Type conversion: charge `alu_lat`, cast per lane.
    Cast { m: u16, ty: Ty, dst: u16, a: u16 },
    /// Re-charge a constant-folded subtree (`lat` summed cycles, `count`
    /// folded instructions) and materialize its value at active lanes.
    FoldedConst {
        m: u16,
        dst: u16,
        value: Scalar,
        lat: u64,
        count: u64,
    },
    /// Fail with `UninitializedVar(var)` unless local `local` was written.
    GuardInit { local: u16, var: u32 },
    /// Write `src` into local `local`: full copy on first write (the
    /// tree-walker stores the whole vector), masked copy afterwards.
    StoreLocal { m: u16, local: u16, src: u16 },
    /// `if`: charge branch `alu_lat`, split `m` by `cond` into `t`/`f`,
    /// and jump to `skip_t` (the matching [`Op::IfElse`]) if `t` is empty.
    IfSplit {
        m: u16,
        cond: u16,
        t: u16,
        f: u16,
        skip_t: u32,
    },
    /// End of a then-arm: jump past the else-arm if `f` is empty.
    IfElse { f: u16, skip: u32 },
    /// `select`: like [`Op::IfSplit`] but also clears `dst` to filler.
    SelSplit {
        m: u16,
        cond: u16,
        t: u16,
        f: u16,
        dst: u16,
        skip_t: u32,
    },
    /// Merge one select arm's value into `dst` at the arm's lanes.
    SelMerge { m: u16, dst: u16, src: u16 },
    /// End of a select true-arm: jump past the false-arm if `f` is empty.
    SelElse { f: u16, skip: u32 },
    /// Loop entry: derive the loop mask `ml` from `m` (minus returned
    /// lanes in function frames) and exit if empty.
    ForPrep {
        m: u16,
        ml: u16,
        func: bool,
        exit: u32,
    },
    /// Loop test: charge `alu_lat`, refine `ml` by `var COND bound`, exit
    /// if empty, else consume one launch-wide iteration-budget token.
    ForTest {
        ml: u16,
        local: u16,
        var: u32,
        cmp: CmpOp,
        bound: u16,
        exit: u32,
    },
    /// After a loop body in a function frame: drop returned lanes.
    ForPrune { ml: u16, exit: u32 },
    /// Loop update: charge `alu_lat`, apply `var = var OP amount`, jump
    /// back to the loop head (the bound evaluation).
    ForStep {
        ml: u16,
        local: u16,
        var: u32,
        op: BinOp,
        amount: u16,
        head: u32,
    },
    /// Function-frame statement prologue: `live = base ∧ ¬returned`; jump
    /// to the end of the statement list if no lane is live.
    Live { base: u16, live: u16, exit: u32 },
    /// Memory load via `ExecCtx::do_load_into` (same charging/caches).
    Load {
        m: u16,
        mem: MemRef,
        idx: u16,
        dst: u16,
    },
    /// Memory store via `ExecCtx::do_store`.
    Store {
        m: u16,
        mem: MemRef,
        idx: u16,
        val: u16,
    },
    /// Atomic read-modify-write via `ExecCtx::do_atomic`.
    AtomicStmt {
        m: u16,
        op: AtomicOp,
        mem: MemRef,
        idx: u16,
        val: u16,
    },
    /// Block-wide barrier: error unless the mask is fully converged.
    Sync { m: u16 },
    /// `Return` in a function: record value + returned flag per lane.
    RetWrite { m: u16, src: u16 },
    /// Device-function call: type-check args, charge call overhead, push
    /// a fresh register/mask window, and jump to the callee.
    Call {
        m: u16,
        func: u16,
        args: Box<[u16]>,
        dst: u16,
    },
    /// Function epilogue: `MissingReturn` check, copy the return vector
    /// to the caller's `dst`, pop the window, resume at the call site.
    FuncRet { func: u16 },
    /// Raise a compile-time-detected evaluation error at runtime, at the
    /// exact point in evaluation order the tree-walker would raise it.
    Trap(Box<EvalError>),
    /// End of the kernel body.
    Halt,
    /// Superinstruction: two dependent binaries (`dst2 <- (a1 OP1 b1) OP2
    /// ...`, the fmadd-like shape) under one dispatch.
    FusedBinBin {
        m: u16,
        op1: BinOp,
        dst1: u16,
        a1: u16,
        b1: u16,
        op2: BinOp,
        dst2: u16,
        a2: u16,
        b2: u16,
    },
    /// Superinstruction: a comparison feeding the branch split that
    /// consumes it (`if a OP b { .. }`).
    FusedCmpIf {
        m: u16,
        op: CmpOp,
        dst: u16,
        a: u16,
        b: u16,
        t: u16,
        f: u16,
        skip_t: u32,
    },
    /// Superinstruction: a load whose value is immediately converted.
    FusedLoadCast {
        m: u16,
        mem: MemRef,
        idx: u16,
        dst: u16,
        ty: Ty,
        dst2: u16,
    },
    /// Superinstruction: a binary whose result is immediately stored.
    FusedBinStore {
        m: u16,
        op: BinOp,
        dst: u16,
        a: u16,
        b: u16,
        mem: MemRef,
        idx: u16,
    },
}

/// A kernel compiled to bytecode, shareable read-only across pool workers
/// (the device wraps it in an `Arc`). Independent of grid/block geometry:
/// one compilation serves every launch shape.
#[derive(Debug)]
pub struct CompiledKernel {
    ops: Vec<Op>,
    bank: Vec<BankEntry>,
    frame: FrameMeta,
    funcs: Vec<FuncMeta>,
    name: String,
    /// Per-pc flag: the op at pc and its successor form a fusable pair
    /// (the executor profiles dynamic execution counts at exactly these
    /// pcs; see [`CompiledKernel::fuse`]).
    candidates: Vec<bool>,
    /// True for artifacts produced by [`CompiledKernel::fuse`].
    fused: bool,
}

impl CompiledKernel {
    /// Number of instructions in the compiled stream (kernel body plus all
    /// reachable device functions).
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Human-readable disassembly: bank contents, then one line per op
    /// with opcode, registers, and resolved jump targets. Function entry
    /// points are marked inline.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "kernel `{}`{}: {} ops, regs={} masks={} locals={}",
            self.name,
            if self.fused { " (fused)" } else { "" },
            self.ops.len(),
            self.frame.regs,
            self.frame.masks,
            self.frame.n_locals
        );
        if !self.bank.is_empty() {
            let _ = writeln!(s, "bank:");
            for (i, e) in self.bank.iter().enumerate() {
                let desc = match e {
                    BankEntry::Const(v) => format!("const {v}"),
                    BankEntry::ScalarParam(p) => format!("scalar param p{p}"),
                    BankEntry::Special(sp) => format!("{sp}"),
                };
                let _ = writeln!(s, "  b{i:<4} = {desc}");
            }
        }
        let _ = writeln!(s, "ops:");
        for (pc, op) in self.ops.iter().enumerate() {
            for f in &self.funcs {
                if f.entry == pc {
                    let _ = writeln!(
                        s,
                        "fn `{}`: regs={} masks={} locals={} params={}",
                        f.name, f.frame.regs, f.frame.masks, f.frame.n_locals, f.frame.n_params
                    );
                }
            }
            let _ = writeln!(s, "  {pc:>5}  {}", self.render_op(op));
        }
        s
    }

    fn render_op(&self, op: &Op) -> String {
        fn r(x: u16) -> String {
            if x & BANK_FLAG != 0 {
                format!("b{}", x & !BANK_FLAG)
            } else {
                format!("r{x}")
            }
        }
        match op {
            Op::Unary { m, op, dst, a } => {
                format!("{:<8} m{m} {} <- {}", op.name(), r(*dst), r(*a))
            }
            Op::Binary { m, op, dst, a, b } => {
                format!("{:<8} m{m} {} <- {} {}", op.name(), r(*dst), r(*a), r(*b))
            }
            Op::Cmp { m, op, dst, a, b } => {
                format!(
                    "cmp.{:<4} m{m} {} <- {} {}",
                    op.name(),
                    r(*dst),
                    r(*a),
                    r(*b)
                )
            }
            Op::Cast { m, ty, dst, a } => format!("cast.{ty:<3} m{m} {} <- {}", r(*dst), r(*a)),
            Op::FoldedConst {
                m,
                dst,
                value,
                lat,
                count,
            } => {
                format!(
                    "folded   m{m} {} <- {value} (lat {lat}, {count} ops)",
                    r(*dst)
                )
            }
            Op::GuardInit { local, var } => format!("guard    r{local} (v{var})"),
            Op::StoreLocal { m, local, src } => format!("stloc    m{m} r{local} <- {}", r(*src)),
            Op::IfSplit {
                m,
                cond,
                t,
                f,
                skip_t,
            } => {
                format!("if       m{m} {} -> t=m{t} f=m{f} else@{skip_t}", r(*cond))
            }
            Op::IfElse { f, skip } => format!("else     m{f} end@{skip}"),
            Op::SelSplit {
                m,
                cond,
                t,
                f,
                dst,
                skip_t,
            } => {
                format!(
                    "sel      m{m} {} -> t=m{t} f=m{f} dst={} else@{skip_t}",
                    r(*cond),
                    r(*dst)
                )
            }
            Op::SelMerge { m, dst, src } => format!("selmerge m{m} {} <- {}", r(*dst), r(*src)),
            Op::SelElse { f, skip } => format!("selelse  m{f} end@{skip}"),
            Op::ForPrep { m, ml, func, exit } => {
                format!(
                    "for      m{m} -> m{ml}{} exit@{exit}",
                    if *func { " (fn)" } else { "" }
                )
            }
            Op::ForTest {
                ml,
                local,
                cmp,
                bound,
                exit,
                ..
            } => {
                format!(
                    "fortest  m{ml} r{local} {} {} exit@{exit}",
                    cmp.name(),
                    r(*bound)
                )
            }
            Op::ForPrune { ml, exit } => format!("forprune m{ml} exit@{exit}"),
            Op::ForStep {
                ml,
                local,
                op,
                amount,
                head,
                ..
            } => {
                format!(
                    "forstep  m{ml} r{local} {}= {} head@{head}",
                    op.name(),
                    r(*amount)
                )
            }
            Op::Live { base, live, exit } => format!("live     m{live} <- m{base} end@{exit}"),
            Op::Load { m, mem, idx, dst } => {
                format!("load     m{m} {} <- {mem}[{}]", r(*dst), r(*idx))
            }
            Op::Store { m, mem, idx, val } => {
                format!("store    m{m} {mem}[{}] <- {}", r(*idx), r(*val))
            }
            Op::AtomicStmt {
                m,
                op,
                mem,
                idx,
                val,
            } => {
                format!("{:<8} m{m} {mem}[{}] <- {}", op.name(), r(*idx), r(*val))
            }
            Op::Sync { m } => format!("sync     m{m}"),
            Op::RetWrite { m, src } => format!("return   m{m} {}", r(*src)),
            Op::Call { m, func, args, dst } => {
                let f = &self.funcs[*func as usize];
                let args: Vec<String> = args.iter().map(|&a| r(a)).collect();
                format!(
                    "call     m{m} {} <- `{}`@{} ({})",
                    r(*dst),
                    f.name,
                    f.entry,
                    args.join(", ")
                )
            }
            Op::FuncRet { func } => format!("ret      `{}`", self.funcs[*func as usize].name),
            Op::Trap(e) => format!("trap     {e}"),
            Op::Halt => "halt".to_string(),
            Op::FusedBinBin {
                m,
                op1,
                dst1,
                a1,
                b1,
                op2,
                dst2,
                a2,
                b2,
            } => format!(
                "{:<8} m{m} {} <- {} {} ; {} <- {} {}",
                format!("{}+{}", op1.name(), op2.name()),
                r(*dst1),
                r(*a1),
                r(*b1),
                r(*dst2),
                r(*a2),
                r(*b2)
            ),
            Op::FusedCmpIf {
                m,
                op,
                dst,
                a,
                b,
                t,
                f,
                skip_t,
            } => format!(
                "{:<8} m{m} {} <- {} {} ; t=m{t} f=m{f} else@{skip_t}",
                format!("{}+if", op.name()),
                r(*dst),
                r(*a),
                r(*b)
            ),
            Op::FusedLoadCast {
                m,
                mem,
                idx,
                dst,
                ty,
                dst2,
            } => format!(
                "load+cast m{m} {} <- {mem}[{}] ; {} <- {ty}",
                r(*dst),
                r(*idx),
                r(*dst2)
            ),
            Op::FusedBinStore {
                m,
                op,
                dst,
                a,
                b,
                mem,
                idx,
            } => format!(
                "{:<8} m{m} {} <- {} {} ; {mem}[{}] <- {}",
                format!("{}+store", op.name()),
                r(*dst),
                r(*a),
                r(*b),
                r(*idx),
                r(*dst)
            ),
        }
    }

    /// Fuse every profiled pair whose dynamic execution count is non-zero
    /// into a superinstruction, producing a new artifact that shares no
    /// mutable state with `self`. The second op of each fused pair stays
    /// in the stream as unreachable padding (the fused handler advances
    /// the pc by two), so every absolute jump target stays valid.
    pub(crate) fn fuse(&self, counts: &[u64]) -> CompiledKernel {
        let mut ops = self.ops.clone();
        let mut pc = 0;
        while pc + 1 < ops.len() {
            if self.candidates[pc] && counts.get(pc).copied().unwrap_or(0) > 0 {
                if let Some(fused) = fuse_pair(&ops[pc], &ops[pc + 1]) {
                    ops[pc] = fused;
                    pc += 2;
                    continue;
                }
            }
            pc += 1;
        }
        let n = ops.len();
        CompiledKernel {
            ops,
            bank: self.bank.clone(),
            frame: self.frame,
            funcs: self.funcs.clone(),
            name: self.name.clone(),
            candidates: vec![false; n],
            fused: true,
        }
    }

    /// Fuse every statically fusable pair, ignoring profile counts. Used
    /// by the CLI disassembler to show what the profile-guided pass *can*
    /// produce without running the kernel.
    pub fn fuse_all(&self) -> CompiledKernel {
        let ones = vec![1u64; self.ops.len()];
        self.fuse(&ones)
    }

    /// The fused superinstructions of this artifact, one rendered line per
    /// fused op showing both constituent operations.
    pub fn superinstructions(&self) -> Vec<String> {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, op)| {
                matches!(
                    op,
                    Op::FusedBinBin { .. }
                        | Op::FusedCmpIf { .. }
                        | Op::FusedLoadCast { .. }
                        | Op::FusedBinStore { .. }
                )
            })
            .map(|(pc, op)| format!("{pc:>5}  {}", self.render_op(op)))
            .collect()
    }
}

/// Statically fuse one adjacent pair, or `None` if the shapes don't line
/// up. A pair is fusable when both ops run under the same mask slot and
/// the second consumes the first's destination.
fn fuse_pair(op1: &Op, op2: &Op) -> Option<Op> {
    match (op1, op2) {
        (
            Op::Binary { m, op, dst, a, b },
            Op::Binary {
                m: m2,
                op: op2,
                dst: dst2,
                a: a2,
                b: b2,
            },
        ) if m2 == m && (a2 == dst || b2 == dst) => Some(Op::FusedBinBin {
            m: *m,
            op1: *op,
            dst1: *dst,
            a1: *a,
            b1: *b,
            op2: *op2,
            dst2: *dst2,
            a2: *a2,
            b2: *b2,
        }),
        (
            Op::Cmp { m, op, dst, a, b },
            Op::IfSplit {
                m: m2,
                cond,
                t,
                f,
                skip_t,
            },
        ) if m2 == m && cond == dst => Some(Op::FusedCmpIf {
            m: *m,
            op: *op,
            dst: *dst,
            a: *a,
            b: *b,
            t: *t,
            f: *f,
            skip_t: *skip_t,
        }),
        (
            Op::Load { m, mem, idx, dst },
            Op::Cast {
                m: m2,
                ty,
                dst: dst2,
                a,
            },
        ) if m2 == m && a == dst => Some(Op::FusedLoadCast {
            m: *m,
            mem: *mem,
            idx: *idx,
            dst: *dst,
            ty: *ty,
            dst2: *dst2,
        }),
        (
            Op::Binary { m, op, dst, a, b },
            Op::Store {
                m: m2,
                mem,
                idx,
                val,
            },
        ) if m2 == m && val == dst => Some(Op::FusedBinStore {
            m: *m,
            op: *op,
            dst: *dst,
            a: *a,
            b: *b,
            mem: *mem,
            idx: *idx,
        }),
        _ => None,
    }
}

/// Compute the per-pc fusion-candidate flags for a freshly compiled
/// stream: pc is a candidate when `(ops[pc], ops[pc+1])` fuse statically
/// and pc+1 is not a jump target (nothing may enter the middle of a
/// superinstruction: branch/loop targets, call-return resume points, and
/// function entries all disqualify the pair).
fn fusion_candidates(ops: &[Op], funcs: &[FuncMeta]) -> Vec<bool> {
    let mut is_target = vec![false; ops.len() + 1];
    for f in funcs {
        is_target[f.entry] = true;
    }
    for (pc, op) in ops.iter().enumerate() {
        match op {
            Op::IfSplit { skip_t, .. } | Op::SelSplit { skip_t, .. } => {
                is_target[*skip_t as usize] = true;
            }
            Op::IfElse { skip, .. } | Op::SelElse { skip, .. } => {
                is_target[*skip as usize] = true;
            }
            Op::ForPrep { exit, .. }
            | Op::ForTest { exit, .. }
            | Op::ForPrune { exit, .. }
            | Op::Live { exit, .. } => is_target[*exit as usize] = true,
            Op::ForStep { head, .. } => is_target[*head as usize] = true,
            Op::Call { .. } => is_target[pc + 1] = true,
            Op::FusedCmpIf { skip_t, .. } => is_target[*skip_t as usize] = true,
            _ => {}
        }
    }
    let mut cand = vec![false; ops.len()];
    for pc in 0..ops.len().saturating_sub(1) {
        cand[pc] = !is_target[pc + 1] && fuse_pair(&ops[pc], &ops[pc + 1]).is_some();
    }
    cand
}

// ---------------------------------------------------------------------------
// Compiler
// ---------------------------------------------------------------------------

/// Result of compiling an expression: either a compile-time constant with
/// its pending (not yet charged) cost, or an operand holding the value.
enum Val {
    /// Constant-folded value; `lat`/`count` are the folded subtree's
    /// compute charges, re-charged on materialization.
    Folded { v: Scalar, lat: u64, count: u64 },
    /// Value lives in operand `r`; `temp` marks a freeable temporary.
    Reg { r: u16, temp: bool },
}

/// Per-frame compile state: temp allocation (free lists keep windows
/// small) and the definite-initialization facts used to elide
/// [`Op::GuardInit`]s.
struct FrameCtx {
    is_func: bool,
    n_locals: u16,
    n_params: u16,
    reg_top: u16,
    free_regs: Vec<u16>,
    mask_top: u16,
    free_masks: Vec<u16>,
    /// Locals proven initialized on every path reaching the current
    /// compile point (monotone per path; merged at joins).
    init: Vec<bool>,
}

impl FrameCtx {
    fn new_kernel(n_locals: usize) -> FrameCtx {
        FrameCtx {
            is_func: false,
            n_locals: n_locals as u16,
            n_params: 0,
            reg_top: n_locals as u16,
            free_regs: Vec::new(),
            mask_top: 1, // slot 0: all-true block mask
            free_masks: Vec::new(),
            init: vec![false; n_locals],
        }
    }

    fn new_func(n_locals: usize, n_params: usize) -> FrameCtx {
        FrameCtx {
            is_func: true,
            n_locals: n_locals as u16,
            n_params: n_params as u16,
            // locals | params | retval, then temps.
            reg_top: (n_locals + n_params + 1) as u16,
            free_regs: Vec::new(),
            mask_top: 2, // slot 0: call mask, slot 1: returned
            free_masks: Vec::new(),
            init: vec![false; n_locals],
        }
    }

    fn alloc_reg(&mut self) -> u16 {
        self.free_regs.pop().unwrap_or_else(|| {
            let r = self.reg_top;
            assert!(r < BANK_FLAG, "register window overflow");
            self.reg_top += 1;
            r
        })
    }

    fn free_reg(&mut self, r: u16) {
        debug_assert!(r & BANK_FLAG == 0);
        self.free_regs.push(r);
    }

    fn free_operand(&mut self, r: u16, temp: bool) {
        if temp {
            self.free_reg(r);
        }
    }

    fn alloc_mask(&mut self) -> u16 {
        self.free_masks.pop().unwrap_or_else(|| {
            let m = self.mask_top;
            self.mask_top += 1;
            m
        })
    }

    fn free_mask(&mut self, m: u16) {
        self.free_masks.push(m);
    }

    fn into_meta(self) -> FrameMeta {
        FrameMeta {
            n_locals: self.n_locals,
            n_params: self.n_params,
            regs: self.reg_top,
            masks: self.mask_top,
        }
    }
}

struct Compiler<'a> {
    program: &'a Program,
    kernel: &'a Kernel,
    profile: &'a DeviceProfile,
    ops: Vec<Op>,
    bank: Vec<BankEntry>,
    funcs: Vec<FuncMeta>,
    func_ids: Vec<FuncId>,
}

/// Compile `kernel` (of `program`) to bytecode. Infallible: errors the
/// tree-walker would raise at runtime (including on malformed IR) become
/// [`Op::Trap`]s at the corresponding evaluation position. `profile` is
/// only consulted for the latency sums attached to constant-folded
/// subtrees; the remaining latencies are read from the launching device's
/// profile at execution time.
pub fn compile_kernel(
    program: &Program,
    kernel: &Kernel,
    profile: &DeviceProfile,
) -> CompiledKernel {
    let mut c = Compiler {
        program,
        kernel,
        profile,
        ops: Vec::new(),
        bank: Vec::new(),
        funcs: Vec::new(),
        func_ids: Vec::new(),
    };
    let mut fr = FrameCtx::new_kernel(kernel.locals.len());
    c.compile_block(&kernel.body, 0, &mut fr);
    c.ops.push(Op::Halt);
    let frame = fr.into_meta();
    // Worklist: compile each referenced function exactly once; bodies may
    // discover further callees (appended to the list).
    let mut i = 0;
    while i < c.func_ids.len() {
        let f = program.func(c.func_ids[i]);
        let mut ffr = FrameCtx::new_func(f.locals.len(), f.params.len());
        c.funcs[i].entry = c.ops.len();
        c.compile_block(&f.body, 0, &mut ffr);
        c.ops.push(Op::FuncRet { func: i as u16 });
        c.funcs[i].frame = ffr.into_meta();
        i += 1;
    }
    let candidates = fusion_candidates(&c.ops, &c.funcs);
    CompiledKernel {
        ops: c.ops,
        bank: c.bank,
        frame,
        funcs: c.funcs,
        name: kernel.name.clone(),
        candidates,
        fused: false,
    }
}

impl<'a> Compiler<'a> {
    // ---- constant bank -------------------------------------------------

    fn bank_slot(&mut self, e: BankEntry) -> u16 {
        let pos = self.bank.iter().position(|x| match (x, &e) {
            (BankEntry::Const(a), BankEntry::Const(b)) => scalar_key(*a) == scalar_key(*b),
            (BankEntry::ScalarParam(a), BankEntry::ScalarParam(b)) => a == b,
            (BankEntry::Special(a), BankEntry::Special(b)) => a == b,
            _ => false,
        });
        let idx = pos.unwrap_or_else(|| {
            self.bank.push(e);
            self.bank.len() - 1
        });
        assert!(idx < BANK_FLAG as usize, "constant bank overflow");
        idx as u16 | BANK_FLAG
    }

    // ---- helpers -------------------------------------------------------

    /// Emit a trap and return a placeholder value for the unreachable
    /// continuation.
    fn trap(&mut self, e: EvalError) -> Val {
        self.ops.push(Op::Trap(Box::new(e)));
        Val::Folded {
            v: FILLER,
            lat: 0,
            count: 0,
        }
    }

    /// Turn a [`Val`] into an operand. Pure constants go to the bank;
    /// folded subtrees with pending charges are re-charged here, at their
    /// use site, under the use-site mask (safe because pure compute
    /// charges are an order-insensitive sum per mask).
    fn materialize(&mut self, v: Val, m: u16, fr: &mut FrameCtx) -> (u16, bool) {
        match v {
            Val::Reg { r, temp } => (r, temp),
            Val::Folded {
                v,
                lat: 0,
                count: 0,
            } => (self.bank_slot(BankEntry::Const(v)), false),
            Val::Folded { v, lat, count } => {
                let dst = fr.alloc_reg();
                self.ops.push(Op::FoldedConst {
                    m,
                    dst,
                    value: v,
                    lat,
                    count,
                });
                (dst, true)
            }
        }
    }

    fn compile_operand(&mut self, e: &Expr, m: u16, fr: &mut FrameCtx) -> (u16, bool) {
        let v = self.compile_expr(e, m, fr);
        self.materialize(v, m, fr)
    }

    // ---- expressions ---------------------------------------------------

    fn compile_expr(&mut self, e: &Expr, m: u16, fr: &mut FrameCtx) -> Val {
        match e {
            Expr::Const(v) => Val::Folded {
                v: *v,
                lat: 0,
                count: 0,
            },
            Expr::Var(v) => {
                let idx = v.index();
                assert!(idx < fr.n_locals as usize, "local {v} out of range");
                if !fr.init[idx] {
                    self.ops.push(Op::GuardInit {
                        local: idx as u16,
                        var: v.0,
                    });
                    fr.init[idx] = true;
                }
                Val::Reg {
                    r: idx as u16,
                    temp: false,
                }
            }
            Expr::Param(i) => {
                if fr.is_func {
                    if *i < fr.n_params as usize {
                        Val::Reg {
                            r: fr.n_locals + *i as u16,
                            temp: false,
                        }
                    } else {
                        // Arity was checked at the call site, so the frame
                        // holds exactly `n_params` argument vectors.
                        self.trap(EvalError::ArityMismatch {
                            expected: *i + 1,
                            found: 0,
                        })
                    }
                } else {
                    // Launch validation guarantees the runtime args match
                    // the declared params positionally, so the declaration
                    // decides which tree-walker error (if any) this read
                    // raises.
                    match self.kernel.params.get(*i) {
                        Some(paraprox_ir::Param::Scalar { .. }) => Val::Reg {
                            r: self.bank_slot(BankEntry::ScalarParam(*i)),
                            temp: false,
                        },
                        Some(paraprox_ir::Param::Buffer { .. }) => {
                            self.trap(EvalError::NotPure("buffer parameter read as a scalar"))
                        }
                        None => self.trap(EvalError::ArityMismatch {
                            expected: *i + 1,
                            found: self.kernel.params.len(),
                        }),
                    }
                }
            }
            Expr::Special(sp) => {
                if fr.is_func {
                    self.trap(EvalError::NotPure("thread special"))
                } else {
                    Val::Reg {
                        r: self.bank_slot(BankEntry::Special(*sp)),
                        temp: false,
                    }
                }
            }
            Expr::Unary(op, a) => {
                let va = self.compile_expr(a, m, fr);
                if let Val::Folded { v, lat, count } = va {
                    if let Ok(res) = op.apply(v) {
                        return Val::Folded {
                            v: res,
                            lat: lat + self.profile.unop_lat(*op),
                            count: count + 1,
                        };
                    }
                }
                let (ra, ta) = self.materialize(va, m, fr);
                let dst = fr.alloc_reg();
                self.ops.push(Op::Unary {
                    m,
                    op: *op,
                    dst,
                    a: ra,
                });
                fr.free_operand(ra, ta);
                Val::Reg { r: dst, temp: true }
            }
            Expr::Binary(op, a, b) => {
                let va = self.compile_expr(a, m, fr);
                let vb = self.compile_expr(b, m, fr);
                if let (
                    Val::Folded {
                        v: x,
                        lat: la,
                        count: ca,
                    },
                    Val::Folded {
                        v: y,
                        lat: lb,
                        count: cb,
                    },
                ) = (&va, &vb)
                {
                    if let Ok(res) = op.apply(*x, *y) {
                        return Val::Folded {
                            v: res,
                            lat: la + lb + self.profile.binop_lat(*op, x.ty() == Ty::F32),
                            count: ca + cb + 1,
                        };
                    }
                }
                let (ra, ta) = self.materialize(va, m, fr);
                let (rb, tb) = self.materialize(vb, m, fr);
                let dst = fr.alloc_reg();
                self.ops.push(Op::Binary {
                    m,
                    op: *op,
                    dst,
                    a: ra,
                    b: rb,
                });
                fr.free_operand(ra, ta);
                fr.free_operand(rb, tb);
                Val::Reg { r: dst, temp: true }
            }
            Expr::Cmp(op, a, b) => {
                let va = self.compile_expr(a, m, fr);
                let vb = self.compile_expr(b, m, fr);
                if let (
                    Val::Folded {
                        v: x,
                        lat: la,
                        count: ca,
                    },
                    Val::Folded {
                        v: y,
                        lat: lb,
                        count: cb,
                    },
                ) = (&va, &vb)
                {
                    if let Ok(res) = op.apply(*x, *y) {
                        return Val::Folded {
                            v: res,
                            lat: la + lb + self.profile.alu_lat,
                            count: ca + cb + 1,
                        };
                    }
                }
                let (ra, ta) = self.materialize(va, m, fr);
                let (rb, tb) = self.materialize(vb, m, fr);
                let dst = fr.alloc_reg();
                self.ops.push(Op::Cmp {
                    m,
                    op: *op,
                    dst,
                    a: ra,
                    b: rb,
                });
                fr.free_operand(ra, ta);
                fr.free_operand(rb, tb);
                Val::Reg { r: dst, temp: true }
            }
            Expr::Cast(ty, a) => {
                let va = self.compile_expr(a, m, fr);
                if let Val::Folded { v, lat, count } = va {
                    // Casts are infallible: always foldable.
                    return Val::Folded {
                        v: v.cast(*ty),
                        lat: lat + self.profile.alu_lat,
                        count: count + 1,
                    };
                }
                let (ra, ta) = self.materialize(va, m, fr);
                let dst = fr.alloc_reg();
                self.ops.push(Op::Cast {
                    m,
                    ty: *ty,
                    dst,
                    a: ra,
                });
                fr.free_operand(ra, ta);
                Val::Reg { r: dst, temp: true }
            }
            Expr::Select {
                cond,
                if_true,
                if_false,
            } => {
                let (rc, tc) = self.compile_operand(cond, m, fr);
                let t = fr.alloc_mask();
                let f = fr.alloc_mask();
                let dst = fr.alloc_reg();
                let split_at = self.ops.len();
                self.ops.push(Op::SelSplit {
                    m,
                    cond: rc,
                    t,
                    f,
                    dst,
                    skip_t: 0,
                });
                fr.free_operand(rc, tc);
                let saved = fr.init.clone();
                let (rt, tt) = self.compile_operand(if_true, t, fr);
                self.ops.push(Op::SelMerge { m: t, dst, src: rt });
                fr.free_operand(rt, tt);
                let t_init = std::mem::replace(&mut fr.init, saved.clone());
                let else_at = self.ops.len() as u32;
                if let Op::SelSplit { skip_t, .. } = &mut self.ops[split_at] {
                    *skip_t = else_at;
                }
                let else_op = self.ops.len();
                self.ops.push(Op::SelElse { f, skip: 0 });
                let (rf, tf) = self.compile_operand(if_false, f, fr);
                self.ops.push(Op::SelMerge { m: f, dst, src: rf });
                fr.free_operand(rf, tf);
                let end = self.ops.len() as u32;
                if let Op::SelElse { skip, .. } = &mut self.ops[else_op] {
                    *skip = end;
                }
                for (i, flag) in fr.init.iter_mut().enumerate() {
                    *flag = saved[i] || (t_init[i] && *flag);
                }
                fr.free_mask(t);
                fr.free_mask(f);
                Val::Reg { r: dst, temp: true }
            }
            Expr::Load { mem, index } => {
                if fr.is_func {
                    // The tree-walker evaluates the index (with all its
                    // charges and possible errors) before rejecting the
                    // load itself.
                    let vi = self.compile_expr(index, m, fr);
                    let (ri, ti) = self.materialize(vi, m, fr);
                    fr.free_operand(ri, ti);
                    return self.trap(EvalError::NotPure("load"));
                }
                let (ri, ti) = self.compile_operand(index, m, fr);
                let dst = fr.alloc_reg();
                self.ops.push(Op::Load {
                    m,
                    mem: *mem,
                    idx: ri,
                    dst,
                });
                fr.free_operand(ri, ti);
                Val::Reg { r: dst, temp: true }
            }
            Expr::Call { func, args } => {
                // Callee resolution precedes argument evaluation.
                let program = self.program;
                let Some((_, callee)) = program.funcs().find(|(id, _)| id == func) else {
                    return self.trap(EvalError::UnknownFunc(func.0));
                };
                let fidx = self.register_func(*func, callee);
                let mut regs = Vec::with_capacity(args.len());
                for a in args {
                    regs.push(self.compile_operand(a, m, fr));
                }
                if args.len() != callee.params.len() {
                    for (r, t) in regs {
                        fr.free_operand(r, t);
                    }
                    return self.trap(EvalError::ArityMismatch {
                        expected: callee.params.len(),
                        found: args.len(),
                    });
                }
                let dst = fr.alloc_reg();
                self.ops.push(Op::Call {
                    m,
                    func: fidx,
                    args: regs.iter().map(|&(r, _)| r).collect(),
                    dst,
                });
                for (r, t) in regs {
                    fr.free_operand(r, t);
                }
                Val::Reg { r: dst, temp: true }
            }
        }
    }

    fn register_func(&mut self, fid: FuncId, f: &Func) -> u16 {
        if let Some(i) = self.func_ids.iter().position(|&x| x == fid) {
            return i as u16;
        }
        self.func_ids.push(fid);
        self.funcs.push(FuncMeta {
            name: f.name.clone(),
            entry: 0,
            frame: FrameMeta::default(),
            param_tys: f.params.iter().map(|p| p.ty()).collect(),
        });
        assert!(
            self.funcs.len() <= u16::MAX as usize,
            "function table overflow"
        );
        (self.func_ids.len() - 1) as u16
    }

    // ---- statements ----------------------------------------------------

    /// Compile a statement list. Kernel frames run statements directly
    /// under the block mask; function frames prefix every statement with a
    /// [`Op::Live`] recomputing `mask ∧ ¬returned` (the tree-walker's
    /// per-statement live mask), exiting the list when no lane survives.
    fn compile_block(&mut self, stmts: &[Stmt], m: u16, fr: &mut FrameCtx) {
        if !fr.is_func {
            for s in stmts {
                self.compile_stmt(s, m, fr);
            }
            return;
        }
        let live = fr.alloc_mask();
        let mut live_ops = Vec::with_capacity(stmts.len());
        for s in stmts {
            live_ops.push(self.ops.len());
            self.ops.push(Op::Live {
                base: m,
                live,
                exit: 0,
            });
            self.compile_stmt(s, live, fr);
        }
        let end = self.ops.len() as u32;
        for i in live_ops {
            if let Op::Live { exit, .. } = &mut self.ops[i] {
                *exit = end;
            }
        }
        fr.free_mask(live);
    }

    fn compile_stmt(&mut self, stmt: &Stmt, m: u16, fr: &mut FrameCtx) {
        match stmt {
            Stmt::Let { var, init } | Stmt::Assign { var, value: init } => {
                let idx = var.index();
                assert!(idx < fr.n_locals as usize, "local {var} out of range");
                let (src, temp) = self.compile_operand(init, m, fr);
                self.ops.push(Op::StoreLocal {
                    m,
                    local: idx as u16,
                    src,
                });
                fr.free_operand(src, temp);
                fr.init[idx] = true;
            }
            Stmt::Store { mem, index, value } => {
                if fr.is_func {
                    // Rejected before operand evaluation, like the oracle.
                    self.trap(EvalError::NotPure("store"));
                    return;
                }
                let (ri, ti) = self.compile_operand(index, m, fr);
                let (rv, tv) = self.compile_operand(value, m, fr);
                self.ops.push(Op::Store {
                    m,
                    mem: *mem,
                    idx: ri,
                    val: rv,
                });
                fr.free_operand(ri, ti);
                fr.free_operand(rv, tv);
            }
            Stmt::Atomic {
                op,
                mem,
                index,
                value,
            } => {
                if fr.is_func {
                    self.trap(EvalError::NotPure("atomic"));
                    return;
                }
                let (ri, ti) = self.compile_operand(index, m, fr);
                let (rv, tv) = self.compile_operand(value, m, fr);
                self.ops.push(Op::AtomicStmt {
                    m,
                    op: *op,
                    mem: *mem,
                    idx: ri,
                    val: rv,
                });
                fr.free_operand(ri, ti);
                fr.free_operand(rv, tv);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let (rc, tc) = self.compile_operand(cond, m, fr);
                let t = fr.alloc_mask();
                let f = fr.alloc_mask();
                let split_at = self.ops.len();
                self.ops.push(Op::IfSplit {
                    m,
                    cond: rc,
                    t,
                    f,
                    skip_t: 0,
                });
                fr.free_operand(rc, tc);
                let saved = fr.init.clone();
                self.compile_block(then_body, t, fr);
                let t_init = std::mem::replace(&mut fr.init, saved.clone());
                let else_at = self.ops.len() as u32;
                if let Op::IfSplit { skip_t, .. } = &mut self.ops[split_at] {
                    *skip_t = else_at;
                }
                let else_op = self.ops.len();
                self.ops.push(Op::IfElse { f, skip: 0 });
                self.compile_block(else_body, f, fr);
                let end = self.ops.len() as u32;
                if let Op::IfElse { skip, .. } = &mut self.ops[else_op] {
                    *skip = end;
                }
                // A local is proven after the `if` when it was proven
                // before, or proven by *both* arms (at least one arm runs).
                for (i, flag) in fr.init.iter_mut().enumerate() {
                    *flag = saved[i] || (t_init[i] && *flag);
                }
                fr.free_mask(t);
                fr.free_mask(f);
            }
            Stmt::For {
                var,
                init,
                cond,
                step,
                body,
            } => {
                let idx = var.index();
                assert!(idx < fr.n_locals as usize, "local {var} out of range");
                let (src, temp) = self.compile_operand(init, m, fr);
                self.ops.push(Op::StoreLocal {
                    m,
                    local: idx as u16,
                    src,
                });
                fr.free_operand(src, temp);
                fr.init[idx] = true;
                // Bound/body/step may never execute: their init proofs are
                // discarded below.
                let saved = fr.init.clone();
                let ml = fr.alloc_mask();
                let mut exits = vec![self.ops.len()];
                self.ops.push(Op::ForPrep {
                    m,
                    ml,
                    func: fr.is_func,
                    exit: 0,
                });
                let head = self.ops.len() as u32;
                let cmp = match cond {
                    LoopCond::Lt(_) => CmpOp::Lt,
                    LoopCond::Le(_) => CmpOp::Le,
                    LoopCond::Gt(_) => CmpOp::Gt,
                    LoopCond::Ge(_) => CmpOp::Ge,
                };
                let (rb, tb) = self.compile_operand(cond.bound(), ml, fr);
                exits.push(self.ops.len());
                self.ops.push(Op::ForTest {
                    ml,
                    local: idx as u16,
                    var: var.0,
                    cmp,
                    bound: rb,
                    exit: 0,
                });
                fr.free_operand(rb, tb);
                self.compile_block(body, ml, fr);
                if fr.is_func {
                    exits.push(self.ops.len());
                    self.ops.push(Op::ForPrune { ml, exit: 0 });
                }
                let step_op = match step {
                    LoopStep::Add(_) => BinOp::Add,
                    LoopStep::Sub(_) => BinOp::Sub,
                    LoopStep::Mul(_) => BinOp::Mul,
                    LoopStep::Shl(_) => BinOp::Shl,
                    LoopStep::Shr(_) => BinOp::Shr,
                };
                let (ra, ta) = self.compile_operand(step.amount(), ml, fr);
                self.ops.push(Op::ForStep {
                    ml,
                    local: idx as u16,
                    var: var.0,
                    op: step_op,
                    amount: ra,
                    head,
                });
                fr.free_operand(ra, ta);
                let end = self.ops.len() as u32;
                for at in exits {
                    match &mut self.ops[at] {
                        Op::ForPrep { exit, .. }
                        | Op::ForTest { exit, .. }
                        | Op::ForPrune { exit, .. } => *exit = end,
                        _ => unreachable!("patched op is a loop op"),
                    }
                }
                fr.free_mask(ml);
                fr.init = saved;
            }
            Stmt::Sync => {
                if fr.is_func {
                    self.trap(EvalError::NotPure("sync"));
                } else {
                    self.ops.push(Op::Sync { m });
                }
            }
            Stmt::Return(e) => {
                if !fr.is_func {
                    // Checked before the value is evaluated.
                    self.trap(EvalError::NotPure("return in kernel body"));
                    return;
                }
                let (src, temp) = self.compile_operand(e, m, fr);
                self.ops.push(Op::RetWrite { m, src });
                fr.free_operand(src, temp);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

/// Saved caller state for one in-flight device-function call.
#[derive(Debug, Clone, Copy)]
struct CallCtx {
    /// pc to resume at after the callee returns.
    ret_pc: usize,
    /// *Absolute* register index receiving the return vector.
    ret_dst: usize,
    prev_reg_base: usize,
    prev_mask_base: usize,
    prev_regs: usize,
    prev_masks: usize,
    prev_func: usize,
}

/// Per-worker executor scratch: the register-file arena, mask arena,
/// constant-bank rows, and call stack. Reused across statements, blocks,
/// and launches so steady-state execution allocates nothing. Registers are
/// structure-of-arrays [`RegRow`]s (contiguous lane-major `u32` strips)
/// and masks are [`LaneMask`] bitsets, so converged ops run as typed slice
/// loops over raw bit patterns.
#[derive(Default)]
pub(crate) struct BcScratch {
    /// Register rows, stacked per frame window.
    regs: Vec<RegRow>,
    /// Runtime definite-init flag per register row (only local slots are
    /// consulted; mirrors the tree-walker's `Option<Lanes>` locals).
    init: Vec<bool>,
    /// Mask rows, stacked per frame window.
    masks: Vec<LaneMask>,
    /// Materialized constant-bank rows, refilled per block.
    bank: Vec<RegRow>,
    /// In-flight call frames.
    calls: Vec<CallCtx>,
    /// Recycled `u32` strip the typed full-mask loops write into before
    /// the destination row adopts it.
    fast: Vec<u32>,
}

/// Resolve an operand to its lane row (bank or register-window slot).
fn row(s: &BcScratch, base: usize, r: u16) -> &RegRow {
    if r & BANK_FLAG != 0 {
        &s.bank[(r & !BANK_FLAG) as usize]
    } else {
        &s.regs[base + r as usize]
    }
}

/// Apply a unary op. Converged uniform rows take the typed strip loop
/// (autovectorizable, infallible by [`un_fast_eligible`]); everything else
/// falls back to the per-lane scalar path with the tree-walker's exact
/// lane order, so error identity and position match the oracle.
fn apply_unary(
    op: UnOp,
    va: &RegRow,
    mask: &LaneMask,
    out: &mut RegRow,
    fast: &mut Vec<u32>,
) -> Result<(), EvalError> {
    let ta = va.uniform_tag();
    if mask.all() && ta != TAG_MIXED && un_fast_eligible(op, ta) {
        un_fast(op, ta, fast, va.bits());
        out.adopt_uniform(fast, ta);
        return Ok(());
    }
    let lanes = mask.lanes();
    out.reset_filler(lanes);
    if mask.all() {
        for lane in 0..lanes {
            out.set(lane, op.apply(va.get(lane))?);
        }
    } else {
        for lane in mask.iter_set() {
            out.set(lane, op.apply(va.get(lane))?);
        }
    }
    out.normalize();
    Ok(())
}

/// Apply a binary op; typed fast path on converged equal-tag uniform rows
/// (with a zero-divisor pre-scan where integer division could trap).
fn apply_binary(
    op: BinOp,
    va: &RegRow,
    vb: &RegRow,
    mask: &LaneMask,
    out: &mut RegRow,
    fast: &mut Vec<u32>,
) -> Result<(), EvalError> {
    let ta = va.uniform_tag();
    if mask.all()
        && ta != TAG_MIXED
        && ta == vb.uniform_tag()
        && bin_fast_eligible(op, ta)
        && !(bin_needs_divisor_scan(op, ta) && has_zero(vb.bits()))
    {
        bin_fast(op, ta, fast, va.bits(), vb.bits());
        out.adopt_uniform(fast, ta);
        return Ok(());
    }
    let lanes = mask.lanes();
    out.reset_filler(lanes);
    if mask.all() {
        for lane in 0..lanes {
            out.set(lane, op.apply(va.get(lane), vb.get(lane))?);
        }
    } else {
        for lane in mask.iter_set() {
            out.set(lane, op.apply(va.get(lane), vb.get(lane))?);
        }
    }
    out.normalize();
    Ok(())
}

/// Apply a comparison; the typed loop covers every converged equal-tag
/// case (comparisons are infallible on equal types).
fn apply_cmp(
    op: CmpOp,
    va: &RegRow,
    vb: &RegRow,
    mask: &LaneMask,
    out: &mut RegRow,
    fast: &mut Vec<u32>,
) -> Result<(), EvalError> {
    let ta = va.uniform_tag();
    if mask.all() && ta != TAG_MIXED && ta == vb.uniform_tag() {
        cmp_fast(op, ta, fast, va.bits(), vb.bits());
        out.adopt_uniform(fast, TAG_BOOL);
        return Ok(());
    }
    let lanes = mask.lanes();
    out.reset_filler(lanes);
    if mask.all() {
        for lane in 0..lanes {
            out.set(lane, op.apply(va.get(lane), vb.get(lane))?);
        }
    } else {
        for lane in mask.iter_set() {
            out.set(lane, op.apply(va.get(lane), vb.get(lane))?);
        }
    }
    out.normalize();
    Ok(())
}

/// Apply a cast (always infallible); typed loop on any converged uniform
/// source row.
fn apply_cast(ty: Ty, va: &RegRow, mask: &LaneMask, out: &mut RegRow, fast: &mut Vec<u32>) {
    let ta = va.uniform_tag();
    if mask.all() && ta != TAG_MIXED {
        cast_fast(ty, ta, fast, va.bits());
        out.adopt_uniform(fast, tag_of_ty(ty));
        return;
    }
    let lanes = mask.lanes();
    out.reset_filler(lanes);
    if mask.all() {
        for lane in 0..lanes {
            out.set(lane, va.get(lane).cast(ty));
        }
    } else {
        for lane in mask.iter_set() {
            out.set(lane, va.get(lane).cast(ty));
        }
    }
    out.normalize();
}

/// Split `m` by the boolean `cond` row into `t`/`f`, visiting lanes in
/// order so `as_bool` type errors surface at the same lane the tree-walker
/// reports. Uniform-bool condition rows skip the per-lane decode.
fn split_mask(
    cond: &RegRow,
    m: &LaneMask,
    t: &mut LaneMask,
    f: &mut LaneMask,
    lanes: usize,
) -> Result<(), EvalError> {
    t.reset_empty(lanes);
    f.reset_empty(lanes);
    if cond.uniform_tag() == TAG_BOOL {
        let bits = cond.bits();
        for lane in m.iter_set() {
            if bits[lane] != 0 {
                t.set(lane, true);
            } else {
                f.set(lane, true);
            }
        }
        return Ok(());
    }
    for lane in m.iter_set() {
        if cond.get(lane).as_bool()? {
            t.set(lane, true);
        } else {
            f.set(lane, true);
        }
    }
    Ok(())
}

// ---- shared op bodies ----------------------------------------------------
//
// Each `exec_*` helper is the complete body of one unfused opcode —
// charge, lane loop, and row bookkeeping. The fused superinstruction
// handlers call the same helpers back to back, which makes fusion
// bit-identical to the unfused sequence by construction.

#[allow(clippy::too_many_arguments)]
fn exec_unary(
    ctx: &mut ExecCtx<'_>,
    s: &mut BcScratch,
    rb: usize,
    mb: usize,
    m: u16,
    op: UnOp,
    dst: u16,
    a: u16,
) -> Result<(), EvalError> {
    ctx.charge_compute(ctx.profile.unop_lat(op), &s.masks[mb + m as usize]);
    let dst_abs = rb + dst as usize;
    let mut out = std::mem::take(&mut s.regs[dst_abs]);
    let mut fast = std::mem::take(&mut s.fast);
    let r = apply_unary(
        op,
        row(s, rb, a),
        &s.masks[mb + m as usize],
        &mut out,
        &mut fast,
    );
    s.fast = fast;
    s.regs[dst_abs] = out;
    r
}

#[allow(clippy::too_many_arguments)]
fn exec_binary(
    ctx: &mut ExecCtx<'_>,
    s: &mut BcScratch,
    rb: usize,
    mb: usize,
    m: u16,
    op: BinOp,
    dst: u16,
    a: u16,
    b: u16,
) -> Result<(), EvalError> {
    // Latency class from the first active lane of the LHS, like the
    // tree-walker.
    let float = row(s, rb, a).first_ty(&s.masks[mb + m as usize]) == Some(Ty::F32);
    ctx.charge_compute(ctx.profile.binop_lat(op, float), &s.masks[mb + m as usize]);
    let dst_abs = rb + dst as usize;
    let mut out = std::mem::take(&mut s.regs[dst_abs]);
    let mut fast = std::mem::take(&mut s.fast);
    let r = apply_binary(
        op,
        row(s, rb, a),
        row(s, rb, b),
        &s.masks[mb + m as usize],
        &mut out,
        &mut fast,
    );
    s.fast = fast;
    s.regs[dst_abs] = out;
    r
}

#[allow(clippy::too_many_arguments)]
fn exec_cmp(
    ctx: &mut ExecCtx<'_>,
    s: &mut BcScratch,
    rb: usize,
    mb: usize,
    m: u16,
    op: CmpOp,
    dst: u16,
    a: u16,
    b: u16,
) -> Result<(), EvalError> {
    ctx.charge_compute(ctx.profile.alu_lat, &s.masks[mb + m as usize]);
    let dst_abs = rb + dst as usize;
    let mut out = std::mem::take(&mut s.regs[dst_abs]);
    let mut fast = std::mem::take(&mut s.fast);
    let r = apply_cmp(
        op,
        row(s, rb, a),
        row(s, rb, b),
        &s.masks[mb + m as usize],
        &mut out,
        &mut fast,
    );
    s.fast = fast;
    s.regs[dst_abs] = out;
    r
}

#[allow(clippy::too_many_arguments)]
fn exec_cast(
    ctx: &mut ExecCtx<'_>,
    s: &mut BcScratch,
    rb: usize,
    mb: usize,
    m: u16,
    ty: Ty,
    dst: u16,
    a: u16,
) -> Result<(), EvalError> {
    ctx.charge_compute(ctx.profile.alu_lat, &s.masks[mb + m as usize]);
    let dst_abs = rb + dst as usize;
    let mut out = std::mem::take(&mut s.regs[dst_abs]);
    let mut fast = std::mem::take(&mut s.fast);
    apply_cast(
        ty,
        row(s, rb, a),
        &s.masks[mb + m as usize],
        &mut out,
        &mut fast,
    );
    s.fast = fast;
    s.regs[dst_abs] = out;
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn exec_load(
    ctx: &mut ExecCtx<'_>,
    s: &mut BcScratch,
    rb: usize,
    mb: usize,
    m: u16,
    mem: MemRef,
    idx: u16,
    dst: u16,
) -> Result<(), EvalError> {
    let dst_abs = rb + dst as usize;
    let mut out = std::mem::take(&mut s.regs[dst_abs]);
    out.reset_filler(ctx.lanes);
    let r = ctx.do_load_into(mem, row(s, rb, idx), &s.masks[mb + m as usize], &mut out);
    // Loads of a uniformly-typed buffer demote the row lane by lane;
    // recover the uniform tag so downstream ops can take the fast path.
    out.normalize();
    s.regs[dst_abs] = out;
    r
}

#[allow(clippy::too_many_arguments)]
fn exec_store(
    ctx: &mut ExecCtx<'_>,
    s: &mut BcScratch,
    rb: usize,
    mb: usize,
    m: u16,
    mem: MemRef,
    idx: u16,
    val: u16,
) -> Result<(), EvalError> {
    ctx.do_store(
        mem,
        row(s, rb, idx),
        row(s, rb, val),
        &s.masks[mb + m as usize],
    )
}

/// Split a branch mask and store the halves; returns whether the
/// then-half is empty. The caller owns the branch charge and the jump.
#[allow(clippy::too_many_arguments)]
fn do_if_split(
    s: &mut BcScratch,
    rb: usize,
    mb: usize,
    lanes: usize,
    m: u16,
    cond: u16,
    t: u16,
    f: u16,
) -> Result<bool, EvalError> {
    let mut tm = std::mem::take(&mut s.masks[mb + t as usize]);
    let mut fm = std::mem::take(&mut s.masks[mb + f as usize]);
    let r = split_mask(
        row(s, rb, cond),
        &s.masks[mb + m as usize],
        &mut tm,
        &mut fm,
        lanes,
    );
    let t_empty = !tm.any();
    s.masks[mb + t as usize] = tm;
    s.masks[mb + f as usize] = fm;
    r?;
    Ok(t_empty)
}

/// The loop-variable update `i = i OP amount`; `amt` is `None` for the
/// self-aliasing `i OP= i` form. Typed strip loop when the loop mask is
/// converged and both rows share a uniform tag.
fn step_loop(
    op: BinOp,
    current: &mut RegRow,
    amt: Option<&RegRow>,
    lm: &LaneMask,
    fast: &mut Vec<u32>,
    lanes: usize,
) -> Result<(), EvalError> {
    let ct = current.uniform_tag();
    let at = amt.map_or(ct, |a| a.uniform_tag());
    if lm.all()
        && ct != TAG_MIXED
        && ct == at
        && bin_fast_eligible(op, ct)
        && !(bin_needs_divisor_scan(op, ct)
            && has_zero(amt.map_or_else(|| current.bits(), |a| a.bits())))
    {
        {
            let a_bits = current.bits();
            let b_bits = amt.map_or(a_bits, |a| a.bits());
            bin_fast(op, ct, fast, a_bits, b_bits);
        }
        current.adopt_uniform(fast, ct);
        return Ok(());
    }
    for lane in 0..lanes {
        if lm.get(lane) {
            let x = current.get(lane);
            let y = amt.map_or(x, |a| a.get(lane));
            current.set(lane, op.apply(x, y)?);
        }
    }
    current.normalize();
    Ok(())
}

/// Fill the constant-bank rows for one block. Charge-free, exactly like
/// the tree-walker's leaf evaluations; every row is filled on all lanes
/// (and stays uniform, so bank operands always qualify for typed loops).
fn fill_bank(ctx: &ExecCtx<'_>, prog: &CompiledKernel, s: &mut BcScratch) -> Result<(), EvalError> {
    use crate::device::ArgValue;
    let lanes = ctx.lanes;
    if s.bank.len() < prog.bank.len() {
        s.bank.resize_with(prog.bank.len(), || RegRow::new(0));
    }
    for (i, e) in prog.bank.iter().enumerate() {
        let bank_row = &mut s.bank[i];
        match e {
            BankEntry::Const(v) => bank_row.fill(lanes, *v),
            // Launch validation guarantees declared scalar params resolve,
            // but keep the tree-walker's checks for defense in depth.
            BankEntry::ScalarParam(p) => match ctx.args.get(*p) {
                Some(ArgValue::Scalar(v)) => bank_row.fill(lanes, *v),
                Some(ArgValue::Buffer(_)) => {
                    return Err(EvalError::NotPure("buffer parameter read as a scalar"))
                }
                None => {
                    return Err(EvalError::ArityMismatch {
                        expected: *p + 1,
                        found: ctx.args.len(),
                    })
                }
            },
            BankEntry::Special(sp) => {
                bank_row.reset_filler(lanes);
                for lane in 0..lanes {
                    let v = match sp {
                        Special::ThreadIdX => (lane % ctx.block.x) as i32,
                        Special::ThreadIdY => (lane / ctx.block.x) as i32,
                        Special::BlockIdX => ctx.block_x,
                        Special::BlockIdY => ctx.block_y,
                        Special::BlockDimX => ctx.block.x as i32,
                        Special::BlockDimY => ctx.block.y as i32,
                        Special::GridDimX => ctx.grid.x as i32,
                        Special::GridDimY => ctx.grid.y as i32,
                    };
                    bank_row.set(lane, Scalar::I32(v));
                }
            }
        }
    }
    Ok(())
}

/// Execute one block of `prog` against `ctx`. Charges and memory traffic
/// are bit-identical to `ExecCtx::run_block` over the original AST.
///
/// When `counts` is present (the device's profiling launch), the executor
/// bumps the dynamic execution counter of every fusion-candidate pc it
/// dispatches; the device fuses the hot pairs afterwards.
pub(crate) fn execute(
    ctx: &mut ExecCtx<'_>,
    prog: &CompiledKernel,
    s: &mut BcScratch,
    counts: Option<&[AtomicU64]>,
) -> Result<(), EvalError> {
    let lanes = ctx.lanes;
    fill_bank(ctx, prog, s)?;

    // Kernel frame window at the bottom of both arenas.
    let mut reg_base = 0usize;
    let mut mask_base = 0usize;
    let mut cur_regs = prog.frame.regs as usize;
    let mut cur_masks = prog.frame.masks as usize;
    // Sentinel: RetWrite/FuncRet never execute in the kernel frame.
    let mut cur_func = usize::MAX;
    if s.regs.len() < cur_regs {
        s.regs.resize_with(cur_regs, || RegRow::new(0));
    }
    if s.init.len() < cur_regs {
        s.init.resize(cur_regs, false);
    }
    if s.masks.len() < cur_masks.max(1) {
        s.masks.resize_with(cur_masks.max(1), LaneMask::default);
    }
    for flag in &mut s.init[..prog.frame.n_locals as usize] {
        *flag = false;
    }
    s.masks[0].reset_full(lanes);
    s.calls.clear();
    // The kernel frame runs its statements unconditionally (the all-true
    // mask is never empty), matching `run_block`'s single entry check.
    let mut pc = 0usize;

    loop {
        ctx.stats.ops_dispatched += 1;
        if let Some(c) = counts {
            if prog.candidates[pc] {
                c[pc].fetch_add(1, Ordering::Relaxed);
            }
        }
        match &prog.ops[pc] {
            Op::Unary { m, op, dst, a } => {
                exec_unary(ctx, s, reg_base, mask_base, *m, *op, *dst, *a)?;
            }
            Op::Binary { m, op, dst, a, b } => {
                exec_binary(ctx, s, reg_base, mask_base, *m, *op, *dst, *a, *b)?;
            }
            Op::Cmp { m, op, dst, a, b } => {
                exec_cmp(ctx, s, reg_base, mask_base, *m, *op, *dst, *a, *b)?;
            }
            Op::Cast { m, ty, dst, a } => {
                exec_cast(ctx, s, reg_base, mask_base, *m, *ty, *dst, *a)?;
            }
            Op::FoldedConst {
                m,
                dst,
                value,
                lat,
                count,
            } => {
                // Re-charge the folded subtree's summed compute cost. Pure
                // compute charges are an order-insensitive per-mask sum, so
                // charging them here (rather than op by op) is
                // unobservable in the final stats.
                let mask = &s.masks[mask_base + *m as usize];
                let warps = ctx.warp_count(mask);
                ctx.stats.compute_cycles += lat * warps;
                ctx.stats.instructions += count * warps;
                let out = &mut s.regs[reg_base + *dst as usize];
                if mask.all() {
                    out.fill(lanes, *value);
                } else {
                    out.reset_filler(lanes);
                    for lane in mask.iter_set() {
                        out.set(lane, *value);
                    }
                    out.normalize();
                }
            }
            Op::GuardInit { local, var } => {
                if !s.init[reg_base + *local as usize] {
                    return Err(EvalError::UninitializedVar(*var));
                }
            }
            Op::StoreLocal { m, local, src } => {
                let dst_abs = reg_base + *local as usize;
                // Self-assignment (`x = x`) is a no-op value-wise.
                if *src & BANK_FLAG == 0 && *src == *local {
                    s.init[dst_abs] = true;
                } else if !s.init[dst_abs] {
                    // First write: store the whole row, like the
                    // tree-walker moving the evaluated vector into the
                    // `None` slot (inactive lanes keep the source's
                    // filler/leaf values).
                    let mut out = std::mem::take(&mut s.regs[dst_abs]);
                    out.copy_from(row(s, reg_base, *src));
                    s.regs[dst_abs] = out;
                    s.init[dst_abs] = true;
                } else {
                    let mut out = std::mem::take(&mut s.regs[dst_abs]);
                    let src_row = row(s, reg_base, *src);
                    let mask = &s.masks[mask_base + *m as usize];
                    if mask.all() {
                        out.copy_from(src_row);
                    } else {
                        out.copy_masked_from(src_row, mask);
                    }
                    s.regs[dst_abs] = out;
                }
            }
            Op::IfSplit {
                m,
                cond,
                t,
                f,
                skip_t,
            } => {
                ctx.charge_compute(ctx.profile.alu_lat, &s.masks[mask_base + *m as usize]);
                if do_if_split(s, reg_base, mask_base, lanes, *m, *cond, *t, *f)? {
                    pc = *skip_t as usize;
                    continue;
                }
            }
            Op::IfElse { f, skip } => {
                if !s.masks[mask_base + *f as usize].any() {
                    pc = *skip as usize;
                    continue;
                }
            }
            Op::SelSplit {
                m,
                cond,
                t,
                f,
                dst,
                skip_t,
            } => {
                ctx.charge_compute(ctx.profile.alu_lat, &s.masks[mask_base + *m as usize]);
                let t_empty = do_if_split(s, reg_base, mask_base, lanes, *m, *cond, *t, *f)?;
                s.regs[reg_base + *dst as usize].reset_filler(lanes);
                if t_empty {
                    pc = *skip_t as usize;
                    continue;
                }
            }
            Op::SelMerge { m, dst, src } => {
                let dst_abs = reg_base + *dst as usize;
                let mut out = std::mem::take(&mut s.regs[dst_abs]);
                out.copy_masked_from(row(s, reg_base, *src), &s.masks[mask_base + *m as usize]);
                s.regs[dst_abs] = out;
            }
            Op::SelElse { f, skip } => {
                if !s.masks[mask_base + *f as usize].any() {
                    pc = *skip as usize;
                    continue;
                }
            }
            Op::ForPrep { m, ml, func, exit } => {
                let mut lm = std::mem::take(&mut s.masks[mask_base + *ml as usize]);
                lm.copy_from(&s.masks[mask_base + *m as usize]);
                if *func {
                    lm.and_not_assign(&s.masks[mask_base + 1]);
                }
                let empty = !lm.any();
                s.masks[mask_base + *ml as usize] = lm;
                if empty {
                    pc = *exit as usize;
                    continue;
                }
            }
            Op::ForTest {
                ml,
                local,
                var,
                cmp,
                bound,
                exit,
            } => {
                ctx.charge_compute(ctx.profile.alu_lat, &s.masks[mask_base + *ml as usize]);
                let local_abs = reg_base + *local as usize;
                if !s.init[local_abs] {
                    return Err(EvalError::UninitializedVar(*var));
                }
                let mut lm = std::mem::take(&mut s.masks[mask_base + *ml as usize]);
                let current = &s.regs[local_abs];
                let bnd = row(s, reg_base, *bound);
                let ct = current.uniform_tag();
                let mut err = None;
                if ct != TAG_MIXED && ct == bnd.uniform_tag() {
                    // Equal-tag comparisons are infallible: refine the mask
                    // with the typed comparator, no per-lane decode.
                    let (ca, cb) = (current.bits(), bnd.bits());
                    for lane in 0..lanes {
                        if lm.get(lane) && !cmp_one(*cmp, ct, ca[lane], cb[lane]) {
                            lm.set(lane, false);
                        }
                    }
                } else {
                    for lane in 0..lanes {
                        if lm.get(lane) {
                            match cmp
                                .apply(current.get(lane), bnd.get(lane))
                                .and_then(|v| v.as_bool())
                            {
                                Ok(cont) => {
                                    if !cont {
                                        lm.set(lane, false);
                                    }
                                }
                                Err(e) => {
                                    err = Some(e);
                                    break;
                                }
                            }
                        }
                    }
                }
                let empty = !lm.any();
                s.masks[mask_base + *ml as usize] = lm;
                if let Some(e) = err {
                    return Err(e);
                }
                if empty {
                    pc = *exit as usize;
                    continue;
                }
                let used = ctx.iterations.fetch_add(1, Ordering::Relaxed) + 1;
                if used > ITERATION_BUDGET {
                    return Err(EvalError::IterationLimit);
                }
            }
            Op::ForPrune { ml, exit } => {
                let mut lm = std::mem::take(&mut s.masks[mask_base + *ml as usize]);
                lm.and_not_assign(&s.masks[mask_base + 1]);
                let empty = !lm.any();
                s.masks[mask_base + *ml as usize] = lm;
                if empty {
                    pc = *exit as usize;
                    continue;
                }
            }
            Op::ForStep {
                ml,
                local,
                var,
                op,
                amount,
                head,
            } => {
                ctx.charge_compute(ctx.profile.alu_lat, &s.masks[mask_base + *ml as usize]);
                let local_abs = reg_base + *local as usize;
                if !s.init[local_abs] {
                    return Err(EvalError::UninitializedVar(*var));
                }
                let alias = *amount & BANK_FLAG == 0 && *amount == *local;
                let mut current = std::mem::take(&mut s.regs[local_abs]);
                let mut fast = std::mem::take(&mut s.fast);
                let r = {
                    let lm = &s.masks[mask_base + *ml as usize];
                    let amt = if alias {
                        None
                    } else {
                        Some(row(s, reg_base, *amount))
                    };
                    step_loop(*op, &mut current, amt, lm, &mut fast, lanes)
                };
                s.fast = fast;
                s.regs[local_abs] = current;
                r?;
                pc = *head as usize;
                continue;
            }
            Op::Live { base, live, exit } => {
                let mut lv = std::mem::take(&mut s.masks[mask_base + *live as usize]);
                lv.copy_from(&s.masks[mask_base + *base as usize]);
                lv.and_not_assign(&s.masks[mask_base + 1]);
                let empty = !lv.any();
                s.masks[mask_base + *live as usize] = lv;
                if empty {
                    pc = *exit as usize;
                    continue;
                }
            }
            Op::Load { m, mem, idx, dst } => {
                exec_load(ctx, s, reg_base, mask_base, *m, *mem, *idx, *dst)?;
            }
            Op::Store { m, mem, idx, val } => {
                exec_store(ctx, s, reg_base, mask_base, *m, *mem, *idx, *val)?;
            }
            Op::AtomicStmt {
                m,
                op,
                mem,
                idx,
                val,
            } => {
                ctx.do_atomic(
                    *op,
                    *mem,
                    row(s, reg_base, *idx),
                    row(s, reg_base, *val),
                    &s.masks[mask_base + *m as usize],
                )?;
            }
            Op::Sync { m } => {
                if !s.masks[mask_base + *m as usize].all() {
                    return Err(EvalError::DivergentBarrier);
                }
            }
            Op::RetWrite { m, src } => {
                let meta = &prog.funcs[cur_func];
                let ret_abs = reg_base + (meta.frame.n_locals + meta.frame.n_params) as usize;
                let mut retv = std::mem::take(&mut s.regs[ret_abs]);
                let mut returned = std::mem::take(&mut s.masks[mask_base + 1]);
                let src_row = row(s, reg_base, *src);
                for lane in s.masks[mask_base + *m as usize].iter_set() {
                    returned.set(lane, true);
                    retv.set(lane, src_row.get(lane));
                }
                retv.normalize();
                s.regs[ret_abs] = retv;
                s.masks[mask_base + 1] = returned;
            }
            Op::Call { m, func, args, dst } => {
                let meta = &prog.funcs[*func as usize];
                // Per-parameter type check over active lanes, then the
                // call-overhead charge — the tree-walker's exact order.
                // Uniform rows check once for the whole strip.
                {
                    let mask = &s.masks[mask_base + *m as usize];
                    for (a, ty) in args.iter().zip(meta.param_tys.iter()) {
                        let arg_row = row(s, reg_base, *a);
                        let ut = arg_row.uniform_tag();
                        if ut == tag_of_ty(*ty) {
                            continue;
                        }
                        if ut != TAG_MIXED {
                            if mask.any() {
                                return Err(EvalError::TypeMismatch {
                                    expected: *ty,
                                    found: tag_ty(ut),
                                });
                            }
                            continue;
                        }
                        for lane in mask.iter_set() {
                            if arg_row.ty_at(lane) != *ty {
                                return Err(EvalError::TypeMismatch {
                                    expected: *ty,
                                    found: arg_row.ty_at(lane),
                                });
                            }
                        }
                    }
                }
                ctx.charge_compute(ctx.profile.alu_lat, &s.masks[mask_base + *m as usize]);
                if s.calls.len() >= CALL_DEPTH_LIMIT {
                    return Err(EvalError::IterationLimit);
                }
                let new_rb = reg_base + cur_regs;
                let new_mb = mask_base + cur_masks;
                let callee_regs = meta.frame.regs as usize;
                let callee_masks = meta.frame.masks as usize;
                let callee_locals = meta.frame.n_locals as usize;
                let entry = meta.entry;
                if s.regs.len() < new_rb + callee_regs {
                    s.regs.resize_with(new_rb + callee_regs, || RegRow::new(0));
                }
                if s.init.len() < new_rb + callee_regs {
                    s.init.resize(new_rb + callee_regs, false);
                }
                if s.masks.len() < new_mb + callee_masks.max(2) {
                    s.masks
                        .resize_with(new_mb + callee_masks.max(2), LaneMask::default);
                }
                for flag in &mut s.init[new_rb..new_rb + callee_locals] {
                    *flag = false;
                }
                // Mask slot 0: the call mask; slot 1: returned lanes.
                let mut cm = std::mem::take(&mut s.masks[new_mb]);
                cm.copy_from(&s.masks[mask_base + *m as usize]);
                s.masks[new_mb] = cm;
                s.masks[new_mb + 1].reset_empty(lanes);
                // Copy argument rows whole-lane into the callee's param
                // slots (the tree-walker passes the full vectors too).
                for (i, a) in args.iter().enumerate() {
                    let slot = new_rb + callee_locals + i;
                    let mut p = std::mem::take(&mut s.regs[slot]);
                    p.copy_from(row(s, reg_base, *a));
                    s.regs[slot] = p;
                }
                // Return-value slot starts as filler on every lane.
                let ret_slot = new_rb + callee_locals + args.len();
                s.regs[ret_slot].reset_filler(lanes);
                s.calls.push(CallCtx {
                    ret_pc: pc + 1,
                    ret_dst: reg_base + *dst as usize,
                    prev_reg_base: reg_base,
                    prev_mask_base: mask_base,
                    prev_regs: cur_regs,
                    prev_masks: cur_masks,
                    prev_func: cur_func,
                });
                reg_base = new_rb;
                mask_base = new_mb;
                cur_regs = callee_regs;
                cur_masks = callee_masks;
                cur_func = *func as usize;
                pc = entry;
                continue;
            }
            Op::FuncRet { func } => {
                let meta = &prog.funcs[*func as usize];
                {
                    let cm = &s.masks[mask_base];
                    let returned = &s.masks[mask_base + 1];
                    for lane in cm.iter_set() {
                        if !returned.get(lane) {
                            return Err(EvalError::MissingReturn(meta.name.clone()));
                        }
                    }
                }
                let cc = s.calls.pop().expect("FuncRet outside a call");
                let ret_abs = reg_base + (meta.frame.n_locals + meta.frame.n_params) as usize;
                let mut out = std::mem::take(&mut s.regs[cc.ret_dst]);
                out.copy_from(&s.regs[ret_abs]);
                s.regs[cc.ret_dst] = out;
                reg_base = cc.prev_reg_base;
                mask_base = cc.prev_mask_base;
                cur_regs = cc.prev_regs;
                cur_masks = cc.prev_masks;
                cur_func = cc.prev_func;
                pc = cc.ret_pc;
                continue;
            }
            Op::Trap(e) => return Err((**e).clone()),
            Op::Halt => return Ok(()),
            Op::FusedBinBin {
                m,
                op1,
                dst1,
                a1,
                b1,
                op2,
                dst2,
                a2,
                b2,
            } => {
                ctx.stats.fusions_hit += 1;
                exec_binary(ctx, s, reg_base, mask_base, *m, *op1, *dst1, *a1, *b1)?;
                exec_binary(ctx, s, reg_base, mask_base, *m, *op2, *dst2, *a2, *b2)?;
                pc += 2;
                continue;
            }
            Op::FusedCmpIf {
                m,
                op,
                dst,
                a,
                b,
                t,
                f,
                skip_t,
            } => {
                ctx.stats.fusions_hit += 1;
                exec_cmp(ctx, s, reg_base, mask_base, *m, *op, *dst, *a, *b)?;
                ctx.charge_compute(ctx.profile.alu_lat, &s.masks[mask_base + *m as usize]);
                if do_if_split(s, reg_base, mask_base, lanes, *m, *dst, *t, *f)? {
                    pc = *skip_t as usize;
                } else {
                    pc += 2;
                }
                continue;
            }
            Op::FusedLoadCast {
                m,
                mem,
                idx,
                dst,
                ty,
                dst2,
            } => {
                ctx.stats.fusions_hit += 1;
                exec_load(ctx, s, reg_base, mask_base, *m, *mem, *idx, *dst)?;
                exec_cast(ctx, s, reg_base, mask_base, *m, *ty, *dst2, *dst)?;
                pc += 2;
                continue;
            }
            Op::FusedBinStore {
                m,
                op,
                dst,
                a,
                b,
                mem,
                idx,
            } => {
                ctx.stats.fusions_hit += 1;
                exec_binary(ctx, s, reg_base, mask_base, *m, *op, *dst, *a, *b)?;
                exec_store(ctx, s, reg_base, mask_base, *m, *mem, *idx, *dst)?;
                pc += 2;
                continue;
            }
        }
        pc += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraprox_ir::{LocalDecl, Param, VarId};

    fn profile() -> DeviceProfile {
        DeviceProfile::gtx560()
    }

    /// `out[i] = (2 + 3) * in[i]` with a loop and a call-free body.
    fn simple_program() -> (Program, Kernel) {
        let mut p = Program::new();
        let k = Kernel {
            name: "saxpyish".into(),
            params: vec![
                Param::Buffer {
                    name: "in".into(),
                    ty: Ty::F32,
                    space: paraprox_ir::MemSpace::Global,
                },
                Param::Buffer {
                    name: "out".into(),
                    ty: Ty::F32,
                    space: paraprox_ir::MemSpace::Global,
                },
            ],
            shared: vec![],
            locals: vec![LocalDecl {
                name: "x".into(),
                ty: Ty::F32,
            }],
            body: vec![
                Stmt::Let {
                    var: VarId(0),
                    init: Expr::Load {
                        mem: MemRef::Param(0),
                        index: Box::new(Expr::Special(Special::ThreadIdX)),
                    },
                },
                Stmt::Store {
                    mem: MemRef::Param(1),
                    index: Expr::Special(Special::ThreadIdX),
                    value: Expr::Binary(
                        BinOp::Mul,
                        Box::new(Expr::Binary(
                            BinOp::Add,
                            Box::new(Expr::f32(2.0)),
                            Box::new(Expr::f32(3.0)),
                        )),
                        Box::new(Expr::Var(VarId(0))),
                    ),
                },
            ],
        };
        let kc = k.clone();
        p.add_kernel(k);
        (p, kc)
    }

    #[test]
    fn compiles_and_disassembles() {
        let (p, k) = simple_program();
        let compiled = compile_kernel(&p, &k, &profile());
        assert!(compiled.op_count() > 0);
        let dis = compiled.disassemble();
        assert!(dis.contains("saxpyish"), "missing kernel name:\n{dis}");
        assert!(dis.contains("load"), "missing load op:\n{dis}");
        assert!(dis.contains("store"), "missing store op:\n{dis}");
        assert!(dis.contains("halt"), "missing halt:\n{dis}");
    }

    #[test]
    fn folds_constant_subtrees() {
        let (p, k) = simple_program();
        let compiled = compile_kernel(&p, &k, &profile());
        // `2 + 3` must fold: no standalone Add op, one FoldedConst
        // carrying its latency and instruction count.
        assert!(
            !compiled
                .ops
                .iter()
                .any(|op| matches!(op, Op::Binary { op: BinOp::Add, .. })),
            "constant add not folded:\n{}",
            compiled.disassemble()
        );
        let folded = compiled
            .ops
            .iter()
            .find_map(|op| match op {
                Op::FoldedConst {
                    value, lat, count, ..
                } => Some((*value, *lat, *count)),
                _ => None,
            })
            .expect("no FoldedConst emitted");
        assert_eq!(folded.0, Scalar::F32(5.0));
        assert_eq!(folded.1, profile().alu_lat);
        assert_eq!(folded.2, 1);
    }

    #[test]
    fn pure_constant_operands_use_the_bank() {
        let (p, k) = simple_program();
        let compiled = compile_kernel(&p, &k, &profile());
        // threadIdx.x is used twice but banked once.
        let specials = compiled
            .bank
            .iter()
            .filter(|e| matches!(e, BankEntry::Special(Special::ThreadIdX)))
            .count();
        assert_eq!(specials, 1);
    }

    #[test]
    fn return_in_kernel_body_traps() {
        let mut p = Program::new();
        let k = Kernel {
            name: "bad".into(),
            params: vec![],
            shared: vec![],
            locals: vec![],
            body: vec![Stmt::Return(Expr::i32(0))],
        };
        let kc = k.clone();
        p.add_kernel(k);
        let compiled = compile_kernel(&p, &kc, &profile());
        assert!(
            compiled.ops.iter().any(
                |op| matches!(op, Op::Trap(e) if **e == EvalError::NotPure("return in kernel body"))
            ),
            "expected a trap:\n{}",
            compiled.disassemble()
        );
    }
}
