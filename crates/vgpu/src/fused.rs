//! Fused multi-request pipeline execution: run several independent
//! pipeline jobs as one batched dispatch over a single worker pool.
//!
//! A serving batcher coalesces same-`(app, rung)` requests and hands them
//! here as [`FusedJob`]s. [`execute_fused`] executes every job's launches
//! stage by stage — stage *s* fuses the *s*-th launch of every job that
//! has one into a single multi-segment dispatch ([`crate::exec`]'s fused
//! runner) — so the per-launch host overhead (launch validation,
//! program-cache lookup, worker-scope setup, per-worker arena clone) is
//! paid once per batch stage instead of once per request.
//!
//! # Bit-identity contract
//!
//! Each job's [`PipelineRun`] — outputs, simulated cycles, cache
//! statistics — is bit-identical to running `job.pipeline.execute(...)`
//! alone on this device right after a cache flush (the serving loop's
//! steady state: [`crate::Device::reclaim_buffers`] flushes between
//! requests). That holds because:
//!
//! * every job allocates its buffers through a *private* address counter
//!   seeded from the device's current high-water mark, so each job sees
//!   exactly the simulated base addresses it would have seen alone;
//! * every job carries a private cold L1/constant cache pair, threaded
//!   across its own stages (stage *s+1* enters with the job's stage-*s*
//!   exit state), so cache behavior never leaks between jobs;
//! * the device's own caches and address counter are left untouched, and
//!   the job buffers are reclaimed before returning, so the device ends
//!   the call exactly as it entered it.

use std::collections::HashSet;

use paraprox_ir::Program;

use crate::cache::Cache;
use crate::device::{ArgValue, Device, ProgramHandle};
use crate::error::LaunchError;
use crate::exec::{self, FusedSegment, Launch};
use crate::plan::{Pipeline, PipelineRun, PlanArg};
use crate::stats::LaunchStats;

/// One request of a fused batch: the program and pipeline to execute.
/// Batches of same-rung requests typically share one `program`/`pipeline`
/// (with per-request inputs baked into cloned pipelines), but nothing
/// requires it — heterogeneous jobs fuse just as well.
pub struct FusedJob<'a> {
    /// Program the pipeline's kernels live in.
    pub program: &'a Program,
    /// The pipeline to execute.
    pub pipeline: &'a Pipeline,
}

struct SegmentPrep {
    job: usize,
    stage: usize,
    args: Vec<ArgValue>,
    handle: Option<ProgramHandle>,
    profiling: bool,
}

/// Execute `jobs` as one fused batch; returns one [`PipelineRun`] per job,
/// in order, each bit-identical to a standalone execution (see the module
/// docs for the contract). The device's buffer arena, address counter,
/// and caches are restored before returning.
///
/// # Errors
///
/// Fails with the same [`LaunchError`]s a standalone execution of the
/// offending job would produce (validation errors before any execution,
/// evaluation errors during it). On error the whole batch is abandoned;
/// the arena is still restored.
pub fn execute_fused(
    device: &mut Device,
    jobs: &[FusedJob<'_>],
) -> Result<Vec<PipelineRun>, LaunchError> {
    let (entry_len, entry_addr) = device.buffer_mark();
    let result = execute_fused_inner(device, jobs, entry_addr);
    device.buffers.truncate(entry_len);
    result
}

fn execute_fused_inner(
    device: &mut Device,
    jobs: &[FusedJob<'_>],
    entry_addr: u64,
) -> Result<Vec<PipelineRun>, LaunchError> {
    if jobs.is_empty() {
        return Ok(Vec::new());
    }
    // Allocate every job's buffers in its own address space.
    let mut job_ids: Vec<Vec<crate::device::BufferId>> = Vec::with_capacity(jobs.len());
    for job in jobs {
        let mut next = entry_addr;
        let mut ids = Vec::with_capacity(job.pipeline.buffers.len());
        for spec in &job.pipeline.buffers {
            let data = spec.init_scalars()?;
            ids.push(device.alloc_scalars_at(spec.space, spec.ty, data, &mut next));
        }
        job_ids.push(ids);
    }
    // Per-job cold cache chains.
    let cache_cfg = device.profile.cache;
    let mut caches: Vec<(Cache, Cache)> = (0..jobs.len())
        .map(|_| (Cache::new(cache_cfg.l1), Cache::new(cache_cfg.constant)))
        .collect();
    let mut job_stats: Vec<LaunchStats> = vec![LaunchStats::default(); jobs.len()];

    let max_stages = jobs
        .iter()
        .map(|j| j.pipeline.launches.len())
        .max()
        .unwrap_or(0);
    for stage in 0..max_stages {
        // Validate, resolve arguments, and pick artifacts for every job
        // participating in this stage. Consecutive jobs over the same
        // program and kernel (the common batch shape) reuse the previous
        // handle instead of re-hashing the kernel in the program cache.
        let mut preps: Vec<SegmentPrep> = Vec::with_capacity(jobs.len());
        for (ji, job) in jobs.iter().enumerate() {
            let Some(lp) = job.pipeline.launches.get(stage) else {
                continue;
            };
            let k = job.program.kernel(lp.kernel);
            let args: Vec<ArgValue> = lp
                .args
                .iter()
                .map(|a| match a {
                    PlanArg::Buffer(slot) => ArgValue::Buffer(job_ids[ji][*slot]),
                    PlanArg::Scalar(s) => ArgValue::Scalar(*s),
                })
                .collect();
            device.validate_launch(k, lp.grid, lp.block, &args)?;
            let handle = match preps.last() {
                Some(prev)
                    if prev.stage == stage
                        && std::ptr::eq(jobs[prev.job].program, job.program)
                        && jobs[prev.job].pipeline.launches[stage].kernel == lp.kernel =>
                {
                    prev.handle.clone()
                }
                _ => device.program_handle(job.program, k),
            };
            let profiling = matches!(&handle, Some(h) if device.fusion && h.fused.is_none());
            preps.push(SegmentPrep {
                job: ji,
                stage,
                args,
                handle,
                profiling,
            });
        }
        // Build the fused segments (launch views borrowing the preps) and
        // dispatch them as one batch.
        let segments: Vec<FusedSegment<'_>> = preps
            .iter()
            .map(|p| {
                let job = &jobs[p.job];
                let lp = &job.pipeline.launches[stage];
                let compiled = match &p.handle {
                    Some(h) if !device.fusion => Some(&*h.compiled),
                    Some(h) => match &h.fused {
                        Some(f) => Some(&**f),
                        None => Some(&*h.compiled),
                    },
                    None => None,
                };
                FusedSegment {
                    launch: Launch {
                        profile: &device.profile,
                        program: job.program,
                        kernel: job.program.kernel(lp.kernel),
                        args: &p.args,
                        grid: lp.grid,
                        block: lp.block,
                        compiled,
                        schedule_seed: device.schedule_seed,
                        profile_counts: match (&p.handle, p.profiling) {
                            (Some(h), true) => Some(&h.counts[..]),
                            _ => None,
                        },
                        approx_threshold: exec::approx_threshold(device.approx_rate),
                        approx_seed: device.approx_seed,
                        overwritten: &[],
                    },
                    l1: caches[p.job].0.clone(),
                    constant_cache: caches[p.job].1.clone(),
                }
            })
            .collect();
        let outcomes = exec::run_fused(segments, &mut device.buffers, &mut device.image_pool)?;
        // Fold each segment's outcome back onto its job, then build any
        // freshly profiled fusion artifacts (once per cache entry).
        let mut fused_done: HashSet<(u64, usize)> = HashSet::new();
        for (p, outcome) in preps.iter().zip(outcomes) {
            job_stats[p.job] += outcome.stats;
            caches[p.job] = (outcome.l1, outcome.constant_cache);
            if p.profiling {
                if let Some(h) = &p.handle {
                    if fused_done.insert(h.entry_id()) {
                        device.store_fused_from_counts(h);
                    }
                }
            }
        }
    }

    let mut runs = Vec::with_capacity(jobs.len());
    for (ji, job) in jobs.iter().enumerate() {
        let mut outputs = Vec::with_capacity(job.pipeline.outputs.len());
        for &slot in &job.pipeline.outputs {
            let scalars = device.read_scalars(job_ids[ji][slot])?;
            outputs.push(scalars.iter().map(|s| s.to_f64_lossy()).collect());
        }
        runs.push(PipelineRun {
            stats: job_stats[ji],
            outputs,
        });
    }
    Ok(runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Dim2;
    use crate::plan::{BufferSpec, LaunchPlan};
    use crate::profile::DeviceProfile;
    use paraprox_ir::{KernelBuilder, KernelId, MemSpace, Scalar, Ty};

    /// A two-stage pipeline (scale then offset-by-neighbor-sum) with
    /// enough blocks to exercise the pool and the per-stage cache chain.
    fn two_stage(input: Vec<f32>) -> (Program, Pipeline) {
        let mut program = Program::new();
        let mut kb = KernelBuilder::new("scale");
        let data = kb.buffer("data", Ty::F32, MemSpace::Global);
        let k = kb.scalar("k", Ty::F32);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let v = kb.let_("v", kb.load(data, gid.clone()));
        kb.store(data, gid, v * k);
        let scale = program.add_kernel(kb.finish());

        let mut kb = KernelBuilder::new("square");
        let data = kb.buffer("data", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let v = kb.let_("v", kb.load(data, gid.clone()));
        kb.store(data, gid, v.clone() * v);
        let square = program.add_kernel(kb.finish());

        let n = input.len();
        let mut p = Pipeline::default();
        let buf = p.add_buffer(BufferSpec::f32("data", input));
        let plan = |kernel: KernelId, args: Vec<PlanArg>| LaunchPlan {
            kernel,
            grid: Dim2::linear(n / 16),
            block: Dim2::linear(16),
            args,
        };
        p.launches.push(plan(
            scale,
            vec![PlanArg::Buffer(buf), Scalar::F32(3.0).into()],
        ));
        p.launches.push(plan(square, vec![PlanArg::Buffer(buf)]));
        p.outputs.push(buf);
        (program, p)
    }

    fn device(workers: usize, seed: Option<u64>) -> Device {
        let mut d = Device::new(DeviceProfile::gtx560().with_parallelism(workers));
        d.set_schedule_seed(seed);
        d
    }

    /// Sequential reference: execute each pipeline alone with the same
    /// flush-between-requests bracketing a serving loop applies.
    fn sequential(d: &mut Device, program: &Program, pipes: &[Pipeline]) -> Vec<PipelineRun> {
        pipes
            .iter()
            .map(|p| {
                let mark = d.buffer_mark();
                let run = p.execute(d, program).expect("sequential run");
                d.reclaim_buffers(mark);
                run
            })
            .collect()
    }

    fn inputs(job: usize) -> Vec<f32> {
        (0..64).map(|i| (i as f32) * 0.5 + job as f32).collect()
    }

    #[test]
    fn fused_batch_matches_sequential_at_any_worker_count() {
        let (program, base) = two_stage(inputs(0));
        let pipes: Vec<Pipeline> = (0..5)
            .map(|j| {
                let mut p = base.clone();
                p.set_input(0, crate::plan::BufferInit::F32(inputs(j)));
                p
            })
            .collect();
        let mut reference_dev = device(1, None);
        let reference = sequential(&mut reference_dev, &program, &pipes);
        for workers in [1, 2, 4] {
            for seed in [None, Some(9)] {
                let mut d = device(workers, seed);
                let mark = d.buffer_mark();
                let jobs: Vec<FusedJob<'_>> = pipes
                    .iter()
                    .map(|p| FusedJob {
                        program: &program,
                        pipeline: p,
                    })
                    .collect();
                let runs = execute_fused(&mut d, &jobs).expect("fused batch");
                assert_eq!(
                    d.buffer_mark(),
                    mark,
                    "fused execution must restore the arena"
                );
                assert_eq!(runs.len(), reference.len());
                for (ji, (got, want)) in runs.iter().zip(&reference).enumerate() {
                    assert_eq!(
                        got.stats, want.stats,
                        "job {ji} stats (workers={workers}, seed={seed:?})"
                    );
                    assert_eq!(
                        got.outputs, want.outputs,
                        "job {ji} outputs (workers={workers}, seed={seed:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn fused_batch_is_history_independent() {
        // Running a fused batch twice on one device gives identical
        // results: nothing (caches, addresses, arena) leaks between
        // batches.
        let (program, base) = two_stage(inputs(1));
        let mut d = device(2, None);
        let jobs = [FusedJob {
            program: &program,
            pipeline: &base,
        }];
        let first = execute_fused(&mut d, &jobs).expect("first batch");
        let second = execute_fused(&mut d, &jobs).expect("second batch");
        assert_eq!(first[0].stats, second[0].stats);
        assert_eq!(first[0].outputs, second[0].outputs);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut d = device(2, None);
        let runs = execute_fused(&mut d, &[]).expect("empty batch");
        assert!(runs.is_empty());
    }

    #[test]
    fn validation_errors_surface_and_restore_the_arena() {
        let (program, mut bad) = two_stage(inputs(0));
        // Declare i32 but initialize with f32 data: init type mismatch.
        bad.buffers[0].ty = Ty::I32;
        let mut d = device(1, None);
        let mark = d.buffer_mark();
        let jobs = [FusedJob {
            program: &program,
            pipeline: &bad,
        }];
        assert!(execute_fused(&mut d, &jobs).is_err());
        assert_eq!(d.buffer_mark(), mark);
    }
}
