//! `PARAPROX_NO_FUSE` environment knob.
//!
//! This lives in its own test binary: the knob is read at
//! `Device::new` time from process-global environment state, so it
//! cannot safely share a process with tests that assume the default.
//! The single test covers the whole knob surface sequentially.

use paraprox_ir::{Expr, KernelBuilder, KernelId, MemSpace, Program, Ty};
use paraprox_vgpu::{Device, DeviceProfile, Dim2, ExecEngine};

fn saxpy_like() -> (Program, KernelId) {
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("fma");
    let input = kb.buffer("in", Ty::F32, MemSpace::Global);
    let out = kb.buffer("out", Ty::F32, MemSpace::Global);
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    let x = kb.let_("x", kb.load(input, gid.clone()));
    kb.store(out, gid, x * Expr::f32(3.0) + Expr::f32(1.0));
    let kid = program.add_kernel(kb.finish());
    (program, kid)
}

/// Two launches on a fresh bytecode device; the second launch's
/// `fusions_hit` tells whether fusion engaged.
fn second_launch_fusions() -> u64 {
    let (program, kid) = saxpy_like();
    let mut device = Device::new(DeviceProfile::gtx560().with_engine(ExecEngine::Bytecode));
    let mut last = 0;
    for _ in 0..2 {
        let input = device.alloc_f32(MemSpace::Global, &[1.5; 64]);
        let out = device.alloc_f32(MemSpace::Global, &[0.0; 64]);
        let stats = device
            .launch(
                &program,
                kid,
                Dim2::linear(2),
                Dim2::linear(32),
                &[input.into(), out.into()],
            )
            .unwrap();
        last = stats.fusions_hit;
    }
    last
}

#[test]
fn no_fuse_env_disables_fusion() {
    // Serialized scenarios, one process: unset (default on), set to a
    // truthy value (off), set to ignored values (still on), then the
    // programmatic override beating the environment.
    std::env::remove_var("PARAPROX_NO_FUSE");
    assert!(
        second_launch_fusions() > 0,
        "default: fusion should engage on the second launch"
    );

    std::env::set_var("PARAPROX_NO_FUSE", "1");
    assert_eq!(second_launch_fusions(), 0, "PARAPROX_NO_FUSE=1 disables");

    std::env::set_var("PARAPROX_NO_FUSE", "  yes  ");
    assert_eq!(second_launch_fusions(), 0, "any trimmed non-`0` disables");

    for ignored in ["", "   ", "0", " 0 "] {
        std::env::set_var("PARAPROX_NO_FUSE", ignored);
        assert!(
            second_launch_fusions() > 0,
            "PARAPROX_NO_FUSE={ignored:?} should be ignored (same idiom as PARAPROX_ENGINE)"
        );
    }

    // set_fusion overrides the environment default in either direction.
    std::env::set_var("PARAPROX_NO_FUSE", "1");
    let (program, kid) = saxpy_like();
    let mut device = Device::new(DeviceProfile::gtx560().with_engine(ExecEngine::Bytecode));
    device.set_fusion(true);
    let mut last = 0;
    for _ in 0..2 {
        let input = device.alloc_f32(MemSpace::Global, &[1.5; 64]);
        let out = device.alloc_f32(MemSpace::Global, &[0.0; 64]);
        last = device
            .launch(
                &program,
                kid,
                Dim2::linear(2),
                Dim2::linear(32),
                &[input.into(), out.into()],
            )
            .unwrap()
            .fusions_hit;
    }
    assert!(last > 0, "set_fusion(true) overrides the environment");
    std::env::remove_var("PARAPROX_NO_FUSE");
}
