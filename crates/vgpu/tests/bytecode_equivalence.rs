//! Differential tests pinning the bytecode engine to the tree-walking
//! oracle.
//!
//! The bytecode compiler (`paraprox_vgpu::compile_kernel`) and the AST
//! tree-walker are two independent implementations of the kernel-IR
//! semantics. Every test here runs the same launch under both engines (and
//! under serial and parallel host execution) and asserts *bit-identical*
//! buffers, simulated cycle counts, and cache statistics — `LaunchStats`
//! equality covers every simulated counter while ignoring host wall-clock
//! fields, so a plain `assert_eq!` on stats is the whole check. Error
//! paths must agree too: both engines must raise the same `LaunchError`.
//!
//! The per-device compiled-program cache is probed directly via
//! `Device::compile_count`: re-launching a kernel (at any geometry, from
//! any structurally identical `Program`) must not recompile it.

use paraprox_ir::{
    AtomicOp, Expr, FuncBuilder, KernelBuilder, KernelId, LoopCond, LoopStep, MemSpace, Program,
    Scalar, Ty,
};
use paraprox_vgpu::{ArgValue, Device, DeviceProfile, Dim2, ExecEngine, LaunchError, LaunchStats};

/// The two stock profiles; their latency tables differ enough that a
/// charging bug in either engine shows up on at least one of them.
fn profiles() -> [DeviceProfile; 2] {
    [DeviceProfile::gtx560(), DeviceProfile::core_i7_965()]
}

/// Candidate (engine, workers) settings compared against the reference
/// `(TreeWalk, 1)` run.
const CANDIDATES: [(ExecEngine, usize); 3] = [
    (ExecEngine::Bytecode, 1),
    (ExecEngine::Bytecode, 4),
    (ExecEngine::TreeWalk, 4),
];

/// One launch outcome: buffer contents (as raw bits) plus stats or error.
type Outcome = (Vec<Vec<u32>>, Result<LaunchStats, LaunchError>);

/// Run a single-kernel program under the given profile: allocate the f32
/// buffers, launch, read every buffer back as bit patterns.
fn run_f32(
    profile: DeviceProfile,
    program: &Program,
    kid: KernelId,
    grid: Dim2,
    block: Dim2,
    buffers: &[Vec<f32>],
    scalars: &[Scalar],
) -> Outcome {
    let mut d = Device::new(profile);
    let ids: Vec<_> = buffers
        .iter()
        .map(|b| d.alloc_f32(MemSpace::Global, b))
        .collect();
    let mut args: Vec<ArgValue> = ids.iter().map(|&id| ArgValue::Buffer(id)).collect();
    args.extend(scalars.iter().map(|&s| ArgValue::Scalar(s)));
    let result = d.launch(program, kid, grid, block, &args);
    let contents = ids
        .iter()
        .map(|&id| {
            d.read_f32(id)
                .unwrap()
                .into_iter()
                .map(f32::to_bits)
                .collect()
        })
        .collect();
    (contents, result)
}

/// Assert that every candidate (engine, workers) setting reproduces the
/// reference tree-walk run exactly: same buffers bit-for-bit, same stats
/// (or the same error, with the same buffer contents left behind).
fn assert_all_engines_agree(
    program: &Program,
    kid: KernelId,
    grid: Dim2,
    block: Dim2,
    buffers: &[Vec<f32>],
    scalars: &[Scalar],
) {
    for base in profiles() {
        let reference = run_f32(
            base.clone()
                .with_engine(ExecEngine::TreeWalk)
                .with_parallelism(1),
            program,
            kid,
            grid,
            block,
            buffers,
            scalars,
        );
        for (engine, workers) in CANDIDATES {
            let got = run_f32(
                base.clone().with_engine(engine).with_parallelism(workers),
                program,
                kid,
                grid,
                block,
                buffers,
                scalars,
            );
            assert_eq!(
                got, reference,
                "{:?} x{workers} diverged from tree-walk on {}",
                engine, base.name
            );
        }
    }
}

/// Input data with sign changes and magnitude spread, so comparisons,
/// `select`, and float classification all see both outcomes.
fn mixed_inputs(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| ((i as f32) * 0.73 - 3.0).sin() * (1.0 + (i % 7) as f32))
        .collect()
}

// ---------------------------------------------------------------------------
// Divergent control flow, select, and loops
// ---------------------------------------------------------------------------

/// A kernel built to stress everything the compiler rewrites: nested
/// divergent `if`/`else`, a data-dependent trip count, `select`, integer
/// and float division latencies, transcendentals, and mixed-type casts.
fn divergence_program() -> (Program, KernelId) {
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("diverge");
    let input = kb.buffer("in", Ty::F32, MemSpace::Global);
    let output = kb.buffer("out", Ty::F32, MemSpace::Global);
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    let x = kb.let_("x", kb.load(input, gid.clone()));
    let acc = kb.let_mut("acc", Ty::F32, Expr::f32(0.0));
    // Divergent trip count: 1 + gid % 4 iterations per thread.
    kb.for_loop(
        "k",
        Expr::i32(0),
        LoopCond::Le(gid.clone().rem(Expr::i32(4))),
        LoopStep::Add(Expr::i32(1)),
        |kb, k| {
            let kf = kb.let_("kf", k.clone().cast(Ty::F32));
            kb.if_else(
                k.rem(Expr::i32(2)).eq_(Expr::i32(0)),
                |kb| {
                    kb.assign(acc, Expr::Var(acc) + (x.clone() + kf.clone()).sin());
                },
                |kb| {
                    kb.assign(
                        acc,
                        Expr::Var(acc) - x.clone() / (kf.clone() + Expr::f32(2.0)),
                    );
                },
            );
        },
    );
    // Select with both arms computed under partial masks.
    let y = kb.let_(
        "y",
        x.clone()
            .gt(Expr::f32(0.0))
            .select(x.clone().sqrt(), (-x.clone()).log()),
    );
    kb.store(output, gid, Expr::Var(acc) + y);
    let kid = program.add_kernel(kb.finish());
    (program, kid)
}

#[test]
fn divergent_control_flow_matches_tree_walker() {
    let (program, kid) = divergence_program();
    let n = 4 * 32;
    assert_all_engines_agree(
        &program,
        kid,
        Dim2::linear(4),
        Dim2::linear(32),
        &[mixed_inputs(n), vec![0.0; n]],
        &[],
    );
}

// ---------------------------------------------------------------------------
// Device functions: divergent early returns
// ---------------------------------------------------------------------------

fn early_return_program() -> (Program, KernelId) {
    let mut program = Program::new();
    let mut fb = FuncBuilder::new("clamp_heavy", Ty::F32);
    let x = fb.scalar("x", Ty::F32);
    // Lanes with negative input return early; the rest keep computing.
    fb.if_(x.clone().lt(Expr::f32(0.0)), |fb| {
        fb.ret(-x.clone());
    });
    let t = fb.let_("t", (x.clone() + Expr::f32(1.0)).log());
    fb.if_(t.clone().gt(Expr::f32(1.0)), |fb| {
        fb.ret(t.clone() * Expr::f32(2.0));
    });
    fb.ret(t.exp() / (x + Expr::f32(0.5)));
    let func = program.add_func(fb.finish());

    let mut kb = KernelBuilder::new("apply");
    let input = kb.buffer("in", Ty::F32, MemSpace::Global);
    let output = kb.buffer("out", Ty::F32, MemSpace::Global);
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    let v = kb.let_("v", kb.load(input, gid.clone()));
    kb.store(
        output,
        gid,
        Expr::Call {
            func,
            args: vec![v],
        },
    );
    let kid = program.add_kernel(kb.finish());
    (program, kid)
}

#[test]
fn divergent_function_returns_match_tree_walker() {
    let (program, kid) = early_return_program();
    let n = 2 * 32;
    assert_all_engines_agree(
        &program,
        kid,
        Dim2::linear(2),
        Dim2::linear(32),
        &[mixed_inputs(n), vec![0.0; n]],
        &[],
    );
}

// ---------------------------------------------------------------------------
// Atomics and shared memory with barriers
// ---------------------------------------------------------------------------

fn atomic_program() -> (Program, KernelId) {
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("atomic_hist");
    let input = kb.buffer("in", Ty::F32, MemSpace::Global);
    let hist = kb.buffer("hist", Ty::F32, MemSpace::Global);
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    let v = kb.let_("v", kb.load(input, gid.clone()));
    // Divergent atomics: only positive lanes contribute, into a bucket
    // derived from the value so lanes collide.
    kb.if_(v.clone().gt(Expr::f32(0.0)), |kb| {
        let bucket = kb.let_("bucket", gid.clone().rem(Expr::i32(4)));
        kb.atomic(AtomicOp::Add, hist, bucket, v.clone());
        kb.atomic(AtomicOp::Max, hist, Expr::i32(4), v.clone());
    });
    let kid = program.add_kernel(kb.finish());
    (program, kid)
}

#[test]
fn atomics_match_tree_walker() {
    let (program, kid) = atomic_program();
    let n = 2 * 32;
    assert_all_engines_agree(
        &program,
        kid,
        Dim2::linear(2),
        Dim2::linear(32),
        &[mixed_inputs(n), vec![0.0; 8]],
        &[],
    );
}

fn shared_reverse_program() -> (Program, KernelId) {
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("shared_reverse");
    let input = kb.buffer("in", Ty::F32, MemSpace::Global);
    let output = kb.buffer("out", Ty::F32, MemSpace::Global);
    let tile = kb.shared_array("tile", Ty::F32, 32);
    let tid = kb.let_("tid", KernelBuilder::thread_id_x());
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    kb.store(tile, tid.clone(), kb.load(input, gid.clone()));
    kb.sync();
    kb.store(output, gid, kb.load(tile, Expr::i32(31) - tid));
    let kid = program.add_kernel(kb.finish());
    (program, kid)
}

#[test]
fn shared_memory_barrier_matches_tree_walker() {
    let (program, kid) = shared_reverse_program();
    let n = 3 * 32;
    assert_all_engines_agree(
        &program,
        kid,
        Dim2::linear(3),
        Dim2::linear(32),
        &[mixed_inputs(n), vec![0.0; n]],
        &[],
    );
}

// ---------------------------------------------------------------------------
// Error paths: both engines must raise the same LaunchError
// ---------------------------------------------------------------------------

/// Run a kernel expected to fail under every engine; assert the errors are
/// equal and that buffers are left in the same (reverted) state.
fn assert_same_error(program: &Program, kid: KernelId, block: Dim2, buffers: &[Vec<f32>]) {
    for base in profiles() {
        let reference = run_f32(
            base.clone()
                .with_engine(ExecEngine::TreeWalk)
                .with_parallelism(1),
            program,
            kid,
            Dim2::linear(1),
            block,
            buffers,
            &[],
        );
        assert!(reference.1.is_err(), "expected an error on {}", base.name);
        for (engine, workers) in CANDIDATES {
            let got = run_f32(
                base.clone().with_engine(engine).with_parallelism(workers),
                program,
                kid,
                Dim2::linear(1),
                block,
                buffers,
                &[],
            );
            assert_eq!(
                got, reference,
                "{:?} x{workers} error path diverged on {}",
                engine, base.name
            );
        }
    }
}

#[test]
fn divergent_barrier_error_matches_tree_walker() {
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("bad_sync");
    let output = kb.buffer("out", Ty::F32, MemSpace::Global);
    let tid = kb.let_("tid", KernelBuilder::thread_id_x());
    kb.if_(tid.clone().lt(Expr::i32(16)), |kb| {
        kb.sync();
    });
    kb.store(output, tid, Expr::f32(1.0));
    let kid = program.add_kernel(kb.finish());
    assert_same_error(&program, kid, Dim2::linear(32), &[vec![0.0; 32]]);
}

#[test]
fn missing_return_error_matches_tree_walker() {
    let mut program = Program::new();
    let mut fb = FuncBuilder::new("partial", Ty::F32);
    let x = fb.scalar("x", Ty::F32);
    // Only positive lanes ever return.
    fb.if_(x.clone().gt(Expr::f32(0.0)), |fb| {
        fb.ret(x.clone().sqrt());
    });
    let func = program.add_func(fb.finish());

    let mut kb = KernelBuilder::new("call_partial");
    let input = kb.buffer("in", Ty::F32, MemSpace::Global);
    let output = kb.buffer("out", Ty::F32, MemSpace::Global);
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    let v = kb.let_("v", kb.load(input, gid.clone()));
    kb.store(
        output,
        gid,
        Expr::Call {
            func,
            args: vec![v],
        },
    );
    let kid = program.add_kernel(kb.finish());
    assert_same_error(
        &program,
        kid,
        Dim2::linear(32),
        &[mixed_inputs(32), vec![0.0; 32]],
    );
}

#[test]
fn uninitialized_var_error_matches_tree_walker() {
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("uninit");
    let output = kb.buffer("out", Ty::F32, MemSpace::Global);
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    // The local is only bound on a branch no lane takes, so the read
    // below hits an uninitialized slot in both engines.
    let mut captured = None;
    kb.if_(gid.clone().lt(Expr::i32(0)), |kb| {
        captured = Some(kb.let_("v", Expr::f32(1.0)));
    });
    kb.store(output, gid, captured.unwrap());
    let kid = program.add_kernel(kb.finish());
    assert_same_error(&program, kid, Dim2::linear(32), &[vec![0.0; 32]]);
}

#[test]
fn division_by_zero_error_matches_tree_walker() {
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("div0");
    let output = kb.buffer("out", Ty::F32, MemSpace::Global);
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    // Integer division by a runtime zero (gid - gid); not constant-foldable
    // because gid is a thread special.
    let z = kb.let_("z", gid.clone() - gid.clone());
    kb.store(output, gid.clone(), (gid / z).cast(Ty::F32));
    let kid = program.add_kernel(kb.finish());
    assert_same_error(&program, kid, Dim2::linear(32), &[vec![0.0; 32]]);
}

// ---------------------------------------------------------------------------
// Program-cache probes
// ---------------------------------------------------------------------------

#[test]
fn kernel_compiles_once_across_geometries_and_program_clones() {
    let (program, kid) = divergence_program();
    let mut d = Device::new(DeviceProfile::gtx560().with_engine(ExecEngine::Bytecode));
    let n = 4 * 32;
    let input = d.alloc_f32(MemSpace::Global, &mixed_inputs(n));
    let output = d.alloc_f32(MemSpace::Global, &vec![0.0; n]);
    let args = [ArgValue::Buffer(input), ArgValue::Buffer(output)];

    assert_eq!(d.compile_count(), 0);
    d.launch(&program, kid, Dim2::linear(4), Dim2::linear(32), &args)
        .unwrap();
    assert_eq!(d.compile_count(), 1);

    // Different geometry: same compiled program.
    d.launch(&program, kid, Dim2::linear(2), Dim2::linear(64), &args)
        .unwrap();
    assert_eq!(d.compile_count(), 1);

    // A structurally identical clone (what the tuner produces when it
    // re-builds a candidate) must hit the cache too.
    let clone = program.clone();
    d.launch(&clone, kid, Dim2::linear(4), Dim2::linear(32), &args)
        .unwrap();
    assert_eq!(d.compile_count(), 1);

    // The cache survives cache flushes (it caches code, not data).
    d.flush_caches();
    d.launch(&program, kid, Dim2::linear(4), Dim2::linear(32), &args)
        .unwrap();
    assert_eq!(d.compile_count(), 1);
}

#[test]
fn structurally_different_kernels_each_compile_once() {
    // Same-shape programs differing in one constant must not collide.
    let build = |c: f32| {
        let mut program = Program::new();
        let mut kb = KernelBuilder::new("scale");
        let data = kb.buffer("data", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let v = kb.let_("v", kb.load(data, gid.clone()));
        kb.store(data, gid, v * Expr::f32(c));
        let kid = program.add_kernel(kb.finish());
        (program, kid)
    };
    let (p2, k2) = build(2.0);
    let (p3, k3) = build(3.0);
    let mut d = Device::new(DeviceProfile::gtx560().with_engine(ExecEngine::Bytecode));
    let buf = d.alloc_f32(MemSpace::Global, &[1.0; 32]);
    let args = [ArgValue::Buffer(buf)];

    d.launch(&p2, k2, Dim2::linear(1), Dim2::linear(32), &args)
        .unwrap();
    d.launch(&p3, k3, Dim2::linear(1), Dim2::linear(32), &args)
        .unwrap();
    assert_eq!(d.compile_count(), 2);
    // Re-running both stays cached.
    d.launch(&p2, k2, Dim2::linear(1), Dim2::linear(32), &args)
        .unwrap();
    d.launch(&p3, k3, Dim2::linear(1), Dim2::linear(32), &args)
        .unwrap();
    assert_eq!(d.compile_count(), 2);
    assert_eq!(d.read_f32(buf).unwrap(), vec![2.0 * 3.0 * 2.0 * 3.0; 32]);
}

#[test]
fn changing_a_called_func_recompiles_the_kernel() {
    let build = |c: f32| {
        let mut program = Program::new();
        let mut fb = FuncBuilder::new("f", Ty::F32);
        let x = fb.scalar("x", Ty::F32);
        fb.ret(x + Expr::f32(c));
        let func = program.add_func(fb.finish());
        let mut kb = KernelBuilder::new("apply");
        let data = kb.buffer("data", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let v = kb.let_("v", kb.load(data, gid.clone()));
        kb.store(
            data,
            gid,
            Expr::Call {
                func,
                args: vec![v],
            },
        );
        let kid = program.add_kernel(kb.finish());
        (program, kid)
    };
    // The kernel bodies are identical; only the called function differs,
    // so the cache must key on the functions as well.
    let (p1, k1) = build(1.0);
    let (p2, k2) = build(2.0);
    let mut d = Device::new(DeviceProfile::gtx560().with_engine(ExecEngine::Bytecode));
    let buf = d.alloc_f32(MemSpace::Global, &[0.0; 32]);
    let args = [ArgValue::Buffer(buf)];
    d.launch(&p1, k1, Dim2::linear(1), Dim2::linear(32), &args)
        .unwrap();
    d.launch(&p2, k2, Dim2::linear(1), Dim2::linear(32), &args)
        .unwrap();
    assert_eq!(d.compile_count(), 2);
    assert_eq!(d.read_f32(buf).unwrap(), vec![3.0; 32]);
}

#[test]
fn tree_walk_engine_never_compiles() {
    let (program, kid) = divergence_program();
    let mut d = Device::new(DeviceProfile::gtx560().with_engine(ExecEngine::TreeWalk));
    let n = 4 * 32;
    let input = d.alloc_f32(MemSpace::Global, &mixed_inputs(n));
    let output = d.alloc_f32(MemSpace::Global, &vec![0.0; n]);
    d.launch(
        &program,
        kid,
        Dim2::linear(4),
        Dim2::linear(32),
        &[ArgValue::Buffer(input), ArgValue::Buffer(output)],
    )
    .unwrap();
    assert_eq!(d.compile_count(), 0);
}
