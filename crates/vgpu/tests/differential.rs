//! Differential and property-based testing of the SIMT interpreter.
//!
//! The interpreter and the pure evaluator (`paraprox_ir::eval_func`) are
//! two independent implementations of the IR's semantics; running randomly
//! generated pure functions through both and comparing the results guards
//! each against the other.

use paraprox_ir::{
    eval_func, Expr, Func, FuncId, KernelBuilder, LocalDecl, MemSpace, Param, Program, Scalar,
    Stmt, Ty, VarId,
};
use paraprox_vgpu::{Device, DeviceProfile, Dim2};
use proptest::prelude::*;

/// A compact generator of pure f32 expression trees over one parameter
/// (`Param(0)`) and one bound local (`Var(0)`).
fn arb_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (-4.0f32..4.0).prop_map(Expr::f32),
        Just(Expr::Param(0)),
        Just(Expr::Var(VarId(0))),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.min(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.max(b)),
            inner.clone().prop_map(|a| a.abs()),
            inner.clone().prop_map(|a| (a.abs() + Expr::f32(0.5)).sqrt()),
            inner.clone().prop_map(|a| a.min(Expr::f32(8.0)).exp()),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, f)| {
                c.lt(Expr::f32(0.0)).select(t, f)
            }),
        ]
    })
    .boxed()
}

/// Wrap an expression into a pure function `f(x) = let v0 = x * 0.5 + 1; expr`.
fn wrap_function(expr: Expr) -> Func {
    Func {
        name: "generated".to_string(),
        params: vec![Param::Scalar {
            name: "x".to_string(),
            ty: Ty::F32,
        }],
        ret: Ty::F32,
        locals: vec![LocalDecl {
            name: "v0".to_string(),
            ty: Ty::F32,
        }],
        body: vec![
            Stmt::Let {
                var: VarId(0),
                init: Expr::Param(0) * Expr::f32(0.5) + Expr::f32(1.0),
            },
            Stmt::Return(expr),
        ],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The SIMT interpreter and the pure evaluator agree on every lane.
    #[test]
    fn interpreter_matches_pure_evaluator(expr in arb_expr(4), xs in prop::collection::vec(-8.0f32..8.0, 8..32)) {
        let mut program = Program::new();
        let func = wrap_function(expr);
        let func_id: FuncId = program.add_func(func.clone());

        // Kernel applying the function to each element.
        let mut kb = KernelBuilder::new("apply");
        let input = kb.buffer("in", Ty::F32, MemSpace::Global);
        let output = kb.buffer("out", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let x = kb.let_("x", kb.load(input, gid.clone()));
        kb.store(output, gid, Expr::Call { func: func_id, args: vec![x] });
        let kid = program.add_kernel(kb.finish());

        // Pad to a full block.
        let n = xs.len().next_multiple_of(8);
        let mut data = xs.clone();
        data.resize(n, 0.0);

        let mut device = Device::new(DeviceProfile::gtx560());
        let in_b = device.alloc_f32(MemSpace::Global, &data);
        let out_b = device.alloc_f32(MemSpace::Global, &vec![0.0; n]);
        device
            .launch(&program, kid, Dim2::linear(n / 8), Dim2::linear(8), &[in_b.into(), out_b.into()])
            .expect("launch");
        let simd = device.read_f32(out_b).expect("read");

        for (i, &x) in xs.iter().enumerate() {
            let scalar = eval_func(&program, &func, &[Scalar::F32(x)])
                .expect("pure eval")
                .as_f32()
                .expect("f32");
            let got = simd[i];
            prop_assert!(
                (scalar.is_nan() && got.is_nan()) || (scalar - got).abs() <= 1e-5 * scalar.abs().max(1.0),
                "lane {i} (x={x}): interpreter {got} vs evaluator {scalar}"
            );
        }
    }

    /// Warp/block decomposition is semantically invisible: any block shape
    /// covering the same global indices produces identical results.
    #[test]
    fn block_shape_does_not_change_results(
        xs in prop::collection::vec(-100.0f32..100.0, 64..=64),
        block in prop_oneof![Just(8usize), Just(16), Just(32), Just(64)],
    ) {
        let mut program = Program::new();
        let mut kb = KernelBuilder::new("affine");
        let input = kb.buffer("in", Ty::F32, MemSpace::Global);
        let output = kb.buffer("out", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let x = kb.let_("x", kb.load(input, gid.clone()));
        let even = gid.clone().rem(Expr::i32(2)).eq_(Expr::i32(0));
        kb.store(output, gid, even.select(x.clone() * Expr::f32(3.0), x - Expr::f32(1.0)));
        let kid = program.add_kernel(kb.finish());

        let run = |block: usize| {
            let mut device = Device::new(DeviceProfile::gtx560());
            let in_b = device.alloc_f32(MemSpace::Global, &xs);
            let out_b = device.alloc_f32(MemSpace::Global, &vec![0.0; 64]);
            device
                .launch(&program, kid, Dim2::linear(64 / block), Dim2::linear(block), &[in_b.into(), out_b.into()])
                .expect("launch");
            device.read_f32(out_b).expect("read")
        };
        prop_assert_eq!(run(block), run(64));
    }

    /// Atomic accumulation is order-insensitive for integer addition: any
    /// grid decomposition yields the same total.
    #[test]
    fn atomic_totals_independent_of_decomposition(
        values in prop::collection::vec(0i32..100, 32..=32),
        blocks in 1usize..=4,
    ) {
        let mut program = Program::new();
        let mut kb = KernelBuilder::new("sum");
        let input = kb.buffer("in", Ty::I32, MemSpace::Global);
        let total = kb.buffer("total", Ty::I32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let v = kb.let_("v", kb.load(input, gid.clone()));
        kb.atomic(paraprox_ir::AtomicOp::Add, total, Expr::i32(0), v);
        let kid = program.add_kernel(kb.finish());

        let expected: i32 = values.iter().sum();
        // 32 must be divisible by the block count for full coverage.
        let blocks = [1usize, 2, 4][blocks % 3];
        let mut device = Device::new(DeviceProfile::gtx560());
        let in_b = device.alloc_i32(MemSpace::Global, &values);
        let tot_b = device.alloc_i32(MemSpace::Global, &[0]);
        device
            .launch(&program, kid, Dim2::linear(blocks), Dim2::linear(32 / blocks), &[in_b.into(), tot_b.into()])
            .expect("launch");
        prop_assert_eq!(device.read_i32(tot_b).expect("read")[0], expected);
    }

    /// Cost accounting is deterministic: identical launches report
    /// identical statistics.
    #[test]
    fn stats_are_deterministic(xs in prop::collection::vec(-10.0f32..10.0, 32..=32)) {
        let mut program = Program::new();
        let mut kb = KernelBuilder::new("k");
        let input = kb.buffer("in", Ty::F32, MemSpace::Global);
        let output = kb.buffer("out", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let x = kb.let_("x", kb.load(input, gid.clone()));
        kb.store(output, gid, x.exp());
        let kid = program.add_kernel(kb.finish());
        let run = || {
            let mut device = Device::new(DeviceProfile::gtx560());
            let in_b = device.alloc_f32(MemSpace::Global, &xs);
            let out_b = device.alloc_f32(MemSpace::Global, &[0.0; 32]);
            device
                .launch(&program, kid, Dim2::linear(1), Dim2::linear(32), &[in_b.into(), out_b.into()])
                .expect("launch")
        };
        prop_assert_eq!(run(), run());
    }
}
