//! Differential and randomized testing of the SIMT interpreter.
//!
//! The interpreter and the pure evaluator (`paraprox_ir::eval_func`) are
//! two independent implementations of the IR's semantics; running randomly
//! generated pure functions through both and comparing the results guards
//! each against the other. Cases are drawn from the in-repo deterministic
//! PRNG, so every run exercises the same corpus.

use paraprox_ir::{
    eval_func, Expr, Func, FuncId, KernelBuilder, LocalDecl, MemSpace, Param, Program, Scalar,
    Stmt, Ty, VarId,
};
use paraprox_prng::Rng;
use paraprox_vgpu::{Device, DeviceProfile, Dim2};

/// A compact generator of pure f32 expression trees over one parameter
/// (`Param(0)`) and one bound local (`Var(0)`).
fn gen_expr(r: &mut Rng, depth: u32) -> Expr {
    if depth == 0 || r.random_range(0u32..4) == 0 {
        return match r.random_range(0u32..3) {
            0 => Expr::f32(r.random_range(-4.0f32..4.0)),
            1 => Expr::Param(0),
            _ => Expr::Var(VarId(0)),
        };
    }
    let a = gen_expr(r, depth - 1);
    match r.random_range(0u32..9) {
        0 => a + gen_expr(r, depth - 1),
        1 => a - gen_expr(r, depth - 1),
        2 => a * gen_expr(r, depth - 1),
        3 => a.min(gen_expr(r, depth - 1)),
        4 => a.max(gen_expr(r, depth - 1)),
        5 => a.abs(),
        6 => (a.abs() + Expr::f32(0.5)).sqrt(),
        7 => a.min(Expr::f32(8.0)).exp(),
        _ => a
            .lt(Expr::f32(0.0))
            .select(gen_expr(r, depth - 1), gen_expr(r, depth - 1)),
    }
}

/// Wrap an expression into a pure function `f(x) = let v0 = x * 0.5 + 1; expr`.
fn wrap_function(expr: Expr) -> Func {
    Func {
        name: "generated".to_string(),
        params: vec![Param::Scalar {
            name: "x".to_string(),
            ty: Ty::F32,
        }],
        ret: Ty::F32,
        locals: vec![LocalDecl {
            name: "v0".to_string(),
            ty: Ty::F32,
        }],
        body: vec![
            Stmt::Let {
                var: VarId(0),
                init: Expr::Param(0) * Expr::f32(0.5) + Expr::f32(1.0),
            },
            Stmt::Return(expr),
        ],
    }
}

/// The SIMT interpreter and the pure evaluator agree on every lane.
#[test]
fn interpreter_matches_pure_evaluator() {
    for case in 0..64u64 {
        let mut r = Rng::seed_from_u64(0xD1FF ^ case);
        let expr = gen_expr(&mut r, 4);
        let xs: Vec<f32> = (0..r.random_range(8usize..32))
            .map(|_| r.random_range(-8.0f32..8.0))
            .collect();

        let mut program = Program::new();
        let func = wrap_function(expr);
        let func_id: FuncId = program.add_func(func.clone());

        // Kernel applying the function to each element.
        let mut kb = KernelBuilder::new("apply");
        let input = kb.buffer("in", Ty::F32, MemSpace::Global);
        let output = kb.buffer("out", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let x = kb.let_("x", kb.load(input, gid.clone()));
        kb.store(
            output,
            gid,
            Expr::Call {
                func: func_id,
                args: vec![x],
            },
        );
        let kid = program.add_kernel(kb.finish());

        // Pad to a full block.
        let n = xs.len().next_multiple_of(8);
        let mut data = xs.clone();
        data.resize(n, 0.0);

        let mut device = Device::new(DeviceProfile::gtx560());
        let in_b = device.alloc_f32(MemSpace::Global, &data);
        let out_b = device.alloc_f32(MemSpace::Global, &vec![0.0; n]);
        device
            .launch(
                &program,
                kid,
                Dim2::linear(n / 8),
                Dim2::linear(8),
                &[in_b.into(), out_b.into()],
            )
            .expect("launch");
        let simd = device.read_f32(out_b).expect("read");

        for (i, &x) in xs.iter().enumerate() {
            let scalar = eval_func(&program, &func, &[Scalar::F32(x)])
                .expect("pure eval")
                .as_f32()
                .expect("f32");
            let got = simd[i];
            assert!(
                (scalar.is_nan() && got.is_nan())
                    || (scalar - got).abs() <= 1e-5 * scalar.abs().max(1.0),
                "case {case} lane {i} (x={x}): interpreter {got} vs evaluator {scalar}"
            );
        }
    }
}

/// Warp/block decomposition is semantically invisible: any block shape
/// covering the same global indices produces identical results.
#[test]
fn block_shape_does_not_change_results() {
    for case in 0..16u64 {
        let mut r = Rng::seed_from_u64(0xB10C ^ case);
        let xs: Vec<f32> = (0..64).map(|_| r.random_range(-100.0f32..100.0)).collect();

        let mut program = Program::new();
        let mut kb = KernelBuilder::new("affine");
        let input = kb.buffer("in", Ty::F32, MemSpace::Global);
        let output = kb.buffer("out", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let x = kb.let_("x", kb.load(input, gid.clone()));
        let even = gid.clone().rem(Expr::i32(2)).eq_(Expr::i32(0));
        kb.store(
            output,
            gid,
            even.select(x.clone() * Expr::f32(3.0), x - Expr::f32(1.0)),
        );
        let kid = program.add_kernel(kb.finish());

        let run = |block: usize| {
            let mut device = Device::new(DeviceProfile::gtx560());
            let in_b = device.alloc_f32(MemSpace::Global, &xs);
            let out_b = device.alloc_f32(MemSpace::Global, &vec![0.0; 64]);
            device
                .launch(
                    &program,
                    kid,
                    Dim2::linear(64 / block),
                    Dim2::linear(block),
                    &[in_b.into(), out_b.into()],
                )
                .expect("launch");
            device.read_f32(out_b).expect("read")
        };
        let reference = run(64);
        for block in [8usize, 16, 32] {
            assert_eq!(run(block), reference, "case {case} block {block}");
        }
    }
}

/// Atomic accumulation is order-insensitive for integer addition: any
/// grid decomposition yields the same total.
#[test]
fn atomic_totals_independent_of_decomposition() {
    for case in 0..16u64 {
        let mut r = Rng::seed_from_u64(0xA70 ^ case);
        let values: Vec<i32> = (0..32).map(|_| r.random_range(0i32..100)).collect();

        let mut program = Program::new();
        let mut kb = KernelBuilder::new("sum");
        let input = kb.buffer("in", Ty::I32, MemSpace::Global);
        let total = kb.buffer("total", Ty::I32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let v = kb.let_("v", kb.load(input, gid.clone()));
        kb.atomic(paraprox_ir::AtomicOp::Add, total, Expr::i32(0), v);
        let kid = program.add_kernel(kb.finish());

        let expected: i32 = values.iter().sum();
        // 32 must be divisible by the block count for full coverage.
        for blocks in [1usize, 2, 4] {
            let mut device = Device::new(DeviceProfile::gtx560());
            let in_b = device.alloc_i32(MemSpace::Global, &values);
            let tot_b = device.alloc_i32(MemSpace::Global, &[0]);
            device
                .launch(
                    &program,
                    kid,
                    Dim2::linear(blocks),
                    Dim2::linear(32 / blocks),
                    &[in_b.into(), tot_b.into()],
                )
                .expect("launch");
            assert_eq!(
                device.read_i32(tot_b).expect("read")[0],
                expected,
                "case {case} blocks {blocks}"
            );
        }
    }
}

/// Cost accounting is deterministic: identical launches report
/// identical statistics.
#[test]
fn stats_are_deterministic() {
    for case in 0..8u64 {
        let mut r = Rng::seed_from_u64(0x57A7 ^ case);
        let xs: Vec<f32> = (0..32).map(|_| r.random_range(-10.0f32..10.0)).collect();

        let mut program = Program::new();
        let mut kb = KernelBuilder::new("k");
        let input = kb.buffer("in", Ty::F32, MemSpace::Global);
        let output = kb.buffer("out", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let x = kb.let_("x", kb.load(input, gid.clone()));
        kb.store(output, gid, x.exp());
        let kid = program.add_kernel(kb.finish());
        let run = || {
            let mut device = Device::new(DeviceProfile::gtx560());
            let in_b = device.alloc_f32(MemSpace::Global, &xs);
            let out_b = device.alloc_f32(MemSpace::Global, &[0.0; 32]);
            device
                .launch(
                    &program,
                    kid,
                    Dim2::linear(1),
                    Dim2::linear(32),
                    &[in_b.into(), out_b.into()],
                )
                .expect("launch")
        };
        assert_eq!(run(), run(), "case {case}");
    }
}
