//! Regression tests for the block-parallel executor's determinism
//! contract: for any worker count, a launch must produce bit-identical
//! buffer contents, simulated cycle counts, and cache statistics.
//!
//! `LaunchStats` equality deliberately covers every simulated counter
//! (including L1/constant hit and miss counts) while ignoring the
//! host-side `wall_nanos`/`workers` measurements, so a plain `assert_eq!`
//! on stats is the whole cross-parallelism check.

use paraprox_ir::{
    AtomicOp, Expr, KernelBuilder, LoopCond, LoopStep, MemSpace, Program, Scalar, Ty,
};
use paraprox_vgpu::{Device, DeviceProfile, Dim2, LaunchStats};

fn device_with_workers(workers: usize) -> Device {
    Device::new(DeviceProfile::gtx560().with_parallelism(workers))
}

/// A compute-heavy stencil-ish kernel: per-thread loop, divergence at the
/// edges, global loads with partial reuse (exercises the cache model), and
/// a transcendental so float bit-patterns matter.
fn stencil_program() -> (Program, paraprox_ir::KernelId) {
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("stencil");
    let input = kb.buffer("in", Ty::F32, MemSpace::Global);
    let output = kb.buffer("out", Ty::F32, MemSpace::Global);
    let n = kb.scalar("n", Ty::I32);
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    kb.if_(
        gid.clone().gt(Expr::i32(0)) & gid.clone().lt(n - Expr::i32(1)),
        |kb| {
            let acc = kb.let_mut("acc", Ty::F32, Expr::f32(0.0));
            kb.for_loop(
                "k",
                Expr::i32(-1),
                LoopCond::Le(Expr::i32(1)),
                LoopStep::Add(Expr::i32(1)),
                |kb, k| {
                    let v = kb.let_("v", kb.load(input, gid.clone() + k));
                    kb.assign(acc, Expr::Var(acc) + v.exp());
                },
            );
            kb.store(output, gid.clone(), Expr::Var(acc) / Expr::f32(3.0));
        },
    );
    let kid = program.add_kernel(kb.finish());
    (program, kid)
}

/// Run the stencil at a given worker count; return outputs and stats.
fn run_stencil(workers: usize, blocks: usize) -> (Vec<f32>, LaunchStats) {
    let (program, kid) = stencil_program();
    let mut d = device_with_workers(workers);
    let n = blocks * 32;
    let data: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin() * 0.5).collect();
    let input = d.alloc_f32(MemSpace::Global, &data);
    let output = d.alloc_f32(MemSpace::Global, &vec![0.0; n]);
    let stats = d
        .launch(
            &program,
            kid,
            Dim2::linear(blocks),
            Dim2::linear(32),
            &[input.into(), output.into(), Scalar::I32(n as i32).into()],
        )
        .unwrap();
    (d.read_f32(output).unwrap(), stats)
}

#[test]
fn stencil_identical_across_worker_counts() {
    let (out1, stats1) = run_stencil(1, 16);
    for workers in [2, 3, 4, 8] {
        let (out_n, stats_n) = run_stencil(workers, 16);
        // Bit-identical outputs.
        for (a, b) in out1.iter().zip(&out_n) {
            assert_eq!(a.to_bits(), b.to_bits(), "{workers} workers");
        }
        // Identical cycle counts and cache statistics.
        assert_eq!(stats1, stats_n, "{workers} workers");
    }
    assert_eq!(stats1.workers, 1);
    assert!(stats1.wall_nanos > 0);
}

#[test]
fn worker_count_is_capped_by_block_count() {
    let (_, stats) = run_stencil(8, 2);
    assert_eq!(
        stats.workers, 2,
        "no point spawning more workers than blocks"
    );
}

/// Cross-block atomic accumulation: every thread of every block adds into
/// one global cell. The ordered replay must reproduce the exact total (an
/// integer, so associativity is not in play) at every worker count.
#[test]
fn global_atomics_total_is_exact_for_any_worker_count() {
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("count");
    let out = kb.buffer("out", Ty::I32, MemSpace::Global);
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    kb.atomic(AtomicOp::Add, out, Expr::i32(0), gid.rem(Expr::i32(7)));
    let kid = program.add_kernel(kb.finish());

    let blocks = 12;
    let lanes = 32;
    let expected: i32 = (0..(blocks * lanes) as i32).map(|g| g % 7).sum();
    let mut stats_by_workers = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let mut d = device_with_workers(workers);
        let out = d.alloc_i32(MemSpace::Global, &[0]);
        let stats = d
            .launch(
                &program,
                kid,
                Dim2::linear(blocks),
                Dim2::linear(lanes),
                &[out.into()],
            )
            .unwrap();
        assert_eq!(
            d.read_i32(out).unwrap(),
            vec![expected],
            "{workers} workers"
        );
        stats_by_workers.push(stats);
    }
    for s in &stats_by_workers[1..] {
        assert_eq!(*s, stats_by_workers[0]);
    }
}

/// Cache state carried across launches must also be schedule-independent:
/// the second launch starts from the first launch's final cache, so its
/// hit/miss profile would diverge if the merged cache state depended on
/// the worker schedule.
#[test]
fn back_to_back_launches_keep_cache_state_deterministic() {
    let (program, kid) = stencil_program();
    let run_twice = |workers: usize| {
        let mut d = device_with_workers(workers);
        let n = 8 * 32;
        let data: Vec<f32> = (0..n).map(|i| i as f32 * 0.01).collect();
        let input = d.alloc_f32(MemSpace::Global, &data);
        let output = d.alloc_f32(MemSpace::Global, &vec![0.0; n]);
        let args = [input.into(), output.into(), Scalar::I32(n as i32).into()];
        let first = d
            .launch(&program, kid, Dim2::linear(8), Dim2::linear(32), &args)
            .unwrap();
        let second = d
            .launch(&program, kid, Dim2::linear(8), Dim2::linear(32), &args)
            .unwrap();
        (first, second, d.read_f32(output).unwrap())
    };
    let (first1, second1, out1) = run_twice(1);
    let (first4, second4, out4) = run_twice(4);
    assert_eq!(first1, first4);
    assert_eq!(second1, second4);
    assert_eq!(out1, out4);
    // The second launch re-reads the same lines: the warmed cache must
    // show strictly more hits than the cold one, at every worker count.
    assert!(second1.l1_hits > first1.l1_hits);
}

/// Errors must surface at every worker count (an out-of-bounds store in
/// one specific block), and the error kernel's name must be reported.
#[test]
fn errors_surface_at_every_worker_count() {
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("oob");
    let out = kb.buffer("out", Ty::F32, MemSpace::Global);
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    kb.store(out, gid, Expr::f32(1.0));
    let kid = program.add_kernel(kb.finish());
    for workers in [1usize, 2, 4] {
        let mut d = device_with_workers(workers);
        // 4 blocks x 32 lanes = 128 threads, but only 100 elements: the
        // last block runs out of bounds.
        let out = d.alloc_f32(MemSpace::Global, &vec![0.0; 100]);
        let err = d
            .launch(
                &program,
                kid,
                Dim2::linear(4),
                Dim2::linear(32),
                &[out.into()],
            )
            .unwrap_err();
        assert!(err.to_string().contains("oob"), "{workers} workers: {err}");
    }
}
