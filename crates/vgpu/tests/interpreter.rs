//! Behavioral tests for the SIMT interpreter: semantics (results) and cost
//! model (stats) together.

use paraprox_ir::{
    AtomicOp, Expr, FuncBuilder, KernelBuilder, LoopCond, LoopStep, MemSpace, Program, Scalar, Ty,
};
use paraprox_vgpu::{ArgValue, Device, DeviceProfile, Dim2, LaunchError};

fn gpu() -> Device {
    Device::new(DeviceProfile::gtx560())
}

#[test]
fn map_kernel_computes_per_thread() {
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("affine");
    let input = kb.buffer("in", Ty::F32, MemSpace::Global);
    let output = kb.buffer("out", Ty::F32, MemSpace::Global);
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    let x = kb.let_("x", kb.load(input, gid.clone()));
    kb.store(output, gid, x * Expr::f32(3.0) + Expr::f32(1.0));
    let kid = program.add_kernel(kb.finish());

    let mut d = gpu();
    let data: Vec<f32> = (0..128).map(|i| i as f32).collect();
    let input = d.alloc_f32(MemSpace::Global, &data);
    let output = d.alloc_f32(MemSpace::Global, &vec![0.0; 128]);
    d.launch(
        &program,
        kid,
        Dim2::linear(4),
        Dim2::linear(32),
        &[input.into(), output.into()],
    )
    .unwrap();
    let out = d.read_f32(output).unwrap();
    for (i, v) in out.iter().enumerate() {
        assert_eq!(*v, i as f32 * 3.0 + 1.0);
    }
}

#[test]
fn divergent_if_executes_both_arms() {
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("parity");
    let output = kb.buffer("out", Ty::F32, MemSpace::Global);
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    let even = gid.clone().rem(Expr::i32(2)).eq_(Expr::i32(0));
    kb.if_else(
        even,
        |kb| kb.store(output, gid.clone(), Expr::f32(1.0)),
        |kb| kb.store(output, gid.clone(), Expr::f32(-1.0)),
    );
    let kid = program.add_kernel(kb.finish());

    let mut d = gpu();
    let output = d.alloc_f32(MemSpace::Global, &vec![0.0; 64]);
    d.launch(
        &program,
        kid,
        Dim2::linear(2),
        Dim2::linear(32),
        &[output.into()],
    )
    .unwrap();
    let out = d.read_f32(output).unwrap();
    for (i, v) in out.iter().enumerate() {
        assert_eq!(*v, if i % 2 == 0 { 1.0 } else { -1.0 });
    }
}

#[test]
fn tree_reduction_with_shared_memory_and_barriers() {
    // The canonical CUDA block reduction: load into shared, halve stride.
    let block = 64usize;
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("block_sum");
    let input = kb.buffer("in", Ty::F32, MemSpace::Global);
    let output = kb.buffer("out", Ty::F32, MemSpace::Global);
    let shared = kb.shared_array("scratch", Ty::F32, block);
    let tid = kb.let_("tid", KernelBuilder::thread_id_x());
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    kb.store(shared, tid.clone(), kb.load(input, gid));
    kb.sync();
    kb.for_loop(
        "s",
        Expr::i32(block as i32 / 2),
        LoopCond::Gt(Expr::i32(0)),
        LoopStep::Shr(Expr::i32(1)),
        |kb, s| {
            kb.if_(tid.clone().lt(s.clone()), |kb| {
                let a = kb.let_("a", kb.load(shared, tid.clone()));
                let b = kb.let_("b", kb.load(shared, tid.clone() + s.clone()));
                kb.store(shared, tid.clone(), a + b);
            });
            kb.sync();
        },
    );
    kb.if_(tid.clone().eq_(Expr::i32(0)), |kb| {
        kb.store(
            output,
            KernelBuilder::block_id_x(),
            kb.load(shared, Expr::i32(0)),
        );
    });
    let kid = program.add_kernel(kb.finish());

    let mut d = gpu();
    let data: Vec<f32> = (0..block as i32 * 2).map(|i| i as f32).collect();
    let input = d.alloc_f32(MemSpace::Global, &data);
    let output = d.alloc_f32(MemSpace::Global, &[0.0, 0.0]);
    d.launch(
        &program,
        kid,
        Dim2::linear(2),
        Dim2::linear(block),
        &[input.into(), output.into()],
    )
    .unwrap();
    let out = d.read_f32(output).unwrap();
    let expected0: f32 = (0..block as i32).map(|i| i as f32).sum();
    let expected1: f32 = (block as i32..2 * block as i32).map(|i| i as f32).sum();
    assert_eq!(out, vec![expected0, expected1]);
}

#[test]
fn atomics_accumulate_across_all_threads() {
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("count");
    let counter = kb.buffer("counter", Ty::I32, MemSpace::Global);
    kb.atomic(AtomicOp::Add, counter, Expr::i32(0), Expr::i32(1));
    let kid = program.add_kernel(kb.finish());

    let mut d = gpu();
    let counter = d.alloc_i32(MemSpace::Global, &[0]);
    let stats = d
        .launch(
            &program,
            kid,
            Dim2::linear(4),
            Dim2::linear(32),
            &[counter.into()],
        )
        .unwrap();
    assert_eq!(d.read_i32(counter).unwrap(), vec![128]);
    assert_eq!(stats.atomics, 128);
    // Atomics serialize: cost scales with the lane count, so it dominates
    // a same-shaped kernel doing a plain store.
    assert!(stats.memory_cycles >= 128 * d.profile().atomic_lat);
}

#[test]
fn coalesced_loads_issue_fewer_transactions_than_gather() {
    let n = 256usize;
    let mut program = Program::new();

    // Coalesced: thread i loads element i.
    let mut kb = KernelBuilder::new("coalesced");
    let input = kb.buffer("in", Ty::F32, MemSpace::Global);
    let output = kb.buffer("out", Ty::F32, MemSpace::Global);
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    let v = kb.let_("v", kb.load(input, gid.clone()));
    kb.store(output, gid, v);
    let coalesced = program.add_kernel(kb.finish());

    // Strided gather: thread i loads element (i * 33) % n — every lane a
    // different cache line region.
    let mut kb = KernelBuilder::new("gather");
    let input = kb.buffer("in", Ty::F32, MemSpace::Global);
    let output = kb.buffer("out", Ty::F32, MemSpace::Global);
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    let idx = kb.let_(
        "idx",
        (gid.clone() * Expr::i32(33)).rem(Expr::i32(n as i32)),
    );
    let v = kb.let_("v", kb.load(input, idx));
    kb.store(output, gid, v);
    let gather = program.add_kernel(kb.finish());

    let mut d = gpu();
    let data = vec![1.0f32; n];
    let input = d.alloc_f32(MemSpace::Global, &data);
    let output = d.alloc_f32(MemSpace::Global, &vec![0.0; n]);
    let grid = Dim2::linear(n / 32);
    let block = Dim2::linear(32);
    let args = [ArgValue::Buffer(input), ArgValue::Buffer(output)];
    let s_coalesced = d.launch(&program, coalesced, grid, block, &args).unwrap();
    d.flush_caches();
    let s_gather = d.launch(&program, gather, grid, block, &args).unwrap();

    assert!(
        s_gather.load_transactions > 2 * s_coalesced.load_transactions,
        "gather {} vs coalesced {}",
        s_gather.load_transactions,
        s_coalesced.load_transactions
    );
    assert!(s_gather.serialization_overhead() > s_coalesced.serialization_overhead());
}

#[test]
fn shared_memory_bank_conflicts_cost_extra() {
    let mut program = Program::new();
    for (name, stride) in [("conflict_free", 1), ("conflicted", 32)] {
        let mut kb = KernelBuilder::new(name);
        let output = kb.buffer("out", Ty::F32, MemSpace::Global);
        let shared = kb.shared_array("s", Ty::F32, 32 * 32);
        let tid = kb.let_("tid", KernelBuilder::thread_id_x());
        // stride 1: each lane its own bank; stride 32: all lanes bank 0.
        let idx = kb.let_("idx", tid.clone() * Expr::i32(stride));
        kb.store(shared, idx.clone(), Expr::f32(1.0));
        kb.sync();
        let v = kb.let_("v", kb.load(shared, idx));
        kb.store(output, tid, v);
        program.add_kernel(kb.finish());
    }
    let free_id = program.kernel_by_name("conflict_free").unwrap();
    let conflicted_id = program.kernel_by_name("conflicted").unwrap();

    let mut d = gpu();
    let out = d.alloc_f32(MemSpace::Global, &[0.0; 32]);
    let args = [ArgValue::Buffer(out)];
    let s_free = d
        .launch(&program, free_id, Dim2::linear(1), Dim2::linear(32), &args)
        .unwrap();
    let s_conf = d
        .launch(
            &program,
            conflicted_id,
            Dim2::linear(1),
            Dim2::linear(32),
            &args,
        )
        .unwrap();
    assert_eq!(s_free.bank_conflict_extra, 0);
    assert!(s_conf.bank_conflict_extra >= 62); // 31 extra on store + load
    assert!(s_conf.memory_cycles > s_free.memory_cycles);
}

#[test]
fn constant_broadcast_is_cheap_divergent_constant_serializes() {
    let mut program = Program::new();
    for (name, use_gid) in [("broadcast", false), ("divergent", true)] {
        let mut kb = KernelBuilder::new(name);
        let table = kb.buffer("table", Ty::F32, MemSpace::Constant);
        let output = kb.buffer("out", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let idx = if use_gid { gid.clone() } else { Expr::i32(0) };
        let v = kb.let_("v", kb.load(table, idx));
        kb.store(output, gid, v);
        program.add_kernel(kb.finish());
    }
    let broadcast = program.kernel_by_name("broadcast").unwrap();
    let divergent = program.kernel_by_name("divergent").unwrap();

    let mut d = gpu();
    let table = d.alloc_f32(MemSpace::Constant, &vec![2.5; 64]);
    let out = d.alloc_f32(MemSpace::Global, &vec![0.0; 64]);
    let args = [ArgValue::Buffer(table), ArgValue::Buffer(out)];
    let s_b = d
        .launch(
            &program,
            broadcast,
            Dim2::linear(2),
            Dim2::linear(32),
            &args,
        )
        .unwrap();
    let s_d = d
        .launch(
            &program,
            divergent,
            Dim2::linear(2),
            Dim2::linear(32),
            &args,
        )
        .unwrap();
    assert!(s_d.load_transactions > s_b.load_transactions);
    assert_eq!(d.read_f32(out).unwrap(), vec![2.5; 64]);
}

#[test]
fn divergent_barrier_is_an_error() {
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("bad_sync");
    let tid = kb.let_("tid", KernelBuilder::thread_id_x());
    kb.if_(tid.lt(Expr::i32(16)), |kb| kb.sync());
    let kid = program.add_kernel(kb.finish());
    let mut d = gpu();
    let err = d
        .launch(&program, kid, Dim2::linear(1), Dim2::linear(32), &[])
        .unwrap_err();
    assert!(matches!(err, LaunchError::Eval { .. }));
    assert!(err.to_string().contains("divergent"));
}

#[test]
fn out_of_bounds_access_is_an_error() {
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("oob");
    let buf = kb.buffer("b", Ty::F32, MemSpace::Global);
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    let v = kb.let_("v", kb.load(buf, gid.clone() + Expr::i32(1000)));
    kb.store(buf, gid, v);
    let kid = program.add_kernel(kb.finish());
    let mut d = gpu();
    let buf = d.alloc_f32(MemSpace::Global, &[0.0; 8]);
    let err = d
        .launch(
            &program,
            kid,
            Dim2::linear(1),
            Dim2::linear(8),
            &[buf.into()],
        )
        .unwrap_err();
    assert!(err.to_string().contains("out of bounds"));
}

#[test]
fn device_function_calls_with_divergence() {
    let mut program = Program::new();
    // f(x) = x > 0 ? sqrt(x) : 0   — divergent branch inside the function.
    let mut fb = FuncBuilder::new("safe_sqrt", Ty::F32);
    let x = fb.scalar("x", Ty::F32);
    fb.if_else(
        x.clone().gt(Expr::f32(0.0)),
        |fb| fb.ret(x.clone().sqrt()),
        |fb| fb.ret(Expr::f32(0.0)),
    );
    let f = program.add_func(fb.finish());

    let mut kb = KernelBuilder::new("apply");
    let input = kb.buffer("in", Ty::F32, MemSpace::Global);
    let output = kb.buffer("out", Ty::F32, MemSpace::Global);
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    let v = kb.let_("v", kb.load(input, gid.clone()));
    kb.store(
        output,
        gid,
        Expr::Call {
            func: f,
            args: vec![v],
        },
    );
    let kid = program.add_kernel(kb.finish());

    let mut d = gpu();
    let data: Vec<f32> = (-16..16).map(|i| i as f32).collect();
    let input = d.alloc_f32(MemSpace::Global, &data);
    let output = d.alloc_f32(MemSpace::Global, &[0.0; 32]);
    d.launch(
        &program,
        kid,
        Dim2::linear(1),
        Dim2::linear(32),
        &[input.into(), output.into()],
    )
    .unwrap();
    let out = d.read_f32(output).unwrap();
    for (i, v) in out.iter().enumerate() {
        let x = data[i];
        let expected = if x > 0.0 { x.sqrt() } else { 0.0 };
        assert_eq!(*v, expected);
    }
}

#[test]
fn loop_divergence_costs_slowest_lane() {
    // Thread i loops i times; warp cost is driven by the slowest lane.
    let mut program = Program::new();
    for (name, uniform) in [("uniform", true), ("skewed", false)] {
        let mut kb = KernelBuilder::new(name);
        let output = kb.buffer("out", Ty::F32, MemSpace::Global);
        let tid = kb.let_("tid", KernelBuilder::thread_id_x());
        let acc = kb.let_mut("acc", Ty::F32, Expr::f32(0.0));
        let bound = if uniform {
            Expr::i32(16)
        } else {
            // lane 31 loops 31*4 times, others less: same *total* work as
            // uniform=16 would be 32*16=512 vs sum(i*4)/... not equal; the
            // point is per-warp cost tracks the max lane, so skewed costs
            // more compute than its average lane count implies.
            tid.clone() * Expr::i32(4)
        };
        kb.for_up("i", Expr::i32(0), bound, Expr::i32(1), |kb, _i| {
            kb.assign(acc, Expr::Var(acc) + Expr::f32(1.0));
        });
        kb.store(output, tid, Expr::Var(acc));
        program.add_kernel(kb.finish());
    }
    let uniform = program.kernel_by_name("uniform").unwrap();
    let skewed = program.kernel_by_name("skewed").unwrap();
    let mut d = gpu();
    let out = d.alloc_f32(MemSpace::Global, &[0.0; 32]);
    let args = [ArgValue::Buffer(out)];
    let s_uniform = d
        .launch(&program, uniform, Dim2::linear(1), Dim2::linear(32), &args)
        .unwrap();
    let s_skewed = d
        .launch(&program, skewed, Dim2::linear(1), Dim2::linear(32), &args)
        .unwrap();
    // skewed max lane = 31*4 = 124 iterations > uniform 16 iterations.
    assert!(s_skewed.compute_cycles > s_uniform.compute_cycles);
    // Results: lane i has i*4 iterations.
    let vals = d.read_f32(out).unwrap();
    assert_eq!(vals[0], 0.0);
    assert_eq!(vals[31], 124.0);
}

#[test]
fn two_dimensional_launch_indices() {
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("idx2d");
    let output = kb.buffer("out", Ty::I32, MemSpace::Global);
    let w = kb.scalar("w", Ty::I32);
    let gx = kb.let_("gx", KernelBuilder::global_id_x());
    let gy = kb.let_("gy", KernelBuilder::global_id_y());
    let flat = kb.let_("flat", gy.clone() * w + gx.clone());
    kb.store(output, flat.clone(), flat);
    let kid = program.add_kernel(kb.finish());

    let mut d = gpu();
    let w = 8usize;
    let h = 4usize;
    let out = d.alloc_i32(MemSpace::Global, &vec![-1; w * h]);
    d.launch(
        &program,
        kid,
        Dim2::new(2, 2),
        Dim2::new(4, 2),
        &[out.into(), Scalar::I32(w as i32).into()],
    )
    .unwrap();
    let vals = d.read_i32(out).unwrap();
    for (i, v) in vals.iter().enumerate() {
        assert_eq!(*v as usize, i);
    }
}

#[test]
fn cpu_profile_executes_same_program_with_different_costs() {
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("expmap");
    let input = kb.buffer("in", Ty::F32, MemSpace::Global);
    let output = kb.buffer("out", Ty::F32, MemSpace::Global);
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    let x = kb.let_("x", kb.load(input, gid.clone()));
    kb.store(output, gid, x.exp());
    let kid = program.add_kernel(kb.finish());

    let run = |mut d: Device| -> (Vec<f32>, u64) {
        let input = d.alloc_f32(MemSpace::Global, &[0.0, 1.0, 2.0, 3.0]);
        let output = d.alloc_f32(MemSpace::Global, &[0.0; 4]);
        let stats = d
            .launch(
                &program,
                kid,
                Dim2::linear(1),
                Dim2::linear(4),
                &[input.into(), output.into()],
            )
            .unwrap();
        (d.read_f32(output).unwrap(), stats.compute_cycles)
    };
    let (gpu_out, gpu_cycles) = run(Device::new(DeviceProfile::gtx560()));
    let (cpu_out, cpu_cycles) = run(Device::new(DeviceProfile::core_i7_965()));
    assert_eq!(gpu_out, cpu_out);
    // exp is SFU-cheap on GPU, libm-expensive on CPU.
    assert!(cpu_cycles > gpu_cycles);
}
