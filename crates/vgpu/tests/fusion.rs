//! Fused-vs-unfused differential tests for the bytecode engine.
//!
//! Profile-guided superinstruction fusion rewrites hot op pairs into
//! single fused ops after the first launch of a cached program. These
//! tests force fusion off via [`Device::set_fusion`] and assert that
//! fused and unfused execution are bit-identical — buffers, simulated
//! cycles, and cache statistics — on divergence-heavy fixtures, across
//! worker counts 1/2/4 and several store-schedule seeds, and that both
//! match the tree-walking oracle. The `fusions_hit` / `ops_dispatched`
//! diagnostics are probed directly: fusion must actually engage on the
//! second launch when enabled and stay at zero when disabled.

use paraprox_ir::{Expr, KernelBuilder, KernelId, MemSpace, Program, Ty};
use paraprox_vgpu::{Device, DeviceProfile, Dim2, ExecEngine, LaunchStats};

/// A racy kernel (same shape as `schedule.rs`): every lane stores to
/// shared slot 0, then reads it back — the store-schedule seed picks the
/// winner, and fused execution must pick the *same* winner.
fn racy_program() -> (Program, KernelId) {
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("racy_last_writer");
    let out = kb.buffer("out", Ty::I32, MemSpace::Global);
    let s = kb.shared_array("s", Ty::I32, 1);
    let tx = kb.let_("tx", KernelBuilder::thread_id_x());
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    kb.store(s, Expr::i32(0), tx);
    kb.sync();
    kb.store(out, gid, kb.load(s, Expr::i32(0)));
    let kid = program.add_kernel(kb.finish());
    (program, kid)
}

/// A divergence-heavy kernel exercising every fusion pattern: `x*2 + 1`
/// (mul+add), an odd/even branch under a compare (cmp+if with both arms
/// populated), a lane-dependent loop trip count, and a fused binary+store
/// tail.
fn divergent_program() -> (Program, KernelId) {
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("divergent");
    let input = kb.buffer("in", Ty::F32, MemSpace::Global);
    let out = kb.buffer("out", Ty::F32, MemSpace::Global);
    let tid = kb.let_("tid", KernelBuilder::thread_id_x());
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    let x = kb.let_("x", kb.load(input, gid.clone()));
    let acc = kb.let_mut("acc", Ty::F32, x.clone() * Expr::f32(2.0) + Expr::f32(1.0));
    kb.if_else(
        tid.clone().rem(Expr::i32(2)).eq_(Expr::i32(0)),
        |kb| kb.assign(acc, Expr::Var(acc) * Expr::f32(3.0) + x.clone()),
        |kb| kb.assign(acc, Expr::Var(acc) - x.clone() * Expr::f32(0.5)),
    );
    kb.for_up(
        "i",
        Expr::i32(0),
        tid.clone().rem(Expr::i32(4)) + Expr::i32(1),
        Expr::i32(1),
        |kb, i| {
            kb.assign(acc, Expr::Var(acc) + i.cast(Ty::F32) * Expr::f32(0.25));
        },
    );
    kb.store(out, gid, Expr::Var(acc) * Expr::f32(1.5) + Expr::f32(0.125));
    let kid = program.add_kernel(kb.finish());
    (program, kid)
}

fn bytecode_device(workers: usize, seed: Option<u64>, fusion: bool) -> Device {
    let mut d = Device::new(
        DeviceProfile::gtx560()
            .with_engine(ExecEngine::Bytecode)
            .with_parallelism(workers),
    );
    d.set_schedule_seed(seed);
    d.set_fusion(fusion);
    d
}

/// Launch the divergent kernel twice on one device (launch 1 profiles,
/// launch 2 runs fused when fusion is on); return both outputs as bits
/// plus both stats.
fn run_divergent(device: &mut Device) -> (Vec<Vec<u32>>, Vec<LaunchStats>) {
    let (program, kid) = divergent_program();
    let data: Vec<f32> = (0..128).map(|i| (i as f32 - 61.0) * 0.37).collect();
    let mut outs = Vec::new();
    let mut stats = Vec::new();
    for _ in 0..2 {
        let input = device.alloc_f32(MemSpace::Global, &data);
        let out = device.alloc_f32(MemSpace::Global, &[0.0; 128]);
        let s = device
            .launch(
                &program,
                kid,
                Dim2::linear(4),
                Dim2::linear(32),
                &[input.into(), out.into()],
            )
            .unwrap();
        outs.push(
            device
                .read_f32(out)
                .unwrap()
                .into_iter()
                .map(f32::to_bits)
                .collect(),
        );
        stats.push(s);
    }
    (outs, stats)
}

fn run_racy(device: &mut Device) -> (Vec<Vec<i32>>, Vec<LaunchStats>) {
    let (program, kid) = racy_program();
    let mut outs = Vec::new();
    let mut stats = Vec::new();
    for _ in 0..2 {
        let out = device.alloc_i32(MemSpace::Global, &[0; 32]);
        let s = device
            .launch(
                &program,
                kid,
                Dim2::linear(1),
                Dim2::linear(32),
                &[out.into()],
            )
            .unwrap();
        outs.push(device.read_i32(out).unwrap());
        stats.push(s);
    }
    (outs, stats)
}

#[test]
fn fused_matches_unfused_and_oracle_across_workers_and_seeds() {
    // Tree-walk oracle reference (fusion setting is irrelevant there).
    let mut oracle = Device::new(DeviceProfile::gtx560().with_engine(ExecEngine::TreeWalk));
    oracle.set_schedule_seed(None);
    let (oracle_outs, oracle_stats) = run_divergent(&mut oracle);

    for workers in [1usize, 2, 4] {
        for seed in [None, Some(1u64), Some(2), Some(3), Some(4)] {
            let (fused_outs, fused_stats) =
                run_divergent(&mut bytecode_device(workers, seed, true));
            let (plain_outs, plain_stats) =
                run_divergent(&mut bytecode_device(workers, seed, false));
            assert_eq!(
                fused_outs, plain_outs,
                "workers={workers} seed={seed:?}: fused and unfused buffers diverged"
            );
            assert_eq!(
                fused_stats, plain_stats,
                "workers={workers} seed={seed:?}: fused and unfused stats diverged"
            );
            // The divergent kernel is race-free, so every configuration
            // must also match the serial tree-walk oracle bit for bit.
            assert_eq!(fused_outs, oracle_outs, "workers={workers} seed={seed:?}");
            assert_eq!(fused_stats[1], oracle_stats[1]);
            // Fusion must actually engage on the second launch (the first
            // one profiles), and never when disabled.
            assert_eq!(
                fused_stats[0].fusions_hit, 0,
                "first launch profiles unfused"
            );
            assert!(
                fused_stats[1].fusions_hit > 0,
                "workers={workers} seed={seed:?}: second launch should dispatch superinstructions"
            );
            assert!(plain_stats.iter().all(|s| s.fusions_hit == 0));
            assert!(fused_stats.iter().all(|s| s.ops_dispatched > 0));
            // Fusing shrinks the dispatch count without changing the
            // simulated instruction count (stats equality above).
            assert!(fused_stats[1].ops_dispatched < plain_stats[1].ops_dispatched);
        }
    }
}

#[test]
fn racy_kernel_race_winner_is_fusion_invariant() {
    // The racy fixture's output depends on the store schedule; fusion
    // must not perturb which lane wins under any seed or worker count.
    for workers in [1usize, 2, 4] {
        for seed in [None, Some(1u64), Some(2), Some(3), Some(4)] {
            let (fused_outs, fused_stats) = run_racy(&mut bytecode_device(workers, seed, true));
            let (plain_outs, plain_stats) = run_racy(&mut bytecode_device(workers, seed, false));
            assert_eq!(
                fused_outs, plain_outs,
                "workers={workers} seed={seed:?}: fusion changed the race winner"
            );
            assert_eq!(fused_stats, plain_stats);
        }
    }
}

#[test]
fn tree_walker_reports_zero_dispatches() {
    let mut device = Device::new(DeviceProfile::gtx560().with_engine(ExecEngine::TreeWalk));
    let (_, stats) = run_divergent(&mut device);
    assert!(stats.iter().all(|s| s.ops_dispatched == 0));
    assert!(stats.iter().all(|s| s.fusions_hit == 0));
}

#[test]
fn set_fusion_reenables_profiling_for_cached_programs() {
    // Disabling fusion skips profiling entirely; re-enabling it on the
    // same device lets the *same cache entry* profile and fuse, because
    // the profile counts live on the entry rather than the launch.
    let mut device = bytecode_device(1, None, false);
    let (_, stats_off) = run_divergent(&mut device);
    assert!(stats_off.iter().all(|s| s.fusions_hit == 0));
    device.set_fusion(true);
    let (_, stats_on) = run_divergent(&mut device);
    // Launch 1 after re-enabling profiles; launch 2 runs fused.
    assert_eq!(stats_on[0].fusions_hit, 0);
    assert!(stats_on[1].fusions_hit > 0);
}
