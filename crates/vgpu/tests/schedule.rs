//! Store-schedule permutation (`Device::set_schedule_seed`).
//!
//! The SIMT contract says the order in which the lanes of a block apply
//! their stores is unobservable for a correct kernel. The permutation knob
//! makes that contract testable: race-free kernels must stay bit-identical
//! for every seed, and a kernel whose output *does* change between seeds
//! has exhibited a real intra-block race. The static race detector's
//! differential harness (root `tests/`) builds on exactly this.

use paraprox_ir::{Expr, KernelBuilder, MemSpace, Program, Ty};
use paraprox_vgpu::{Device, DeviceProfile, Dim2, ExecEngine};

fn device() -> Device {
    // The permutation applies per-block in either engine; the tree-walk
    // oracle keeps these tests independent of the bytecode compiler.
    Device::new(DeviceProfile::gtx560().with_engine(ExecEngine::TreeWalk))
}

/// A racy kernel: every thread stores its id to shared slot 0, then all
/// threads read slot 0 back. The winner is whichever lane's store is
/// applied last.
fn racy_program() -> (Program, paraprox_ir::KernelId) {
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("racy_last_writer");
    let out = kb.buffer("out", Ty::I32, MemSpace::Global);
    let s = kb.shared_array("s", Ty::I32, 1);
    let tx = kb.let_("tx", KernelBuilder::thread_id_x());
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    kb.store(s, Expr::i32(0), tx);
    kb.sync();
    kb.store(out, gid, kb.load(s, Expr::i32(0)));
    let kid = program.add_kernel(kb.finish());
    (program, kid)
}

/// A benign kernel: each thread owns its own slots everywhere.
fn benign_program() -> (Program, paraprox_ir::KernelId) {
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("benign");
    let input = kb.buffer("in", Ty::F32, MemSpace::Global);
    let out = kb.buffer("out", Ty::F32, MemSpace::Global);
    let s = kb.shared_array("s", Ty::F32, 32);
    let tx = kb.let_("tx", KernelBuilder::thread_id_x());
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    kb.store(s, tx.clone(), kb.load(input, gid.clone()));
    kb.sync();
    kb.store(out, gid, kb.load(s, tx) * Expr::f32(2.0));
    let kid = program.add_kernel(kb.finish());
    (program, kid)
}

fn run_racy(seed: Option<u64>) -> Vec<i32> {
    let (program, kid) = racy_program();
    let mut device = device();
    device.set_schedule_seed(seed);
    let out = device.alloc_i32(MemSpace::Global, &[0; 32]);
    device
        .launch(
            &program,
            kid,
            Dim2::linear(1),
            Dim2::linear(32),
            &[out.into()],
        )
        .unwrap();
    device.read_i32(out).unwrap()
}

#[test]
fn default_schedule_is_canonical_lane_order() {
    // With no seed, the last lane's store wins — the historical behavior,
    // bit for bit.
    let out = run_racy(None);
    assert_eq!(out, vec![31; 32]);
}

#[test]
fn seeded_schedule_changes_the_race_winner() {
    let baseline = run_racy(None);
    let mut diverged = false;
    for seed in 1..=4u64 {
        if run_racy(Some(seed)) != baseline {
            diverged = true;
            break;
        }
    }
    assert!(
        diverged,
        "permuting the store schedule should expose the racy last-writer"
    );
}

#[test]
fn benign_kernel_is_schedule_invariant() {
    let (program, kid) = benign_program();
    let data: Vec<f32> = (0..32).map(|i| i as f32 * 0.5).collect();
    let mut outputs = Vec::new();
    for seed in [None, Some(1), Some(2), Some(3)] {
        let mut device = device();
        device.set_schedule_seed(seed);
        let input = device.alloc_f32(MemSpace::Global, &data);
        let out = device.alloc_f32(MemSpace::Global, &[0.0; 32]);
        device
            .launch(
                &program,
                kid,
                Dim2::linear(1),
                Dim2::linear(32),
                &[input.into(), out.into()],
            )
            .unwrap();
        outputs.push(device.read_f32(out).unwrap());
    }
    assert!(
        outputs.windows(2).all(|w| w[0] == w[1]),
        "race-free kernels must be bit-identical under any store schedule"
    );
}
