//! The approximate memory space: placement, injection determinism, and
//! cost model.
//!
//! `MemSpace::Approx` is a *placement* — kernels still declare their
//! buffers `Global`; the device binds an Approx-placed allocation to a
//! Global parameter (`MemSpace::binds_to`). The contract under test:
//!
//! * **Rate 0 is bit-identical to exact.** Approx placement with the
//!   injector off changes modeled *timing* only, never data. Cache
//!   behavior (probes, hits, transactions) is identical, so the only
//!   stats that may differ are `memory_cycles` (cheaper) and the
//!   equality-excluded diagnostics counters.
//! * **Injection is deterministic.** The flip stream is seeded per block
//!   from the device's approx seed, and lane-loads draw from it in a
//!   worker-count- and engine-independent order: 1, 2, and 4 host
//!   workers, tree-walk and bytecode, all produce the same flips.
//! * **Approx loads are cheaper.** The profile's `approx_lat/approx_issue`
//!   must undercut the DRAM path on a miss-heavy workload.

use paraprox_ir::{Expr, KernelBuilder, KernelId, MemSpace, Program, Ty};
use paraprox_vgpu::{ArgValue, Device, DeviceProfile, Dim2, ExecEngine, LaunchStats};

const N: usize = 256;

/// A payload-streaming kernel: out[gid] = in[gid] * 2 + 1.
fn payload_program() -> (Program, KernelId) {
    let mut p = Program::new();
    let mut kb = KernelBuilder::new("stream");
    let input = kb.buffer("in", Ty::F32, MemSpace::Global);
    let output = kb.buffer("out", Ty::F32, MemSpace::Global);
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    let x = kb.let_("x", kb.load(input, gid.clone()));
    kb.store(output, gid, x * Expr::f32(2.0) + Expr::f32(1.0));
    let kid = p.add_kernel(kb.finish());
    (p, kid)
}

fn inputs() -> Vec<f32> {
    (0..N).map(|i| (i as f32) * 0.25 - 13.0).collect()
}

/// Launch with the input buffer in `space`, at the given error rate and
/// worker count; return (output bits, stats).
fn run(profile: DeviceProfile, space: MemSpace, rate: f64, seed: u64) -> (Vec<u32>, LaunchStats) {
    let (program, kid) = payload_program();
    let mut d = Device::new(profile);
    d.set_approx_rate(rate);
    d.set_approx_seed(seed);
    let in_b = d.alloc_f32(space, &inputs());
    let out_b = d.alloc_f32(MemSpace::Global, &vec![0.0; N]);
    let stats = d
        .launch(
            &program,
            kid,
            Dim2::linear(N / 32),
            Dim2::linear(32),
            &[ArgValue::Buffer(in_b), ArgValue::Buffer(out_b)],
        )
        .expect("launch");
    let bits = d
        .read_f32(out_b)
        .unwrap()
        .into_iter()
        .map(f32::to_bits)
        .collect();
    (bits, stats)
}

#[test]
fn approx_binds_to_global_params() {
    // The kernel declares `in` Global; an Approx-placed buffer must bind,
    // and every other mismatch must still be refused.
    let (program, kid) = payload_program();
    let mut d = Device::new(DeviceProfile::gtx560());
    let in_b = d.alloc_f32(MemSpace::Approx, &inputs());
    let out_b = d.alloc_f32(MemSpace::Global, &vec![0.0; N]);
    assert_eq!(d.buffer_space(in_b).unwrap(), MemSpace::Approx);
    d.launch(
        &program,
        kid,
        Dim2::linear(N / 32),
        Dim2::linear(32),
        &[ArgValue::Buffer(in_b), ArgValue::Buffer(out_b)],
    )
    .expect("approx placement binds to a global param");

    let const_b = d.alloc_f32(MemSpace::Constant, &inputs());
    assert!(
        d.launch(
            &program,
            kid,
            Dim2::linear(N / 32),
            Dim2::linear(32),
            &[ArgValue::Buffer(const_b), ArgValue::Buffer(out_b)],
        )
        .is_err(),
        "constant placement must still be refused for a global param"
    );
}

#[test]
fn rate_zero_is_bit_identical_to_exact() {
    for profile in [DeviceProfile::gtx560(), DeviceProfile::core_i7_965()] {
        let (exact_bits, exact_stats) = run(profile.clone(), MemSpace::Global, 0.0, 7);
        for workers in [1usize, 2, 4] {
            for engine in [ExecEngine::TreeWalk, ExecEngine::Bytecode] {
                let p = profile
                    .clone()
                    .with_parallelism(workers)
                    .with_engine(engine);
                let (bits, stats) = run(p, MemSpace::Approx, 0.0, 7);
                assert_eq!(
                    bits, exact_bits,
                    "rate-0 approx output diverged ({engine:?}, {workers} workers)"
                );
                assert_eq!(stats.bit_flips, 0);
                assert_eq!(stats.approx_loads as usize, N);
                // Same cache behavior, cheaper memory time.
                assert_eq!(stats.l1_hits, exact_stats.l1_hits);
                assert_eq!(stats.l1_misses, exact_stats.l1_misses);
                assert!(
                    stats.memory_cycles < exact_stats.memory_cycles,
                    "approx placement must be cheaper: {} vs {}",
                    stats.memory_cycles,
                    exact_stats.memory_cycles
                );
            }
        }
    }
}

#[test]
fn injection_is_worker_and_engine_invariant() {
    let profile = DeviceProfile::gtx560();
    let (ref_bits, ref_stats) = run(
        profile.clone().with_parallelism(1),
        MemSpace::Approx,
        0.05,
        42,
    );
    assert!(
        ref_stats.bit_flips > 0,
        "a 5% rate over {N} loads should flip something"
    );
    // Flips must corrupt the output relative to exact.
    let (exact_bits, _) = run(profile.clone(), MemSpace::Global, 0.0, 42);
    assert_ne!(ref_bits, exact_bits, "flips must be observable");
    for workers in [2usize, 4] {
        for engine in [ExecEngine::TreeWalk, ExecEngine::Bytecode] {
            let p = profile
                .clone()
                .with_parallelism(workers)
                .with_engine(engine);
            let (bits, stats) = run(p, MemSpace::Approx, 0.05, 42);
            assert_eq!(
                bits, ref_bits,
                "flip stream diverged ({engine:?}, {workers} workers)"
            );
            assert_eq!(stats.bit_flips, ref_stats.bit_flips);
            assert_eq!(stats.approx_loads, ref_stats.approx_loads);
        }
    }
}

#[test]
fn distinct_seeds_give_distinct_flip_patterns() {
    let profile = DeviceProfile::gtx560();
    let (a, _) = run(profile.clone(), MemSpace::Approx, 0.05, 1);
    let (b, _) = run(profile, MemSpace::Approx, 0.05, 2);
    assert_ne!(a, b, "different approx seeds must flip different bits");
}

#[test]
fn rate_is_clamped_and_resettable() {
    let mut d = Device::new(DeviceProfile::gtx560());
    d.set_approx_rate(3.5);
    assert_eq!(d.approx_rate(), 1.0);
    d.set_approx_rate(-2.0);
    assert_eq!(d.approx_rate(), 0.0);
    d.set_approx_rate(f64::NAN);
    assert_eq!(d.approx_rate(), 0.0);
    d.set_approx_rate(0.25);
    assert_eq!(d.approx_rate(), 0.25);
}

#[test]
fn higher_rates_flip_more() {
    let profile = DeviceProfile::gtx560();
    let (_, lo) = run(profile.clone(), MemSpace::Approx, 0.01, 9);
    let (_, hi) = run(profile, MemSpace::Approx, 0.5, 9);
    assert!(
        hi.bit_flips > lo.bit_flips,
        "rate 0.5 ({} flips) should flip more than rate 0.01 ({} flips)",
        hi.bit_flips,
        lo.bit_flips
    );
}
