//! Error-path coverage for the device and interpreter: every misuse class
//! must surface a typed, positioned error instead of UB or a panic.

use paraprox_ir::{Expr, KernelBuilder, MemSpace, Program, Scalar, Stmt, Ty, VarId};
use paraprox_vgpu::{Device, DeviceProfile, Dim2, LaunchError};

fn gpu() -> Device {
    Device::new(DeviceProfile::gtx560())
}

#[test]
fn return_in_kernel_body_is_rejected() {
    let mut program = Program::new();
    let kernel = paraprox_ir::Kernel {
        name: "bad".into(),
        params: vec![],
        shared: vec![],
        locals: vec![],
        body: vec![Stmt::Return(Expr::f32(0.0))],
    };
    let kid = program.add_kernel(kernel);
    let err = gpu()
        .launch(&program, kid, Dim2::linear(1), Dim2::linear(1), &[])
        .unwrap_err();
    assert!(err.to_string().contains("return"), "{err}");
}

#[test]
fn uninitialized_local_read_is_rejected() {
    let mut program = Program::new();
    let kernel = paraprox_ir::Kernel {
        name: "uninit".into(),
        params: vec![paraprox_ir::Param::Buffer {
            name: "out".into(),
            ty: Ty::F32,
            space: MemSpace::Global,
        }],
        shared: vec![],
        locals: vec![paraprox_ir::LocalDecl {
            name: "ghost".into(),
            ty: Ty::F32,
        }],
        body: vec![Stmt::Store {
            mem: paraprox_ir::MemRef::Param(0),
            index: Expr::i32(0),
            value: Expr::Var(VarId(0)),
        }],
    };
    let kid = program.add_kernel(kernel);
    let mut d = gpu();
    let out = d.alloc_f32(MemSpace::Global, &[0.0]);
    let err = d
        .launch(
            &program,
            kid,
            Dim2::linear(1),
            Dim2::linear(1),
            &[out.into()],
        )
        .unwrap_err();
    assert!(err.to_string().contains("uninitialized"), "{err}");
}

#[test]
fn buffer_param_read_as_scalar_is_rejected() {
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("misuse");
    let buf = kb.buffer("b", Ty::F32, MemSpace::Global);
    let out = kb.buffer("out", Ty::F32, MemSpace::Global);
    // Expr::Param(0) reads the *buffer* parameter as if it were a scalar.
    kb.store(out, Expr::i32(0), Expr::Param(0));
    let _ = buf;
    let kid = program.add_kernel(kb.finish());
    let mut d = gpu();
    let b = d.alloc_f32(MemSpace::Global, &[0.0]);
    let o = d.alloc_f32(MemSpace::Global, &[0.0]);
    let err = d
        .launch(
            &program,
            kid,
            Dim2::linear(1),
            Dim2::linear(1),
            &[b.into(), o.into()],
        )
        .unwrap_err();
    assert!(err.to_string().contains("buffer parameter"), "{err}");
}

#[test]
fn scalar_param_used_as_buffer_is_rejected() {
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("misuse2");
    let n = kb.scalar("n", Ty::I32);
    let out = kb.buffer("out", Ty::F32, MemSpace::Global);
    // Loading through the scalar parameter's index.
    let bogus = Expr::Load {
        mem: paraprox_ir::MemRef::Param(0),
        index: Box::new(Expr::i32(0)),
    };
    kb.store(out, Expr::i32(0), bogus);
    let _ = n;
    let kid = program.add_kernel(kb.finish());
    let mut d = gpu();
    let o = d.alloc_f32(MemSpace::Global, &[0.0]);
    let err = d
        .launch(
            &program,
            kid,
            Dim2::linear(1),
            Dim2::linear(1),
            &[Scalar::I32(1).into(), o.into()],
        )
        .unwrap_err();
    assert!(err.to_string().contains("scalar parameter"), "{err}");
}

#[test]
fn store_type_mismatch_is_rejected() {
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("tymis");
    let out = kb.buffer("out", Ty::F32, MemSpace::Global);
    kb.store(out, Expr::i32(0), Expr::i32(7)); // i32 into f32 buffer
    let kid = program.add_kernel(kb.finish());
    let mut d = gpu();
    let o = d.alloc_f32(MemSpace::Global, &[0.0]);
    let err = d
        .launch(&program, kid, Dim2::linear(1), Dim2::linear(1), &[o.into()])
        .unwrap_err();
    assert!(err.to_string().contains("type mismatch"), "{err}");
}

#[test]
fn store_to_constant_memory_is_rejected() {
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("wconst");
    let table = kb.buffer("t", Ty::F32, MemSpace::Constant);
    kb.store(table, Expr::i32(0), Expr::f32(1.0));
    let kid = program.add_kernel(kb.finish());
    let mut d = gpu();
    let t = d.alloc_f32(MemSpace::Constant, &[0.0]);
    let err = d
        .launch(&program, kid, Dim2::linear(1), Dim2::linear(1), &[t.into()])
        .unwrap_err();
    assert!(err.to_string().contains("constant"), "{err}");
}

#[test]
fn integer_division_by_zero_surfaces() {
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("div0");
    let out = kb.buffer("out", Ty::I32, MemSpace::Global);
    let zero = kb.scalar("z", Ty::I32);
    kb.store(out, Expr::i32(0), Expr::i32(1) / zero);
    let kid = program.add_kernel(kb.finish());
    let mut d = gpu();
    let o = d.alloc_i32(MemSpace::Global, &[0]);
    let err = d
        .launch(
            &program,
            kid,
            Dim2::linear(1),
            Dim2::linear(1),
            &[o.into(), Scalar::I32(0).into()],
        )
        .unwrap_err();
    assert!(matches!(err, LaunchError::Eval { .. }));
    assert!(err.to_string().contains("division by zero"), "{err}");
}

#[test]
fn negative_index_is_out_of_bounds() {
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("neg");
    let buf = kb.buffer("b", Ty::F32, MemSpace::Global);
    let v = kb.let_("v", kb.load(buf, Expr::i32(-1)));
    kb.store(buf, Expr::i32(0), v);
    let kid = program.add_kernel(kb.finish());
    let mut d = gpu();
    let b = d.alloc_f32(MemSpace::Global, &[0.0; 4]);
    let err = d
        .launch(&program, kid, Dim2::linear(1), Dim2::linear(1), &[b.into()])
        .unwrap_err();
    assert!(err.to_string().contains("out of bounds"), "{err}");
}

#[test]
fn inactive_lanes_do_not_trap() {
    // A division by zero in a branch no lane takes must not fire — SIMT
    // semantics say inactive lanes execute nothing.
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("guarded");
    let out = kb.buffer("out", Ty::I32, MemSpace::Global);
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    kb.if_else(
        gid.clone().lt(Expr::i32(64)), // always true for this launch
        |kb| kb.store(out, gid.clone(), Expr::i32(1)),
        |kb| {
            let boom = Expr::i32(1) / Expr::i32(0);
            kb.store(out, gid.clone(), boom);
        },
    );
    let kid = program.add_kernel(kb.finish());
    let mut d = gpu();
    let o = d.alloc_i32(MemSpace::Global, &[0; 32]);
    d.launch(
        &program,
        kid,
        Dim2::linear(1),
        Dim2::linear(32),
        &[o.into()],
    )
    .unwrap();
    assert_eq!(d.read_i32(o).unwrap(), vec![1; 32]);
}

#[test]
fn select_arms_execute_under_refined_masks() {
    // `x != 0 ? 1/x : 0` must not trap on zero lanes — the guard pattern
    // that the §5 safety pass emits.
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("sel");
    let input = kb.buffer("in", Ty::I32, MemSpace::Global);
    let out = kb.buffer("out", Ty::I32, MemSpace::Global);
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    let x = kb.let_("x", kb.load(input, gid.clone()));
    let safe = x
        .clone()
        .ne_(Expr::i32(0))
        .select(Expr::i32(100) / x, Expr::i32(0));
    kb.store(out, gid, safe);
    let kid = program.add_kernel(kb.finish());
    let mut d = gpu();
    let i = d.alloc_i32(MemSpace::Global, &[4, 0, 5, 0]);
    let o = d.alloc_i32(MemSpace::Global, &[0; 4]);
    d.launch(
        &program,
        kid,
        Dim2::linear(1),
        Dim2::linear(4),
        &[i.into(), o.into()],
    )
    .unwrap();
    assert_eq!(d.read_i32(o).unwrap(), vec![25, 0, 20, 0]);
}

#[test]
fn partial_warp_blocks_work() {
    // Block of 48 threads = one full warp + one half warp.
    let mut program = Program::new();
    let mut kb = KernelBuilder::new("partial");
    let out = kb.buffer("out", Ty::I32, MemSpace::Global);
    let gid = kb.let_("gid", KernelBuilder::global_id_x());
    kb.store(out, gid.clone(), gid);
    let kid = program.add_kernel(kb.finish());
    let mut d = gpu();
    let o = d.alloc_i32(MemSpace::Global, &[-1; 48]);
    let stats = d
        .launch(
            &program,
            kid,
            Dim2::linear(1),
            Dim2::linear(48),
            &[o.into()],
        )
        .unwrap();
    assert_eq!(stats.warps, 2);
    let vals = d.read_i32(o).unwrap();
    for (i, v) in vals.iter().enumerate() {
        assert_eq!(*v as usize, i);
    }
}
