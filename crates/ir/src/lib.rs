//! A typed intermediate representation for data-parallel kernels.
//!
//! This crate is the substrate that stands in for the CUDA/OpenCL abstract
//! syntax trees that Paraprox (ASPLOS 2014) analyzes and rewrites. Programs
//! are built with [`KernelBuilder`]/[`FuncBuilder`], analyzed by
//! `paraprox-patterns`, rewritten by `paraprox-approx`, and executed by the
//! SIMT interpreter in `paraprox-vgpu`.
//!
//! The IR models exactly the features the paper's analyses need:
//!
//! * scalar types ([`Ty`], [`Scalar`]) and memory spaces ([`MemSpace`]),
//! * pure expressions ([`Expr`]) including loads, calls, and thread/block
//!   specials,
//! * structured statements ([`Stmt`]): bindings, stores, atomics, `if`,
//!   counted `for` loops, barriers, and returns,
//! * device functions ([`Func`]) callable from kernels — the unit of the
//!   paper's approximate memoization,
//! * kernels ([`Kernel`]) with buffer/scalar parameters and block-shared
//!   memory arrays,
//! * a [`Program`] holding functions and kernels together.
//!
//! # Example
//!
//! Build a map kernel that squares every element of a buffer:
//!
//! ```
//! use paraprox_ir::{KernelBuilder, MemSpace, Program, Ty};
//!
//! let mut program = Program::new();
//! let mut kb = KernelBuilder::new("square");
//! let input = kb.buffer("input", Ty::F32, MemSpace::Global);
//! let output = kb.buffer("output", Ty::F32, MemSpace::Global);
//! let gid = kb.let_("gid", KernelBuilder::global_id_x());
//! let x = kb.let_("x", kb.load(input, gid.clone()));
//! kb.store(output, gid, x.clone() * x);
//! let kernel = program.add_kernel(kb.finish());
//! assert_eq!(program.kernel(kernel).name, "square");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod display;
mod error;
mod eval;
mod expr;
mod program;
mod stmt;
mod types;
mod visit;

pub use builder::{FuncBuilder, KernelBuilder};
pub use error::{EvalError, IrError};
pub use eval::{eval_expr_pure, eval_func, EvalLimits};
pub use expr::{BinOp, CmpOp, Expr, Special, UnOp};
pub use program::{Func, FuncId, Kernel, KernelId, LocalDecl, Param, Program, SharedDecl};
pub use stmt::{AtomicOp, LoopCond, LoopStep, MemRef, SharedId, Stmt};
pub use types::{MemSpace, Scalar, Ty, VarId};
pub use visit::{
    count_ops, for_each_expr, for_each_expr_in_stmts, for_each_stmt, rewrite_expr,
    rewrite_exprs_in_stmts, OpCounts,
};
