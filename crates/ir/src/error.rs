//! Error types for IR construction and evaluation.

use std::error::Error;
use std::fmt;

use crate::types::Ty;

/// Errors produced while constructing or validating IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// A kernel or function referenced a name that does not exist.
    UnknownName(String),
    /// A parameter index was out of range for the item it targets.
    ParamOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of parameters actually declared.
        len: usize,
    },
    /// A structural validation failed (message describes the violation).
    Invalid(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::UnknownName(name) => write!(f, "unknown item name `{name}`"),
            IrError::ParamOutOfRange { index, len } => {
                write!(
                    f,
                    "parameter index {index} out of range for {len} parameters"
                )
            }
            IrError::Invalid(msg) => write!(f, "invalid IR: {msg}"),
        }
    }
}

impl Error for IrError {}

/// Errors produced while evaluating IR.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// An operand had the wrong type for the operation applied to it.
    TypeMismatch {
        /// Type the operation required.
        expected: Ty,
        /// Type that was actually supplied.
        found: Ty,
    },
    /// Two operands of a binary operation disagreed on type.
    OperandTypeMismatch {
        /// Left operand type.
        lhs: Ty,
        /// Right operand type.
        rhs: Ty,
    },
    /// An operation is not defined for the given type (e.g. `exp` of `i32`).
    UnsupportedOp {
        /// Human-readable operation name.
        op: &'static str,
        /// The operand type it was applied to.
        ty: Ty,
    },
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// A memory access fell outside the bounds of its buffer.
    OutOfBounds {
        /// Index that was accessed.
        index: i64,
        /// Length of the buffer.
        len: usize,
    },
    /// A local variable was read before being written.
    UninitializedVar(u32),
    /// A loop exceeded the evaluator's iteration budget.
    IterationLimit,
    /// A function call referenced a function that does not exist.
    UnknownFunc(usize),
    /// A function returned without executing a `Return` statement.
    MissingReturn(String),
    /// The expression used a construct not available in this context
    /// (e.g. a thread ID or memory access in a pure function).
    NotPure(&'static str),
    /// Barrier executed while the block's threads were divergent.
    DivergentBarrier,
    /// Wrong number of arguments passed to a function or kernel.
    ArityMismatch {
        /// Number of parameters expected.
        expected: usize,
        /// Number of arguments supplied.
        found: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            EvalError::OperandTypeMismatch { lhs, rhs } => {
                write!(f, "operand types disagree: {lhs} vs {rhs}")
            }
            EvalError::UnsupportedOp { op, ty } => {
                write!(f, "operation `{op}` is not defined for type {ty}")
            }
            EvalError::DivisionByZero => write!(f, "integer division by zero"),
            EvalError::OutOfBounds { index, len } => {
                write!(
                    f,
                    "memory access at index {index} out of bounds (len {len})"
                )
            }
            EvalError::UninitializedVar(v) => write!(f, "read of uninitialized local v{v}"),
            EvalError::IterationLimit => write!(f, "loop iteration limit exceeded"),
            EvalError::UnknownFunc(id) => write!(f, "call to unknown function #{id}"),
            EvalError::MissingReturn(name) => {
                write!(f, "function `{name}` finished without returning a value")
            }
            EvalError::NotPure(what) => {
                write!(f, "construct `{what}` is not allowed in a pure context")
            }
            EvalError::DivergentBarrier => {
                write!(f, "barrier executed while threads were divergent")
            }
            EvalError::ArityMismatch { expected, found } => {
                write!(
                    f,
                    "arity mismatch: expected {expected} arguments, found {found}"
                )
            }
        }
    }
}

impl Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_nonempty() {
        let errors: Vec<EvalError> = vec![
            EvalError::TypeMismatch {
                expected: Ty::F32,
                found: Ty::I32,
            },
            EvalError::OperandTypeMismatch {
                lhs: Ty::F32,
                rhs: Ty::U32,
            },
            EvalError::UnsupportedOp {
                op: "exp",
                ty: Ty::I32,
            },
            EvalError::DivisionByZero,
            EvalError::OutOfBounds { index: 9, len: 4 },
            EvalError::UninitializedVar(3),
            EvalError::IterationLimit,
            EvalError::UnknownFunc(0),
            EvalError::MissingReturn("f".into()),
            EvalError::NotPure("load"),
            EvalError::DivergentBarrier,
            EvalError::ArityMismatch {
                expected: 2,
                found: 3,
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
        let ir_errors = vec![
            IrError::UnknownName("x".into()),
            IrError::ParamOutOfRange { index: 4, len: 2 },
            IrError::Invalid("msg".into()),
        ];
        for e in ir_errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
