//! Traversal and rewriting utilities over expressions and statements.

use crate::expr::Expr;
use crate::stmt::{LoopCond, LoopStep, Stmt};

/// Visit every node of an expression tree, parents before children.
pub fn for_each_expr(expr: &Expr, f: &mut impl FnMut(&Expr)) {
    f(expr);
    match expr {
        Expr::Const(_) | Expr::Var(_) | Expr::Param(_) | Expr::Special(_) => {}
        Expr::Unary(_, a) | Expr::Cast(_, a) => for_each_expr(a, f),
        Expr::Binary(_, a, b) | Expr::Cmp(_, a, b) => {
            for_each_expr(a, f);
            for_each_expr(b, f);
        }
        Expr::Select {
            cond,
            if_true,
            if_false,
        } => {
            for_each_expr(cond, f);
            for_each_expr(if_true, f);
            for_each_expr(if_false, f);
        }
        Expr::Load { index, .. } => for_each_expr(index, f),
        Expr::Call { args, .. } => {
            for arg in args {
                for_each_expr(arg, f);
            }
        }
    }
}

/// Visit every statement in a body, outer statements before nested ones.
pub fn for_each_stmt(stmts: &[Stmt], f: &mut impl FnMut(&Stmt)) {
    for stmt in stmts {
        f(stmt);
        match stmt {
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                for_each_stmt(then_body, f);
                for_each_stmt(else_body, f);
            }
            Stmt::For { body, .. } => for_each_stmt(body, f),
            _ => {}
        }
    }
}

/// Visit every expression appearing anywhere in a statement body, including
/// loop bounds and conditions.
pub fn for_each_expr_in_stmts(stmts: &[Stmt], f: &mut impl FnMut(&Expr)) {
    for stmt in stmts {
        match stmt {
            Stmt::Let { init, .. } => for_each_expr(init, f),
            Stmt::Assign { value, .. } => for_each_expr(value, f),
            Stmt::Store { index, value, .. } => {
                for_each_expr(index, f);
                for_each_expr(value, f);
            }
            Stmt::Atomic { index, value, .. } => {
                for_each_expr(index, f);
                for_each_expr(value, f);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                for_each_expr(cond, f);
                for_each_expr_in_stmts(then_body, f);
                for_each_expr_in_stmts(else_body, f);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                for_each_expr(init, f);
                for_each_expr(cond.bound(), f);
                for_each_expr(step.amount(), f);
                for_each_expr_in_stmts(body, f);
            }
            Stmt::Sync => {}
            Stmt::Return(e) => for_each_expr(e, f),
        }
    }
}

/// Rewrite an expression bottom-up: children are rewritten first, then the
/// rebuilt node is passed to `f`.
pub fn rewrite_expr(expr: Expr, f: &mut impl FnMut(Expr) -> Expr) -> Expr {
    let rebuilt = match expr {
        e @ (Expr::Const(_) | Expr::Var(_) | Expr::Param(_) | Expr::Special(_)) => e,
        Expr::Unary(op, a) => Expr::Unary(op, Box::new(rewrite_expr(*a, f))),
        Expr::Cast(ty, a) => Expr::Cast(ty, Box::new(rewrite_expr(*a, f))),
        Expr::Binary(op, a, b) => Expr::Binary(
            op,
            Box::new(rewrite_expr(*a, f)),
            Box::new(rewrite_expr(*b, f)),
        ),
        Expr::Cmp(op, a, b) => Expr::Cmp(
            op,
            Box::new(rewrite_expr(*a, f)),
            Box::new(rewrite_expr(*b, f)),
        ),
        Expr::Select {
            cond,
            if_true,
            if_false,
        } => Expr::Select {
            cond: Box::new(rewrite_expr(*cond, f)),
            if_true: Box::new(rewrite_expr(*if_true, f)),
            if_false: Box::new(rewrite_expr(*if_false, f)),
        },
        Expr::Load { mem, index } => Expr::Load {
            mem,
            index: Box::new(rewrite_expr(*index, f)),
        },
        Expr::Call { func, args } => Expr::Call {
            func,
            args: args.into_iter().map(|a| rewrite_expr(a, f)).collect(),
        },
    };
    f(rebuilt)
}

/// Rewrite every expression in a statement body bottom-up with `f`.
pub fn rewrite_exprs_in_stmts(stmts: Vec<Stmt>, f: &mut impl FnMut(Expr) -> Expr) -> Vec<Stmt> {
    stmts
        .into_iter()
        .map(|stmt| match stmt {
            Stmt::Let { var, init } => Stmt::Let {
                var,
                init: rewrite_expr(init, f),
            },
            Stmt::Assign { var, value } => Stmt::Assign {
                var,
                value: rewrite_expr(value, f),
            },
            Stmt::Store { mem, index, value } => Stmt::Store {
                mem,
                index: rewrite_expr(index, f),
                value: rewrite_expr(value, f),
            },
            Stmt::Atomic {
                op,
                mem,
                index,
                value,
            } => Stmt::Atomic {
                op,
                mem,
                index: rewrite_expr(index, f),
                value: rewrite_expr(value, f),
            },
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => Stmt::If {
                cond: rewrite_expr(cond, f),
                then_body: rewrite_exprs_in_stmts(then_body, f),
                else_body: rewrite_exprs_in_stmts(else_body, f),
            },
            Stmt::For {
                var,
                init,
                cond,
                step,
                body,
            } => Stmt::For {
                var,
                init: rewrite_expr(init, f),
                cond: match cond {
                    LoopCond::Lt(e) => LoopCond::Lt(rewrite_expr(e, f)),
                    LoopCond::Le(e) => LoopCond::Le(rewrite_expr(e, f)),
                    LoopCond::Gt(e) => LoopCond::Gt(rewrite_expr(e, f)),
                    LoopCond::Ge(e) => LoopCond::Ge(rewrite_expr(e, f)),
                },
                step: match step {
                    LoopStep::Add(e) => LoopStep::Add(rewrite_expr(e, f)),
                    LoopStep::Sub(e) => LoopStep::Sub(rewrite_expr(e, f)),
                    LoopStep::Mul(e) => LoopStep::Mul(rewrite_expr(e, f)),
                    LoopStep::Shl(e) => LoopStep::Shl(rewrite_expr(e, f)),
                    LoopStep::Shr(e) => LoopStep::Shr(rewrite_expr(e, f)),
                },
                body: rewrite_exprs_in_stmts(body, f),
            },
            Stmt::Sync => Stmt::Sync,
            Stmt::Return(e) => Stmt::Return(rewrite_expr(e, f)),
        })
        .collect()
}

/// Static operation counts for a statement body.
///
/// Used by the paper's Eq. (1) heuristic (`cycles_needed = Σ latency`) in
/// `paraprox-patterns` and by tests that assert rewrites shrink kernels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Arithmetic/logic expression nodes.
    pub alu: usize,
    /// Transcendental unary ops (`exp`, `log`, `sin`, `cos`, `rsqrt`).
    pub transcendental: usize,
    /// Division and `pow` operations (subroutine-class on GPUs).
    pub div_like: usize,
    /// Memory loads.
    pub loads: usize,
    /// Memory stores.
    pub stores: usize,
    /// Atomic operations.
    pub atomics: usize,
    /// Function calls.
    pub calls: usize,
    /// Barriers.
    pub syncs: usize,
}

/// Count the operations appearing statically in a statement body.
pub fn count_ops(stmts: &[Stmt]) -> OpCounts {
    use crate::expr::BinOp;
    let mut counts = OpCounts::default();
    for_each_expr_in_stmts(stmts, &mut |e| match e {
        Expr::Unary(op, _) => {
            if op.is_transcendental() {
                counts.transcendental += 1;
            } else {
                counts.alu += 1;
            }
        }
        Expr::Binary(op, _, _) => match op {
            BinOp::Div | BinOp::Pow | BinOp::Rem => counts.div_like += 1,
            _ => counts.alu += 1,
        },
        Expr::Cmp(..) | Expr::Select { .. } | Expr::Cast(..) => counts.alu += 1,
        Expr::Load { .. } => counts.loads += 1,
        Expr::Call { .. } => counts.calls += 1,
        _ => {}
    });
    for_each_stmt(stmts, &mut |s| match s {
        Stmt::Store { .. } => counts.stores += 1,
        Stmt::Atomic { .. } => counts.atomics += 1,
        Stmt::Sync => counts.syncs += 1,
        _ => {}
    });
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, UnOp};
    use crate::stmt::MemRef;
    use crate::types::VarId;

    fn sample_body() -> Vec<Stmt> {
        vec![
            Stmt::Let {
                var: VarId(0),
                init: Expr::Load {
                    mem: MemRef::Param(0),
                    index: Box::new(Expr::i32(0)),
                },
            },
            Stmt::If {
                cond: Expr::Var(VarId(0)).gt(Expr::f32(0.0)),
                then_body: vec![Stmt::Store {
                    mem: MemRef::Param(1),
                    index: Expr::i32(0),
                    value: Expr::Var(VarId(0)).exp(),
                }],
                else_body: vec![],
            },
        ]
    }

    #[test]
    fn counts_cover_nested_statements() {
        let counts = count_ops(&sample_body());
        assert_eq!(counts.loads, 1);
        assert_eq!(counts.stores, 1);
        assert_eq!(counts.transcendental, 1);
        assert!(counts.alu >= 1); // the comparison
    }

    #[test]
    fn rewrite_replaces_nodes_bottom_up() {
        // Replace every f32 constant with 1.0.
        let e = (Expr::f32(3.0) + Expr::f32(4.0)).sqrt();
        let out = rewrite_expr(e, &mut |e| match e {
            Expr::Const(crate::Scalar::F32(_)) => Expr::f32(1.0),
            other => other,
        });
        match out {
            Expr::Unary(UnOp::Sqrt, inner) => match *inner {
                Expr::Binary(BinOp::Add, a, b) => {
                    assert_eq!(*a, Expr::f32(1.0));
                    assert_eq!(*b, Expr::f32(1.0));
                }
                other => panic!("unexpected: {other:?}"),
            },
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn rewrite_stmts_reaches_loop_bounds() {
        let body = vec![Stmt::For {
            var: VarId(0),
            init: Expr::i32(0),
            cond: crate::LoopCond::Lt(Expr::i32(10)),
            step: crate::LoopStep::Add(Expr::i32(1)),
            body: vec![],
        }];
        let mut seen = 0;
        let rewritten = rewrite_exprs_in_stmts(body, &mut |e| {
            if matches!(e, Expr::Const(_)) {
                seen += 1;
            }
            e
        });
        assert_eq!(seen, 3); // init, bound, step
        assert_eq!(rewritten.len(), 1);
    }

    #[test]
    fn visitor_sees_every_expr() {
        let mut n = 0;
        for_each_expr_in_stmts(&sample_body(), &mut |_| n += 1);
        // load + idx const, cmp + var + const, store idx + exp + var
        assert!(n >= 7, "saw only {n} nodes");
    }
}
