//! Programs, kernels, device functions, and their declarations.

use std::fmt;

use crate::error::IrError;
use crate::stmt::Stmt;
use crate::types::{MemSpace, Ty};

/// Identifier of a device function within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub usize);

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn#{}", self.0)
    }
}

/// Identifier of a kernel within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KernelId(pub usize);

impl fmt::Display for KernelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kernel#{}", self.0)
    }
}

/// Declaration of a local variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LocalDecl {
    /// Debug name (not semantically meaningful).
    pub name: String,
    /// Declared type.
    pub ty: Ty,
}

/// A kernel or function parameter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Param {
    /// A device-memory buffer of elements of `ty` living in `space`.
    Buffer {
        /// Debug name.
        name: String,
        /// Element type.
        ty: Ty,
        /// Memory space the buffer binds to.
        space: MemSpace,
    },
    /// A scalar argument passed at launch/call time.
    Scalar {
        /// Debug name.
        name: String,
        /// Scalar type.
        ty: Ty,
    },
}

impl Param {
    /// The parameter's debug name.
    pub fn name(&self) -> &str {
        match self {
            Param::Buffer { name, .. } | Param::Scalar { name, .. } => name,
        }
    }

    /// The element or scalar type.
    pub fn ty(&self) -> Ty {
        match self {
            Param::Buffer { ty, .. } | Param::Scalar { ty, .. } => *ty,
        }
    }

    /// True for buffer parameters.
    pub fn is_buffer(&self) -> bool {
        matches!(self, Param::Buffer { .. })
    }
}

/// Declaration of a block-shared scratchpad array.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SharedDecl {
    /// Debug name.
    pub name: String,
    /// Element type.
    pub ty: Ty,
    /// Number of elements (fixed at kernel build time, as in static
    /// `__shared__` declarations).
    pub len: usize,
}

/// A device function: pure-by-convention scalar code callable from kernels.
///
/// Functions are the unit of the paper's approximate memoization. Whether a
/// function actually *is* pure is established by the purity analysis in
/// `paraprox-patterns`, not assumed.
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct Func {
    /// Function name (unique within a program).
    pub name: String,
    /// Scalar parameters (buffer parameters are not allowed in functions;
    /// the builder only offers scalars).
    pub params: Vec<Param>,
    /// Return type.
    pub ret: Ty,
    /// Local variable declarations.
    pub locals: Vec<LocalDecl>,
    /// Function body; must reach a [`Stmt::Return`] on every path that
    /// terminates.
    pub body: Vec<Stmt>,
}

/// A kernel: a grid of threads all executing `body`.
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct Kernel {
    /// Kernel name (unique within a program).
    pub name: String,
    /// Parameters (buffers and scalars), bound positionally at launch.
    pub params: Vec<Param>,
    /// Shared-memory arrays, one allocation per block.
    pub shared: Vec<SharedDecl>,
    /// Local variable declarations (per thread).
    pub locals: Vec<LocalDecl>,
    /// Kernel body.
    pub body: Vec<Stmt>,
}

impl Kernel {
    /// Indices of the buffer parameters, in declaration order.
    pub fn buffer_param_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.params
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_buffer())
            .map(|(i, _)| i)
    }
}

/// A compilation unit: device functions plus kernels.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    funcs: Vec<Func>,
    kernels: Vec<Kernel>,
}

impl Program {
    /// Create an empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Add a device function, returning its id.
    pub fn add_func(&mut self, func: Func) -> FuncId {
        let id = FuncId(self.funcs.len());
        self.funcs.push(func);
        id
    }

    /// Add a kernel, returning its id.
    pub fn add_kernel(&mut self, kernel: Kernel) -> KernelId {
        let id = KernelId(self.kernels.len());
        self.kernels.push(kernel);
        id
    }

    /// Look up a function by id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this program.
    pub fn func(&self, id: FuncId) -> &Func {
        &self.funcs[id.0]
    }

    /// Look up a kernel by id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this program.
    pub fn kernel(&self, id: KernelId) -> &Kernel {
        &self.kernels[id.0]
    }

    /// Mutable kernel access (used by the approximation rewriters).
    pub fn kernel_mut(&mut self, id: KernelId) -> &mut Kernel {
        &mut self.kernels[id.0]
    }

    /// Mutable function access.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Func {
        &mut self.funcs[id.0]
    }

    /// All functions with their ids.
    pub fn funcs(&self) -> impl Iterator<Item = (FuncId, &Func)> {
        self.funcs.iter().enumerate().map(|(i, f)| (FuncId(i), f))
    }

    /// All kernels with their ids.
    pub fn kernels(&self) -> impl Iterator<Item = (KernelId, &Kernel)> {
        self.kernels
            .iter()
            .enumerate()
            .map(|(i, k)| (KernelId(i), k))
    }

    /// Number of functions.
    pub fn func_count(&self) -> usize {
        self.funcs.len()
    }

    /// Number of kernels.
    pub fn kernel_count(&self) -> usize {
        self.kernels.len()
    }

    /// Find a function by name.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::UnknownName`] when no function has that name.
    pub fn func_by_name(&self, name: &str) -> Result<FuncId, IrError> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(FuncId)
            .ok_or_else(|| IrError::UnknownName(name.to_string()))
    }

    /// Find a kernel by name.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::UnknownName`] when no kernel has that name.
    pub fn kernel_by_name(&self, name: &str) -> Result<KernelId, IrError> {
        self.kernels
            .iter()
            .position(|k| k.name == name)
            .map(KernelId)
            .ok_or_else(|| IrError::UnknownName(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_kernel(name: &str) -> Kernel {
        Kernel {
            name: name.to_string(),
            params: vec![
                Param::Buffer {
                    name: "in".into(),
                    ty: Ty::F32,
                    space: MemSpace::Global,
                },
                Param::Scalar {
                    name: "n".into(),
                    ty: Ty::I32,
                },
            ],
            shared: vec![],
            locals: vec![],
            body: vec![],
        }
    }

    #[test]
    fn program_lookup_by_name() {
        let mut p = Program::new();
        let k = p.add_kernel(tiny_kernel("a"));
        p.add_kernel(tiny_kernel("b"));
        assert_eq!(p.kernel_by_name("a").unwrap(), k);
        assert!(p.kernel_by_name("zzz").is_err());
        assert_eq!(p.kernel_count(), 2);
    }

    #[test]
    fn buffer_param_indices_filters_scalars() {
        let k = tiny_kernel("k");
        let idx: Vec<usize> = k.buffer_param_indices().collect();
        assert_eq!(idx, vec![0]);
    }

    #[test]
    fn param_accessors() {
        let p = Param::Buffer {
            name: "buf".into(),
            ty: Ty::F32,
            space: MemSpace::Constant,
        };
        assert_eq!(p.name(), "buf");
        assert_eq!(p.ty(), Ty::F32);
        assert!(p.is_buffer());
        let s = Param::Scalar {
            name: "n".into(),
            ty: Ty::I32,
        };
        assert!(!s.is_buffer());
    }
}
