//! Scalar types, runtime scalar values, and memory spaces.

use std::fmt;

use crate::error::EvalError;

/// The scalar types the IR supports.
///
/// Data-parallel kernels in the benchmarks only ever manipulate 32-bit
/// scalars, matching the single-precision focus of the paper's GPU target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Ty {
    /// 32-bit IEEE-754 float.
    F32,
    /// 32-bit signed integer.
    I32,
    /// 32-bit unsigned integer.
    U32,
    /// Boolean (used for comparison results and predicates).
    Bool,
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ty::F32 => "f32",
            Ty::I32 => "i32",
            Ty::U32 => "u32",
            Ty::Bool => "bool",
        };
        f.write_str(s)
    }
}

/// A runtime scalar value.
///
/// `Scalar` carries its own type tag so the interpreter and the pure
/// evaluator can check operand types dynamically; a mismatch is reported as
/// an [`EvalError::TypeMismatch`] rather than silently coerced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scalar {
    /// A 32-bit float value.
    F32(f32),
    /// A 32-bit signed integer value.
    I32(i32),
    /// A 32-bit unsigned integer value.
    U32(u32),
    /// A boolean value.
    Bool(bool),
}

// Hashed by bit pattern (`f32::to_bits`), so `NaN` payloads and signed
// zeroes hash distinctly. That is stricter than `PartialEq` for floats
// (`-0.0 == 0.0`, `NaN != NaN`), which is fine for the structural program
// cache: a hash mismatch only forces a recompile, never a wrong hit.
impl std::hash::Hash for Scalar {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Scalar::F32(v) => v.to_bits().hash(state),
            Scalar::I32(v) => v.hash(state),
            Scalar::U32(v) => v.hash(state),
            Scalar::Bool(v) => v.hash(state),
        }
    }
}

impl Scalar {
    /// The type of this value.
    pub fn ty(self) -> Ty {
        match self {
            Scalar::F32(_) => Ty::F32,
            Scalar::I32(_) => Ty::I32,
            Scalar::U32(_) => Ty::U32,
            Scalar::Bool(_) => Ty::Bool,
        }
    }

    /// The zero value of type `ty` (`false` for booleans).
    pub fn zero(ty: Ty) -> Scalar {
        match ty {
            Ty::F32 => Scalar::F32(0.0),
            Ty::I32 => Scalar::I32(0),
            Ty::U32 => Scalar::U32(0),
            Ty::Bool => Scalar::Bool(false),
        }
    }

    /// Extract an `f32`, failing on any other type.
    pub fn as_f32(self) -> Result<f32, EvalError> {
        match self {
            Scalar::F32(v) => Ok(v),
            other => Err(EvalError::TypeMismatch {
                expected: Ty::F32,
                found: other.ty(),
            }),
        }
    }

    /// Extract an `i32`, failing on any other type.
    pub fn as_i32(self) -> Result<i32, EvalError> {
        match self {
            Scalar::I32(v) => Ok(v),
            other => Err(EvalError::TypeMismatch {
                expected: Ty::I32,
                found: other.ty(),
            }),
        }
    }

    /// Extract a `u32`, failing on any other type.
    pub fn as_u32(self) -> Result<u32, EvalError> {
        match self {
            Scalar::U32(v) => Ok(v),
            other => Err(EvalError::TypeMismatch {
                expected: Ty::U32,
                found: other.ty(),
            }),
        }
    }

    /// Extract a `bool`, failing on any other type.
    pub fn as_bool(self) -> Result<bool, EvalError> {
        match self {
            Scalar::Bool(v) => Ok(v),
            other => Err(EvalError::TypeMismatch {
                expected: Ty::Bool,
                found: other.ty(),
            }),
        }
    }

    /// A lossy numeric view of the value as `f64`, for error metrics.
    ///
    /// Booleans map to 0.0/1.0.
    pub fn to_f64_lossy(self) -> f64 {
        match self {
            Scalar::F32(v) => f64::from(v),
            Scalar::I32(v) => f64::from(v),
            Scalar::U32(v) => f64::from(v),
            Scalar::Bool(v) => {
                if v {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Convert this value to another scalar type with C-like semantics.
    ///
    /// Float-to-integer conversions truncate toward zero and saturate at the
    /// integer bounds (matching Rust's `as` and, practically, GPU behavior
    /// for in-range values). Conversions to `Bool` compare against zero.
    pub fn cast(self, ty: Ty) -> Scalar {
        match ty {
            Ty::F32 => Scalar::F32(match self {
                Scalar::F32(v) => v,
                Scalar::I32(v) => v as f32,
                Scalar::U32(v) => v as f32,
                Scalar::Bool(v) => {
                    if v {
                        1.0
                    } else {
                        0.0
                    }
                }
            }),
            Ty::I32 => Scalar::I32(match self {
                Scalar::F32(v) => v as i32,
                Scalar::I32(v) => v,
                Scalar::U32(v) => v as i32,
                Scalar::Bool(v) => i32::from(v),
            }),
            Ty::U32 => Scalar::U32(match self {
                Scalar::F32(v) => v as u32,
                Scalar::I32(v) => v as u32,
                Scalar::U32(v) => v,
                Scalar::Bool(v) => u32::from(v),
            }),
            Ty::Bool => Scalar::Bool(match self {
                Scalar::F32(v) => v != 0.0,
                Scalar::I32(v) => v != 0,
                Scalar::U32(v) => v != 0,
                Scalar::Bool(v) => v,
            }),
        }
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::F32(v) => write!(f, "{v}f"),
            Scalar::I32(v) => write!(f, "{v}"),
            Scalar::U32(v) => write!(f, "{v}u"),
            Scalar::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<f32> for Scalar {
    fn from(v: f32) -> Self {
        Scalar::F32(v)
    }
}

impl From<i32> for Scalar {
    fn from(v: i32) -> Self {
        Scalar::I32(v)
    }
}

impl From<u32> for Scalar {
    fn from(v: u32) -> Self {
        Scalar::U32(v)
    }
}

impl From<bool> for Scalar {
    fn from(v: bool) -> Self {
        Scalar::Bool(v)
    }
}

/// Device memory spaces a buffer parameter can live in.
///
/// The paper's memoization study (its Figure 16) compares lookup tables
/// placed in global, shared, and constant memory; the interpreter in
/// `paraprox-vgpu` models each space with its own latency and cache
/// behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemSpace {
    /// Off-chip global memory, cached in the (configurable) L1.
    #[default]
    Global,
    /// Read-only constant memory with a small broadcast cache.
    Constant,
    /// On-chip per-block scratchpad (declared per kernel, not a parameter
    /// space; listed here so rewrites can target it uniformly).
    Shared,
    /// Approximate (low-refresh / low-voltage) global memory: cheaper
    /// access cycles, but reads may suffer seeded bit flips at the
    /// device's configured error rate. A *placement*, not a kernel-visible
    /// space: buffers allocated here bind to parameters declared
    /// [`MemSpace::Global`] — kernels cannot demand approximate storage,
    /// only launch plans may place tolerant data there.
    Approx,
}

impl MemSpace {
    /// True when a buffer living in `self` may bind to a parameter
    /// declared as `declared`. Exact match always binds; an [`Approx`]
    /// buffer additionally satisfies a [`Global`] declaration, since
    /// approximate memory is a placement of global data.
    ///
    /// [`Approx`]: MemSpace::Approx
    /// [`Global`]: MemSpace::Global
    pub fn binds_to(self, declared: MemSpace) -> bool {
        self == declared || (self == MemSpace::Approx && declared == MemSpace::Global)
    }
}

impl fmt::Display for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemSpace::Global => "global",
            MemSpace::Constant => "constant",
            MemSpace::Shared => "shared",
            MemSpace::Approx => "approx",
        };
        f.write_str(s)
    }
}

/// Identifier of a local variable within one kernel or function.
///
/// `VarId`s index into the owning item's `locals` table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    /// The index into the owning item's locals table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_type_tags_match() {
        assert_eq!(Scalar::F32(1.0).ty(), Ty::F32);
        assert_eq!(Scalar::I32(1).ty(), Ty::I32);
        assert_eq!(Scalar::U32(1).ty(), Ty::U32);
        assert_eq!(Scalar::Bool(true).ty(), Ty::Bool);
    }

    #[test]
    fn zero_has_requested_type() {
        for ty in [Ty::F32, Ty::I32, Ty::U32, Ty::Bool] {
            assert_eq!(Scalar::zero(ty).ty(), ty);
        }
    }

    #[test]
    fn extraction_checks_type() {
        assert_eq!(Scalar::F32(2.5).as_f32().unwrap(), 2.5);
        assert!(Scalar::F32(2.5).as_i32().is_err());
        assert!(Scalar::I32(3).as_bool().is_err());
        assert!(Scalar::Bool(true).as_bool().unwrap());
    }

    #[test]
    fn casts_follow_c_semantics() {
        assert_eq!(Scalar::F32(2.9).cast(Ty::I32), Scalar::I32(2));
        assert_eq!(Scalar::F32(-2.9).cast(Ty::I32), Scalar::I32(-2));
        assert_eq!(Scalar::I32(-1).cast(Ty::U32), Scalar::U32(u32::MAX));
        assert_eq!(Scalar::U32(7).cast(Ty::F32), Scalar::F32(7.0));
        assert_eq!(Scalar::I32(0).cast(Ty::Bool), Scalar::Bool(false));
        assert_eq!(Scalar::F32(0.5).cast(Ty::Bool), Scalar::Bool(true));
    }

    #[test]
    fn lossy_f64_view() {
        assert_eq!(Scalar::Bool(true).to_f64_lossy(), 1.0);
        assert_eq!(Scalar::I32(-4).to_f64_lossy(), -4.0);
    }

    #[test]
    fn display_is_nonempty() {
        for s in [
            Scalar::F32(0.0),
            Scalar::I32(0),
            Scalar::U32(0),
            Scalar::Bool(false),
        ] {
            assert!(!s.to_string().is_empty());
        }
        for t in [Ty::F32, Ty::I32, Ty::U32, Ty::Bool] {
            assert!(!t.to_string().is_empty());
        }
        for m in [
            MemSpace::Global,
            MemSpace::Constant,
            MemSpace::Shared,
            MemSpace::Approx,
        ] {
            assert!(!m.to_string().is_empty());
        }
    }

    #[test]
    fn approx_binds_only_to_global() {
        assert!(MemSpace::Approx.binds_to(MemSpace::Global));
        assert!(MemSpace::Global.binds_to(MemSpace::Global));
        assert!(!MemSpace::Approx.binds_to(MemSpace::Constant));
        assert!(!MemSpace::Approx.binds_to(MemSpace::Shared));
        assert!(!MemSpace::Global.binds_to(MemSpace::Approx));
    }
}
