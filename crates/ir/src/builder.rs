//! Ergonomic builders for kernels and device functions.
//!
//! Both builders manage local-variable allocation and a stack of statement
//! frames so that structured control flow (`if`, `for`) can be written with
//! closures:
//!
//! ```
//! use paraprox_ir::{Expr, KernelBuilder, LoopStep, MemSpace, Ty};
//!
//! let mut kb = KernelBuilder::new("saxpy");
//! let x = kb.buffer("x", Ty::F32, MemSpace::Global);
//! let y = kb.buffer("y", Ty::F32, MemSpace::Global);
//! let a = kb.scalar("a", Ty::F32);
//! let n = kb.scalar("n", Ty::I32);
//! let gid = kb.let_("gid", KernelBuilder::global_id_x());
//! kb.if_(gid.clone().lt(n), |kb| {
//!     let v = kb.let_("v", a * kb.load(x, gid.clone()) + kb.load(y, gid.clone()));
//!     kb.store(y, gid.clone(), v);
//! });
//! let kernel = kb.finish();
//! assert_eq!(kernel.name, "saxpy");
//! ```

use crate::expr::{Expr, Special};
use crate::program::{Func, Kernel, LocalDecl, Param, SharedDecl};
use crate::stmt::{AtomicOp, LoopCond, LoopStep, MemRef, SharedId, Stmt};
use crate::types::{MemSpace, Ty, VarId};

/// Shared machinery between the kernel and function builders.
#[derive(Debug)]
struct BodyBuilder {
    locals: Vec<LocalDecl>,
    frames: Vec<Vec<Stmt>>,
}

impl BodyBuilder {
    fn new() -> BodyBuilder {
        BodyBuilder {
            locals: Vec::new(),
            frames: vec![Vec::new()],
        }
    }

    fn declare(&mut self, name: &str, ty: Ty) -> VarId {
        let id = VarId(self.locals.len() as u32);
        self.locals.push(LocalDecl {
            name: name.to_string(),
            ty,
        });
        id
    }

    fn push(&mut self, stmt: Stmt) {
        self.frames
            .last_mut()
            .expect("builder frame stack is never empty")
            .push(stmt);
    }

    fn finish(mut self) -> (Vec<LocalDecl>, Vec<Stmt>) {
        assert_eq!(
            self.frames.len(),
            1,
            "unbalanced control-flow frames at finish()"
        );
        let body = self.frames.pop().expect("root frame");
        (self.locals, body)
    }
}

/// Infer the type of an initializer expression for `let_` ergonomics.
///
/// Only the cases the builders need are covered; anything ambiguous
/// defaults to `F32`, and callers that care use `let_typed`.
fn infer_ty(e: &Expr, params: &[Param], locals: &[LocalDecl]) -> Ty {
    use crate::expr::{BinOp, UnOp};
    match e {
        Expr::Const(s) => s.ty(),
        Expr::Var(v) => locals.get(v.index()).map(|d| d.ty).unwrap_or(Ty::F32),
        Expr::Param(i) => params.get(*i).map(|p| p.ty()).unwrap_or(Ty::F32),
        Expr::Special(_) => Ty::I32,
        Expr::Cast(ty, _) => *ty,
        Expr::Cmp(..) => Ty::Bool,
        Expr::Unary(op, a) => match op {
            UnOp::Not => infer_ty(a, params, locals),
            UnOp::Neg | UnOp::Abs => infer_ty(a, params, locals),
            _ => Ty::F32,
        },
        Expr::Binary(op, a, b) => match op {
            BinOp::And | BinOp::Or | BinOp::Xor => infer_ty(a, params, locals),
            _ => {
                let ta = infer_ty(a, params, locals);
                if ta == Ty::Bool {
                    infer_ty(b, params, locals)
                } else {
                    ta
                }
            }
        },
        Expr::Select { if_true, .. } => infer_ty(if_true, params, locals),
        // Loads from buffer parameters carry the buffer's element type;
        // shared-array loads default to f32 (use `let_typed` otherwise).
        Expr::Load {
            mem: crate::stmt::MemRef::Param(i),
            ..
        } => params.get(*i).map(|p| p.ty()).unwrap_or(Ty::F32),
        Expr::Load { .. } => Ty::F32,
        Expr::Call { .. } => Ty::F32,
    }
}

/// Builder for [`Kernel`]s.
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    params: Vec<Param>,
    shared: Vec<SharedDecl>,
    body: BodyBuilder,
}

impl KernelBuilder {
    /// Start building a kernel called `name`.
    pub fn new(name: &str) -> KernelBuilder {
        KernelBuilder {
            name: name.to_string(),
            params: Vec::new(),
            shared: Vec::new(),
            body: BodyBuilder::new(),
        }
    }

    /// Declare a buffer parameter; returns its [`MemRef`].
    pub fn buffer(&mut self, name: &str, ty: Ty, space: MemSpace) -> MemRef {
        let idx = self.params.len();
        self.params.push(Param::Buffer {
            name: name.to_string(),
            ty,
            space,
        });
        MemRef::Param(idx)
    }

    /// Declare a scalar parameter; returns an expression that reads it.
    pub fn scalar(&mut self, name: &str, ty: Ty) -> Expr {
        let idx = self.params.len();
        self.params.push(Param::Scalar {
            name: name.to_string(),
            ty,
        });
        Expr::Param(idx)
    }

    /// Declare a block-shared array of `len` elements; returns its
    /// [`MemRef`].
    pub fn shared_array(&mut self, name: &str, ty: Ty, len: usize) -> MemRef {
        let id = SharedId(self.shared.len() as u32);
        self.shared.push(SharedDecl {
            name: name.to_string(),
            ty,
            len,
        });
        MemRef::Shared(id)
    }

    /// `threadIdx.x` as an expression.
    pub fn thread_id_x() -> Expr {
        Expr::Special(Special::ThreadIdX)
    }

    /// `threadIdx.y` as an expression.
    pub fn thread_id_y() -> Expr {
        Expr::Special(Special::ThreadIdY)
    }

    /// `blockIdx.x` as an expression.
    pub fn block_id_x() -> Expr {
        Expr::Special(Special::BlockIdX)
    }

    /// `blockIdx.y` as an expression.
    pub fn block_id_y() -> Expr {
        Expr::Special(Special::BlockIdY)
    }

    /// `blockDim.x` as an expression.
    pub fn block_dim_x() -> Expr {
        Expr::Special(Special::BlockDimX)
    }

    /// `blockDim.y` as an expression.
    pub fn block_dim_y() -> Expr {
        Expr::Special(Special::BlockDimY)
    }

    /// `gridDim.x` as an expression.
    pub fn grid_dim_x() -> Expr {
        Expr::Special(Special::GridDimX)
    }

    /// `gridDim.y` as an expression.
    pub fn grid_dim_y() -> Expr {
        Expr::Special(Special::GridDimY)
    }

    /// `blockIdx.x * blockDim.x + threadIdx.x` — the canonical 1-D global
    /// thread index.
    pub fn global_id_x() -> Expr {
        Self::block_id_x() * Self::block_dim_x() + Self::thread_id_x()
    }

    /// `blockIdx.y * blockDim.y + threadIdx.y`.
    pub fn global_id_y() -> Expr {
        Self::block_id_y() * Self::block_dim_y() + Self::thread_id_y()
    }

    /// A load expression `mem[index]`.
    pub fn load(&self, mem: MemRef, index: Expr) -> Expr {
        Expr::Load {
            mem,
            index: Box::new(index),
        }
    }

    /// Bind a fresh local to `init`, inferring its type; returns an
    /// expression reading the local.
    pub fn let_(&mut self, name: &str, init: Expr) -> Expr {
        let ty = infer_ty(&init, &self.params, &self.body.locals);
        self.let_typed(name, ty, init)
    }

    /// Bind a fresh local of an explicit type.
    pub fn let_typed(&mut self, name: &str, ty: Ty, init: Expr) -> Expr {
        let var = self.body.declare(name, ty);
        self.body.push(Stmt::Let { var, init });
        Expr::Var(var)
    }

    /// Declare a mutable local (for accumulators); returns its [`VarId`].
    pub fn let_mut(&mut self, name: &str, ty: Ty, init: Expr) -> VarId {
        let var = self.body.declare(name, ty);
        self.body.push(Stmt::Let { var, init });
        var
    }

    /// Re-assign a mutable local.
    pub fn assign(&mut self, var: VarId, value: Expr) {
        self.body.push(Stmt::Assign { var, value });
    }

    /// Store `value` to `mem[index]`.
    pub fn store(&mut self, mem: MemRef, index: Expr, value: Expr) {
        self.body.push(Stmt::Store { mem, index, value });
    }

    /// Atomic read-modify-write of `mem[index]`.
    pub fn atomic(&mut self, op: AtomicOp, mem: MemRef, index: Expr, value: Expr) {
        self.body.push(Stmt::Atomic {
            op,
            mem,
            index,
            value,
        });
    }

    /// Block-wide barrier.
    pub fn sync(&mut self) {
        self.body.push(Stmt::Sync);
    }

    /// Append a raw statement (escape hatch for rewriters).
    pub fn push_stmt(&mut self, stmt: Stmt) {
        self.body.push(stmt);
    }

    /// Structured conditional with only a then-arm.
    pub fn if_(&mut self, cond: Expr, then_build: impl FnOnce(&mut Self)) {
        self.if_else(cond, then_build, |_| {});
    }

    /// Structured conditional with both arms.
    pub fn if_else(
        &mut self,
        cond: Expr,
        then_build: impl FnOnce(&mut Self),
        else_build: impl FnOnce(&mut Self),
    ) {
        let then_body = self.nested(then_build);
        let else_body = self.nested(else_build);
        self.body.push(Stmt::If {
            cond,
            then_body,
            else_body,
        });
    }

    /// Counted ascending loop `for (var = init; var < bound; var += step)`.
    /// The closure receives the builder and the loop variable.
    pub fn for_up(
        &mut self,
        name: &str,
        init: Expr,
        bound: Expr,
        step: Expr,
        build: impl FnOnce(&mut Self, Expr),
    ) {
        self.for_loop(name, init, LoopCond::Lt(bound), LoopStep::Add(step), build);
    }

    /// General counted loop with explicit condition and step kinds.
    pub fn for_loop(
        &mut self,
        name: &str,
        init: Expr,
        cond: LoopCond,
        step: LoopStep,
        build: impl FnOnce(&mut Self, Expr),
    ) {
        let var = self.body.declare(name, Ty::I32);
        let body = self.nested(|kb| build(kb, Expr::Var(var)));
        self.body.push(Stmt::For {
            var,
            init,
            cond,
            step,
            body,
        });
    }

    fn nested(&mut self, build: impl FnOnce(&mut Self)) -> Vec<Stmt> {
        // Temporarily swap in a fresh frame, then run the closure against
        // `self` so params/shared declared inside nested scopes still work.
        self.body.frames.push(Vec::new());
        build(self);
        self.body.frames.pop().expect("frame pushed above")
    }

    /// Finish and return the kernel.
    ///
    /// # Panics
    ///
    /// Panics if control-flow frames are unbalanced (a builder bug).
    pub fn finish(self) -> Kernel {
        let (locals, body) = self.body.finish();
        Kernel {
            name: self.name,
            params: self.params,
            shared: self.shared,
            locals,
            body,
        }
    }
}

/// Builder for device [`Func`]s.
///
/// Functions take scalar parameters only and must return via
/// [`FuncBuilder::ret`] on every terminating path.
#[derive(Debug)]
pub struct FuncBuilder {
    name: String,
    params: Vec<Param>,
    ret: Ty,
    body: BodyBuilder,
}

impl FuncBuilder {
    /// Start building a function `name` returning `ret`.
    pub fn new(name: &str, ret: Ty) -> FuncBuilder {
        FuncBuilder {
            name: name.to_string(),
            params: Vec::new(),
            ret,
            body: BodyBuilder::new(),
        }
    }

    /// Declare a scalar parameter; returns an expression that reads it.
    pub fn scalar(&mut self, name: &str, ty: Ty) -> Expr {
        let idx = self.params.len();
        self.params.push(Param::Scalar {
            name: name.to_string(),
            ty,
        });
        Expr::Param(idx)
    }

    /// Bind a fresh local, inferring its type.
    pub fn let_(&mut self, name: &str, init: Expr) -> Expr {
        let ty = infer_ty(&init, &self.params, &self.body.locals);
        self.let_typed(name, ty, init)
    }

    /// Bind a fresh local of an explicit type.
    pub fn let_typed(&mut self, name: &str, ty: Ty, init: Expr) -> Expr {
        let var = self.body.declare(name, ty);
        self.body.push(Stmt::Let { var, init });
        Expr::Var(var)
    }

    /// Declare a mutable local; returns its [`VarId`].
    pub fn let_mut(&mut self, name: &str, ty: Ty, init: Expr) -> VarId {
        let var = self.body.declare(name, ty);
        self.body.push(Stmt::Let { var, init });
        var
    }

    /// Re-assign a mutable local.
    pub fn assign(&mut self, var: VarId, value: Expr) {
        self.body.push(Stmt::Assign { var, value });
    }

    /// Structured conditional with only a then-arm.
    pub fn if_(&mut self, cond: Expr, then_build: impl FnOnce(&mut Self)) {
        self.if_else(cond, then_build, |_| {});
    }

    /// Structured conditional with both arms.
    pub fn if_else(
        &mut self,
        cond: Expr,
        then_build: impl FnOnce(&mut Self),
        else_build: impl FnOnce(&mut Self),
    ) {
        self.body.frames.push(Vec::new());
        then_build(self);
        let then_body = self.body.frames.pop().expect("frame pushed above");
        self.body.frames.push(Vec::new());
        else_build(self);
        let else_body = self.body.frames.pop().expect("frame pushed above");
        self.body.push(Stmt::If {
            cond,
            then_body,
            else_body,
        });
    }

    /// Counted ascending loop, as in [`KernelBuilder::for_up`].
    pub fn for_up(
        &mut self,
        name: &str,
        init: Expr,
        bound: Expr,
        step: Expr,
        build: impl FnOnce(&mut Self, Expr),
    ) {
        let var = self.body.declare(name, Ty::I32);
        self.body.frames.push(Vec::new());
        build(self, Expr::Var(var));
        let body = self.body.frames.pop().expect("frame pushed above");
        self.body.push(Stmt::For {
            var,
            init,
            cond: LoopCond::Lt(bound),
            step: LoopStep::Add(step),
            body,
        });
    }

    /// Return `value` from the function.
    pub fn ret(&mut self, value: Expr) {
        self.body.push(Stmt::Return(value));
    }

    /// Finish and return the function.
    ///
    /// # Panics
    ///
    /// Panics if control-flow frames are unbalanced (a builder bug).
    pub fn finish(self) -> Func {
        let (locals, body) = self.body.finish();
        Func {
            name: self.name,
            params: self.params,
            ret: self.ret,
            locals,
            body,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;

    #[test]
    fn kernel_builder_tracks_params_and_locals() {
        let mut kb = KernelBuilder::new("k");
        let buf = kb.buffer("in", Ty::F32, MemSpace::Global);
        let n = kb.scalar("n", Ty::I32);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        kb.if_(gid.clone().lt(n), |kb| {
            let v = kb.let_("v", kb.load(buf, gid.clone()));
            kb.store(buf, gid.clone(), v * Expr::f32(2.0));
        });
        let k = kb.finish();
        assert_eq!(k.params.len(), 2);
        assert_eq!(k.locals.len(), 2);
        assert_eq!(k.body.len(), 2);
        assert!(matches!(k.body[1], Stmt::If { .. }));
    }

    #[test]
    fn nested_loops_build_correctly() {
        let mut kb = KernelBuilder::new("k");
        kb.for_up("i", Expr::i32(0), Expr::i32(3), Expr::i32(1), |kb, _i| {
            kb.for_up("j", Expr::i32(0), Expr::i32(3), Expr::i32(1), |kb, _j| {
                kb.sync();
            });
        });
        let k = kb.finish();
        match &k.body[0] {
            Stmt::For { body, .. } => match &body[0] {
                Stmt::For { body, .. } => assert!(matches!(body[0], Stmt::Sync)),
                other => panic!("expected inner for, got {other:?}"),
            },
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn func_builder_produces_return() {
        let mut fb = FuncBuilder::new("double", Ty::F32);
        let x = fb.scalar("x", Ty::F32);
        fb.ret(x * Expr::f32(2.0));
        let f = fb.finish();
        assert_eq!(f.params.len(), 1);
        assert!(matches!(f.body[0], Stmt::Return(_)));
    }

    #[test]
    fn type_inference_for_lets() {
        let mut kb = KernelBuilder::new("k");
        let n = kb.scalar("n", Ty::I32);
        let i = kb.let_("i", n.clone() + Expr::i32(1));
        let c = kb.let_("c", i.lt(n));
        // Check recorded local types.
        let k = {
            let _ = c;
            kb.finish()
        };
        assert_eq!(k.locals[0].ty, Ty::I32);
        assert_eq!(k.locals[1].ty, Ty::Bool);
    }

    #[test]
    fn global_id_shape() {
        let e = KernelBuilder::global_id_x();
        assert!(matches!(e, Expr::Binary(BinOp::Add, _, _)));
    }

    #[test]
    fn shared_arrays_get_sequential_ids() {
        let mut kb = KernelBuilder::new("k");
        let a = kb.shared_array("a", Ty::F32, 128);
        let b = kb.shared_array("b", Ty::F32, 64);
        assert_eq!(a, MemRef::Shared(SharedId(0)));
        assert_eq!(b, MemRef::Shared(SharedId(1)));
        let k = kb.finish();
        assert_eq!(k.shared.len(), 2);
        assert_eq!(k.shared[1].len, 64);
    }
}
