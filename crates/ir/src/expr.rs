//! Expressions: the pure, value-producing part of the IR.

use std::fmt;
use std::ops;

use crate::error::EvalError;
use crate::program::FuncId;
use crate::stmt::MemRef;
use crate::types::{Scalar, Ty, VarId};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition (`f32`, `i32`, `u32`).
    Add,
    /// Subtraction (`f32`, `i32`, `u32`; unsigned wraps).
    Sub,
    /// Multiplication (`f32`, `i32`, `u32`).
    Mul,
    /// Division (`f32` IEEE; integers trap on zero).
    Div,
    /// Remainder (integers only; traps on zero).
    Rem,
    /// Minimum of two values.
    Min,
    /// Maximum of two values.
    Max,
    /// `x^y` for floats (`powf`).
    Pow,
    /// Bitwise/logical AND (`i32`, `u32`, `bool`).
    And,
    /// Bitwise/logical OR (`i32`, `u32`, `bool`).
    Or,
    /// Bitwise/logical XOR (`i32`, `u32`, `bool`).
    Xor,
    /// Left shift (integers; shift amount masked to 31 bits).
    Shl,
    /// Right shift (logical for `u32`, arithmetic for `i32`).
    Shr,
}

impl BinOp {
    /// Apply this operator to two runtime scalars.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::OperandTypeMismatch`] if the operand types
    /// differ, [`EvalError::UnsupportedOp`] if the operator is not defined
    /// for the operand type, and [`EvalError::DivisionByZero`] for integer
    /// division/remainder by zero.
    pub fn apply(self, lhs: Scalar, rhs: Scalar) -> Result<Scalar, EvalError> {
        if lhs.ty() != rhs.ty() {
            return Err(EvalError::OperandTypeMismatch {
                lhs: lhs.ty(),
                rhs: rhs.ty(),
            });
        }
        let unsupported = || EvalError::UnsupportedOp {
            op: self.name(),
            ty: lhs.ty(),
        };
        Ok(match (lhs, rhs) {
            (Scalar::F32(a), Scalar::F32(b)) => Scalar::F32(match self {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
                BinOp::Min => a.min(b),
                BinOp::Max => a.max(b),
                BinOp::Pow => a.powf(b),
                BinOp::Rem => a % b,
                BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr => {
                    return Err(unsupported())
                }
            }),
            (Scalar::I32(a), Scalar::I32(b)) => Scalar::I32(match self {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        return Err(EvalError::DivisionByZero);
                    }
                    a.wrapping_div(b)
                }
                BinOp::Rem => {
                    if b == 0 {
                        return Err(EvalError::DivisionByZero);
                    }
                    a.wrapping_rem(b)
                }
                BinOp::Min => a.min(b),
                BinOp::Max => a.max(b),
                BinOp::And => a & b,
                BinOp::Or => a | b,
                BinOp::Xor => a ^ b,
                BinOp::Shl => a.wrapping_shl(b as u32),
                BinOp::Shr => a.wrapping_shr(b as u32),
                BinOp::Pow => return Err(unsupported()),
            }),
            (Scalar::U32(a), Scalar::U32(b)) => Scalar::U32(match self {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        return Err(EvalError::DivisionByZero);
                    }
                    a / b
                }
                BinOp::Rem => {
                    if b == 0 {
                        return Err(EvalError::DivisionByZero);
                    }
                    a % b
                }
                BinOp::Min => a.min(b),
                BinOp::Max => a.max(b),
                BinOp::And => a & b,
                BinOp::Or => a | b,
                BinOp::Xor => a ^ b,
                BinOp::Shl => a.wrapping_shl(b),
                BinOp::Shr => a.wrapping_shr(b),
                BinOp::Pow => return Err(unsupported()),
            }),
            (Scalar::Bool(a), Scalar::Bool(b)) => Scalar::Bool(match self {
                BinOp::And => a && b,
                BinOp::Or => a || b,
                BinOp::Xor => a ^ b,
                _ => return Err(unsupported()),
            }),
            _ => unreachable!("operand types already checked equal"),
        })
    }

    /// Human-readable operator name used in diagnostics and printing.
    pub fn name(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::Pow => "pow",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
        }
    }

    /// True when the operator is both associative and commutative for the
    /// purposes of reduction parallelization (the paper's §2 "Reduction"
    /// requirement). Floating-point `Add`/`Mul` are treated as associative,
    /// exactly as the tree-reduction implementations in the benchmarks do.
    pub fn is_reduction_compatible(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::Min | BinOp::Max | BinOp::And | BinOp::Or | BinOp::Xor
        )
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical/bitwise NOT.
    Not,
    /// `e^x` (floats).
    Exp,
    /// Natural logarithm (floats).
    Log,
    /// Square root (floats).
    Sqrt,
    /// Reciprocal square root (floats). Modeled separately because GPUs
    /// implement it on the special function unit.
    Rsqrt,
    /// Sine (floats).
    Sin,
    /// Cosine (floats).
    Cos,
    /// Absolute value.
    Abs,
    /// Floor (floats).
    Floor,
}

impl UnOp {
    /// Apply this operator to a runtime scalar.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::UnsupportedOp`] when the operator is undefined
    /// for the operand type.
    pub fn apply(self, v: Scalar) -> Result<Scalar, EvalError> {
        let unsupported = || EvalError::UnsupportedOp {
            op: self.name(),
            ty: v.ty(),
        };
        Ok(match v {
            Scalar::F32(x) => Scalar::F32(match self {
                UnOp::Neg => -x,
                UnOp::Exp => x.exp(),
                UnOp::Log => x.ln(),
                UnOp::Sqrt => x.sqrt(),
                UnOp::Rsqrt => 1.0 / x.sqrt(),
                UnOp::Sin => x.sin(),
                UnOp::Cos => x.cos(),
                UnOp::Abs => x.abs(),
                UnOp::Floor => x.floor(),
                UnOp::Not => return Err(unsupported()),
            }),
            Scalar::I32(x) => Scalar::I32(match self {
                UnOp::Neg => x.wrapping_neg(),
                UnOp::Not => !x,
                UnOp::Abs => x.wrapping_abs(),
                _ => return Err(unsupported()),
            }),
            Scalar::U32(x) => Scalar::U32(match self {
                UnOp::Not => !x,
                _ => return Err(unsupported()),
            }),
            Scalar::Bool(x) => Scalar::Bool(match self {
                UnOp::Not => !x,
                _ => return Err(unsupported()),
            }),
        })
    }

    /// Human-readable operator name.
    pub fn name(self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
            UnOp::Exp => "exp",
            UnOp::Log => "log",
            UnOp::Sqrt => "sqrt",
            UnOp::Rsqrt => "rsqrt",
            UnOp::Sin => "sin",
            UnOp::Cos => "cos",
            UnOp::Abs => "abs",
            UnOp::Floor => "floor",
        }
    }

    /// True for the transcendental operations that a GPU's special function
    /// unit accelerates (`exp`, `log`, `sin`, `cos`, `rsqrt`).
    pub fn is_transcendental(self) -> bool {
        matches!(
            self,
            UnOp::Exp | UnOp::Log | UnOp::Sin | UnOp::Cos | UnOp::Rsqrt
        )
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Comparison operators (always produce `Bool`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Strictly less.
    Lt,
    /// Less or equal.
    Le,
    /// Strictly greater.
    Gt,
    /// Greater or equal.
    Ge,
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
}

impl CmpOp {
    /// Apply this comparison to two runtime scalars.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::OperandTypeMismatch`] when operand types differ.
    pub fn apply(self, lhs: Scalar, rhs: Scalar) -> Result<Scalar, EvalError> {
        if lhs.ty() != rhs.ty() {
            return Err(EvalError::OperandTypeMismatch {
                lhs: lhs.ty(),
                rhs: rhs.ty(),
            });
        }
        fn cmp<T: PartialOrd>(op: CmpOp, a: T, b: T) -> bool {
            match op {
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Gt => a > b,
                CmpOp::Ge => a >= b,
                CmpOp::Eq => a == b,
                CmpOp::Ne => a != b,
            }
        }
        let out = match (lhs, rhs) {
            (Scalar::F32(a), Scalar::F32(b)) => cmp(self, a, b),
            (Scalar::I32(a), Scalar::I32(b)) => cmp(self, a, b),
            (Scalar::U32(a), Scalar::U32(b)) => cmp(self, a, b),
            (Scalar::Bool(a), Scalar::Bool(b)) => cmp(self, a, b),
            _ => unreachable!("operand types already checked equal"),
        };
        Ok(Scalar::Bool(out))
    }

    /// Human-readable operator name.
    pub fn name(self) -> &'static str {
        match self {
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Thread/block coordinate specials available inside kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Special {
    /// `threadIdx.x`
    ThreadIdX,
    /// `threadIdx.y`
    ThreadIdY,
    /// `blockIdx.x`
    BlockIdX,
    /// `blockIdx.y`
    BlockIdY,
    /// `blockDim.x`
    BlockDimX,
    /// `blockDim.y`
    BlockDimY,
    /// `gridDim.x`
    GridDimX,
    /// `gridDim.y`
    GridDimY,
}

impl fmt::Display for Special {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Special::ThreadIdX => "threadIdx.x",
            Special::ThreadIdY => "threadIdx.y",
            Special::BlockIdX => "blockIdx.x",
            Special::BlockIdY => "blockIdx.y",
            Special::BlockDimX => "blockDim.x",
            Special::BlockDimY => "blockDim.y",
            Special::GridDimX => "gridDim.x",
            Special::GridDimY => "gridDim.y",
        };
        f.write_str(s)
    }
}

/// An expression tree.
///
/// Expressions are pure except for [`Expr::Load`], which reads device
/// memory. Paraprox's purity analysis (in `paraprox-patterns`) rejects
/// functions whose bodies contain loads or thread specials.
#[derive(Debug, Clone, PartialEq, Hash)]
pub enum Expr {
    /// A literal constant.
    Const(Scalar),
    /// Read of a local variable.
    Var(VarId),
    /// Read of a scalar parameter of the enclosing kernel or function, by
    /// parameter index.
    Param(usize),
    /// A thread/block coordinate (kernels only; type `i32`).
    Special(Special),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Comparison (produces `Bool`).
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Ternary select: `cond ? if_true : if_false`.
    Select {
        /// Boolean condition.
        cond: Box<Expr>,
        /// Value when the condition holds.
        if_true: Box<Expr>,
        /// Value when it does not.
        if_false: Box<Expr>,
    },
    /// Type conversion.
    Cast(Ty, Box<Expr>),
    /// Memory read: `mem[index]` (index type `i32`).
    Load {
        /// The buffer or shared array being read.
        mem: MemRef,
        /// Element index.
        index: Box<Expr>,
    },
    /// Call of a device function with scalar arguments.
    Call {
        /// Callee.
        func: FuncId,
        /// Argument expressions, one per function parameter.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// `f32` literal.
    pub fn f32(v: f32) -> Expr {
        Expr::Const(Scalar::F32(v))
    }

    /// `i32` literal.
    pub fn i32(v: i32) -> Expr {
        Expr::Const(Scalar::I32(v))
    }

    /// `u32` literal.
    pub fn u32(v: u32) -> Expr {
        Expr::Const(Scalar::U32(v))
    }

    /// `bool` literal.
    pub fn bool(v: bool) -> Expr {
        Expr::Const(Scalar::Bool(v))
    }

    /// Comparison helper: `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Lt, Box::new(self), Box::new(rhs))
    }

    /// Comparison helper: `self <= rhs`.
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Le, Box::new(self), Box::new(rhs))
    }

    /// Comparison helper: `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Gt, Box::new(self), Box::new(rhs))
    }

    /// Comparison helper: `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ge, Box::new(self), Box::new(rhs))
    }

    /// Comparison helper: `self == rhs`.
    pub fn eq_(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(self), Box::new(rhs))
    }

    /// Comparison helper: `self != rhs`.
    pub fn ne_(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ne, Box::new(self), Box::new(rhs))
    }

    /// Elementwise minimum.
    pub fn min(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Min, Box::new(self), Box::new(rhs))
    }

    /// Elementwise maximum.
    pub fn max(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Max, Box::new(self), Box::new(rhs))
    }

    /// `self ^ rhs` for floats (`powf`).
    pub fn pow(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Pow, Box::new(self), Box::new(rhs))
    }

    /// Integer remainder.
    ///
    /// Named like the operation (we deliberately do not implement
    /// `std::ops::Rem`, keeping `%`-free builder code explicit).
    #[allow(clippy::should_implement_trait)]
    pub fn rem(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Rem, Box::new(self), Box::new(rhs))
    }

    /// `e^self`.
    pub fn exp(self) -> Expr {
        Expr::Unary(UnOp::Exp, Box::new(self))
    }

    /// Natural logarithm.
    pub fn log(self) -> Expr {
        Expr::Unary(UnOp::Log, Box::new(self))
    }

    /// Square root.
    pub fn sqrt(self) -> Expr {
        Expr::Unary(UnOp::Sqrt, Box::new(self))
    }

    /// Reciprocal square root.
    pub fn rsqrt(self) -> Expr {
        Expr::Unary(UnOp::Rsqrt, Box::new(self))
    }

    /// Sine.
    pub fn sin(self) -> Expr {
        Expr::Unary(UnOp::Sin, Box::new(self))
    }

    /// Cosine.
    pub fn cos(self) -> Expr {
        Expr::Unary(UnOp::Cos, Box::new(self))
    }

    /// Absolute value.
    pub fn abs(self) -> Expr {
        Expr::Unary(UnOp::Abs, Box::new(self))
    }

    /// Floor.
    pub fn floor(self) -> Expr {
        Expr::Unary(UnOp::Floor, Box::new(self))
    }

    /// Type conversion.
    pub fn cast(self, ty: Ty) -> Expr {
        Expr::Cast(ty, Box::new(self))
    }

    /// Ternary select with `self` as the condition.
    pub fn select(self, if_true: Expr, if_false: Expr) -> Expr {
        Expr::Select {
            cond: Box::new(self),
            if_true: Box::new(if_true),
            if_false: Box::new(if_false),
        }
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:expr) => {
        impl ops::$trait for Expr {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::Binary($op, Box::new(self), Box::new(rhs))
            }
        }
    };
}

impl_binop!(Add, add, BinOp::Add);
impl_binop!(Sub, sub, BinOp::Sub);
impl_binop!(Mul, mul, BinOp::Mul);
impl_binop!(Div, div, BinOp::Div);
impl_binop!(BitAnd, bitand, BinOp::And);
impl_binop!(BitOr, bitor, BinOp::Or);
impl_binop!(BitXor, bitxor, BinOp::Xor);
impl_binop!(Shl, shl, BinOp::Shl);
impl_binop!(Shr, shr, BinOp::Shr);

impl ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Unary(UnOp::Neg, Box::new(self))
    }
}

impl ops::Not for Expr {
    type Output = Expr;
    fn not(self) -> Expr {
        Expr::Unary(UnOp::Not, Box::new(self))
    }
}

impl From<Scalar> for Expr {
    fn from(v: Scalar) -> Expr {
        Expr::Const(v)
    }
}

impl From<f32> for Expr {
    fn from(v: f32) -> Expr {
        Expr::f32(v)
    }
}

impl From<i32> for Expr {
    fn from(v: i32) -> Expr {
        Expr::i32(v)
    }
}

impl From<u32> for Expr {
    fn from(v: u32) -> Expr {
        Expr::u32(v)
    }
}

impl From<VarId> for Expr {
    fn from(v: VarId) -> Expr {
        Expr::Var(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_applies_float_arithmetic() {
        let a = Scalar::F32(6.0);
        let b = Scalar::F32(3.0);
        assert_eq!(BinOp::Add.apply(a, b).unwrap(), Scalar::F32(9.0));
        assert_eq!(BinOp::Sub.apply(a, b).unwrap(), Scalar::F32(3.0));
        assert_eq!(BinOp::Mul.apply(a, b).unwrap(), Scalar::F32(18.0));
        assert_eq!(BinOp::Div.apply(a, b).unwrap(), Scalar::F32(2.0));
        assert_eq!(BinOp::Min.apply(a, b).unwrap(), Scalar::F32(3.0));
        assert_eq!(BinOp::Max.apply(a, b).unwrap(), Scalar::F32(6.0));
    }

    #[test]
    fn binop_rejects_mixed_types() {
        let err = BinOp::Add.apply(Scalar::F32(1.0), Scalar::I32(1));
        assert!(matches!(err, Err(EvalError::OperandTypeMismatch { .. })));
    }

    #[test]
    fn integer_division_by_zero_traps() {
        assert_eq!(
            BinOp::Div.apply(Scalar::I32(1), Scalar::I32(0)),
            Err(EvalError::DivisionByZero)
        );
        assert_eq!(
            BinOp::Rem.apply(Scalar::U32(1), Scalar::U32(0)),
            Err(EvalError::DivisionByZero)
        );
    }

    #[test]
    fn float_division_by_zero_is_ieee() {
        let v = BinOp::Div
            .apply(Scalar::F32(1.0), Scalar::F32(0.0))
            .unwrap()
            .as_f32()
            .unwrap();
        assert!(v.is_infinite());
    }

    #[test]
    fn shifts_and_bitwise_on_integers() {
        assert_eq!(
            BinOp::Shl.apply(Scalar::U32(1), Scalar::U32(4)).unwrap(),
            Scalar::U32(16)
        );
        assert_eq!(
            BinOp::Shr.apply(Scalar::I32(-8), Scalar::I32(1)).unwrap(),
            Scalar::I32(-4)
        );
        assert_eq!(
            BinOp::Or
                .apply(Scalar::U32(0b01), Scalar::U32(0b10))
                .unwrap(),
            Scalar::U32(0b11)
        );
        assert!(BinOp::Shl
            .apply(Scalar::F32(1.0), Scalar::F32(1.0))
            .is_err());
    }

    #[test]
    fn bool_logic() {
        assert_eq!(
            BinOp::And
                .apply(Scalar::Bool(true), Scalar::Bool(false))
                .unwrap(),
            Scalar::Bool(false)
        );
        assert_eq!(
            BinOp::Xor
                .apply(Scalar::Bool(true), Scalar::Bool(false))
                .unwrap(),
            Scalar::Bool(true)
        );
        assert!(BinOp::Add
            .apply(Scalar::Bool(true), Scalar::Bool(true))
            .is_err());
    }

    #[test]
    fn unop_transcendentals() {
        let x = Scalar::F32(1.0);
        assert!((UnOp::Exp.apply(x).unwrap().as_f32().unwrap() - std::f32::consts::E).abs() < 1e-6);
        assert_eq!(UnOp::Log.apply(x).unwrap(), Scalar::F32(0.0));
        assert_eq!(
            UnOp::Sqrt.apply(Scalar::F32(4.0)).unwrap(),
            Scalar::F32(2.0)
        );
        assert_eq!(
            UnOp::Rsqrt.apply(Scalar::F32(4.0)).unwrap(),
            Scalar::F32(0.5)
        );
        assert!(UnOp::Exp.apply(Scalar::I32(1)).is_err());
    }

    #[test]
    fn unop_integer_cases() {
        assert_eq!(UnOp::Neg.apply(Scalar::I32(4)).unwrap(), Scalar::I32(-4));
        assert_eq!(UnOp::Abs.apply(Scalar::I32(-4)).unwrap(), Scalar::I32(4));
        assert_eq!(
            UnOp::Not.apply(Scalar::U32(0)).unwrap(),
            Scalar::U32(u32::MAX)
        );
        assert_eq!(
            UnOp::Not.apply(Scalar::Bool(true)).unwrap(),
            Scalar::Bool(false)
        );
    }

    #[test]
    fn comparisons_produce_bool() {
        assert_eq!(
            CmpOp::Lt.apply(Scalar::F32(1.0), Scalar::F32(2.0)).unwrap(),
            Scalar::Bool(true)
        );
        assert_eq!(
            CmpOp::Ge.apply(Scalar::I32(3), Scalar::I32(3)).unwrap(),
            Scalar::Bool(true)
        );
        assert!(CmpOp::Eq.apply(Scalar::I32(1), Scalar::U32(1)).is_err());
    }

    #[test]
    fn operator_overloads_build_trees() {
        let e = (Expr::f32(1.0) + Expr::f32(2.0)) * Expr::f32(3.0);
        match e {
            Expr::Binary(BinOp::Mul, lhs, _) => {
                assert!(matches!(*lhs, Expr::Binary(BinOp::Add, _, _)));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn reduction_compatibility_classification() {
        assert!(BinOp::Add.is_reduction_compatible());
        assert!(BinOp::Xor.is_reduction_compatible());
        assert!(!BinOp::Sub.is_reduction_compatible());
        assert!(!BinOp::Div.is_reduction_compatible());
    }

    #[test]
    fn transcendental_classification() {
        assert!(UnOp::Exp.is_transcendental());
        assert!(!UnOp::Sqrt.is_transcendental());
        assert!(!UnOp::Neg.is_transcendental());
    }
}
