//! A pure evaluator for device functions.
//!
//! Paraprox's bit tuning and lookup-table population need to evaluate a
//! candidate function on training inputs *outside* any kernel launch. This
//! evaluator executes a [`Func`] body with scalar arguments and no device
//! state; any construct that would touch device state (loads, thread
//! specials, atomics, barriers) is rejected with [`EvalError::NotPure`] —
//! which doubles as a dynamic cross-check of the static purity analysis in
//! `paraprox-patterns`.

use crate::error::EvalError;
use crate::expr::Expr;
use crate::program::{Func, Program};
use crate::stmt::{LoopCond, LoopStep, Stmt};
use crate::types::Scalar;

/// Resource limits for the pure evaluator.
#[derive(Debug, Clone, Copy)]
pub struct EvalLimits {
    /// Maximum total loop iterations across the whole call (guards against
    /// non-terminating loops in malformed IR).
    pub max_iterations: u64,
    /// Maximum function-call depth.
    pub max_call_depth: u32,
}

impl Default for EvalLimits {
    fn default() -> Self {
        EvalLimits {
            max_iterations: 10_000_000,
            max_call_depth: 16,
        }
    }
}

struct PureCtx<'p> {
    program: &'p Program,
    limits: EvalLimits,
    iterations: u64,
}

enum Flow {
    Normal,
    Returned(Scalar),
}

/// Evaluate device function `func` of `program` on scalar `args`.
///
/// # Errors
///
/// Returns an error if argument count or types mismatch the declaration, if
/// the body uses impure constructs, exceeds `limits`, or fails to return.
pub fn eval_func(program: &Program, func: &Func, args: &[Scalar]) -> Result<Scalar, EvalError> {
    let mut ctx = PureCtx {
        program,
        limits: EvalLimits::default(),
        iterations: 0,
    };
    call(&mut ctx, func, args, 0)
}

/// Evaluate a closed expression (no params, vars, loads, or specials).
///
/// Used for constant folding in rewrites and for tests.
///
/// # Errors
///
/// Returns an error when the expression references context it does not
/// have, or an operation fails.
pub fn eval_expr_pure(program: &Program, expr: &Expr) -> Result<Scalar, EvalError> {
    let mut ctx = PureCtx {
        program,
        limits: EvalLimits::default(),
        iterations: 0,
    };
    let locals: Vec<Option<Scalar>> = Vec::new();
    eval_expr(&mut ctx, expr, &[], &locals, 0)
}

fn call(
    ctx: &mut PureCtx<'_>,
    func: &Func,
    args: &[Scalar],
    depth: u32,
) -> Result<Scalar, EvalError> {
    if depth > ctx.limits.max_call_depth {
        return Err(EvalError::IterationLimit);
    }
    if args.len() != func.params.len() {
        return Err(EvalError::ArityMismatch {
            expected: func.params.len(),
            found: args.len(),
        });
    }
    for (arg, param) in args.iter().zip(&func.params) {
        if arg.ty() != param.ty() {
            return Err(EvalError::TypeMismatch {
                expected: param.ty(),
                found: arg.ty(),
            });
        }
    }
    let mut locals: Vec<Option<Scalar>> = vec![None; func.locals.len()];
    match run_block(ctx, &func.body, args, &mut locals, depth)? {
        Flow::Returned(v) => Ok(v),
        Flow::Normal => Err(EvalError::MissingReturn(func.name.clone())),
    }
}

fn run_block(
    ctx: &mut PureCtx<'_>,
    stmts: &[Stmt],
    args: &[Scalar],
    locals: &mut Vec<Option<Scalar>>,
    depth: u32,
) -> Result<Flow, EvalError> {
    for stmt in stmts {
        match stmt {
            Stmt::Let { var, init } | Stmt::Assign { var, value: init } => {
                let v = eval_expr(ctx, init, args, locals, depth)?;
                locals[var.index()] = Some(v);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = eval_expr(ctx, cond, args, locals, depth)?.as_bool()?;
                let body = if c { then_body } else { else_body };
                if let Flow::Returned(v) = run_block(ctx, body, args, locals, depth)? {
                    return Ok(Flow::Returned(v));
                }
            }
            Stmt::For {
                var,
                init,
                cond,
                step,
                body,
            } => {
                let mut value = eval_expr(ctx, init, args, locals, depth)?;
                loop {
                    let bound = eval_expr(ctx, cond.bound(), args, locals, depth)?;
                    let keep_going = match cond {
                        LoopCond::Lt(_) => crate::expr::CmpOp::Lt,
                        LoopCond::Le(_) => crate::expr::CmpOp::Le,
                        LoopCond::Gt(_) => crate::expr::CmpOp::Gt,
                        LoopCond::Ge(_) => crate::expr::CmpOp::Ge,
                    }
                    .apply(value, bound)?
                    .as_bool()?;
                    if !keep_going {
                        break;
                    }
                    ctx.iterations += 1;
                    if ctx.iterations > ctx.limits.max_iterations {
                        return Err(EvalError::IterationLimit);
                    }
                    locals[var.index()] = Some(value);
                    if let Flow::Returned(v) = run_block(ctx, body, args, locals, depth)? {
                        return Ok(Flow::Returned(v));
                    }
                    // Re-read the variable: the body may have modified it.
                    value = locals[var.index()].ok_or(EvalError::UninitializedVar(var.0))?;
                    let amount = eval_expr(ctx, step.amount(), args, locals, depth)?;
                    let op = match step {
                        LoopStep::Add(_) => crate::expr::BinOp::Add,
                        LoopStep::Sub(_) => crate::expr::BinOp::Sub,
                        LoopStep::Mul(_) => crate::expr::BinOp::Mul,
                        LoopStep::Shl(_) => crate::expr::BinOp::Shl,
                        LoopStep::Shr(_) => crate::expr::BinOp::Shr,
                    };
                    value = op.apply(value, amount)?;
                }
                locals[var.index()] = Some(value);
            }
            Stmt::Return(e) => {
                let v = eval_expr(ctx, e, args, locals, depth)?;
                return Ok(Flow::Returned(v));
            }
            Stmt::Store { .. } => return Err(EvalError::NotPure("store")),
            Stmt::Atomic { .. } => return Err(EvalError::NotPure("atomic")),
            Stmt::Sync => return Err(EvalError::NotPure("sync")),
        }
    }
    Ok(Flow::Normal)
}

fn eval_expr(
    ctx: &mut PureCtx<'_>,
    expr: &Expr,
    args: &[Scalar],
    locals: &[Option<Scalar>],
    depth: u32,
) -> Result<Scalar, EvalError> {
    match expr {
        Expr::Const(v) => Ok(*v),
        Expr::Var(v) => locals
            .get(v.index())
            .copied()
            .flatten()
            .ok_or(EvalError::UninitializedVar(v.0)),
        Expr::Param(i) => args.get(*i).copied().ok_or(EvalError::ArityMismatch {
            expected: *i + 1,
            found: args.len(),
        }),
        Expr::Special(_) => Err(EvalError::NotPure("thread special")),
        Expr::Unary(op, a) => op.apply(eval_expr(ctx, a, args, locals, depth)?),
        Expr::Binary(op, a, b) => {
            let va = eval_expr(ctx, a, args, locals, depth)?;
            let vb = eval_expr(ctx, b, args, locals, depth)?;
            op.apply(va, vb)
        }
        Expr::Cmp(op, a, b) => {
            let va = eval_expr(ctx, a, args, locals, depth)?;
            let vb = eval_expr(ctx, b, args, locals, depth)?;
            op.apply(va, vb)
        }
        Expr::Select {
            cond,
            if_true,
            if_false,
        } => {
            if eval_expr(ctx, cond, args, locals, depth)?.as_bool()? {
                eval_expr(ctx, if_true, args, locals, depth)
            } else {
                eval_expr(ctx, if_false, args, locals, depth)
            }
        }
        Expr::Cast(ty, a) => Ok(eval_expr(ctx, a, args, locals, depth)?.cast(*ty)),
        Expr::Load { .. } => Err(EvalError::NotPure("load")),
        Expr::Call {
            func,
            args: call_args,
        } => {
            let callee = ctx
                .program
                .funcs()
                .find(|(id, _)| id == func)
                .map(|(_, f)| f)
                .ok_or(EvalError::UnknownFunc(func.0))?;
            let mut values = Vec::with_capacity(call_args.len());
            for a in call_args {
                values.push(eval_expr(ctx, a, args, locals, depth)?);
            }
            call(ctx, callee, &values, depth + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::types::Ty;

    fn make_program_with(f: Func) -> (Program, Func) {
        let mut p = Program::new();
        let id = p.add_func(f);
        let f = p.func(id).clone();
        (p, f)
    }

    #[test]
    fn straight_line_arithmetic() {
        let mut fb = FuncBuilder::new("poly", Ty::F32);
        let x = fb.scalar("x", Ty::F32);
        let y = fb.let_("y", x.clone() * x.clone() + Expr::f32(1.0));
        fb.ret(y.sqrt());
        let (p, f) = make_program_with(fb.finish());
        let out = eval_func(&p, &f, &[Scalar::F32(2.0)]).unwrap();
        assert!((out.as_f32().unwrap() - 5.0_f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn branches_take_correct_arm() {
        let mut fb = FuncBuilder::new("absdiff", Ty::F32);
        let a = fb.scalar("a", Ty::F32);
        let b = fb.scalar("b", Ty::F32);
        fb.if_else(
            a.clone().gt(b.clone()),
            |fb| fb.ret(a.clone() - b.clone()),
            |fb| fb.ret(b.clone() - a.clone()),
        );
        let (p, f) = make_program_with(fb.finish());
        assert_eq!(
            eval_func(&p, &f, &[Scalar::F32(5.0), Scalar::F32(3.0)]).unwrap(),
            Scalar::F32(2.0)
        );
        assert_eq!(
            eval_func(&p, &f, &[Scalar::F32(3.0), Scalar::F32(5.0)]).unwrap(),
            Scalar::F32(2.0)
        );
    }

    #[test]
    fn loops_accumulate() {
        let mut fb = FuncBuilder::new("sum_to_n", Ty::I32);
        let n = fb.scalar("n", Ty::I32);
        let acc = fb.let_mut("acc", Ty::I32, Expr::i32(0));
        fb.for_up(
            "i",
            Expr::i32(1),
            n + Expr::i32(1),
            Expr::i32(1),
            |fb, i| {
                fb.assign(acc, Expr::Var(acc) + i);
            },
        );
        fb.ret(Expr::Var(acc));
        let (p, f) = make_program_with(fb.finish());
        assert_eq!(
            eval_func(&p, &f, &[Scalar::I32(10)]).unwrap(),
            Scalar::I32(55)
        );
    }

    #[test]
    fn missing_return_reported() {
        let mut fb = FuncBuilder::new("noret", Ty::F32);
        let x = fb.scalar("x", Ty::F32);
        fb.if_(x.clone().gt(Expr::f32(0.0)), |fb| fb.ret(x.clone()));
        let (p, f) = make_program_with(fb.finish());
        assert!(matches!(
            eval_func(&p, &f, &[Scalar::F32(-1.0)]),
            Err(EvalError::MissingReturn(_))
        ));
    }

    #[test]
    fn wrong_arity_and_types_rejected() {
        let mut fb = FuncBuilder::new("id", Ty::F32);
        let x = fb.scalar("x", Ty::F32);
        fb.ret(x);
        let (p, f) = make_program_with(fb.finish());
        assert!(matches!(
            eval_func(&p, &f, &[]),
            Err(EvalError::ArityMismatch { .. })
        ));
        assert!(matches!(
            eval_func(&p, &f, &[Scalar::I32(1)]),
            Err(EvalError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn impure_constructs_rejected() {
        let f = Func {
            name: "impure".into(),
            params: vec![],
            ret: Ty::F32,
            locals: vec![],
            body: vec![Stmt::Return(Expr::Special(crate::expr::Special::ThreadIdX))],
        };
        let (p, f) = make_program_with(f);
        assert_eq!(
            eval_func(&p, &f, &[]),
            Err(EvalError::NotPure("thread special"))
        );
    }

    #[test]
    fn nested_calls_resolve() {
        let mut p = Program::new();
        let mut inner = FuncBuilder::new("sq", Ty::F32);
        let x = inner.scalar("x", Ty::F32);
        inner.ret(x.clone() * x);
        let inner_id = p.add_func(inner.finish());

        let mut outer = FuncBuilder::new("quart", Ty::F32);
        let y = outer.scalar("y", Ty::F32);
        let sq = Expr::Call {
            func: inner_id,
            args: vec![y],
        };
        outer.ret(Expr::Call {
            func: inner_id,
            args: vec![sq],
        });
        let outer_f = outer.finish();
        p.add_func(outer_f.clone());

        let out = eval_func(&p, &outer_f, &[Scalar::F32(2.0)]).unwrap();
        assert_eq!(out, Scalar::F32(16.0));
    }

    #[test]
    fn closed_expression_evaluation() {
        let p = Program::new();
        let e = (Expr::f32(2.0) + Expr::f32(3.0)) * Expr::f32(4.0);
        assert_eq!(eval_expr_pure(&p, &e).unwrap(), Scalar::F32(20.0));
        assert!(eval_expr_pure(&p, &Expr::Param(0)).is_err());
    }

    #[test]
    fn runaway_loop_hits_limit() {
        let mut fb = FuncBuilder::new("spin", Ty::I32);
        // for (i = 0; i < 1; i += 0) — never progresses.
        let var_body = |fb: &mut FuncBuilder, _i: Expr| {
            let _ = fb;
        };
        fb.for_up("i", Expr::i32(0), Expr::i32(1), Expr::i32(0), var_body);
        fb.ret(Expr::i32(0));
        let (p, f) = make_program_with(fb.finish());
        assert_eq!(eval_func(&p, &f, &[]), Err(EvalError::IterationLimit));
    }
}
