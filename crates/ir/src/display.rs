//! A CUDA-flavored pretty printer for IR items.
//!
//! The printer exists for debugging, documentation, and examples; it is not
//! a parseable serialization format.

use std::fmt;

use crate::expr::Expr;
use crate::program::{Func, Kernel, Program};
use crate::stmt::{LoopCond, LoopStep, Stmt};

fn write_expr(f: &mut fmt::Formatter<'_>, e: &Expr) -> fmt::Result {
    match e {
        Expr::Const(v) => write!(f, "{v}"),
        Expr::Var(v) => write!(f, "{v}"),
        Expr::Param(i) => write!(f, "arg{i}"),
        Expr::Special(s) => write!(f, "{s}"),
        Expr::Unary(op, a) => {
            write!(f, "{op}(")?;
            write_expr(f, a)?;
            write!(f, ")")
        }
        Expr::Binary(op, a, b) => {
            write!(f, "{op}(")?;
            write_expr(f, a)?;
            write!(f, ", ")?;
            write_expr(f, b)?;
            write!(f, ")")
        }
        Expr::Cmp(op, a, b) => {
            write!(f, "{op}(")?;
            write_expr(f, a)?;
            write!(f, ", ")?;
            write_expr(f, b)?;
            write!(f, ")")
        }
        Expr::Select {
            cond,
            if_true,
            if_false,
        } => {
            write!(f, "(")?;
            write_expr(f, cond)?;
            write!(f, " ? ")?;
            write_expr(f, if_true)?;
            write!(f, " : ")?;
            write_expr(f, if_false)?;
            write!(f, ")")
        }
        Expr::Cast(ty, a) => {
            write!(f, "({ty})(")?;
            write_expr(f, a)?;
            write!(f, ")")
        }
        Expr::Load { mem, index } => {
            write!(f, "{mem}[")?;
            write_expr(f, index)?;
            write!(f, "]")
        }
        Expr::Call { func, args } => {
            write!(f, "{func}(")?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write_expr(f, a)?;
            }
            write!(f, ")")
        }
    }
}

fn write_stmts(f: &mut fmt::Formatter<'_>, stmts: &[Stmt], indent: usize) -> fmt::Result {
    let pad = "  ".repeat(indent);
    for stmt in stmts {
        match stmt {
            Stmt::Let { var, init } => {
                write!(f, "{pad}let {var} = ")?;
                write_expr(f, init)?;
                writeln!(f, ";")?;
            }
            Stmt::Assign { var, value } => {
                write!(f, "{pad}{var} = ")?;
                write_expr(f, value)?;
                writeln!(f, ";")?;
            }
            Stmt::Store { mem, index, value } => {
                write!(f, "{pad}{mem}[")?;
                write_expr(f, index)?;
                write!(f, "] = ")?;
                write_expr(f, value)?;
                writeln!(f, ";")?;
            }
            Stmt::Atomic {
                op,
                mem,
                index,
                value,
            } => {
                write!(f, "{pad}{op}(&{mem}[")?;
                write_expr(f, index)?;
                write!(f, "], ")?;
                write_expr(f, value)?;
                writeln!(f, ");")?;
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                write!(f, "{pad}if (")?;
                write_expr(f, cond)?;
                writeln!(f, ") {{")?;
                write_stmts(f, then_body, indent + 1)?;
                if else_body.is_empty() {
                    writeln!(f, "{pad}}}")?;
                } else {
                    writeln!(f, "{pad}}} else {{")?;
                    write_stmts(f, else_body, indent + 1)?;
                    writeln!(f, "{pad}}}")?;
                }
            }
            Stmt::For {
                var,
                init,
                cond,
                step,
                body,
            } => {
                write!(f, "{pad}for ({var} = ")?;
                write_expr(f, init)?;
                let (cmp, bound) = match cond {
                    LoopCond::Lt(e) => ("<", e),
                    LoopCond::Le(e) => ("<=", e),
                    LoopCond::Gt(e) => (">", e),
                    LoopCond::Ge(e) => (">=", e),
                };
                write!(f, "; {var} {cmp} ")?;
                write_expr(f, bound)?;
                let (update, amount) = match step {
                    LoopStep::Add(e) => ("+=", e),
                    LoopStep::Sub(e) => ("-=", e),
                    LoopStep::Mul(e) => ("*=", e),
                    LoopStep::Shl(e) => ("<<=", e),
                    LoopStep::Shr(e) => (">>=", e),
                };
                write!(f, "; {var} {update} ")?;
                write_expr(f, amount)?;
                writeln!(f, ") {{")?;
                write_stmts(f, body, indent + 1)?;
                writeln!(f, "{pad}}}")?;
            }
            Stmt::Sync => writeln!(f, "{pad}__syncthreads();")?,
            Stmt::Return(e) => {
                write!(f, "{pad}return ")?;
                write_expr(f, e)?;
                writeln!(f, ";")?;
            }
        }
    }
    Ok(())
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "__global__ void {}(", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match p {
                crate::Param::Buffer { name, ty, space } => write!(f, "{space} {ty}* {name}")?,
                crate::Param::Scalar { name, ty } => write!(f, "{ty} {name}")?,
            }
        }
        writeln!(f, ") {{")?;
        for s in &self.shared {
            writeln!(f, "  __shared__ {} {}[{}];", s.ty, s.name, s.len)?;
        }
        write_stmts(f, &self.body, 1)?;
        writeln!(f, "}}")
    }
}

impl fmt::Display for Func {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "__device__ {} {}(", self.ret, self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", p.ty(), p.name())?;
        }
        writeln!(f, ") {{")?;
        write_stmts(f, &self.body, 1)?;
        writeln!(f, "}}")
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (_, func) in self.funcs() {
            writeln!(f, "{func}")?;
        }
        for (_, kernel) in self.kernels() {
            writeln!(f, "{kernel}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::{FuncBuilder, KernelBuilder};
    use crate::types::{MemSpace, Ty};
    use crate::{Expr, Program};

    #[test]
    fn kernel_prints_cuda_flavored_text() {
        let mut kb = KernelBuilder::new("scale");
        let buf = kb.buffer("data", Ty::F32, MemSpace::Global);
        let gid = kb.let_("gid", KernelBuilder::global_id_x());
        let v = kb.let_("v", kb.load(buf, gid.clone()));
        kb.store(buf, gid, v * Expr::f32(0.5));
        let text = kb.finish().to_string();
        assert!(text.contains("__global__ void scale"));
        assert!(text.contains("threadIdx.x"));
        assert!(text.contains("p0["));
    }

    #[test]
    fn func_and_program_print() {
        let mut p = Program::new();
        let mut fb = FuncBuilder::new("inc", Ty::F32);
        let x = fb.scalar("x", Ty::F32);
        fb.ret(x + Expr::f32(1.0));
        p.add_func(fb.finish());
        let text = p.to_string();
        assert!(text.contains("__device__ f32 inc"));
        assert!(text.contains("return"));
    }

    #[test]
    fn control_flow_prints_structure() {
        let mut kb = KernelBuilder::new("k");
        let n = kb.scalar("n", Ty::I32);
        kb.for_up("i", Expr::i32(0), n.clone(), Expr::i32(1), |kb, i| {
            kb.if_(i.clone().lt(n.clone()), |kb| kb.sync());
        });
        let text = kb.finish().to_string();
        assert!(text.contains("for ("));
        assert!(text.contains("if ("));
        assert!(text.contains("__syncthreads()"));
    }
}
